//! Parameter explorer: everything a sender consults before dispatching a
//! self-emerging message — solved structures per scheme, predicted
//! resilience, node costs, the Rr/Rd tradeoff frontier, and Algorithm 1's
//! threshold table.
//!
//! ```sh
//! cargo run --example parameter_explorer --release
//! cargo run --example parameter_explorer --release -- 0.25 5000 2.0
//! ```
//!
//! Arguments: `p` (malicious rate), `budget` (node budget), `α` (emerging
//! period in mean node lifetimes).

use emerge_core::analysis;
use emerge_core::config::SchemeParams;

fn main() {
    let mut args = std::env::args().skip(1);
    let p: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.2);
    let budget: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10_000);
    let alpha: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3.0);
    let target = 0.99;

    println!("== self-emerging data: parameter explorer ==");
    println!("p = {p}, budget = {budget} nodes, α = {alpha}, target R* = {target}\n");

    // Scheme comparison table.
    println!(
        "{:<10} {:>22} {:>8} {:>9} {:>9} {:>7}",
        "scheme", "structure", "cost", "Rr", "Rd", "met?"
    );
    let central = analysis::central(p);
    println!(
        "{:<10} {:>22} {:>8} {:>9.4} {:>9.4} {:>7}",
        "central", "1 holder", 1, central.release, central.drop, "-"
    );
    for (name, sol) in [
        ("disjoint", analysis::solve_disjoint(p, target, budget)),
        ("joint", analysis::solve_joint(p, target, budget)),
        ("share", analysis::solve_share(p, target, budget, alpha)),
    ] {
        let structure = match &sol.params {
            SchemeParams::Disjoint { k, l } | SchemeParams::Joint { k, l } => {
                format!("k={k}, l={l}")
            }
            SchemeParams::Share { k, l, n, .. } => format!("k={k}, l={l}, n={n}"),
            SchemeParams::Central => "1 holder".into(),
        };
        println!(
            "{:<10} {:>22} {:>8} {:>9.4} {:>9.4} {:>7}",
            name,
            structure,
            sol.params.node_cost(),
            sol.predicted.release,
            sol.predicted.drop,
            if sol.target_met { "yes" } else { "NO" }
        );
    }

    // Algorithm 1 detail for the share scheme.
    let share = analysis::solve_share(p, target, budget, alpha);
    if let SchemeParams::Share { k, l, .. } = share.params {
        let a = analysis::algorithm1(k, l, budget, alpha, p);
        println!(
            "\nAlgorithm 1 @ (k={k}, l={l}): n = {}, pdead = {:.3}, d = {}",
            a.n, a.pdead, a.d
        );
        let preview: Vec<String> = a.m.iter().take(8).map(|m| m.to_string()).collect();
        println!(
            "thresholds m[2..=l]: [{}{}]",
            preview.join(", "),
            if a.m.len() > 8 { ", …" } else { "" }
        );
        let flow = analysis::share_flow_survival(a.n, &a.m, p, alpha, l);
        println!("flow survival under churn alone: {flow:.4}");
    }

    // The Lemma-1 tradeoff frontier at a fixed small budget.
    let frontier_budget = 64.min(budget);
    println!("\nRr/Rd Pareto frontier for the joint scheme at cost ≤ {frontier_budget}:");
    println!("{:>4} {:>4} {:>9} {:>9}", "k", "l", "Rr", "Rd");
    let frontier = analysis::joint_frontier(p, frontier_budget);
    let step = (frontier.len() / 10).max(1);
    for pt in frontier.iter().step_by(step) {
        println!(
            "{:>4} {:>4} {:>9.4} {:>9.4}",
            pt.k, pt.l, pt.resilience.release, pt.resilience.drop
        );
    }
    if let Some((best_drop, best_release)) = analysis::frontier_extremes(&frontier) {
        println!(
            "extremes: drop-optimal {}x{} (Rd {:.4}), release-optimal {}x{} (Rr {:.4})",
            best_drop.k,
            best_drop.l,
            best_drop.resilience.drop,
            best_release.k,
            best_release.l,
            best_release.resilience.release
        );
    }
    println!(
        "\n(Lemma 1: every frontier point with p < 0.5 has Rr + Rd > 1 — \
         verified across {} configurations.)",
        frontier.len()
    );
}
