//! The paper's online-examination scenario (Section I): exam questions are
//! distributed encrypted ahead of time and must only become readable at
//! the exam start, even though some participants control DHT nodes and
//! actively try to (a) leak the questions early and (b) destroy them.
//!
//! ```sh
//! cargo run --example online_exam --release
//! ```
//!
//! Runs the same exam release under all four schemes against both attacks
//! at 20% malicious nodes and prints who survives.

use emerge_core::config::SchemeKind;
use emerge_core::emergence::{SelfEmergingSystem, SendRequest};
use emerge_core::protocol::AttackMode;
use emerge_dht::overlay::OverlayConfig;
use emerge_sim::time::SimDuration;

const EXAM: &[u8] = b"Q1: Prove Lemma 1. Q2: Derive equation (3). Q3: Why onions?";
const MALICIOUS_RATE: f64 = 0.20;

fn main() {
    println!("== online exam timed release ==");
    println!(
        "exam sealed; malicious student nodes: {:.0}%",
        MALICIOUS_RATE * 100.0
    );
    println!();
    println!(
        "{:<10} {:>8} {:>14} {:>14} {:>12}",
        "scheme", "cost", "leaked early?", "destroyed?", "exam held?"
    );

    for (i, scheme) in SchemeKind::ALL.into_iter().enumerate() {
        // Fresh deterministic world per scheme so runs are comparable.
        let build = |seed_offset: u64, attack: AttackMode| {
            let mut system = SelfEmergingSystem::new(
                OverlayConfig {
                    n_nodes: 400,
                    malicious_fraction: MALICIOUS_RATE,
                    ..OverlayConfig::default()
                },
                9000 + i as u64 * 10 + seed_offset,
            );
            system.set_attack_mode(attack);
            let mut handle = system
                .send(SendRequest {
                    message: EXAM.to_vec(),
                    emerging_period: SimDuration::from_ticks(8_000),
                    scheme,
                    target_resilience: 0.99,
                    expected_malicious_rate: MALICIOUS_RATE,
                })
                .expect("send");
            system.run_to_release(&mut handle);
            (system, handle)
        };

        // Release-ahead attempt: cheating students try to read the exam
        // before the start time.
        let (_sys_r, handle_r) = build(0, AttackMode::ReleaseAhead);
        let leaked = handle_r
            .report
            .as_ref()
            .and_then(|r| r.adversary_reconstruction.as_ref())
            .map_or_else(|| "no".into(), |(at, _)| format!("yes, at {at}"));

        // Drop attempt: saboteurs try to destroy the exam.
        let (mut sys_d, handle_d) = build(1, AttackMode::Drop);
        let received = sys_d.receive(&handle_d);
        let destroyed = if received.is_ok() { "no" } else { "yes" };
        let held = match &received {
            Ok(m) if m == EXAM => "yes",
            _ => "NO",
        };

        println!(
            "{:<10} {:>8} {:>14} {:>14} {:>12}",
            handle_r.params.kind().label(),
            handle_r.params.node_cost(),
            leaked,
            destroyed,
            held
        );
    }

    println!();
    println!(
        "notes: 'leaked early' uses the wire-level STRICT adversary — any\n\
         reconstruction before tr counts, including a malicious terminal\n\
         holder peeking one holding period early (the paper's closed forms\n\
         only count reconstruction at ts; see EXPERIMENTS.md). The disjoint\n\
         scheme tops out near R≈0.88 at p=0.2, so some worlds leak at ts —\n\
         exactly why the paper moves to the joint and share schemes."
    );
}
