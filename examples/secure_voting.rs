//! The paper's secure-voting scenario (Section I): encrypted ballots are
//! collected during the polling period but must only be decryptable after
//! the polls close — no early tallies, no partial results leaking to
//! influence late voters.
//!
//! ```sh
//! cargo run --example secure_voting --release
//! ```
//!
//! Casts a batch of ballots, each protected by its own self-emerging key
//! with the same release time (poll close), then tallies after emergence.

use emerge_core::config::SchemeKind;
use emerge_core::emergence::{SelfEmergingSystem, SendRequest};
use emerge_core::error::EmergeError;
use emerge_dht::overlay::OverlayConfig;
use emerge_sim::time::SimDuration;

const CANDIDATES: [&str; 3] = ["alice", "bob", "carol"];
const POLL_PERIOD: u64 = 5_000;

fn main() -> Result<(), EmergeError> {
    let mut system = SelfEmergingSystem::new(
        OverlayConfig {
            n_nodes: 300,
            malicious_fraction: 0.1,
            ..OverlayConfig::default()
        },
        77,
    );

    println!("== secure voting with self-emerging ballots ==");

    // 15 voters cast ballots during the polling period. Every ballot is an
    // independent self-emerging message released at poll close.
    let votes: Vec<&str> = (0..15).map(|i| CANDIDATES[(i * 7 + 3) % 3]).collect();
    let mut handles = Vec::new();
    for (voter, vote) in votes.iter().enumerate() {
        let ballot = format!("voter-{voter:02} chooses {vote}");
        let handle = system.send(SendRequest {
            message: ballot.into_bytes(),
            emerging_period: SimDuration::from_ticks(POLL_PERIOD),
            scheme: SchemeKind::Joint,
            target_resilience: 0.99,
            expected_malicious_rate: 0.1,
        })?;
        handles.push(handle);
    }
    println!(
        "{} encrypted ballots cast; none readable before poll close",
        handles.len()
    );

    // Nobody — including the tallying authority — can read a ballot early.
    for handle in &handles {
        assert!(matches!(
            system.receive(handle),
            Err(EmergeError::NotYetReleased { .. })
        ));
    }
    println!("early-tally attempt rejected for every ballot");

    // Poll closes: the keys emerge and the tally happens.
    let mut tally = std::collections::BTreeMap::new();
    for handle in &mut handles {
        system.run_to_release(handle);
    }
    for handle in &handles {
        let ballot = system.receive(handle)?;
        let text = String::from_utf8_lossy(&ballot).into_owned();
        let choice = text.rsplit(' ').next().unwrap_or("?").to_string();
        *tally.entry(choice).or_insert(0u32) += 1;
    }

    println!("\npoll closed — results:");
    for (candidate, count) in &tally {
        println!("  {candidate:<8} {count:>3} votes");
    }
    let total: u32 = tally.values().sum();
    assert_eq!(total as usize, votes.len(), "every ballot must be counted");
    println!("\nall {total} ballots emerged and were counted — voting OK");
    Ok(())
}
