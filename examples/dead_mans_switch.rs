//! A dead-man's switch: the canonical timed-release application. A
//! journalist seals source material that must surface automatically
//! unless she periodically renews the embargo — here modelled as a chain
//! of self-emerging messages where each renewal supersedes the previous
//! release.
//!
//! ```sh
//! cargo run --example dead_mans_switch --release
//! ```
//!
//! The adversary actively tries to destroy the material (drop attack with
//! 15% of the DHT) — exactly the scenario where the centralized design
//! would fail and the share scheme shines.

use emerge_core::config::SchemeKind;
use emerge_core::emergence::{SelfEmergingSystem, SendRequest};
use emerge_core::protocol::AttackMode;
use emerge_dht::overlay::OverlayConfig;
use emerge_sim::time::SimDuration;

const DOSSIER: &[u8] = b"ledger copies: offshore accounts 44-1337, witnesses A,B";
const EMBARGO_PERIOD: u64 = 10_000;

fn main() {
    let mut system = SelfEmergingSystem::new(
        OverlayConfig {
            n_nodes: 500,
            malicious_fraction: 0.15,
            ..OverlayConfig::default()
        },
        0xDEAD,
    );
    // The powerful interested party wants the dossier gone.
    system.set_attack_mode(AttackMode::Drop);

    println!("== dead man's switch ==");
    println!(
        "dossier sealed into a {}-node DHT; 15% of nodes try to destroy it\n",
        system.substrate().n_nodes()
    );

    // The journalist renews twice, then "misses" the third renewal.
    let mut released_payload = None;
    for epoch in 0..3 {
        let mut handle = system
            .send(SendRequest {
                message: DOSSIER.to_vec(),
                emerging_period: SimDuration::from_ticks(EMBARGO_PERIOD),
                scheme: SchemeKind::Share,
                target_resilience: 0.999,
                expected_malicious_rate: 0.15,
            })
            .expect("send");
        println!(
            "epoch {epoch}: dossier re-sealed, would emerge at {} (cost {} holders)",
            handle.release_time,
            handle.params.node_cost()
        );

        system.run_to_release(&mut handle);
        match system.receive(&handle) {
            Ok(payload) => {
                if epoch < 2 {
                    println!(
                        "epoch {epoch}: journalist checked in — emerged copy superseded, re-sealing\n"
                    );
                } else {
                    println!("epoch {epoch}: no check-in — the switch fires\n");
                    released_payload = Some(payload);
                }
            }
            Err(e) => {
                println!("epoch {epoch}: ADVERSARY WON — dossier destroyed ({e})\n");
            }
        }
    }

    match released_payload {
        Some(payload) => {
            assert_eq!(payload, DOSSIER);
            println!(
                "the material surfaced intact despite the drop campaign:\n  {:?}",
                String::from_utf8_lossy(&payload)
            );
        }
        None => println!("the switch failed — see EXPERIMENTS.md resilience tables"),
    }
}
