//! The paper's "privacy requirements that degrade over time" scenario
//! (Section I, citing Koufogiannis et al.): personal records are highly
//! sensitive now but may be released at increasing levels of detail as
//! time passes — implemented as a ladder of self-emerging messages with
//! staggered release times, under churn.
//!
//! ```sh
//! cargo run --example degrading_privacy --release
//! ```
//!
//! Because the emerging periods span multiple node lifetimes, this example
//! uses the key-share routing scheme — the only one whose resilience
//! survives long horizons (Figure 7) — and shows the releases arriving on
//! schedule despite continuous node death and replacement.

use emerge_core::config::SchemeKind;
use emerge_core::emergence::{SelfEmergingSystem, SendRequest};
use emerge_core::error::EmergeError;
use emerge_dht::overlay::OverlayConfig;
use emerge_sim::time::SimDuration;

fn main() -> Result<(), EmergeError> {
    // Mean node lifetime 20_000 ticks; the longest release below is 3x
    // that (the paper's α = 3 churn regime).
    let tlife: u64 = 20_000;
    let mut system = SelfEmergingSystem::new(
        OverlayConfig {
            n_nodes: 350,
            malicious_fraction: 0.05,
            mean_lifetime: Some(tlife),
            horizon: 10 * tlife,
            ..OverlayConfig::default()
        },
        555,
    );

    println!("== degrading privacy: staggered medical-record release ==");
    println!("mean node lifetime: {tlife} ticks\n");

    // The disclosure ladder: coarser data earlier, finer data later.
    let ladder: [(&str, &[u8], u64); 3] = [
        (
            "aggregate statistics",
            b"2026 cohort: 12% condition prevalence",
            tlife / 2, // α = 0.5
        ),
        (
            "coarse individual record",
            b"patient 0x2a: condition class B, region NW",
            tlife, // α = 1
        ),
        (
            "full individual record",
            b"patient 0x2a: full genome pointer + clinical notes",
            3 * tlife, // α = 3 — the hard case of Figure 7(c)
        ),
    ];

    let mut handles = Vec::new();
    for (label, record, period) in &ladder {
        let handle = system.send(SendRequest {
            message: record.to_vec(),
            emerging_period: SimDuration::from_ticks(*period),
            scheme: SchemeKind::Share,
            target_resilience: 0.99,
            expected_malicious_rate: 0.05,
        })?;
        println!(
            "sealed {label:<28} release at t={:<7} (α = {:.1})",
            handle.release_time,
            *period as f64 / tlife as f64
        );
        handles.push((*label, handle));
    }

    println!();
    // Releases happen in ladder order; each run advances the shared clock.
    for (label, handle) in &mut handles {
        system.run_to_release(handle);
        match system.receive(handle) {
            Ok(record) => println!(
                "t={:<7} emerged {label:<28} {:?}",
                handle.release_time,
                String::from_utf8_lossy(&record)
            ),
            Err(e) => println!(
                "t={:<7} LOST    {label:<28} ({e}) — churn won this round",
                handle.release_time
            ),
        }
    }

    println!(
        "\nthe share scheme delivered across {}x the mean node lifetime: \
         keys were never parked on any node longer than one holding period.",
        ladder.last().unwrap().2 / tlife
    );
    Ok(())
}
