//! Quickstart: send a message to the future and watch it emerge.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds a 256-node DHT, sends a message with a 10 000-tick emerging
//! period under the key-share routing scheme, shows that the message is
//! unreadable before `tr`, then advances virtual time and reads it.

use emerge_core::config::SchemeKind;
use emerge_core::emergence::{SelfEmergingSystem, SendRequest};
use emerge_core::error::EmergeError;
use emerge_dht::overlay::OverlayConfig;
use emerge_sim::time::SimDuration;

fn main() -> Result<(), EmergeError> {
    // A modest DHT with 5% adversarial nodes.
    let mut system = SelfEmergingSystem::new(
        OverlayConfig {
            n_nodes: 256,
            malicious_fraction: 0.05,
            ..OverlayConfig::default()
        },
        2024,
    );

    println!("== self-emerging data: quickstart ==");
    println!(
        "overlay: {} nodes, {} marked malicious",
        system.substrate().n_nodes(),
        system.substrate().initial_malicious_count()
    );

    let mut handle = system.send(SendRequest {
        message: b"the merger closes on friday".to_vec(),
        emerging_period: SimDuration::from_ticks(10_000),
        scheme: SchemeKind::Share,
        target_resilience: 0.99,
        expected_malicious_rate: 0.05,
    })?;

    println!(
        "sent with scheme = {}, structure = {:?} (cost {} holders), release at {}",
        handle.params.kind(),
        handle.params.grid(),
        handle.params.node_cost(),
        handle.release_time
    );

    // Before tr: the DHT has not emitted the key.
    match system.receive(&handle) {
        Err(EmergeError::NotYetReleased { remaining_ticks }) => {
            println!("too early: {remaining_ticks} ticks before the key emerges");
        }
        other => panic!("expected NotYetReleased, got {other:?}"),
    }

    // Drive the protocol hop by hop to the release time.
    system.run_to_release(&mut handle);
    let report = handle.report.as_ref().expect("run populated the report");
    println!(
        "protocol run: {} messages through the DHT, released = {}",
        report.messages_sent,
        report.released.is_some()
    );

    let message = system.receive(&handle)?;
    println!(
        "emerged at {}: {:?}",
        handle.release_time,
        String::from_utf8_lossy(&message)
    );
    assert_eq!(message, b"the merger closes on friday");
    println!("quickstart OK");
    Ok(())
}
