//! Bonded release: timed emergence enforced by escrow, not hop deadlines.
//!
//! ```sh
//! cargo run --example bonded_release
//! ```
//!
//! Runs the contract-native emergence mode three times on the
//! smart-contract substrate:
//!
//! 1. an honest network — every holder reveals in the release block and
//!    collects bond + reward;
//! 2. an adversary bribing rational holders *below* the deviation cost —
//!    deviating would lose money, so the release still emerges cleanly;
//! 3. the same adversary with a bribe *above* the deviation cost — the
//!    holders take it, the quorum starves, and the contract slashes
//!    every withholder's bond.
//!
//! The printed ledger movements show the economics doing the work the
//! DHT schemes do with replication: misbehaviour is not prevented, it is
//! priced.

use emerge_contract::economy::HolderStrategy;
use emerge_contract::release::{run_bonded_release, BondedSpec};
use emerge_contract::substrate::{ContractConfig, ContractSubstrate};
use emerge_contract::ContractError;
use emerge_dht::overlay::OverlayConfig;
use emerge_sim::time::SimDuration;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SECRET: &[u8] = b"deed of gift: everything to the observatory";

fn run(label: &str, strategy: HolderStrategy) -> Result<(), ContractError> {
    let mut substrate = ContractSubstrate::build(
        ContractConfig::over(OverlayConfig {
            n_nodes: 256,
            malicious_fraction: 1.0, // every holder hears the bribe
            ..OverlayConfig::default()
        }),
        7,
    );
    let economy = *substrate.economy();
    let spec = BondedSpec {
        n: 12,
        m: 8,
        emerging_period: SimDuration::from_ticks(10_000),
        reveal_window_blocks: 1,
        strategy,
    };

    println!("== {label} ==");
    println!(
        "deposit: n = {}, m = {}, bond = {}, reveal reward = {}, deviation cost = {}",
        spec.n,
        spec.m,
        economy.bond,
        economy.reveal_reward,
        economy.deviation_cost()
    );

    let mut rng = StdRng::seed_from_u64(7);
    let report = run_bonded_release(&mut substrate, &spec, SECRET, &mut rng)?;

    println!(
        "reveals: {} on time, {} early, {} withheld ({} by churn)",
        report.on_time, report.early, report.withheld, report.died
    );
    match &report.released {
        Some((at, secret)) => println!("released at {at}: {:?}", String::from_utf8_lossy(secret)),
        None => println!(
            "release FAILED: {}",
            report
                .failure
                .as_ref()
                .map_or_else(|| "unknown".into(), ToString::to_string)
        ),
    }
    if let Some((at, _)) = &report.early_leak {
        println!("EARLY LEAK at {at}: a reveal quorum went public before tr");
    }
    println!(
        "ledger: {} slashed into the treasury, {} paid in rewards, escrow drained to {}",
        report.slashed,
        report.rewards_paid,
        substrate.ledger().escrow()
    );
    println!();
    Ok(())
}

fn main() -> Result<(), ContractError> {
    run("honest network", HolderStrategy::Compliant)?;

    let cheap = HolderStrategy::Rational {
        withhold_bribe: 100, // < bond + reward: deviation loses money
        early_reveal_bribe: 100,
    };
    run("bribe below the deviation cost", cheap)?;

    let rich = HolderStrategy::Rational {
        withhold_bribe: 500, // > bond + reward: the bribe wins
        early_reveal_bribe: 0,
    };
    run("bribe above the deviation cost", rich)?;

    println!(
        "(The defence is the bond size: raise it past the bribe and the\n\
         third run collapses back into the first — see the contract\n\
         backend section of the README.)"
    );
    Ok(())
}
