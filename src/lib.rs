//! # self-emerging-data
//!
//! Umbrella crate for the reproduction of *"Timed-release of Self-emerging
//! Data using Distributed Hash Tables"* (Li & Palanisamy, ICDCS 2017).
//!
//! This facade re-exports the workspace crates so applications can depend
//! on a single package:
//!
//! * [`core`] — the four key-routing schemes, analysis, Monte-Carlo
//!   evaluation and the high-level sender/receiver API
//! * [`dht`] — the Kademlia-style DHT substrate
//! * [`contract`] — the smart-contract release layer: block clock, bonded
//!   commit/reveal escrow, holder economy, and the contract-native bonded
//!   release mode
//! * [`sim`] — the deterministic discrete-event engine
//! * [`crypto`] — the from-scratch cryptographic substrate
//! * [`cloud`] — the encrypted blob store
//! * [`obs`] — the observability layer: mergeable metrics, span/event
//!   tracing, profiling hooks
//! * [`faults`] — the deterministic fault plane: seeded fault plans,
//!   injectors and the retry/timeout/hedge recovery policies
//!
//! See `examples/quickstart.rs` for a complete walk-through, and the
//! `emerge-bench` crate for the binaries that regenerate every figure of
//! the paper's evaluation section.

pub use emerge_cloud as cloud;
pub use emerge_contract as contract;
pub use emerge_core as core;
pub use emerge_crypto as crypto;
pub use emerge_dht as dht;
pub use emerge_faults as faults;
pub use emerge_obs as obs;
pub use emerge_sim as sim;

pub use emerge_core::emergence::{SelfEmergingSystem, SendRequest};
pub use emerge_core::{EmergeError, SchemeKind, SchemeParams};
