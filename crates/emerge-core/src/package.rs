//! Package generation (Section III's "package generation scheme").
//!
//! Builds the actual byte-level packages the sender hands to the first
//! column of holders at `ts`:
//!
//! * **Keyed schemes** (disjoint/joint): one onion per row whose layer `j`
//!   is sealed with the column key `K_j`; the keys themselves are
//!   pre-assigned to the column holders at `ts` (that is the scheme's
//!   defining weakness under churn). Layer payloads carry the next-hop
//!   addresses.
//! * **Share scheme**: a flat [`SharePackage`] (**format v2**) — one
//!   segment per column, each segment holding that column's `n`
//!   row-key-sealed headers and sealed *once* under a bundle key — plus a
//!   separate core onion sealed with per-column core keys and processed
//!   by the first `k` rows. Header payloads embed the shares each holder
//!   must forward to the next column.
//!
//! ## The flat segment table (format v2)
//!
//! ```text
//! SharePackage := u8 version (= 2) ‖ segment table (u16 count = l)
//!   segment 0 :  headers[0..n]                      (plaintext table)
//!   segment 1 :  AEAD_{C_0}( headers[0..n] )
//!   segment 2 :  AEAD_{C_1}( headers[0..n] )
//!   …
//!   segment l-1: AEAD_{C_{l-2}}( headers[0..n] )
//!
//!   headers[r] of column j := AEAD_{K_{r,j}}( ShareLayerPayload )
//!   payload of column j < l-1 carries: next hops, row-key shares,
//!     core-key share, and the bundle key C_j that opens segment j+1.
//! ```
//!
//! The predecessor format (v1, kept as the `legacy` test/bench oracle)
//! nested the columns: column `j`'s bundle contained the *sealed* bundle
//! of column `j+1`, so sealing the package re-encrypted every deeper
//! column's bytes once per enclosing column — `O(l²·n)` AEAD byte volume
//! for an `O(l·n)` payload. Flatness fixes the volume without weakening
//! the scheme, because the nesting never carried the security argument:
//! what stops a column-`j` holder from reading ahead is that segment
//! `j+1` is sealed under `C_j`, and `C_j` only reaches the holder inside
//! its own row-key-sealed header — whose row key `K_{r,j}` is itself
//! delivered just-in-time as Shamir shares from column `j-1`. The
//! one-hop-ahead key-release chain is preserved verbatim; each column's
//! bytes are simply sealed once instead of `j` times, and the executor
//! forwards the remaining still-sealed segments instead of re-wrapped
//! nests. Same confidentiality and ordering invariant, `O(l·n)` seal and
//! open volume, and the `n`-wide transit redundancy of Figure 5 (every
//! holder of a column carries the same blob) is untouched.
//!
//! All keys derive from the sender's seed via HKDF labels, so package
//! generation is deterministic given the seed. Decrypted header payloads,
//! Shamir share values and key schedules are bit-identical between v1
//! and v2 — only the sealing topology changed — which is what the
//! cross-format oracle tests in this module and in
//! [`crate::protocol`] pin down.

use crate::config::SchemeParams;
use crate::error::EmergeError;
use crate::path::PathPlan;
use emerge_crypto::hkdf::Hkdf;
use emerge_crypto::keys::{KeyShare, SymmetricKey};
use emerge_crypto::onion::build_onion;
use emerge_crypto::shamir;
use emerge_crypto::wire::{Reader, Writer};
use emerge_crypto::CryptoError;
use emerge_dht::id::{NodeId, ID_LEN};
use emerge_obs::metrics::CounterId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::collections::HashMap;

/// Instrumented seal hook: total AEAD plaintext bytes sealed by the
/// share-packaging code (headers, segments, legacy nested bundles),
/// recorded into the thread's `emerge-obs` collector. Drives the
/// seal-volume regression test (v2 must be `Θ(l·n)`), the
/// `share_package_seal_bytes` measurement in `crypto_baseline`, and the
/// per-phase `trial.package_build.sealed_bytes` attribution of
/// `montecarlo_baseline --profile`.
pub static SEALED_BYTES: CounterId = CounterId::new("package.seal.bytes");

/// Every AEAD seal in this module (headers, segments, legacy nested
/// bundles) reports its plaintext length here.
fn record_sealed(plaintext_len: usize) {
    SEALED_BYTES.add(plaintext_len as u64);
}

/// Returns the total AEAD plaintext bytes sealed by share packaging
/// since the previous call, and resets the counter — take-semantics over
/// the [`SEALED_BYTES`] metric in the current thread's `emerge-obs`
/// collector (always 0 when no collector is installed).
///
/// Install a collector, then call this immediately before and read it
/// immediately after a [`build_share_packages`] call to attribute the
/// volume to that call.
pub fn take_sealed_byte_count() -> u64 {
    SEALED_BYTES.take()
}

/// Discriminates the four derived-key families in [`DerivedKeys`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum KeyKind {
    Column,
    Core,
    Row,
    Bundle,
}

impl KeyKind {
    fn prefix(self) -> &'static str {
        match self {
            KeyKind::Column => "column-key",
            KeyKind::Core => "core-key",
            KeyKind::Row => "row-key",
            KeyKind::Bundle => "bundle-key",
        }
    }
}

/// Memoized HKDF derivations of one send operation.
///
/// Package generation asks for the same keys at several call sites —
/// splitting a row key into shares and sealing that row's header are
/// independent requests for `K_{r,j}`, and the builder, the executor
/// test paths and the delivered `col0` material all re-ask. Each label
/// is HKDF-derived exactly once per [`KeySchedule`]; later requests are
/// a hash-map hit.
#[derive(Debug, Clone, Default)]
struct DerivedKeys {
    keys: HashMap<(KeyKind, usize, usize), SymmetricKey>,
}

/// Longest label: `row-key` plus two `/`-prefixed 20-digit indices.
const MAX_LABEL: usize = 64;

/// Stack-buffer writer for derivation labels like `row-key/3/7`.
/// Byte-identical to the `format!` it replaces, without the per-call
/// heap allocation.
struct LabelWriter {
    buf: [u8; MAX_LABEL],
    len: usize,
}

impl LabelWriter {
    fn new(prefix: &'static str) -> Self {
        let mut w = LabelWriter {
            buf: [0; MAX_LABEL],
            len: 0,
        };
        w.buf[..prefix.len()].copy_from_slice(prefix.as_bytes());
        w.len = prefix.len();
        w
    }

    /// Appends `/` followed by `value` in decimal, exactly as
    /// `format!("/{value}")` renders it.
    fn push_segment(&mut self, value: usize) {
        self.buf[self.len] = b'/';
        self.len += 1;
        let mut digits = [0u8; 20];
        let mut i = digits.len();
        let mut v = value;
        loop {
            i -= 1;
            // LINT-WAIVER(wire): v % 10 is always a single decimal digit
            digits[i] = b'0' + (v % 10) as u8;
            v /= 10;
            if v == 0 {
                break;
            }
        }
        let d = &digits[i..];
        self.buf[self.len..self.len + d.len()].copy_from_slice(d);
        self.len += d.len();
    }

    fn as_bytes(&self) -> &[u8] {
        &self.buf[..self.len]
    }
}

/// Deterministic key derivation for a send operation.
///
/// All keys derive from the sender's seed via HKDF labels; each label is
/// derived once and memoized in a `DerivedKeys` cache, so repeated
/// requests (the share scheme asks for every row key twice: once to
/// split, once to seal) cost a lookup, not an HKDF run.
#[derive(Debug, Clone)]
pub struct KeySchedule {
    seed: SymmetricKey,
    /// Prepared HKDF expander over the seed: `hk.expand(label)` is
    /// `seed.derive(label)` with the HMAC keying paid once per schedule
    /// instead of once per derivation.
    hk: Hkdf,
    cache: RefCell<DerivedKeys>,
}

impl KeySchedule {
    /// Creates a schedule from the sender's seed.
    pub fn new(seed: SymmetricKey) -> Self {
        let hk = Hkdf::from_prk(*seed.as_bytes());
        KeySchedule {
            seed,
            hk,
            cache: RefCell::new(DerivedKeys::default()),
        }
    }

    /// Derives (or fetches) the key for `(kind, row, col)`; `row` is only
    /// part of the label for [`KeyKind::Row`].
    fn derived(&self, kind: KeyKind, row: usize, col: usize) -> SymmetricKey {
        if let Some(key) = self.cache.borrow().keys.get(&(kind, row, col)) {
            return key.clone();
        }
        let mut label = LabelWriter::new(kind.prefix());
        if kind == KeyKind::Row {
            label.push_segment(row);
        }
        label.push_segment(col);
        let key = SymmetricKey::from_bytes(self.hk.expand_key(label.as_bytes()));
        self.cache
            .borrow_mut()
            .keys
            .insert((kind, row, col), key.clone());
        key
    }

    /// Column key `K_j` (keyed schemes) — shared by all rows of column
    /// `col`.
    pub fn column_key(&self, col: usize) -> SymmetricKey {
        self.derived(KeyKind::Column, 0, col)
    }

    /// Core-onion key for column `col` (share scheme).
    pub fn core_key(&self, col: usize) -> SymmetricKey {
        self.derived(KeyKind::Core, 0, col)
    }

    /// Row-onion key `K_{r,j}` (share scheme).
    pub fn row_key(&self, row: usize, col: usize) -> SymmetricKey {
        self.derived(KeyKind::Row, row, col)
    }

    /// Bundle key `C_j` protecting the inner bundle of column `col`
    /// (share scheme). Revealed inside every column-`col` header so any
    /// one honest holder can unwrap and relay the next bundle.
    pub fn bundle_key(&self, col: usize) -> SymmetricKey {
        self.derived(KeyKind::Bundle, 0, col)
    }

    /// Deterministic RNG for the Shamir polynomials.
    fn shamir_rng(&self) -> StdRng {
        StdRng::from_seed(self.seed.derive(b"shamir-polynomials").into_bytes())
    }

    /// Rebinds the schedule to a new seed, reusing the memo table's
    /// storage: equivalent to `*self = KeySchedule::new(seed)` but the
    /// map keeps its capacity, so a warm per-shard schedule re-derives
    /// without allocating.
    pub fn reset(&mut self, seed: SymmetricKey) {
        self.hk = Hkdf::from_prk(*seed.as_bytes());
        self.seed = seed;
        self.cache.borrow_mut().keys.clear();
    }
}

/// Per-hop payload of a keyed-scheme onion layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyedLayerPayload {
    /// Addresses of the holders to forward the remaining onion to
    /// (empty at the terminal column: next stop is the receiver).
    pub next_hops: Vec<NodeId>,
}

impl KeyedLayerPayload {
    /// Serializes the payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        // LINT-WAIVER(wire): hop counts are bounded by MAX_SHARES = 255, far below u16::MAX
        w.put_u16(self.next_hops.len() as u16);
        for id in &self.next_hops {
            w.put_raw(id.as_bytes());
        }
        w.into_bytes()
    }

    /// Parses a payload.
    ///
    /// # Errors
    ///
    /// Returns a [`CryptoError`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let mut r = Reader::new(bytes);
        let count = r.get_u16()? as usize;
        let mut next_hops = Vec::with_capacity(count);
        for _ in 0..count {
            let raw = r.get_raw(ID_LEN)?;
            let mut id = [0u8; ID_LEN];
            id.copy_from_slice(raw);
            next_hops.push(NodeId::from_bytes(id));
        }
        r.expect_end()?;
        Ok(KeyedLayerPayload { next_hops })
    }
}

/// Packages for the disjoint/joint schemes.
#[derive(Debug, Clone)]
pub struct KeyedPackages {
    /// One onion per row (`rows` entries).
    pub onions: Vec<Vec<u8>>,
    /// `K_j` per column, pre-assigned to every holder of that column at
    /// `ts`.
    pub column_keys: Vec<SymmetricKey>,
}

/// Builds the keyed-scheme packages.
///
/// For the disjoint scheme each row's onion routes along its own row; for
/// the joint scheme every layer lists the entire next column, producing
/// the column-complete forwarding pattern of Figure 4.
///
/// # Errors
///
/// Returns [`EmergeError::InvalidParameters`] for non-keyed `params`.
pub fn build_keyed_packages(
    plan: &PathPlan,
    params: &SchemeParams,
    schedule: &KeySchedule,
    secret: &[u8],
) -> Result<KeyedPackages, EmergeError> {
    let joint = match params {
        SchemeParams::Disjoint { .. } => false,
        SchemeParams::Joint { .. } => true,
        _ => {
            return Err(EmergeError::InvalidParameters(
                "keyed packages require the disjoint or joint scheme".into(),
            ))
        }
    };
    let (rows, cols) = (plan.rows, plan.cols);
    let column_keys: Vec<SymmetricKey> = (0..cols).map(|c| schedule.column_key(c)).collect();

    let mut onions = Vec::with_capacity(rows);
    for row in 0..rows {
        let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(cols);
        for col in 0..cols {
            let next_hops = if col + 1 == cols {
                Vec::new()
            } else if joint {
                (0..rows)
                    .map(|r| plan.targets[r * cols + col + 1])
                    .collect()
            } else {
                vec![plan.targets[row * cols + col + 1]]
            };
            payloads.push(KeyedLayerPayload { next_hops }.to_bytes());
        }
        let layers: Vec<(&SymmetricKey, &[u8])> = column_keys
            .iter()
            .zip(payloads.iter())
            .map(|(k, p)| (k, p.as_slice()))
            .collect();
        onions.push(build_onion(&layers, secret));
    }

    Ok(KeyedPackages {
        onions,
        column_keys,
    })
}

/// Per-holder payload inside a column bundle header.
#[derive(Debug, Clone, PartialEq)]
pub struct ShareLayerPayload {
    /// Next-column holder addresses (all `n` rows; empty at the last
    /// column).
    pub next_hops: Vec<NodeId>,
    /// Shares (all with this row's index) of each next-column row key,
    /// ordered by target row. Empty at the last column.
    pub row_key_shares: Vec<KeyShare>,
    /// This row's share of the next column's core key.
    pub core_key_share: Option<KeyShare>,
    /// The bundle key `C_j` unlocking this column's inner bundle (absent
    /// at the last column).
    pub bundle_key: Option<SymmetricKey>,
}

impl ShareLayerPayload {
    /// Exact serialized size, for pre-sizing buffers.
    fn encoded_len(&self) -> usize {
        let shares: usize = self
            .row_key_shares
            .iter()
            .map(|s| 1 + 4 + s.data.len())
            .sum();
        2 + self.next_hops.len() * ID_LEN
            + 2
            + shares
            + 1
            + self
                .core_key_share
                .as_ref()
                .map_or(0, |s| 1 + 4 + s.data.len())
            + 1
            + if self.bundle_key.is_some() { 32 } else { 0 }
    }

    /// Serializes the payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(self.encoded_len());
        self.encode_into(&mut w);
        w.into_bytes()
    }

    /// Serializes the payload into `w` (a reusable scratch buffer in the
    /// package builder's hot loop).
    fn encode_into(&self, w: &mut Writer) {
        // LINT-WAIVER(wire): hop counts are bounded by MAX_SHARES = 255, far below u16::MAX
        w.put_u16(self.next_hops.len() as u16);
        for id in &self.next_hops {
            w.put_raw(id.as_bytes());
        }
        // LINT-WAIVER(wire): share counts are bounded by MAX_SHARES = 255, far below u16::MAX
        w.put_u16(self.row_key_shares.len() as u16);
        for s in &self.row_key_shares {
            w.put_u8(s.index);
            w.put_bytes(&s.data);
        }
        match &self.core_key_share {
            Some(s) => {
                w.put_u8(1).put_u8(s.index);
                w.put_bytes(&s.data);
            }
            None => {
                w.put_u8(0);
            }
        }
        match &self.bundle_key {
            Some(k) => {
                w.put_u8(1).put_raw(k.as_bytes());
            }
            None => {
                w.put_u8(0);
            }
        }
    }

    /// Parses a payload.
    ///
    /// # Errors
    ///
    /// Returns a [`CryptoError`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let mut r = Reader::new(bytes);
        let hop_count = r.get_u16()? as usize;
        let mut next_hops = Vec::with_capacity(hop_count);
        for _ in 0..hop_count {
            let raw = r.get_raw(ID_LEN)?;
            let mut id = [0u8; ID_LEN];
            id.copy_from_slice(raw);
            next_hops.push(NodeId::from_bytes(id));
        }
        let share_count = r.get_u16()? as usize;
        let mut row_key_shares = Vec::with_capacity(share_count);
        for _ in 0..share_count {
            let index = r.get_u8()?;
            let data = r.get_bytes()?.to_vec();
            row_key_shares.push(KeyShare::new(index, data));
        }
        let core_key_share = match r.get_u8()? {
            0 => None,
            1 => {
                let index = r.get_u8()?;
                let data = r.get_bytes()?.to_vec();
                Some(KeyShare::new(index, data))
            }
            _ => return Err(CryptoError::Malformed("bad core-share flag")),
        };
        let bundle_key = match r.get_u8()? {
            0 => None,
            1 => {
                let raw = r.get_raw(32)?;
                let mut kb = [0u8; 32];
                kb.copy_from_slice(raw);
                Some(SymmetricKey::from_bytes(kb))
            }
            _ => return Err(CryptoError::Malformed("bad bundle-key flag")),
        };
        r.expect_end()?;
        Ok(ShareLayerPayload {
            next_hops,
            row_key_shares,
            core_key_share,
            bundle_key,
        })
    }
}

/// Writes the wire form of a *terminal* (last-column) header payload: no
/// next hops, no shares, no keys. Byte-identical to encoding an empty
/// [`ShareLayerPayload`] (pinned by test).
fn encode_terminal_payload(w: &mut Writer) {
    w.put_u16(0); // next hops
    w.put_u16(0); // row-key shares
    w.put_u8(0); // no core share
    w.put_u8(0); // no bundle key
}

/// Writes the wire form of a non-terminal header payload straight from
/// the builder's share matrix — the hot-loop twin of
/// [`ShareLayerPayload::encode_into`] that borrows everything instead of
/// cloning `n` key shares per header. Byte-identical output (pinned by
/// test).
///
/// `row_shares[target_row][row]` is sender-row `row`'s share of the
/// next-column key of `target_row`.
fn encode_payload_borrowed(
    w: &mut Writer,
    next_hops: &[NodeId],
    row_shares: &[Vec<KeyShare>],
    row: usize,
    core_share: &KeyShare,
    bundle_key: &SymmetricKey,
) {
    // LINT-WAIVER(wire): hop counts are bounded by MAX_SHARES = 255, far below u16::MAX
    w.put_u16(next_hops.len() as u16);
    for id in next_hops {
        w.put_raw(id.as_bytes());
    }
    // LINT-WAIVER(wire): share counts are bounded by MAX_SHARES = 255, far below u16::MAX
    w.put_u16(row_shares.len() as u16);
    for per_target in row_shares {
        let s = &per_target[row];
        w.put_u8(s.index);
        w.put_bytes(&s.data);
    }
    w.put_u8(1).put_u8(core_share.index);
    w.put_bytes(&core_share.data);
    w.put_u8(1).put_raw(bundle_key.as_bytes());
}

/// The flat share package (format v2): `l` column segments, delivered in
/// full to every first-column holder at `ts`.
///
/// `segments[0]` is column 0's plaintext header table (those holders' row
/// keys are handed over directly at `ts`, exactly like v1's outermost
/// bundle travelled unsealed); `segments[j]` for `j ≥ 1` is column `j`'s
/// header table sealed **once** under the bundle key `C_{j-1}`, which
/// column-`j-1` headers release one hop ahead of use.
///
/// Every holder of a column carries the same package tail; any one honest
/// holder suffices to relay it onward, which gives the share scheme its
/// `n`-wide transit redundancy (the paper's "three remaining onions"
/// replication in Figure 5, in linear instead of exponential size).
#[derive(Debug, Clone, PartialEq)]
pub struct SharePackage {
    /// `segments[col]` is that column's header table: plaintext at
    /// `col == 0`, sealed under `C_{col-1}` otherwise. Each decoded
    /// header opens with `K_{r,col}` and parses to a
    /// [`ShareLayerPayload`].
    pub segments: Vec<Vec<u8>>,
}

/// Wire version tag of [`SharePackage`] (the flat segment-table format).
pub const SHARE_FORMAT_VERSION: u8 = 2;

impl SharePackage {
    /// Serializes the package: the version byte followed by the
    /// length-prefixed segment table.
    pub fn to_bytes(&self) -> Vec<u8> {
        let total: usize = self.segments.iter().map(|s| 4 + s.len()).sum();
        let mut w = Writer::with_capacity(1 + 2 + total);
        w.put_u8(SHARE_FORMAT_VERSION);
        w.put_table(&self.segments);
        w.into_bytes()
    }

    /// Parses a package.
    ///
    /// # Errors
    ///
    /// Returns a [`CryptoError`] on a wrong version tag, an empty segment
    /// table, truncation, or trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let mut r = Reader::new(bytes);
        if r.get_u8()? != SHARE_FORMAT_VERSION {
            return Err(CryptoError::Malformed("unsupported share-package version"));
        }
        let segments = r.get_table()?;
        if segments.is_empty() {
            return Err(CryptoError::Malformed("share package with no segments"));
        }
        r.expect_end()?;
        Ok(SharePackage { segments })
    }
}

/// Packages for the key-share routing scheme (flat format v2).
#[derive(Debug, Clone)]
pub struct SharePackages {
    /// The serialized flat [`SharePackage`] (segment table), delivered to
    /// every first-column holder at `ts`.
    pub package: Vec<u8>,
    /// The core onion (processed by rows `0..k`).
    pub core_onion: Vec<u8>,
    /// Column-0 row keys, handed to each first-column holder directly at
    /// `ts` (no storage period, so no sharing needed — Figure 5's `K_1`,
    /// `K_{3,1}`).
    pub col0_row_keys: Vec<SymmetricKey>,
    /// Column-0 core key for the onion rows.
    pub col0_core_key: SymmetricKey,
}

impl Default for SharePackages {
    /// An empty package set, as the reusable output slot of
    /// [`build_share_packages_into`] (the zero key is overwritten by
    /// every build).
    fn default() -> Self {
        SharePackages {
            package: Vec::new(),
            core_onion: Vec::new(),
            col0_row_keys: Vec::new(),
            col0_core_key: SymmetricKey::from_bytes([0u8; 32]),
        }
    }
}

/// Domain-separation label for format-v2 header seals.
const HEADER_AAD: &[u8] = b"emerge-share-header-v2";
/// Domain-separation label for format-v2 segment seals.
const SEGMENT_AAD: &[u8] = b"emerge-share-segment-v2";

/// Fixed nonce for format-v2 header seals.
///
/// Every row key `K_{r,j}` is an HKDF-derived single-use value that seals
/// exactly one header, so a constant nonce can never repeat a
/// `(key, nonce)` pair — the property RFC 8439 actually requires. v1
/// spent an HKDF-HMAC run per seal *and* per open deriving a nonce from
/// the key; at a few hundred AEAD operations per protocol run that was a
/// measurable slice of the trial, bought no security, and is dropped in
/// v2. (Role separation lives in the AAD labels and in the nonce bytes
/// themselves.)
const HEADER_NONCE: [u8; 12] = *b"emerge-hdr-2";
/// Fixed nonce for format-v2 segment seals (bundle keys `C_j` are
/// likewise single-use: each seals exactly one segment).
const SEGMENT_NONCE: [u8; 12] = *b"emerge-seg-2";

/// Seals one header under a row key.
fn seal_header(key: &SymmetricKey, payload: &[u8]) -> Vec<u8> {
    record_sealed(payload.len());
    emerge_crypto::aead::seal(key, &HEADER_NONCE, payload, HEADER_AAD)
}

/// Opens a header. Public so the protocol executor and tests share one
/// code path.
///
/// # Errors
///
/// Returns a [`CryptoError`] for a wrong key or tampered header.
pub fn open_header(key: &SymmetricKey, header: &[u8]) -> Result<ShareLayerPayload, CryptoError> {
    let plain = emerge_crypto::aead::open(key, &HEADER_NONCE, header, HEADER_AAD)?;
    ShareLayerPayload::from_bytes(&plain)
}

/// The subset of a header payload the protocol executor consumes.
///
/// The executor forwards by grid position, so the payload's next-hop
/// list (the largest field: `n` 20-byte addresses) is validated but
/// never materialized on this path.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutorPayload {
    /// Shares (all with this row's index) of each next-column row key,
    /// ordered by target row. Empty at the last column.
    pub row_key_shares: Vec<KeyShare>,
    /// This row's share of the next column's core key.
    pub core_key_share: Option<KeyShare>,
    /// The bundle key `C_j` opening the next column's segment (absent at
    /// the last column).
    pub bundle_key: Option<SymmetricKey>,
}

/// Opens a header for the executor: same AEAD and wire format as
/// [`open_header`], same errors on any malformed byte, but the next-hop
/// list is length-checked and skipped instead of copied out (pinned
/// equal to [`open_header`]'s projection by test).
///
/// # Errors
///
/// Returns a [`CryptoError`] for a wrong key, a tampered header, or a
/// malformed payload.
pub fn open_header_for_executor(
    key: &SymmetricKey,
    header: &[u8],
) -> Result<ExecutorPayload, CryptoError> {
    let plain = emerge_crypto::aead::open(key, &HEADER_NONCE, header, HEADER_AAD)?;
    let mut r = Reader::new(&plain);
    let hop_count = r.get_u16()? as usize;
    r.get_raw(hop_count * ID_LEN)?;
    let share_count = r.get_u16()? as usize;
    let mut row_key_shares = Vec::with_capacity(share_count.min(r.remaining() / 5 + 1));
    for _ in 0..share_count {
        let index = r.get_u8()?;
        let data = r.get_bytes()?.to_vec();
        row_key_shares.push(KeyShare::new(index, data));
    }
    let core_key_share = match r.get_u8()? {
        0 => None,
        1 => {
            let index = r.get_u8()?;
            let data = r.get_bytes()?.to_vec();
            Some(KeyShare::new(index, data))
        }
        _ => return Err(CryptoError::Malformed("bad core-share flag")),
    };
    let bundle_key = match r.get_u8()? {
        0 => None,
        1 => {
            let raw = r.get_raw(32)?;
            let mut kb = [0u8; 32];
            kb.copy_from_slice(raw);
            Some(SymmetricKey::from_bytes(kb))
        }
        _ => return Err(CryptoError::Malformed("bad bundle-key flag")),
    };
    r.expect_end()?;
    Ok(ExecutorPayload {
        row_key_shares,
        core_key_share,
        bundle_key,
    })
}

/// Encodes a column's header table — a segment's plaintext (and the
/// final wire form of the unsealed column-0 segment).
fn encode_segment(headers: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = headers.iter().map(|h| 4 + h.len()).sum();
    let mut w = Writer::with_capacity(2 + total);
    w.put_table(headers);
    w.into_bytes()
}

/// Decodes a column's header table (the plaintext column-0 segment, or
/// the output of [`open_segment`] on a sealed one).
///
/// # Errors
///
/// Returns a [`CryptoError`] on truncation or trailing bytes.
pub fn decode_segment(bytes: &[u8]) -> Result<Vec<Vec<u8>>, CryptoError> {
    let mut r = Reader::new(bytes);
    let headers = r.get_table()?;
    r.expect_end()?;
    Ok(headers)
}

/// A decoded header table backed by its single segment buffer: headers
/// are spans into `blob` instead of per-header copies. This is what the
/// protocol executor holds and forwards — decoding a 40-row segment costs
/// two allocations, not forty-two.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SegmentHeaders {
    blob: Vec<u8>,
    /// `(offset, len)` of each header inside `blob`.
    spans: Vec<(u32, u32)>,
}

impl SegmentHeaders {
    /// Number of headers in the table.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the table has no headers.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The sealed header of `row`, if the table has that many rows.
    pub fn get(&self, row: usize) -> Option<&[u8]> {
        let &(off, len) = self.spans.get(row)?;
        Some(&self.blob[off as usize..off as usize + len as usize])
    }
}

/// Decodes a header table into spans over its backing buffer — the same
/// wire format as [`decode_segment`], without copying each header out.
///
/// # Errors
///
/// Returns a [`CryptoError`] on truncation or trailing bytes.
pub fn decode_segment_headers(bytes: Vec<u8>) -> Result<SegmentHeaders, CryptoError> {
    let spans = {
        let mut r = Reader::new(&bytes);
        let count = r.get_u16()? as usize;
        let mut spans = Vec::with_capacity(count.min(r.remaining() / 4 + 1));
        for _ in 0..count {
            let len = r.get_u32()?;
            // LINT-WAIVER(wire): the reader position is bounded by the u32-framed package length
            let start = r.position() as u32;
            r.get_raw(len as usize)?;
            spans.push((start, len));
        }
        r.expect_end()?;
        spans
    };
    Ok(SegmentHeaders { blob: bytes, spans })
}

/// Opens a sealed column segment into a span-backed header table (the
/// protocol executor's path; see [`open_segment`] for the copying form).
///
/// # Errors
///
/// Identical to [`open_segment`].
pub fn open_segment_headers(
    key: &SymmetricKey,
    sealed: &[u8],
) -> Result<SegmentHeaders, CryptoError> {
    let plain = emerge_crypto::aead::open(key, &SEGMENT_NONCE, sealed, SEGMENT_AAD)?;
    decode_segment_headers(plain)
}

/// Parses the outer segment table of a serialized [`SharePackage`] into
/// `(offset, len)` spans over `bytes`, reusing `spans`' capacity.
///
/// Pooled counterpart of [`SharePackage::from_bytes`] for the executor
/// hot path: the segments stay in the caller's buffer instead of being
/// copied into per-segment `Vec`s.
///
/// # Errors
///
/// Identical to [`SharePackage::from_bytes`].
pub fn parse_share_segment_spans(
    bytes: &[u8],
    spans: &mut Vec<(u32, u32)>,
) -> Result<(), CryptoError> {
    spans.clear();
    let mut r = Reader::new(bytes);
    if r.get_u8()? != SHARE_FORMAT_VERSION {
        return Err(CryptoError::Malformed("unsupported share-package version"));
    }
    let count = r.get_u16()? as usize;
    for _ in 0..count {
        let len = r.get_u32()?;
        // LINT-WAIVER(wire): the reader position is bounded by the u32-framed package length
        let start = r.position() as u32;
        r.get_raw(len as usize)?;
        spans.push((start, len));
    }
    if spans.is_empty() {
        return Err(CryptoError::Malformed("share package with no segments"));
    }
    r.expect_end()?;
    Ok(())
}

/// Parses `blob` as a header table, writing spans into `spans`.
fn parse_header_spans(blob: &[u8], spans: &mut Vec<(u32, u32)>) -> Result<(), CryptoError> {
    spans.clear();
    let mut r = Reader::new(blob);
    let count = r.get_u16()? as usize;
    for _ in 0..count {
        let len = r.get_u32()?;
        // LINT-WAIVER(wire): the reader position is bounded by the u32-framed package length
        let start = r.position() as u32;
        r.get_raw(len as usize)?;
        spans.push((start, len));
    }
    r.expect_end()?;
    Ok(())
}

/// Decodes a plaintext header table into a reusable [`SegmentHeaders`],
/// recycling both its blob and span buffers.
///
/// # Errors
///
/// Identical to [`decode_segment_headers`].
pub fn decode_segment_headers_into(
    bytes: &[u8],
    out: &mut SegmentHeaders,
) -> Result<(), CryptoError> {
    out.blob.clear();
    out.blob.extend_from_slice(bytes);
    parse_header_spans(&out.blob, &mut out.spans)
}

/// Opens a sealed column segment into a reusable [`SegmentHeaders`] —
/// the allocation-free counterpart of [`open_segment_headers`].
///
/// # Errors
///
/// Identical to [`open_segment_headers`]. On error `out` is left with an
/// empty span table.
pub fn open_segment_headers_into(
    key: &SymmetricKey,
    sealed: &[u8],
    out: &mut SegmentHeaders,
) -> Result<(), CryptoError> {
    out.spans.clear();
    out.blob.clear();
    out.blob.extend_from_slice(sealed);
    emerge_crypto::aead::open_in_place(key, &SEGMENT_NONCE, &mut out.blob, SEGMENT_AAD)?;
    parse_header_spans(&out.blob, &mut out.spans)
}

/// Opens a sealed header into a reusable plaintext buffer (the pooled
/// counterpart of the decrypt step inside [`open_header_for_executor`]);
/// parse the result with [`visit_executor_payload`].
///
/// # Errors
///
/// Returns a [`CryptoError`] for a wrong key or tampered header.
pub fn open_header_into(
    key: &SymmetricKey,
    header: &[u8],
    plain: &mut Vec<u8>,
) -> Result<(), CryptoError> {
    plain.clear();
    plain.extend_from_slice(header);
    emerge_crypto::aead::open_in_place(key, &HEADER_NONCE, plain, HEADER_AAD)
}

/// The non-share fields of an executor payload: the core-key share (as
/// `(index, bytes)`) and the next column's bundle key.
pub type ExecutorPayloadTail<'a> = (Option<(u8, &'a [u8])>, Option<SymmetricKey>);

/// Walks an opened executor payload without copying: `on_share` is called
/// once per next-column row-key share, in target-row order, with
/// `(target_row, share_index, share_bytes)`. Returns the core-key share
/// and the bundle key, mirroring [`open_header_for_executor`]'s
/// projection field for field.
///
/// # Errors
///
/// Identical to the parse step of [`open_header_for_executor`].
pub fn visit_executor_payload<'a>(
    plain: &'a [u8],
    mut on_share: impl FnMut(usize, u8, &'a [u8]),
) -> Result<ExecutorPayloadTail<'a>, CryptoError> {
    let mut r = Reader::new(plain);
    let hop_count = r.get_u16()? as usize;
    r.get_raw(hop_count * ID_LEN)?;
    let share_count = r.get_u16()? as usize;
    for target in 0..share_count {
        let index = r.get_u8()?;
        let data = r.get_bytes()?;
        on_share(target, index, data);
    }
    let core_key_share = match r.get_u8()? {
        0 => None,
        1 => {
            let index = r.get_u8()?;
            let data = r.get_bytes()?;
            Some((index, data))
        }
        _ => return Err(CryptoError::Malformed("bad core-share flag")),
    };
    let bundle_key = match r.get_u8()? {
        0 => None,
        1 => {
            let raw = r.get_raw(32)?;
            let mut kb = [0u8; 32];
            kb.copy_from_slice(raw);
            Some(SymmetricKey::from_bytes(kb))
        }
        _ => return Err(CryptoError::Malformed("bad bundle-key flag")),
    };
    r.expect_end()?;
    Ok((core_key_share, bundle_key))
}

/// Seals a column's header table under its bundle key.
fn seal_segment(key: &SymmetricKey, headers: &[Vec<u8>]) -> Vec<u8> {
    let plain = encode_segment(headers);
    record_sealed(plain.len());
    emerge_crypto::aead::seal(key, &SEGMENT_NONCE, &plain, SEGMENT_AAD)
}

/// Opens a sealed column segment into its header table.
///
/// # Errors
///
/// Returns a [`CryptoError`] for a wrong key, a tampered segment, or a
/// plaintext that does not decode as a header table.
pub fn open_segment(key: &SymmetricKey, sealed: &[u8]) -> Result<Vec<Vec<u8>>, CryptoError> {
    let plain = emerge_crypto::aead::open(key, &SEGMENT_NONCE, sealed, SEGMENT_AAD)?;
    decode_segment(&plain)
}

/// Builds the share-scheme packages per Section III-D, in the flat
/// format v2.
///
/// The secret travels in a core onion sealed with per-column core keys;
/// routing metadata and the just-in-time key shares travel in the flat
/// [`SharePackage`] segment table, one independently sealed segment per
/// column, each segment holding that column's row-key-sealed headers.
/// Both the core keys and the row keys of column `j ≥ 1` are
/// `(m_j, n)`-shared and delivered one hop ahead of use.
///
/// Total AEAD seal volume is `Θ(l·n)` — each column's bytes are sealed
/// exactly once — versus the nested v1 format's `O(l²·n)`
/// (see `legacy::build_share_packages_v1`, the retained oracle).
/// Decrypted header payloads, share values and the key schedule are
/// bit-identical to v1's.
///
/// # Errors
///
/// Returns [`EmergeError::InvalidParameters`] for non-share `params` or
/// `n` beyond GF(256) sharing, and propagates [`EmergeError::Crypto`]
/// from the Shamir layer.
pub fn build_share_packages(
    plan: &PathPlan,
    params: &SchemeParams,
    schedule: &KeySchedule,
    secret: &[u8],
) -> Result<SharePackages, EmergeError> {
    let (_k, l, n, m) = match params {
        SchemeParams::Share { k, l, n, m } => (*k, *l, *n, m),
        _ => {
            return Err(EmergeError::InvalidParameters(
                "share packages require the share scheme".into(),
            ))
        }
    };
    if n > shamir::MAX_SHARES {
        return Err(EmergeError::InvalidParameters(format!(
            "wire-level GF(256) sharing supports at most {} rows, got {n} \
             (the analysis/Monte-Carlo engines have no such limit)",
            shamir::MAX_SHARES
        )));
    }
    debug_assert_eq!(plan.rows, n);
    debug_assert_eq!(plan.cols, l);

    let mut rng = schedule.shamir_rng();

    // Shares of every column's keys (columns 1..l): row_key_shares[col-1]
    // holds, for each target row r', the n shares of K_{r',col}; and
    // core_key_shares[col-1] the n shares of the core key of `col`.
    let mut row_key_shares: Vec<Vec<Vec<KeyShare>>> = Vec::with_capacity(l - 1);
    let mut core_key_shares: Vec<Vec<KeyShare>> = Vec::with_capacity(l - 1);
    for col in 1..l {
        let threshold = m[col - 1];
        // One slab split per column: all `n` row keys at once. Identical
        // shares and RNG stream to per-key splits (`split_many`'s pinned
        // contract), but the GF(256) kernels run over kilobyte slabs
        // instead of 32-byte keys.
        let keys: Vec<SymmetricKey> = (0..n).map(|r| schedule.row_key(r, col)).collect();
        let views: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes().as_slice()).collect();
        row_key_shares.push(shamir::split_many(&views, threshold, n, &mut rng)?);
        let core = schedule.core_key(col);
        core_key_shares.push(shamir::split(core.as_bytes(), threshold, n, &mut rng)?);
    }

    // Build the flat segment table, one independently sealed segment per
    // column. Forward order (the nesting that forced innermost-first
    // construction is gone); no serialized column is ever re-sealed.
    //
    // One scratch buffer serves every header payload serialization,
    // pre-sized to the non-terminal payload length: n next-hop IDs, n
    // 32-byte row-key shares, one core share, one bundle key. Payloads
    // are written straight from the share matrix (no per-header
    // `ShareLayerPayload` with its `n` cloned shares); the borrowed
    // encoder is pinned byte-identical to the struct encoder by test.
    let mut scratch = Writer::with_capacity(2 + n * ID_LEN + 2 + n * 37 + 38 + 33);
    let mut segments = Vec::with_capacity(l);
    for col in 0..l {
        let last = col + 1 == l;
        // Hoisted out of the row loop: one cache lookup per column
        // instead of one per header, and one next-hop list per column
        // instead of one per row.
        let bundle_key = (!last).then(|| schedule.bundle_key(col));
        let next_hops: Vec<NodeId> = if last {
            Vec::new()
        } else {
            (0..n).map(|r| plan.targets[r * l + col + 1]).collect()
        };
        let mut headers = Vec::with_capacity(n);
        if let Some(bk) = &bundle_key {
            for (row, core_share) in core_key_shares[col].iter().enumerate() {
                scratch.clear();
                encode_payload_borrowed(
                    &mut scratch,
                    &next_hops,
                    &row_key_shares[col],
                    row,
                    core_share,
                    bk,
                );
                headers.push(seal_header(&schedule.row_key(row, col), scratch.as_slice()));
            }
        } else {
            for row in 0..n {
                scratch.clear();
                encode_terminal_payload(&mut scratch);
                headers.push(seal_header(&schedule.row_key(row, col), scratch.as_slice()));
            }
        }
        if col == 0 {
            // Column 0 travels unsealed: its row keys are delivered
            // directly at `ts`.
            segments.push(encode_segment(&headers));
        } else {
            // Sealed once, under the key the previous column's headers
            // release one hop ahead.
            segments.push(seal_segment(&schedule.bundle_key(col - 1), &headers));
        }
    }
    let package = SharePackage { segments };

    // Core onion: sealed with the per-column core keys; payloads empty.
    let core_keys: Vec<SymmetricKey> = (0..l).map(|c| schedule.core_key(c)).collect();
    let empty: Vec<Vec<u8>> = vec![Vec::new(); l];
    let core_layers: Vec<(&SymmetricKey, &[u8])> = core_keys
        .iter()
        .zip(empty.iter())
        .map(|(k, p)| (k, p.as_slice()))
        .collect();
    let core_onion = build_onion(&core_layers, secret);

    Ok(SharePackages {
        package: package.to_bytes(),
        core_onion,
        col0_row_keys: (0..n).map(|r| schedule.row_key(r, 0)).collect(),
        col0_core_key: schedule.core_key(0),
    })
}

/// Writes the wire form of a non-terminal header payload straight from a
/// share slab — the pooled twin of [`encode_payload_borrowed`]. Share
/// `row` of every split carries index `row + 1`, so the encoded bytes
/// are identical to the `Vec<KeyShare>` path (pinned by the pooled
/// builder equivalence test).
fn encode_payload_slab(
    w: &mut Writer,
    next_hops: &[NodeId],
    row_shares: &shamir::ShareSlab,
    row: usize,
    core_share: &[u8],
    bundle_key: &SymmetricKey,
) {
    // LINT-WAIVER(wire): hop counts are bounded by MAX_SHARES = 255, far below u16::MAX
    w.put_u16(next_hops.len() as u16);
    for id in next_hops {
        w.put_raw(id.as_bytes());
    }
    // LINT-WAIVER(wire): row < n <= MAX_SHARES = 255, so row + 1 fits a u8
    let x = (row + 1) as u8;
    // LINT-WAIVER(wire): share counts are bounded by MAX_SHARES = 255, far below u16::MAX
    w.put_u16(row_shares.count() as u16);
    for target in 0..row_shares.count() {
        w.put_u8(x);
        w.put_bytes(row_shares.share(target, x));
    }
    w.put_u8(1).put_u8(x);
    w.put_bytes(core_share);
    w.put_u8(1).put_raw(bundle_key.as_bytes());
}

/// Reusable scratch for [`build_share_packages_into`]: the share slabs,
/// serialization buffers and key lists live here across trials, so a
/// warm builder performs zero heap allocations.
#[derive(Debug, Default)]
pub struct PackageScratch {
    /// Per-column row-key share slabs (columns `1..l`).
    row_slabs: Vec<shamir::ShareSlab>,
    /// Per-column core-key share slabs (columns `1..l`).
    core_slabs: Vec<shamir::ShareSlab>,
    /// Concatenated next-column row keys fed to the slab split.
    keys_flat: Vec<u8>,
    /// Header payload serialization scratch.
    payload: Writer,
    /// One sealed header.
    header: Vec<u8>,
    /// One column segment being assembled (and sealed in place).
    segment: Vec<u8>,
    /// Next-column hop addresses of the current column.
    next_hops: Vec<NodeId>,
    /// The per-column core keys for the core onion.
    core_keys: Vec<SymmetricKey>,
    /// Onion layer ping-pong buffer.
    onion_scratch: Vec<u8>,
}

impl PackageScratch {
    /// Creates an empty scratch; every buffer grows to its steady-state
    /// size on the first build and is then recycled.
    pub fn new() -> Self {
        Self::default()
    }
}

/// [`build_share_packages`] into caller-owned output and scratch
/// buffers: byte-identical packages (same key schedule, same Shamir RNG
/// stream, same seals — pinned by test), but a warm call allocates
/// nothing. This is the Monte-Carlo trial loop's builder; the allocating
/// form remains the public one-shot API and the equivalence oracle.
///
/// # Errors
///
/// Identical to [`build_share_packages`].
pub fn build_share_packages_into(
    plan: &PathPlan,
    params: &SchemeParams,
    schedule: &KeySchedule,
    secret: &[u8],
    out: &mut SharePackages,
    scratch: &mut PackageScratch,
) -> Result<(), EmergeError> {
    let (_k, l, n, m) = match params {
        SchemeParams::Share { k, l, n, m } => (*k, *l, *n, m),
        _ => {
            return Err(EmergeError::InvalidParameters(
                "share packages require the share scheme".into(),
            ))
        }
    };
    if n > shamir::MAX_SHARES {
        // LINT-WAIVER(alloc): error construction is a cold path outside the per-trial loop
        return Err(EmergeError::InvalidParameters(format!(
            "wire-level GF(256) sharing supports at most {} rows, got {n} \
             (the analysis/Monte-Carlo engines have no such limit)",
            shamir::MAX_SHARES
        )));
    }
    debug_assert_eq!(plan.rows, n);
    debug_assert_eq!(plan.cols, l);

    let mut rng = schedule.shamir_rng();

    // Shares of every column's keys (columns 1..l), split into recycled
    // slabs with the exact RNG draw order of `split_many` + `split`.
    while scratch.row_slabs.len() < l - 1 {
        scratch.row_slabs.push(shamir::ShareSlab::new());
        scratch.core_slabs.push(shamir::ShareSlab::new());
    }
    for col in 1..l {
        let threshold = m[col - 1];
        scratch.keys_flat.clear();
        for r in 0..n {
            scratch
                .keys_flat
                .extend_from_slice(schedule.row_key(r, col).as_bytes());
        }
        scratch.row_slabs[col - 1].split_flat(&scratch.keys_flat, 32, threshold, n, &mut rng)?;
        let core = schedule.core_key(col);
        scratch.core_slabs[col - 1].split_flat(core.as_bytes(), 32, threshold, n, &mut rng)?;
    }

    // Assemble the package wire form directly: version byte, u16 segment
    // count, then each column segment length-prefixed — identical to
    // `SharePackage::to_bytes` over per-column `encode_segment` /
    // `seal_segment` results.
    out.package.clear();
    out.package.push(SHARE_FORMAT_VERSION);
    // LINT-WAIVER(wire): l was validated against MAX_SHARES = 255, far below u16::MAX
    out.package.extend_from_slice(&(l as u16).to_le_bytes());
    for col in 0..l {
        let last = col + 1 == l;
        let bundle_key = (!last).then(|| schedule.bundle_key(col));
        scratch.next_hops.clear();
        if !last {
            scratch
                .next_hops
                .extend((0..n).map(|r| plan.targets[r * l + col + 1]));
        }
        let segment = &mut scratch.segment;
        segment.clear();
        // LINT-WAIVER(wire): n was validated against MAX_SHARES = 255, far below u16::MAX
        segment.extend_from_slice(&(n as u16).to_le_bytes());
        for row in 0..n {
            scratch.payload.clear();
            if let Some(bk) = &bundle_key {
                // Column `col`'s headers deliver shares of column
                // `col + 1`'s keys: slab `col` (slabs are indexed by
                // target column minus one).
                encode_payload_slab(
                    &mut scratch.payload,
                    &scratch.next_hops,
                    &scratch.row_slabs[col],
                    row,
                    // LINT-WAIVER(wire): row < n <= MAX_SHARES = 255, so row + 1 fits a u8
                    scratch.core_slabs[col].share(0, (row + 1) as u8),
                    bk,
                );
            } else {
                encode_terminal_payload(&mut scratch.payload);
            }
            record_sealed(scratch.payload.len());
            scratch.header.clear();
            scratch.header.extend_from_slice(scratch.payload.as_slice());
            emerge_crypto::aead::seal_in_place(
                &schedule.row_key(row, col),
                &HEADER_NONCE,
                &mut scratch.header,
                HEADER_AAD,
            );
            // LINT-WAIVER(wire): a sealed header spans at most 255 shares, orders of magnitude below u32::MAX
            segment.extend_from_slice(&(scratch.header.len() as u32).to_le_bytes());
            segment.extend_from_slice(&scratch.header);
        }
        if col != 0 {
            // Sealed once, under the key the previous column's headers
            // release one hop ahead (column 0 travels unsealed).
            record_sealed(segment.len());
            emerge_crypto::aead::seal_in_place(
                &schedule.bundle_key(col - 1),
                &SEGMENT_NONCE,
                segment,
                SEGMENT_AAD,
            );
        }
        out.package
            // LINT-WAIVER(wire): a segment holds at most 255 bounded rows, far below u32::MAX
            .extend_from_slice(&(segment.len() as u32).to_le_bytes());
        out.package.extend_from_slice(segment);
    }

    // Core onion: sealed with the per-column core keys; payloads empty.
    scratch.core_keys.clear();
    scratch
        .core_keys
        .extend((0..l).map(|c| schedule.core_key(c)));
    emerge_crypto::onion::build_onion_empty_into(
        &scratch.core_keys,
        secret,
        &mut out.core_onion,
        &mut scratch.onion_scratch,
    );

    out.col0_row_keys.clear();
    out.col0_row_keys
        .extend((0..n).map(|r| schedule.row_key(r, 0)));
    out.col0_core_key = schedule.core_key(0);
    Ok(())
}

/// The nested column-bundle format **v1**, retained verbatim as the
/// cross-format oracle: tests and `crypto_baseline` build both formats
/// from one [`KeySchedule`] to prove share values, key schedules and
/// release outcomes are identical, and to measure the `O(l²·n)` seal
/// volume the flat format eliminated.
///
/// Compiled only for tests and under the `legacy-v1` feature
/// (`emerge-bench` enables it); nothing in the production protocol path
/// references this module.
#[cfg(any(test, feature = "legacy-v1"))]
pub mod legacy {
    use super::*;

    /// One column's v1 bundle: per-row header ciphertexts (sealed under
    /// the row keys `K_{r,j}`) plus the sealed inner bundle of the next
    /// column — the recursive nesting that made v1 packaging `O(l²·n)`.
    #[derive(Debug, Clone, PartialEq)]
    pub struct ColumnBundle {
        /// `headers[r]` opens with `K_{r,col}` and parses to a
        /// [`ShareLayerPayload`].
        pub headers: Vec<Vec<u8>>,
        /// The sealed next-column bundle (absent at the last column).
        pub inner: Option<Vec<u8>>,
    }

    impl ColumnBundle {
        /// Serializes the bundle.
        pub fn to_bytes(&self) -> Vec<u8> {
            let mut w = Writer::new();
            w.put_u16(self.headers.len() as u16);
            for h in &self.headers {
                w.put_bytes(h);
            }
            match &self.inner {
                Some(e) => {
                    w.put_u8(1).put_bytes(e);
                }
                None => {
                    w.put_u8(0);
                }
            }
            w.into_bytes()
        }

        /// Parses a bundle.
        ///
        /// # Errors
        ///
        /// Returns a [`CryptoError`] on malformed input.
        pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
            let mut r = Reader::new(bytes);
            let count = r.get_u16()? as usize;
            let mut headers = Vec::with_capacity(count);
            for _ in 0..count {
                headers.push(r.get_bytes()?.to_vec());
            }
            let inner = match r.get_u8()? {
                0 => None,
                1 => Some(r.get_bytes()?.to_vec()),
                _ => return Err(CryptoError::Malformed("bad inner-bundle flag")),
            };
            r.expect_end()?;
            Ok(ColumnBundle { headers, inner })
        }
    }

    /// v1 packages: the outermost nested bundle plus the (format-neutral)
    /// core-onion material.
    #[derive(Debug, Clone)]
    pub struct SharePackagesV1 {
        /// The outermost column bundle, delivered to every first-column
        /// holder at `ts`.
        pub bundle: Vec<u8>,
        /// The core onion (identical bytes to the v2 build).
        pub core_onion: Vec<u8>,
        /// Column-0 row keys (identical to the v2 build).
        pub col0_row_keys: Vec<SymmetricKey>,
        /// Column-0 core key (identical to the v2 build).
        pub col0_core_key: SymmetricKey,
    }

    /// v1 domain-separation label for bundle header seals.
    const HEADER_AAD_V1: &[u8] = b"emerge-share-header-v1";
    /// v1 domain-separation label for inner-bundle seals.
    const BUNDLE_AAD_V1: &[u8] = b"emerge-share-bundle-v1";

    /// Seals one v1 header under a row key.
    fn seal_header_v1(key: &SymmetricKey, payload: &[u8]) -> Vec<u8> {
        record_sealed(payload.len());
        let nonce = key.derive_nonce(b"share-header");
        emerge_crypto::aead::seal(key, &nonce, payload, HEADER_AAD_V1)
    }

    /// Opens a v1 header.
    ///
    /// # Errors
    ///
    /// Returns a [`CryptoError`] for a wrong key or tampered header.
    pub fn open_header_v1(
        key: &SymmetricKey,
        header: &[u8],
    ) -> Result<ShareLayerPayload, CryptoError> {
        let nonce = key.derive_nonce(b"share-header");
        let plain = emerge_crypto::aead::open(key, &nonce, header, HEADER_AAD_V1)?;
        ShareLayerPayload::from_bytes(&plain)
    }

    /// Seals the serialized next bundle under the bundle key.
    fn seal_inner(key: &SymmetricKey, bundle: &[u8]) -> Vec<u8> {
        record_sealed(bundle.len());
        let nonce = key.derive_nonce(b"share-bundle");
        emerge_crypto::aead::seal(key, &nonce, bundle, BUNDLE_AAD_V1)
    }

    /// Opens a sealed inner bundle.
    ///
    /// # Errors
    ///
    /// Returns a [`CryptoError`] for a wrong key or tampered bundle.
    pub fn open_inner(key: &SymmetricKey, sealed: &[u8]) -> Result<ColumnBundle, CryptoError> {
        let nonce = key.derive_nonce(b"share-bundle");
        let plain = emerge_crypto::aead::open(key, &nonce, sealed, BUNDLE_AAD_V1)?;
        ColumnBundle::from_bytes(&plain)
    }

    /// Opens a sealed inner bundle and returns its *serialized* bytes,
    /// validated to parse as a [`ColumnBundle`] (the v1 executor's
    /// forward-verbatim path).
    ///
    /// # Errors
    ///
    /// Returns a [`CryptoError`] for a wrong key, tampered bundle, or a
    /// plaintext that does not parse as a bundle.
    pub fn open_inner_bytes(key: &SymmetricKey, sealed: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let nonce = key.derive_nonce(b"share-bundle");
        let plain = emerge_crypto::aead::open(key, &nonce, sealed, BUNDLE_AAD_V1)?;
        ColumnBundle::from_bytes(&plain)?;
        Ok(plain)
    }

    /// Builds the v1 (nested) share packages — the pre-flattening
    /// `build_share_packages`, byte for byte, including its Shamir RNG
    /// draw order.
    ///
    /// # Errors
    ///
    /// Returns [`EmergeError::InvalidParameters`] for non-share `params`
    /// or `n` beyond GF(256) sharing, and propagates
    /// [`EmergeError::Crypto`] from the Shamir layer.
    pub fn build_share_packages_v1(
        plan: &PathPlan,
        params: &SchemeParams,
        schedule: &KeySchedule,
        secret: &[u8],
    ) -> Result<SharePackagesV1, EmergeError> {
        let (_k, l, n, m) = match params {
            SchemeParams::Share { k, l, n, m } => (*k, *l, *n, m),
            _ => {
                return Err(EmergeError::InvalidParameters(
                    "share packages require the share scheme".into(),
                ))
            }
        };
        if n > shamir::MAX_SHARES {
            return Err(EmergeError::InvalidParameters(format!(
                "wire-level GF(256) sharing supports at most {} rows, got {n}",
                shamir::MAX_SHARES
            )));
        }
        debug_assert_eq!(plan.rows, n);
        debug_assert_eq!(plan.cols, l);

        let mut rng = schedule.shamir_rng();
        let mut row_key_shares: Vec<Vec<Vec<KeyShare>>> = Vec::with_capacity(l - 1);
        let mut core_key_shares: Vec<Vec<KeyShare>> = Vec::with_capacity(l - 1);
        for col in 1..l {
            let threshold = m[col - 1];
            let mut per_target = Vec::with_capacity(n);
            for target_row in 0..n {
                let key = schedule.row_key(target_row, col);
                let shares = shamir::split(key.as_bytes(), threshold, n, &mut rng)?;
                per_target.push(shares);
            }
            row_key_shares.push(per_target);
            let core = schedule.core_key(col);
            core_key_shares.push(shamir::split(core.as_bytes(), threshold, n, &mut rng)?);
        }

        // Build bundles innermost-first.
        let mut inner_sealed: Option<Vec<u8>> = None;
        let mut outermost: Option<ColumnBundle> = None;
        for col in (0..l).rev() {
            let last = col + 1 == l;
            let bundle_key = schedule.bundle_key(col);
            let mut headers = Vec::with_capacity(n);
            for row in 0..n {
                let payload = if last {
                    ShareLayerPayload {
                        next_hops: Vec::new(),
                        row_key_shares: Vec::new(),
                        core_key_share: None,
                        bundle_key: None,
                    }
                } else {
                    ShareLayerPayload {
                        next_hops: (0..n).map(|r| plan.targets[r * l + col + 1]).collect(),
                        row_key_shares: (0..n)
                            .map(|target_row| row_key_shares[col][target_row][row].clone())
                            .collect(),
                        core_key_share: Some(core_key_shares[col][row].clone()),
                        bundle_key: Some(bundle_key.clone()),
                    }
                };
                headers.push(seal_header_v1(
                    &schedule.row_key(row, col),
                    &payload.to_bytes(),
                ));
            }
            let bundle = ColumnBundle {
                headers,
                inner: inner_sealed.take(),
            };
            if col == 0 {
                outermost = Some(bundle);
            } else {
                // Seal this bundle for transport inside the previous
                // column — the quadratic re-encryption v2 removes.
                let parent_key = schedule.bundle_key(col - 1);
                inner_sealed = Some(seal_inner(&parent_key, &bundle.to_bytes()));
            }
        }
        let bundle = outermost.expect("loop always produces the outermost bundle");

        let core_keys: Vec<SymmetricKey> = (0..l).map(|c| schedule.core_key(c)).collect();
        let empty: Vec<Vec<u8>> = vec![Vec::new(); l];
        let core_layers: Vec<(&SymmetricKey, &[u8])> = core_keys
            .iter()
            .zip(empty.iter())
            .map(|(k, p)| (k, p.as_slice()))
            .collect();
        let core_onion = build_onion(&core_layers, secret);

        Ok(SharePackagesV1 {
            bundle: bundle.to_bytes(),
            core_onion,
            col0_row_keys: (0..n).map(|r| schedule.row_key(r, 0)).collect(),
            col0_core_key: schedule.core_key(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::construct_paths;
    use emerge_crypto::onion::{peel, peel_core, Peeled};
    use emerge_dht::overlay::{Overlay, OverlayConfig};
    use rand::RngCore;

    fn overlay(n: usize) -> Overlay {
        Overlay::build(
            OverlayConfig {
                n_nodes: n,
                ..OverlayConfig::default()
            },
            7,
        )
    }

    fn schedule() -> KeySchedule {
        KeySchedule::new(SymmetricKey::from_bytes([0x42; 32]))
    }

    #[test]
    fn label_writer_matches_the_format_macro() {
        for (row, col) in [
            (0usize, 0usize),
            (1, 9),
            (10, 10),
            (12345, 678),
            (usize::MAX, usize::MAX),
        ] {
            let mut w = LabelWriter::new("row-key");
            w.push_segment(row);
            w.push_segment(col);
            assert_eq!(w.as_bytes(), format!("row-key/{row}/{col}").as_bytes());
        }
        let mut w = LabelWriter::new("bundle-key");
        w.push_segment(42);
        assert_eq!(w.as_bytes(), b"bundle-key/42");
    }

    #[test]
    fn memoized_derivations_match_explicit_labels() {
        // The cache and the stack label writer must not change a single
        // derived byte relative to the original format!-based derivation.
        let seed = SymmetricKey::from_bytes([0x42; 32]);
        let s = KeySchedule::new(seed.clone());
        assert_eq!(
            s.row_key(5, 11).into_bytes(),
            seed.derive(b"row-key/5/11").into_bytes()
        );
        assert_eq!(
            s.column_key(3).into_bytes(),
            seed.derive(b"column-key/3").into_bytes()
        );
        assert_eq!(
            s.core_key(0).into_bytes(),
            seed.derive(b"core-key/0").into_bytes()
        );
        assert_eq!(
            s.bundle_key(7).into_bytes(),
            seed.derive(b"bundle-key/7").into_bytes()
        );
        // A second ask is a cache hit and returns the same key.
        assert_eq!(
            s.row_key(5, 11).into_bytes(),
            seed.derive(b"row-key/5/11").into_bytes()
        );
    }

    #[test]
    fn key_schedule_labels_are_separated() {
        let s = schedule();
        assert_ne!(s.column_key(0).into_bytes(), s.column_key(1).into_bytes());
        assert_ne!(s.column_key(0).into_bytes(), s.core_key(0).into_bytes());
        assert_ne!(
            s.row_key(0, 1).into_bytes(),
            s.row_key(1, 0).into_bytes(),
            "row/col must not be confusable"
        );
    }

    #[test]
    fn keyed_payload_roundtrip() {
        let p = KeyedLayerPayload {
            next_hops: vec![NodeId::from_name(b"a"), NodeId::from_name(b"b")],
        };
        assert_eq!(KeyedLayerPayload::from_bytes(&p.to_bytes()).unwrap(), p);
        let empty = KeyedLayerPayload { next_hops: vec![] };
        assert_eq!(
            KeyedLayerPayload::from_bytes(&empty.to_bytes()).unwrap(),
            empty
        );
    }

    #[test]
    fn share_payload_roundtrip() {
        let p = ShareLayerPayload {
            next_hops: vec![NodeId::from_name(b"x")],
            row_key_shares: vec![KeyShare::new(3, vec![1; 32]), KeyShare::new(3, vec![2; 32])],
            core_key_share: Some(KeyShare::new(3, vec![9; 32])),
            bundle_key: Some(SymmetricKey::from_bytes([7; 32])),
        };
        assert_eq!(ShareLayerPayload::from_bytes(&p.to_bytes()).unwrap(), p);
        let bare = ShareLayerPayload {
            next_hops: vec![],
            row_key_shares: vec![],
            core_key_share: None,
            bundle_key: None,
        };
        assert_eq!(
            ShareLayerPayload::from_bytes(&bare.to_bytes()).unwrap(),
            bare
        );
    }

    #[test]
    fn share_package_roundtrip() {
        let p = SharePackage {
            segments: vec![vec![1, 2, 3], Vec::new(), vec![9; 400]],
        };
        assert_eq!(SharePackage::from_bytes(&p.to_bytes()).unwrap(), p);
        let single = SharePackage {
            segments: vec![vec![0; 8]],
        };
        assert_eq!(
            SharePackage::from_bytes(&single.to_bytes()).unwrap(),
            single
        );
    }

    #[test]
    fn share_package_rejects_bad_version_emptiness_and_trailing() {
        let p = SharePackage {
            segments: vec![vec![1, 2, 3]],
        };
        let mut wrong_version = p.to_bytes();
        wrong_version[0] = 1;
        assert!(SharePackage::from_bytes(&wrong_version).is_err());

        let empty = SharePackage {
            segments: Vec::new(),
        };
        assert!(SharePackage::from_bytes(&empty.to_bytes()).is_err());

        let mut trailing = p.to_bytes();
        trailing.push(0);
        assert!(SharePackage::from_bytes(&trailing).is_err());

        assert!(SharePackage::from_bytes(&[]).is_err());
    }

    #[test]
    fn legacy_column_bundle_roundtrip() {
        let b = legacy::ColumnBundle {
            headers: vec![vec![1, 2, 3], vec![], vec![9; 40]],
            inner: Some(vec![5; 100]),
        };
        assert_eq!(legacy::ColumnBundle::from_bytes(&b.to_bytes()).unwrap(), b);
        let last = legacy::ColumnBundle {
            headers: vec![vec![0; 8]],
            inner: None,
        };
        assert_eq!(
            legacy::ColumnBundle::from_bytes(&last.to_bytes()).unwrap(),
            last
        );
    }

    #[test]
    fn joint_onion_peels_hop_by_hop() {
        let ov = overlay(100);
        let params = SchemeParams::Joint { k: 2, l: 3 };
        let plan = construct_paths(&ov, &params, &SymmetricKey::from_bytes([9; 32])).unwrap();
        let sched = schedule();
        let pkgs = build_keyed_packages(&plan, &params, &sched, b"THE-SECRET").unwrap();
        assert_eq!(pkgs.onions.len(), 2);
        assert_eq!(pkgs.column_keys.len(), 3);

        let mut onion = pkgs.onions[0].clone();
        for col in 0..2 {
            let Peeled::Intermediate { payload, inner } =
                peel(&pkgs.column_keys[col], &onion).unwrap()
            else {
                panic!("expected intermediate at column {col}");
            };
            let parsed = KeyedLayerPayload::from_bytes(&payload).unwrap();
            // Joint: the payload lists the whole next column.
            assert_eq!(parsed.next_hops.len(), 2);
            assert_eq!(parsed.next_hops[0], plan.targets[col + 1]); // row 0
            assert_eq!(parsed.next_hops[1], plan.targets[3 + col + 1]); // row 1
            onion = inner;
        }
        let (last_payload, secret) = peel_core(&pkgs.column_keys[2], &onion).unwrap();
        let parsed = KeyedLayerPayload::from_bytes(&last_payload).unwrap();
        assert!(parsed.next_hops.is_empty());
        assert_eq!(secret, b"THE-SECRET");
    }

    #[test]
    fn disjoint_onion_routes_along_its_own_row() {
        let ov = overlay(100);
        let params = SchemeParams::Disjoint { k: 2, l: 3 };
        let plan = construct_paths(&ov, &params, &SymmetricKey::from_bytes([9; 32])).unwrap();
        let sched = schedule();
        let pkgs = build_keyed_packages(&plan, &params, &sched, b"s").unwrap();

        let Peeled::Intermediate { payload, .. } =
            peel(&pkgs.column_keys[0], &pkgs.onions[1]).unwrap()
        else {
            panic!("expected intermediate");
        };
        let parsed = KeyedLayerPayload::from_bytes(&payload).unwrap();
        assert_eq!(parsed.next_hops, vec![plan.targets[3 + 1]]); // row 1, col 1
    }

    #[test]
    fn wrong_scheme_rejected() {
        let ov = overlay(50);
        let params = SchemeParams::Joint { k: 2, l: 2 };
        let plan = construct_paths(&ov, &params, &SymmetricKey::from_bytes([1; 32])).unwrap();
        let err =
            build_keyed_packages(&plan, &SchemeParams::Central, &schedule(), b"s").unwrap_err();
        assert!(matches!(err, EmergeError::InvalidParameters(_)));
    }

    #[test]
    fn share_packages_reconstruct_with_threshold_shares() {
        let ov = overlay(100);
        let params = SchemeParams::Share {
            k: 2,
            l: 3,
            n: 5,
            m: vec![3, 3],
        };
        let plan = construct_paths(&ov, &params, &SymmetricKey::from_bytes([5; 32])).unwrap();
        let sched = schedule();
        let pkgs = build_share_packages(&plan, &params, &sched, b"CORE-SECRET").unwrap();
        assert_eq!(pkgs.col0_row_keys.len(), 5);

        // Open each column-0 header with the directly delivered row key
        // and collect the shares for column 1.
        let package = SharePackage::from_bytes(&pkgs.package).unwrap();
        assert_eq!(package.segments.len(), 3, "one segment per column");
        let headers0 = decode_segment(&package.segments[0]).unwrap();
        assert_eq!(headers0.len(), 5);
        let mut payloads = Vec::new();
        for (row, header) in headers0.iter().enumerate() {
            payloads.push(open_header(&pkgs.col0_row_keys[row], header).unwrap());
        }

        // Any 3 of the 5 shares reconstruct row 2's column-1 key.
        let target_row = 2usize;
        let shares: Vec<KeyShare> = payloads
            .iter()
            .take(3)
            .map(|p| p.row_key_shares[target_row].clone())
            .collect();
        let recovered = shamir::combine(&shares, 3).unwrap();
        assert_eq!(recovered, sched.row_key(target_row, 1).as_bytes());

        // Two shares are not enough.
        assert!(shamir::combine(&shares[..2], 3).is_err());

        // Core key reconstructs the same way and peels the core onion.
        let core_shares: Vec<KeyShare> = payloads
            .iter()
            .skip(1)
            .take(3)
            .map(|p| p.core_key_share.clone().unwrap())
            .collect();
        let core_key_bytes = shamir::combine(&core_shares, 3).unwrap();
        let mut kb = [0u8; 32];
        kb.copy_from_slice(&core_key_bytes);
        let core_key_1 = SymmetricKey::from_bytes(kb);

        let Peeled::Intermediate { inner, .. } =
            peel(&pkgs.col0_core_key, &pkgs.core_onion).unwrap()
        else {
            panic!("core onion must have 3 layers");
        };
        let Peeled::Intermediate { inner, .. } = peel(&core_key_1, &inner).unwrap() else {
            panic!("layer 1 must peel with the reconstructed key");
        };
        let (_, secret) = peel_core(&sched.core_key(2), &inner).unwrap();
        assert_eq!(secret, b"CORE-SECRET");
    }

    #[test]
    fn share_segments_unwrap_column_by_column() {
        let ov = overlay(100);
        let params = SchemeParams::Share {
            k: 2,
            l: 3,
            n: 4,
            m: vec![2, 2],
        };
        let sender = SymmetricKey::from_bytes([8; 32]);
        let plan = construct_paths(&ov, &params, &sender).unwrap();
        let sched = schedule();
        let pkgs = build_share_packages(&plan, &params, &sched, b"s").unwrap();

        let package = SharePackage::from_bytes(&pkgs.package).unwrap();
        let headers0 = decode_segment(&package.segments[0]).unwrap();
        let payload0 = open_header(&pkgs.col0_row_keys[0], &headers0[0]).unwrap();
        let bk0 = payload0.bundle_key.expect("column 0 carries a bundle key");
        let headers1 = open_segment(&bk0, &package.segments[1]).unwrap();
        assert_eq!(headers1.len(), 4);

        // Column 1 headers open with the (derivable) row keys.
        let payload1 = open_header(&sched.row_key(1, 1), &headers1[1]).unwrap();
        let bk1 = payload1.bundle_key.expect("column 1 carries a bundle key");
        let headers2 = open_segment(&bk1, &package.segments[2]).unwrap();

        // A column's bundle key opens only its own successor segment:
        // jumping ahead with the wrong key fails authentication.
        assert!(open_segment(&bk0, &package.segments[2]).is_err());

        // Terminal headers carry an empty payload.
        let payload2 = open_header(&sched.row_key(3, 2), &headers2[3]).unwrap();
        assert!(payload2.next_hops.is_empty());
        assert!(payload2.row_key_shares.is_empty());
        assert!(payload2.bundle_key.is_none());
    }

    /// Runs `f` with a fresh `emerge-obs` collector installed on this
    /// thread (restoring any previous one), so the sealed-byte counter
    /// is live and isolated from other tests.
    fn with_obs_collector<R>(f: impl FnOnce() -> R) -> R {
        let prev = emerge_obs::collector::install(emerge_obs::Collector::new());
        let r = f();
        match prev {
            Some(p) => {
                emerge_obs::collector::install(p);
            }
            None => {
                emerge_obs::collector::take();
            }
        }
        r
    }

    #[test]
    fn pooled_builder_matches_allocating_builder_across_reuse() {
        // One scratch and output set serves builds of different shapes
        // and seeds; every build must be byte-identical to a fresh
        // allocating build (packages, onion, delivered col-0 keys) and
        // report the same sealed-byte volume.
        let ov = overlay(120);
        let shapes = [
            (2usize, 3usize, 4usize, vec![2usize, 2]),
            (1, 2, 5, vec![3]),
            (2, 3, 4, vec![2, 3]),
            (2, 3, 4, vec![2, 2]), // repeat of shape 0, different seed below
        ];
        let mut out = SharePackages::default();
        let mut scratch = PackageScratch::new();
        for (i, (k, l, n, m)) in shapes.iter().enumerate() {
            let params = SchemeParams::Share {
                k: *k,
                l: *l,
                n: *n,
                m: m.clone(),
            };
            let sender = SymmetricKey::from_bytes([10 + i as u8; 32]);
            let plan = construct_paths(&ov, &params, &sender).unwrap();
            let sched = KeySchedule::new(sender);

            let (reference, ref_sealed, pooled_sealed) = with_obs_collector(|| {
                take_sealed_byte_count();
                let reference = build_share_packages(&plan, &params, &sched, b"CORE").unwrap();
                let ref_sealed = take_sealed_byte_count();
                build_share_packages_into(&plan, &params, &sched, b"CORE", &mut out, &mut scratch)
                    .unwrap();
                let pooled_sealed = take_sealed_byte_count();
                (reference, ref_sealed, pooled_sealed)
            });

            assert_eq!(out.package, reference.package);
            assert_eq!(out.core_onion, reference.core_onion);
            assert_eq!(out.col0_row_keys, reference.col0_row_keys);
            assert_eq!(
                out.col0_core_key.as_bytes(),
                reference.col0_core_key.as_bytes()
            );
            assert_eq!(pooled_sealed, ref_sealed);
        }
    }

    #[test]
    fn key_schedule_reset_matches_fresh_schedule() {
        let mut warm = KeySchedule::new(SymmetricKey::from_bytes([1; 32]));
        // Populate the memo table under the first seed.
        let _ = warm.row_key(3, 2);
        let _ = warm.bundle_key(1);
        warm.reset(SymmetricKey::from_bytes([9; 32]));
        let fresh = KeySchedule::new(SymmetricKey::from_bytes([9; 32]));
        assert_eq!(
            warm.row_key(3, 2).into_bytes(),
            fresh.row_key(3, 2).into_bytes()
        );
        assert_eq!(
            warm.core_key(0).into_bytes(),
            fresh.core_key(0).into_bytes()
        );
        assert_eq!(warm.shamir_rng().next_u64(), fresh.shamir_rng().next_u64());
    }

    #[test]
    fn share_share_indices_match_sender_row() {
        let ov = overlay(60);
        let params = SchemeParams::Share {
            k: 1,
            l: 2,
            n: 4,
            m: vec![2],
        };
        let plan = construct_paths(&ov, &params, &SymmetricKey::from_bytes([6; 32])).unwrap();
        let pkgs = build_share_packages(&plan, &params, &schedule(), b"x").unwrap();
        let package = SharePackage::from_bytes(&pkgs.package).unwrap();
        let headers0 = decode_segment(&package.segments[0]).unwrap();
        for (row, header) in headers0.iter().enumerate() {
            let parsed = open_header(&pkgs.col0_row_keys[row], header).unwrap();
            for s in &parsed.row_key_shares {
                assert_eq!(s.index as usize, row + 1, "share index must be the row");
            }
            assert_eq!(parsed.next_hops.len(), 4);
        }
    }

    #[test]
    fn oversized_share_grid_rejected_at_wire_level() {
        let ov = overlay(60);
        let params = SchemeParams::Share {
            k: 2,
            l: 2,
            n: 300,
            m: vec![100],
        };
        // construct_paths would also fail (not enough nodes); validate the
        // package-level guard directly with a fabricated plan.
        let plan = crate::path::PathPlan {
            rows: 300,
            cols: 2,
            slots: (0..600).collect(),
            targets: vec![NodeId::ZERO; 600],
        };
        let _ = ov;
        let err = build_share_packages(&plan, &params, &schedule(), b"s").unwrap_err();
        assert!(matches!(err, EmergeError::InvalidParameters(_)));
    }

    #[test]
    fn packages_are_deterministic() {
        let ov = overlay(80);
        let params = SchemeParams::Joint { k: 2, l: 2 };
        let seed = SymmetricKey::from_bytes([3; 32]);
        let plan = construct_paths(&ov, &params, &seed).unwrap();
        let sched = KeySchedule::new(seed);
        let a = build_keyed_packages(&plan, &params, &sched, b"s").unwrap();
        let b = build_keyed_packages(&plan, &params, &sched, b"s").unwrap();
        assert_eq!(a.onions, b.onions);
    }

    #[test]
    fn executor_parse_is_a_projection_of_the_full_parse() {
        let key = SymmetricKey::from_bytes([0x66; 32]);
        for payload in [
            ShareLayerPayload {
                next_hops: vec![NodeId::from_name(b"a"), NodeId::from_name(b"b")],
                row_key_shares: vec![KeyShare::new(2, vec![1; 32]), KeyShare::new(2, vec![2; 32])],
                core_key_share: Some(KeyShare::new(2, vec![9; 32])),
                bundle_key: Some(SymmetricKey::from_bytes([7; 32])),
            },
            ShareLayerPayload {
                next_hops: Vec::new(),
                row_key_shares: Vec::new(),
                core_key_share: None,
                bundle_key: None,
            },
        ] {
            let sealed = seal_header(&key, &payload.to_bytes());
            let full = open_header(&key, &sealed).unwrap();
            let lean = open_header_for_executor(&key, &sealed).unwrap();
            assert_eq!(lean.row_key_shares, full.row_key_shares);
            assert_eq!(lean.core_key_share, full.core_key_share);
            assert_eq!(lean.bundle_key, full.bundle_key);
        }
        // Same failure on a tampered header.
        let mut sealed = seal_header(&key, b"xx");
        sealed[0] ^= 1;
        assert!(open_header_for_executor(&key, &sealed).is_err());
    }

    #[test]
    fn borrowed_encoders_match_the_struct_encoder() {
        // Terminal payload.
        let empty = ShareLayerPayload {
            next_hops: Vec::new(),
            row_key_shares: Vec::new(),
            core_key_share: None,
            bundle_key: None,
        };
        let mut w = Writer::new();
        encode_terminal_payload(&mut w);
        assert_eq!(w.as_slice(), empty.to_bytes());

        // Non-terminal payload, straight from a share matrix.
        let next_hops = vec![NodeId::from_name(b"h0"), NodeId::from_name(b"h1")];
        let row_shares = vec![
            vec![
                KeyShare::new(1, vec![10; 32]),
                KeyShare::new(2, vec![11; 32]),
            ],
            vec![
                KeyShare::new(1, vec![20; 32]),
                KeyShare::new(2, vec![21; 32]),
            ],
        ];
        let core = KeyShare::new(2, vec![9; 32]);
        let bk = SymmetricKey::from_bytes([5; 32]);
        for row in 0..2 {
            let payload = ShareLayerPayload {
                next_hops: next_hops.clone(),
                row_key_shares: row_shares.iter().map(|t| t[row].clone()).collect(),
                core_key_share: Some(core.clone()),
                bundle_key: Some(bk.clone()),
            };
            let mut w = Writer::new();
            encode_payload_borrowed(&mut w, &next_hops, &row_shares, row, &core, &bk);
            assert_eq!(w.as_slice(), payload.to_bytes(), "row {row}");
        }
    }

    /// Builds a share plan+schedule for an `n × l` grid on a fixed world.
    fn share_setup(n: usize, l: usize) -> (SchemeParams, PathPlan, KeySchedule) {
        let params = SchemeParams::Share {
            k: 2,
            l,
            n,
            m: vec![(n / 2).max(1); l - 1],
        };
        let ov = overlay(600);
        let seed = SymmetricKey::from_bytes([0x31; 32]);
        let plan = construct_paths(&ov, &params, &seed).unwrap();
        (params, plan, KeySchedule::new(seed))
    }

    /// Seal volume attributed to one build call via the instrumented hook
    /// (runs under its own obs collector; the counter reads 0 without one).
    fn sealed_bytes_of<F: FnOnce()>(build: F) -> u64 {
        with_obs_collector(|| {
            let _ = take_sealed_byte_count(); // discard any residue
            build();
            take_sealed_byte_count()
        })
    }

    #[test]
    fn v2_seal_volume_is_linear_in_l_where_v1_was_quadratic() {
        // Doubling the chain depth at fixed n must no more than ~double
        // v2's sealed bytes (Θ(l·n)), while v1's nested re-sealing grows
        // them ~quadratically (Σ_j j·segment ≈ l²/2).
        let n = 6;
        let volume = |l: usize, v1: bool| {
            let (params, plan, sched) = share_setup(n, l);
            sealed_bytes_of(|| {
                if v1 {
                    legacy::build_share_packages_v1(&plan, &params, &sched, b"s").unwrap();
                } else {
                    build_share_packages(&plan, &params, &sched, b"s").unwrap();
                }
            })
        };
        let (v2_short, v2_long) = (volume(6, false), volume(12, false));
        let (v1_short, v1_long) = (volume(6, true), volume(12, true));
        let v2_ratio = v2_long as f64 / v2_short as f64;
        let v1_ratio = v1_long as f64 / v1_short as f64;
        assert!(
            v2_ratio < 2.4,
            "v2 seal volume must grow linearly in l: {v2_short} -> {v2_long} ({v2_ratio:.2}x for 2x depth)"
        );
        assert!(
            v1_ratio > 3.0,
            "the v1 oracle should still exhibit the quadratic blow-up: \
             {v1_short} -> {v1_long} ({v1_ratio:.2}x for 2x depth)"
        );
        assert!(
            v1_long > 2 * v2_long,
            "at l = 12 the flat format must seal far fewer bytes: v1 {v1_long} vs v2 {v2_long}"
        );
    }

    #[test]
    fn v1_and_v2_deliver_identical_key_material() {
        // Same schedule, both formats: every decrypted header payload —
        // next hops, Shamir share values, core shares, bundle keys — must
        // match byte for byte. Only the sealing topology differs.
        let (params, plan, sched) = share_setup(5, 4);
        let v2 = build_share_packages(&plan, &params, &sched, b"SECRET").unwrap();
        let v1 = legacy::build_share_packages_v1(&plan, &params, &sched, b"SECRET").unwrap();

        assert_eq!(v1.core_onion, v2.core_onion);
        assert_eq!(
            v1.col0_row_keys
                .iter()
                .map(|k| *k.as_bytes())
                .collect::<Vec<_>>(),
            v2.col0_row_keys
                .iter()
                .map(|k| *k.as_bytes())
                .collect::<Vec<_>>()
        );
        assert_eq!(v1.col0_core_key.as_bytes(), v2.col0_core_key.as_bytes());

        let package = SharePackage::from_bytes(&v2.package).unwrap();
        assert_eq!(package.segments.len(), 4);

        // Walk both formats column by column.
        let mut v1_bundle = legacy::ColumnBundle::from_bytes(&v1.bundle).unwrap();
        for col in 0..4 {
            let v2_headers = if col == 0 {
                decode_segment(&package.segments[0]).unwrap()
            } else {
                open_segment(&sched.bundle_key(col - 1), &package.segments[col]).unwrap()
            };
            assert_eq!(v2_headers.len(), 5, "column {col}");
            for (row, v2_header) in v2_headers.iter().enumerate() {
                let key = sched.row_key(row, col);
                let p1 = legacy::open_header_v1(&key, &v1_bundle.headers[row]).unwrap();
                let p2 = open_header(&key, v2_header).unwrap();
                assert_eq!(p1, p2, "payload mismatch at row {row}, column {col}");
            }
            if col + 1 < 4 {
                let inner = v1_bundle.inner.as_ref().expect("v1 nests the next column");
                v1_bundle = legacy::open_inner(&sched.bundle_key(col), inner).unwrap();
            } else {
                assert!(v1_bundle.inner.is_none());
            }
        }
    }

    mod fuzz {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Arbitrary bytes never panic the package parser.
            #[test]
            fn random_bytes_never_panic_the_parser(
                bytes in proptest::collection::vec(any::<u8>(), 0..300)
            ) {
                let _ = SharePackage::from_bytes(&bytes);
                let _ = decode_segment(&bytes);
            }

            /// Single-byte corruptions of a valid package either parse to
            /// a (different) structurally valid table or error cleanly —
            /// no panics, no unbounded allocation.
            #[test]
            fn mutated_packages_parse_or_error_cleanly(
                pos in 0usize..200,
                xor in 1u8..=255,
                truncate in 0usize..40,
            ) {
                let p = SharePackage {
                    segments: vec![vec![1u8; 30], vec![2u8; 60], vec![3u8; 90]],
                };
                let mut bytes = p.to_bytes();
                let pos = pos % bytes.len();
                bytes[pos] ^= xor;
                let keep = bytes.len().saturating_sub(truncate % bytes.len());
                let _ = SharePackage::from_bytes(&bytes[..keep]);
            }

            /// A corrupted sealed segment never opens.
            #[test]
            fn corrupted_segments_fail_authentication(pos_seed: usize, xor in 1u8..=255) {
                let key = SymmetricKey::from_bytes([0x77; 32]);
                let headers = vec![vec![5u8; 40], vec![6u8; 40]];
                let mut sealed = seal_segment(&key, &headers);
                let pos = pos_seed % sealed.len();
                sealed[pos] ^= xor;
                prop_assert!(open_segment(&key, &sealed).is_err());
            }
        }
    }
}
