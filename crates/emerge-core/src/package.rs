//! Package generation (Section III's "package generation scheme").
//!
//! Builds the actual byte-level packages the sender hands to the first
//! column of holders at `ts`:
//!
//! * **Keyed schemes** (disjoint/joint): one onion per row whose layer `j`
//!   is sealed with the column key `K_j`; the keys themselves are
//!   pre-assigned to the column holders at `ts` (that is the scheme's
//!   defining weakness under churn). Layer payloads carry the next-hop
//!   addresses.
//! * **Share scheme**: nested *column bundles* — per-row headers sealed
//!   with row keys `K_{r,j}` (delivered just-in-time as Shamir shares)
//!   around an inner bundle sealed with a bundle key, plus a separate
//!   core onion sealed with per-column core keys and processed by the
//!   first `k` rows. Header payloads embed the shares each holder must
//!   forward to the next column. See DESIGN.md §4.2 for the rationale
//!   (linear size, n-wide transit redundancy).
//!
//! All keys derive from the sender's seed via HKDF labels, so package
//! generation is deterministic given the seed.

use crate::config::SchemeParams;
use crate::error::EmergeError;
use crate::path::PathPlan;
use emerge_crypto::keys::{KeyShare, SymmetricKey};
use emerge_crypto::onion::build_onion;
use emerge_crypto::shamir;
use emerge_crypto::wire::{Reader, Writer};
use emerge_crypto::CryptoError;
use emerge_dht::id::{NodeId, ID_LEN};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::collections::HashMap;

/// Discriminates the four derived-key families in [`DerivedKeys`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum KeyKind {
    Column,
    Core,
    Row,
    Bundle,
}

impl KeyKind {
    fn prefix(self) -> &'static str {
        match self {
            KeyKind::Column => "column-key",
            KeyKind::Core => "core-key",
            KeyKind::Row => "row-key",
            KeyKind::Bundle => "bundle-key",
        }
    }
}

/// Memoized HKDF derivations of one send operation.
///
/// Package generation asks for the same keys at several call sites —
/// splitting a row key into shares and sealing that row's header are
/// independent requests for `K_{r,j}`, and the builder, the executor
/// test paths and the delivered `col0` material all re-ask. Each label
/// is HKDF-derived exactly once per [`KeySchedule`]; later requests are
/// a hash-map hit.
#[derive(Debug, Clone, Default)]
struct DerivedKeys {
    keys: HashMap<(KeyKind, usize, usize), SymmetricKey>,
}

/// Longest label: `row-key` plus two `/`-prefixed 20-digit indices.
const MAX_LABEL: usize = 64;

/// Stack-buffer writer for derivation labels like `row-key/3/7`.
/// Byte-identical to the `format!` it replaces, without the per-call
/// heap allocation.
struct LabelWriter {
    buf: [u8; MAX_LABEL],
    len: usize,
}

impl LabelWriter {
    fn new(prefix: &'static str) -> Self {
        let mut w = LabelWriter {
            buf: [0; MAX_LABEL],
            len: 0,
        };
        w.buf[..prefix.len()].copy_from_slice(prefix.as_bytes());
        w.len = prefix.len();
        w
    }

    /// Appends `/` followed by `value` in decimal, exactly as
    /// `format!("/{value}")` renders it.
    fn push_segment(&mut self, value: usize) {
        self.buf[self.len] = b'/';
        self.len += 1;
        let mut digits = [0u8; 20];
        let mut i = digits.len();
        let mut v = value;
        loop {
            i -= 1;
            digits[i] = b'0' + (v % 10) as u8;
            v /= 10;
            if v == 0 {
                break;
            }
        }
        let d = &digits[i..];
        self.buf[self.len..self.len + d.len()].copy_from_slice(d);
        self.len += d.len();
    }

    fn as_bytes(&self) -> &[u8] {
        &self.buf[..self.len]
    }
}

/// Deterministic key derivation for a send operation.
///
/// All keys derive from the sender's seed via HKDF labels; each label is
/// derived once and memoized in a `DerivedKeys` cache, so repeated
/// requests (the share scheme asks for every row key twice: once to
/// split, once to seal) cost a lookup, not an HKDF run.
#[derive(Debug, Clone)]
pub struct KeySchedule {
    seed: SymmetricKey,
    cache: RefCell<DerivedKeys>,
}

impl KeySchedule {
    /// Creates a schedule from the sender's seed.
    pub fn new(seed: SymmetricKey) -> Self {
        KeySchedule {
            seed,
            cache: RefCell::new(DerivedKeys::default()),
        }
    }

    /// Derives (or fetches) the key for `(kind, row, col)`; `row` is only
    /// part of the label for [`KeyKind::Row`].
    fn derived(&self, kind: KeyKind, row: usize, col: usize) -> SymmetricKey {
        if let Some(key) = self.cache.borrow().keys.get(&(kind, row, col)) {
            return key.clone();
        }
        let mut label = LabelWriter::new(kind.prefix());
        if kind == KeyKind::Row {
            label.push_segment(row);
        }
        label.push_segment(col);
        let key = self.seed.derive(label.as_bytes());
        self.cache
            .borrow_mut()
            .keys
            .insert((kind, row, col), key.clone());
        key
    }

    /// Column key `K_j` (keyed schemes) — shared by all rows of column
    /// `col`.
    pub fn column_key(&self, col: usize) -> SymmetricKey {
        self.derived(KeyKind::Column, 0, col)
    }

    /// Core-onion key for column `col` (share scheme).
    pub fn core_key(&self, col: usize) -> SymmetricKey {
        self.derived(KeyKind::Core, 0, col)
    }

    /// Row-onion key `K_{r,j}` (share scheme).
    pub fn row_key(&self, row: usize, col: usize) -> SymmetricKey {
        self.derived(KeyKind::Row, row, col)
    }

    /// Bundle key `C_j` protecting the inner bundle of column `col`
    /// (share scheme). Revealed inside every column-`col` header so any
    /// one honest holder can unwrap and relay the next bundle.
    pub fn bundle_key(&self, col: usize) -> SymmetricKey {
        self.derived(KeyKind::Bundle, 0, col)
    }

    /// Deterministic RNG for the Shamir polynomials.
    fn shamir_rng(&self) -> StdRng {
        StdRng::from_seed(self.seed.derive(b"shamir-polynomials").into_bytes())
    }
}

/// Per-hop payload of a keyed-scheme onion layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyedLayerPayload {
    /// Addresses of the holders to forward the remaining onion to
    /// (empty at the terminal column: next stop is the receiver).
    pub next_hops: Vec<NodeId>,
}

impl KeyedLayerPayload {
    /// Serializes the payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u16(self.next_hops.len() as u16);
        for id in &self.next_hops {
            w.put_raw(id.as_bytes());
        }
        w.into_bytes()
    }

    /// Parses a payload.
    ///
    /// # Errors
    ///
    /// Returns a [`CryptoError`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let mut r = Reader::new(bytes);
        let count = r.get_u16()? as usize;
        let mut next_hops = Vec::with_capacity(count);
        for _ in 0..count {
            let raw = r.get_raw(ID_LEN)?;
            let mut id = [0u8; ID_LEN];
            id.copy_from_slice(raw);
            next_hops.push(NodeId::from_bytes(id));
        }
        r.expect_end()?;
        Ok(KeyedLayerPayload { next_hops })
    }
}

/// Packages for the disjoint/joint schemes.
#[derive(Debug, Clone)]
pub struct KeyedPackages {
    /// One onion per row (`rows` entries).
    pub onions: Vec<Vec<u8>>,
    /// `K_j` per column, pre-assigned to every holder of that column at
    /// `ts`.
    pub column_keys: Vec<SymmetricKey>,
}

/// Builds the keyed-scheme packages.
///
/// For the disjoint scheme each row's onion routes along its own row; for
/// the joint scheme every layer lists the entire next column, producing
/// the column-complete forwarding pattern of Figure 4.
///
/// # Errors
///
/// Returns [`EmergeError::InvalidParameters`] for non-keyed `params`.
pub fn build_keyed_packages(
    plan: &PathPlan,
    params: &SchemeParams,
    schedule: &KeySchedule,
    secret: &[u8],
) -> Result<KeyedPackages, EmergeError> {
    let joint = match params {
        SchemeParams::Disjoint { .. } => false,
        SchemeParams::Joint { .. } => true,
        _ => {
            return Err(EmergeError::InvalidParameters(
                "keyed packages require the disjoint or joint scheme".into(),
            ))
        }
    };
    let (rows, cols) = (plan.rows, plan.cols);
    let column_keys: Vec<SymmetricKey> = (0..cols).map(|c| schedule.column_key(c)).collect();

    let mut onions = Vec::with_capacity(rows);
    for row in 0..rows {
        let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(cols);
        for col in 0..cols {
            let next_hops = if col + 1 == cols {
                Vec::new()
            } else if joint {
                (0..rows)
                    .map(|r| plan.targets[r * cols + col + 1])
                    .collect()
            } else {
                vec![plan.targets[row * cols + col + 1]]
            };
            payloads.push(KeyedLayerPayload { next_hops }.to_bytes());
        }
        let layers: Vec<(&SymmetricKey, &[u8])> = column_keys
            .iter()
            .zip(payloads.iter())
            .map(|(k, p)| (k, p.as_slice()))
            .collect();
        onions.push(build_onion(&layers, secret));
    }

    Ok(KeyedPackages {
        onions,
        column_keys,
    })
}

/// Per-holder payload inside a column bundle header.
#[derive(Debug, Clone, PartialEq)]
pub struct ShareLayerPayload {
    /// Next-column holder addresses (all `n` rows; empty at the last
    /// column).
    pub next_hops: Vec<NodeId>,
    /// Shares (all with this row's index) of each next-column row key,
    /// ordered by target row. Empty at the last column.
    pub row_key_shares: Vec<KeyShare>,
    /// This row's share of the next column's core key.
    pub core_key_share: Option<KeyShare>,
    /// The bundle key `C_j` unlocking this column's inner bundle (absent
    /// at the last column).
    pub bundle_key: Option<SymmetricKey>,
}

impl ShareLayerPayload {
    /// Serializes the payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u16(self.next_hops.len() as u16);
        for id in &self.next_hops {
            w.put_raw(id.as_bytes());
        }
        w.put_u16(self.row_key_shares.len() as u16);
        for s in &self.row_key_shares {
            w.put_u8(s.index);
            w.put_bytes(&s.data);
        }
        match &self.core_key_share {
            Some(s) => {
                w.put_u8(1).put_u8(s.index);
                w.put_bytes(&s.data);
            }
            None => {
                w.put_u8(0);
            }
        }
        match &self.bundle_key {
            Some(k) => {
                w.put_u8(1).put_raw(k.as_bytes());
            }
            None => {
                w.put_u8(0);
            }
        }
        w.into_bytes()
    }

    /// Parses a payload.
    ///
    /// # Errors
    ///
    /// Returns a [`CryptoError`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let mut r = Reader::new(bytes);
        let hop_count = r.get_u16()? as usize;
        let mut next_hops = Vec::with_capacity(hop_count);
        for _ in 0..hop_count {
            let raw = r.get_raw(ID_LEN)?;
            let mut id = [0u8; ID_LEN];
            id.copy_from_slice(raw);
            next_hops.push(NodeId::from_bytes(id));
        }
        let share_count = r.get_u16()? as usize;
        let mut row_key_shares = Vec::with_capacity(share_count);
        for _ in 0..share_count {
            let index = r.get_u8()?;
            let data = r.get_bytes()?.to_vec();
            row_key_shares.push(KeyShare::new(index, data));
        }
        let core_key_share = match r.get_u8()? {
            0 => None,
            1 => {
                let index = r.get_u8()?;
                let data = r.get_bytes()?.to_vec();
                Some(KeyShare::new(index, data))
            }
            _ => return Err(CryptoError::Malformed("bad core-share flag")),
        };
        let bundle_key = match r.get_u8()? {
            0 => None,
            1 => {
                let raw = r.get_raw(32)?;
                let mut kb = [0u8; 32];
                kb.copy_from_slice(raw);
                Some(SymmetricKey::from_bytes(kb))
            }
            _ => return Err(CryptoError::Malformed("bad bundle-key flag")),
        };
        r.expect_end()?;
        Ok(ShareLayerPayload {
            next_hops,
            row_key_shares,
            core_key_share,
            bundle_key,
        })
    }
}

/// One column's bundle: per-row header ciphertexts (sealed under the row
/// keys `K_{r,j}`) plus the sealed inner bundle of the next column.
///
/// Every holder of a column carries the same bundle blob; any one honest
/// holder suffices to relay it onward, which gives the share scheme its
/// `n`-wide transit redundancy (the paper's "three remaining onions"
/// replication in Figure 5, in linear instead of exponential size).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnBundle {
    /// `headers[r]` opens with `K_{r,col}` and parses to a
    /// [`ShareLayerPayload`].
    pub headers: Vec<Vec<u8>>,
    /// The sealed next-column bundle (absent at the last column).
    pub inner: Option<Vec<u8>>,
}

impl ColumnBundle {
    /// Serializes the bundle.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u16(self.headers.len() as u16);
        for h in &self.headers {
            w.put_bytes(h);
        }
        match &self.inner {
            Some(e) => {
                w.put_u8(1).put_bytes(e);
            }
            None => {
                w.put_u8(0);
            }
        }
        w.into_bytes()
    }

    /// Parses a bundle.
    ///
    /// # Errors
    ///
    /// Returns a [`CryptoError`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let mut r = Reader::new(bytes);
        let count = r.get_u16()? as usize;
        let mut headers = Vec::with_capacity(count);
        for _ in 0..count {
            headers.push(r.get_bytes()?.to_vec());
        }
        let inner = match r.get_u8()? {
            0 => None,
            1 => Some(r.get_bytes()?.to_vec()),
            _ => return Err(CryptoError::Malformed("bad inner-bundle flag")),
        };
        r.expect_end()?;
        Ok(ColumnBundle { headers, inner })
    }
}

/// Packages for the key-share routing scheme.
#[derive(Debug, Clone)]
pub struct SharePackages {
    /// The outermost column bundle, delivered to every first-column
    /// holder at `ts`.
    pub bundle: Vec<u8>,
    /// The core onion (processed by rows `0..k`).
    pub core_onion: Vec<u8>,
    /// Column-0 row keys, handed to each first-column holder directly at
    /// `ts` (no storage period, so no sharing needed — Figure 5's `K_1`,
    /// `K_{3,1}`).
    pub col0_row_keys: Vec<SymmetricKey>,
    /// Column-0 core key for the onion rows.
    pub col0_core_key: SymmetricKey,
}

/// Domain-separation label for bundle header seals.
const HEADER_AAD: &[u8] = b"emerge-share-header-v1";
/// Domain-separation label for inner-bundle seals.
const BUNDLE_AAD: &[u8] = b"emerge-share-bundle-v1";

/// Seals one header under a row key.
fn seal_header(key: &SymmetricKey, payload: &[u8]) -> Vec<u8> {
    let nonce = key.derive_nonce(b"share-header");
    emerge_crypto::aead::seal(key, &nonce, payload, HEADER_AAD)
}

/// Opens a header. Public so the protocol executor and tests share one
/// code path.
///
/// # Errors
///
/// Returns a [`CryptoError`] for a wrong key or tampered header.
pub fn open_header(key: &SymmetricKey, header: &[u8]) -> Result<ShareLayerPayload, CryptoError> {
    let nonce = key.derive_nonce(b"share-header");
    let plain = emerge_crypto::aead::open(key, &nonce, header, HEADER_AAD)?;
    ShareLayerPayload::from_bytes(&plain)
}

/// Seals the serialized next bundle under the bundle key.
fn seal_inner(key: &SymmetricKey, bundle: &[u8]) -> Vec<u8> {
    let nonce = key.derive_nonce(b"share-bundle");
    emerge_crypto::aead::seal(key, &nonce, bundle, BUNDLE_AAD)
}

/// Opens a sealed inner bundle.
///
/// # Errors
///
/// Returns a [`CryptoError`] for a wrong key or tampered bundle.
pub fn open_inner(key: &SymmetricKey, sealed: &[u8]) -> Result<ColumnBundle, CryptoError> {
    let nonce = key.derive_nonce(b"share-bundle");
    let plain = emerge_crypto::aead::open(key, &nonce, sealed, BUNDLE_AAD)?;
    ColumnBundle::from_bytes(&plain)
}

/// Opens a sealed inner bundle and returns its *serialized* bytes,
/// validated to parse as a [`ColumnBundle`].
///
/// The protocol executor forwards the unwrapped bundle verbatim; since
/// the sealed plaintext *is* the serialization, this skips the
/// parse-then-reserialize round trip of [`open_inner`] while returning
/// bit-identical bytes (the wire format round-trips exactly) and
/// surfacing the same structural errors.
///
/// # Errors
///
/// Returns a [`CryptoError`] for a wrong key, tampered bundle, or a
/// plaintext that does not parse as a bundle.
pub fn open_inner_bytes(key: &SymmetricKey, sealed: &[u8]) -> Result<Vec<u8>, CryptoError> {
    let nonce = key.derive_nonce(b"share-bundle");
    let plain = emerge_crypto::aead::open(key, &nonce, sealed, BUNDLE_AAD)?;
    ColumnBundle::from_bytes(&plain)?;
    Ok(plain)
}

/// Builds the share-scheme packages per Section III-D.
///
/// The secret travels in a core onion sealed with per-column core keys;
/// routing metadata and the just-in-time key shares travel in nested
/// column bundles whose headers are sealed with per-row keys. Both the
/// core keys and the row keys of column `j ≥ 1` are `(m_j, n)`-shared and
/// delivered one hop ahead of use.
///
/// # Errors
///
/// Returns [`EmergeError::InvalidParameters`] for non-share `params` or
/// `n` beyond GF(256) sharing, and propagates [`EmergeError::Crypto`]
/// from the Shamir layer.
pub fn build_share_packages(
    plan: &PathPlan,
    params: &SchemeParams,
    schedule: &KeySchedule,
    secret: &[u8],
) -> Result<SharePackages, EmergeError> {
    let (_k, l, n, m) = match params {
        SchemeParams::Share { k, l, n, m } => (*k, *l, *n, m),
        _ => {
            return Err(EmergeError::InvalidParameters(
                "share packages require the share scheme".into(),
            ))
        }
    };
    if n > shamir::MAX_SHARES {
        return Err(EmergeError::InvalidParameters(format!(
            "wire-level GF(256) sharing supports at most {} rows, got {n} \
             (the analysis/Monte-Carlo engines have no such limit)",
            shamir::MAX_SHARES
        )));
    }
    debug_assert_eq!(plan.rows, n);
    debug_assert_eq!(plan.cols, l);

    let mut rng = schedule.shamir_rng();

    // Shares of every column's keys (columns 1..l): row_key_shares[col-1]
    // holds, for each target row r', the n shares of K_{r',col}; and
    // core_key_shares[col-1] the n shares of the core key of `col`.
    let mut row_key_shares: Vec<Vec<Vec<KeyShare>>> = Vec::with_capacity(l - 1);
    let mut core_key_shares: Vec<Vec<KeyShare>> = Vec::with_capacity(l - 1);
    for col in 1..l {
        let threshold = m[col - 1];
        let mut per_target = Vec::with_capacity(n);
        for target_row in 0..n {
            let key = schedule.row_key(target_row, col);
            let shares = shamir::split(key.as_bytes(), threshold, n, &mut rng)?;
            per_target.push(shares);
        }
        row_key_shares.push(per_target);
        let core = schedule.core_key(col);
        core_key_shares.push(shamir::split(core.as_bytes(), threshold, n, &mut rng)?);
    }

    // Build bundles innermost-first.
    let mut inner_sealed: Option<Vec<u8>> = None;
    let mut outermost: Option<ColumnBundle> = None;
    for col in (0..l).rev() {
        let last = col + 1 == l;
        let bundle_key = schedule.bundle_key(col);
        let mut headers = Vec::with_capacity(n);
        for row in 0..n {
            let payload = if last {
                ShareLayerPayload {
                    next_hops: Vec::new(),
                    row_key_shares: Vec::new(),
                    core_key_share: None,
                    bundle_key: None,
                }
            } else {
                ShareLayerPayload {
                    next_hops: (0..n).map(|r| plan.targets[r * l + col + 1]).collect(),
                    row_key_shares: (0..n)
                        .map(|target_row| row_key_shares[col][target_row][row].clone())
                        .collect(),
                    core_key_share: Some(core_key_shares[col][row].clone()),
                    bundle_key: Some(bundle_key.clone()),
                }
            };
            headers.push(seal_header(
                &schedule.row_key(row, col),
                &payload.to_bytes(),
            ));
        }
        let bundle = ColumnBundle {
            headers,
            inner: inner_sealed.take(),
        };
        if col == 0 {
            outermost = Some(bundle);
        } else {
            // Seal this bundle for transport inside the previous column.
            let parent_key = schedule.bundle_key(col - 1);
            inner_sealed = Some(seal_inner(&parent_key, &bundle.to_bytes()));
        }
    }
    let bundle = outermost.expect("loop always produces the outermost bundle");

    // Core onion: sealed with the per-column core keys; payloads empty.
    let core_keys: Vec<SymmetricKey> = (0..l).map(|c| schedule.core_key(c)).collect();
    let empty: Vec<Vec<u8>> = vec![Vec::new(); l];
    let core_layers: Vec<(&SymmetricKey, &[u8])> = core_keys
        .iter()
        .zip(empty.iter())
        .map(|(k, p)| (k, p.as_slice()))
        .collect();
    let core_onion = build_onion(&core_layers, secret);

    Ok(SharePackages {
        bundle: bundle.to_bytes(),
        core_onion,
        col0_row_keys: (0..n).map(|r| schedule.row_key(r, 0)).collect(),
        col0_core_key: schedule.core_key(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::construct_paths;
    use emerge_crypto::onion::{peel, peel_core, Peeled};
    use emerge_dht::overlay::{Overlay, OverlayConfig};

    fn overlay(n: usize) -> Overlay {
        Overlay::build(
            OverlayConfig {
                n_nodes: n,
                ..OverlayConfig::default()
            },
            7,
        )
    }

    fn schedule() -> KeySchedule {
        KeySchedule::new(SymmetricKey::from_bytes([0x42; 32]))
    }

    #[test]
    fn label_writer_matches_the_format_macro() {
        for (row, col) in [
            (0usize, 0usize),
            (1, 9),
            (10, 10),
            (12345, 678),
            (usize::MAX, usize::MAX),
        ] {
            let mut w = LabelWriter::new("row-key");
            w.push_segment(row);
            w.push_segment(col);
            assert_eq!(w.as_bytes(), format!("row-key/{row}/{col}").as_bytes());
        }
        let mut w = LabelWriter::new("bundle-key");
        w.push_segment(42);
        assert_eq!(w.as_bytes(), b"bundle-key/42");
    }

    #[test]
    fn memoized_derivations_match_explicit_labels() {
        // The cache and the stack label writer must not change a single
        // derived byte relative to the original format!-based derivation.
        let seed = SymmetricKey::from_bytes([0x42; 32]);
        let s = KeySchedule::new(seed.clone());
        assert_eq!(
            s.row_key(5, 11).into_bytes(),
            seed.derive(b"row-key/5/11").into_bytes()
        );
        assert_eq!(
            s.column_key(3).into_bytes(),
            seed.derive(b"column-key/3").into_bytes()
        );
        assert_eq!(
            s.core_key(0).into_bytes(),
            seed.derive(b"core-key/0").into_bytes()
        );
        assert_eq!(
            s.bundle_key(7).into_bytes(),
            seed.derive(b"bundle-key/7").into_bytes()
        );
        // A second ask is a cache hit and returns the same key.
        assert_eq!(
            s.row_key(5, 11).into_bytes(),
            seed.derive(b"row-key/5/11").into_bytes()
        );
    }

    #[test]
    fn key_schedule_labels_are_separated() {
        let s = schedule();
        assert_ne!(s.column_key(0).into_bytes(), s.column_key(1).into_bytes());
        assert_ne!(s.column_key(0).into_bytes(), s.core_key(0).into_bytes());
        assert_ne!(
            s.row_key(0, 1).into_bytes(),
            s.row_key(1, 0).into_bytes(),
            "row/col must not be confusable"
        );
    }

    #[test]
    fn keyed_payload_roundtrip() {
        let p = KeyedLayerPayload {
            next_hops: vec![NodeId::from_name(b"a"), NodeId::from_name(b"b")],
        };
        assert_eq!(KeyedLayerPayload::from_bytes(&p.to_bytes()).unwrap(), p);
        let empty = KeyedLayerPayload { next_hops: vec![] };
        assert_eq!(
            KeyedLayerPayload::from_bytes(&empty.to_bytes()).unwrap(),
            empty
        );
    }

    #[test]
    fn share_payload_roundtrip() {
        let p = ShareLayerPayload {
            next_hops: vec![NodeId::from_name(b"x")],
            row_key_shares: vec![KeyShare::new(3, vec![1; 32]), KeyShare::new(3, vec![2; 32])],
            core_key_share: Some(KeyShare::new(3, vec![9; 32])),
            bundle_key: Some(SymmetricKey::from_bytes([7; 32])),
        };
        assert_eq!(ShareLayerPayload::from_bytes(&p.to_bytes()).unwrap(), p);
        let bare = ShareLayerPayload {
            next_hops: vec![],
            row_key_shares: vec![],
            core_key_share: None,
            bundle_key: None,
        };
        assert_eq!(
            ShareLayerPayload::from_bytes(&bare.to_bytes()).unwrap(),
            bare
        );
    }

    #[test]
    fn column_bundle_roundtrip() {
        let b = ColumnBundle {
            headers: vec![vec![1, 2, 3], vec![], vec![9; 40]],
            inner: Some(vec![5; 100]),
        };
        assert_eq!(ColumnBundle::from_bytes(&b.to_bytes()).unwrap(), b);
        let last = ColumnBundle {
            headers: vec![vec![0; 8]],
            inner: None,
        };
        assert_eq!(ColumnBundle::from_bytes(&last.to_bytes()).unwrap(), last);
    }

    #[test]
    fn joint_onion_peels_hop_by_hop() {
        let ov = overlay(100);
        let params = SchemeParams::Joint { k: 2, l: 3 };
        let plan = construct_paths(&ov, &params, &SymmetricKey::from_bytes([9; 32])).unwrap();
        let sched = schedule();
        let pkgs = build_keyed_packages(&plan, &params, &sched, b"THE-SECRET").unwrap();
        assert_eq!(pkgs.onions.len(), 2);
        assert_eq!(pkgs.column_keys.len(), 3);

        let mut onion = pkgs.onions[0].clone();
        for col in 0..2 {
            let Peeled::Intermediate { payload, inner } =
                peel(&pkgs.column_keys[col], &onion).unwrap()
            else {
                panic!("expected intermediate at column {col}");
            };
            let parsed = KeyedLayerPayload::from_bytes(&payload).unwrap();
            // Joint: the payload lists the whole next column.
            assert_eq!(parsed.next_hops.len(), 2);
            assert_eq!(parsed.next_hops[0], plan.targets[col + 1]); // row 0
            assert_eq!(parsed.next_hops[1], plan.targets[3 + col + 1]); // row 1
            onion = inner;
        }
        let (last_payload, secret) = peel_core(&pkgs.column_keys[2], &onion).unwrap();
        let parsed = KeyedLayerPayload::from_bytes(&last_payload).unwrap();
        assert!(parsed.next_hops.is_empty());
        assert_eq!(secret, b"THE-SECRET");
    }

    #[test]
    fn disjoint_onion_routes_along_its_own_row() {
        let ov = overlay(100);
        let params = SchemeParams::Disjoint { k: 2, l: 3 };
        let plan = construct_paths(&ov, &params, &SymmetricKey::from_bytes([9; 32])).unwrap();
        let sched = schedule();
        let pkgs = build_keyed_packages(&plan, &params, &sched, b"s").unwrap();

        let Peeled::Intermediate { payload, .. } =
            peel(&pkgs.column_keys[0], &pkgs.onions[1]).unwrap()
        else {
            panic!("expected intermediate");
        };
        let parsed = KeyedLayerPayload::from_bytes(&payload).unwrap();
        assert_eq!(parsed.next_hops, vec![plan.targets[3 + 1]]); // row 1, col 1
    }

    #[test]
    fn wrong_scheme_rejected() {
        let ov = overlay(50);
        let params = SchemeParams::Joint { k: 2, l: 2 };
        let plan = construct_paths(&ov, &params, &SymmetricKey::from_bytes([1; 32])).unwrap();
        let err =
            build_keyed_packages(&plan, &SchemeParams::Central, &schedule(), b"s").unwrap_err();
        assert!(matches!(err, EmergeError::InvalidParameters(_)));
    }

    #[test]
    fn share_packages_reconstruct_with_threshold_shares() {
        let ov = overlay(100);
        let params = SchemeParams::Share {
            k: 2,
            l: 3,
            n: 5,
            m: vec![3, 3],
        };
        let plan = construct_paths(&ov, &params, &SymmetricKey::from_bytes([5; 32])).unwrap();
        let sched = schedule();
        let pkgs = build_share_packages(&plan, &params, &sched, b"CORE-SECRET").unwrap();
        assert_eq!(pkgs.col0_row_keys.len(), 5);

        // Open each column-0 header with the directly delivered row key
        // and collect the shares for column 1.
        let bundle0 = ColumnBundle::from_bytes(&pkgs.bundle).unwrap();
        assert_eq!(bundle0.headers.len(), 5);
        let mut payloads = Vec::new();
        for row in 0..5 {
            payloads.push(open_header(&pkgs.col0_row_keys[row], &bundle0.headers[row]).unwrap());
        }

        // Any 3 of the 5 shares reconstruct row 2's column-1 key.
        let target_row = 2usize;
        let shares: Vec<KeyShare> = payloads
            .iter()
            .take(3)
            .map(|p| p.row_key_shares[target_row].clone())
            .collect();
        let recovered = shamir::combine(&shares, 3).unwrap();
        assert_eq!(recovered, sched.row_key(target_row, 1).as_bytes());

        // Two shares are not enough.
        assert!(shamir::combine(&shares[..2], 3).is_err());

        // Core key reconstructs the same way and peels the core onion.
        let core_shares: Vec<KeyShare> = payloads
            .iter()
            .skip(1)
            .take(3)
            .map(|p| p.core_key_share.clone().unwrap())
            .collect();
        let core_key_bytes = shamir::combine(&core_shares, 3).unwrap();
        let mut kb = [0u8; 32];
        kb.copy_from_slice(&core_key_bytes);
        let core_key_1 = SymmetricKey::from_bytes(kb);

        let Peeled::Intermediate { inner, .. } =
            peel(&pkgs.col0_core_key, &pkgs.core_onion).unwrap()
        else {
            panic!("core onion must have 3 layers");
        };
        let Peeled::Intermediate { inner, .. } = peel(&core_key_1, &inner).unwrap() else {
            panic!("layer 1 must peel with the reconstructed key");
        };
        let (_, secret) = peel_core(&sched.core_key(2), &inner).unwrap();
        assert_eq!(secret, b"CORE-SECRET");
    }

    #[test]
    fn share_bundles_unwrap_column_by_column() {
        let ov = overlay(100);
        let params = SchemeParams::Share {
            k: 2,
            l: 3,
            n: 4,
            m: vec![2, 2],
        };
        let sender = SymmetricKey::from_bytes([8; 32]);
        let plan = construct_paths(&ov, &params, &sender).unwrap();
        let sched = schedule();
        let pkgs = build_share_packages(&plan, &params, &sched, b"s").unwrap();

        let bundle0 = ColumnBundle::from_bytes(&pkgs.bundle).unwrap();
        let payload0 = open_header(&pkgs.col0_row_keys[0], &bundle0.headers[0]).unwrap();
        let bk0 = payload0.bundle_key.expect("column 0 carries a bundle key");
        let bundle1 = open_inner(&bk0, bundle0.inner.as_ref().unwrap()).unwrap();
        assert_eq!(bundle1.headers.len(), 4);

        // Column 1 headers open with the (derivable) row keys.
        let payload1 = open_header(&sched.row_key(1, 1), &bundle1.headers[1]).unwrap();
        let bk1 = payload1.bundle_key.expect("column 1 carries a bundle key");
        let bundle2 = open_inner(&bk1, bundle1.inner.as_ref().unwrap()).unwrap();
        assert!(bundle2.inner.is_none(), "last column has no inner bundle");

        // Terminal headers carry an empty payload.
        let payload2 = open_header(&sched.row_key(3, 2), &bundle2.headers[3]).unwrap();
        assert!(payload2.next_hops.is_empty());
        assert!(payload2.row_key_shares.is_empty());
        assert!(payload2.bundle_key.is_none());
    }

    #[test]
    fn share_share_indices_match_sender_row() {
        let ov = overlay(60);
        let params = SchemeParams::Share {
            k: 1,
            l: 2,
            n: 4,
            m: vec![2],
        };
        let plan = construct_paths(&ov, &params, &SymmetricKey::from_bytes([6; 32])).unwrap();
        let pkgs = build_share_packages(&plan, &params, &schedule(), b"x").unwrap();
        let bundle0 = ColumnBundle::from_bytes(&pkgs.bundle).unwrap();
        for row in 0..4 {
            let parsed = open_header(&pkgs.col0_row_keys[row], &bundle0.headers[row]).unwrap();
            for s in &parsed.row_key_shares {
                assert_eq!(s.index as usize, row + 1, "share index must be the row");
            }
            assert_eq!(parsed.next_hops.len(), 4);
        }
    }

    #[test]
    fn oversized_share_grid_rejected_at_wire_level() {
        let ov = overlay(60);
        let params = SchemeParams::Share {
            k: 2,
            l: 2,
            n: 300,
            m: vec![100],
        };
        // construct_paths would also fail (not enough nodes); validate the
        // package-level guard directly with a fabricated plan.
        let plan = crate::path::PathPlan {
            rows: 300,
            cols: 2,
            slots: (0..600).collect(),
            targets: vec![NodeId::ZERO; 600],
        };
        let _ = ov;
        let err = build_share_packages(&plan, &params, &schedule(), b"s").unwrap_err();
        assert!(matches!(err, EmergeError::InvalidParameters(_)));
    }

    #[test]
    fn packages_are_deterministic() {
        let ov = overlay(80);
        let params = SchemeParams::Joint { k: 2, l: 2 };
        let seed = SymmetricKey::from_bytes([3; 32]);
        let plan = construct_paths(&ov, &params, &seed).unwrap();
        let sched = KeySchedule::new(seed);
        let a = build_keyed_packages(&plan, &params, &sched, b"s").unwrap();
        let b = build_keyed_packages(&plan, &params, &sched, b"s").unwrap();
        assert_eq!(a.onions, b.onions);
    }
}
