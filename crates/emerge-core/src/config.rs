//! Scheme selection and parameters.
//!
//! The four self-emerging key routing schemes of Section III, with their
//! structural parameters:
//!
//! * `k` — the replication factor: number of parallel onion paths
//!   (disjoint/joint) or onion-carrying rows (share),
//! * `l` — the path length in hops ("columns"); the holding period is
//!   `th = T / l`,
//! * `n` — share-scheme row count (`⌊N / l⌋` per Algorithm 1 line 1),
//! * `m[j]` — share-scheme reconstruction thresholds per column.

use crate::error::EmergeError;
use std::fmt;

/// Which routing scheme to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Single holder stores the key for the whole emerging period.
    Central,
    /// `k` node-disjoint replicated onion paths of length `l`
    /// (Section III-B).
    Disjoint,
    /// Column-complete multipath topology (Section III-C).
    Joint,
    /// Key-share routing: onion keys delivered just-in-time as Shamir
    /// shares (Section III-D, Algorithm 1).
    Share,
}

impl SchemeKind {
    /// All four schemes, in the paper's order.
    pub const ALL: [SchemeKind; 4] = [
        SchemeKind::Central,
        SchemeKind::Disjoint,
        SchemeKind::Joint,
        SchemeKind::Share,
    ];

    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            SchemeKind::Central => "central",
            SchemeKind::Disjoint => "disjoint",
            SchemeKind::Joint => "joint",
            SchemeKind::Share => "share",
        }
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Fully resolved structural parameters for one scheme instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemeParams {
    /// Centralized storage on one node.
    Central,
    /// Node-disjoint multipath: `k` paths × `l` holders.
    Disjoint {
        /// Number of replicated paths.
        k: usize,
        /// Holders per path.
        l: usize,
    },
    /// Node-joint multipath: the same `k × l` grid with column-complete
    /// forwarding.
    Joint {
        /// Number of onion rows.
        k: usize,
        /// Columns (hops).
        l: usize,
    },
    /// Key-share routing over an `n × l` grid; rows `1..=k` carry the
    /// secret-bearing onion.
    Share {
        /// Onion-carrying rows.
        k: usize,
        /// Columns (hops).
        l: usize,
        /// Total rows (shares per column key).
        n: usize,
        /// Reconstruction threshold for the keys of columns `2..=l`
        /// (`m[j-2]` is the threshold for column `j`). Column 1 keys are
        /// delivered directly by the sender.
        m: Vec<usize>,
    },
}

impl SchemeParams {
    /// The scheme this parameter set instantiates.
    pub fn kind(&self) -> SchemeKind {
        match self {
            SchemeParams::Central => SchemeKind::Central,
            SchemeParams::Disjoint { .. } => SchemeKind::Disjoint,
            SchemeParams::Joint { .. } => SchemeKind::Joint,
            SchemeParams::Share { .. } => SchemeKind::Share,
        }
    }

    /// Number of distinct DHT holders the structure consumes — the cost
    /// metric `C` of Figure 6(b)/(d).
    pub fn node_cost(&self) -> usize {
        match self {
            SchemeParams::Central => 1,
            SchemeParams::Disjoint { k, l } | SchemeParams::Joint { k, l } => k * l,
            SchemeParams::Share { l, n, .. } => n * l,
        }
    }

    /// Path length `l` (1 for the centralized scheme). The holding period
    /// is `th = T / l`.
    pub fn path_length(&self) -> usize {
        match self {
            SchemeParams::Central => 1,
            SchemeParams::Disjoint { l, .. }
            | SchemeParams::Joint { l, .. }
            | SchemeParams::Share { l, .. } => *l,
        }
    }

    /// Validates structural invariants.
    ///
    /// # Errors
    ///
    /// Returns [`EmergeError::InvalidParameters`] if any dimension is zero,
    /// `k > n` for the share scheme, a threshold is out of `1..=n`, or the
    /// threshold vector length is not `l - 1`.
    pub fn validate(&self) -> Result<(), EmergeError> {
        let fail = |msg: String| Err(EmergeError::InvalidParameters(msg));
        match self {
            SchemeParams::Central => Ok(()),
            SchemeParams::Disjoint { k, l } | SchemeParams::Joint { k, l } => {
                if *k == 0 || *l == 0 {
                    return fail(format!("k and l must be positive (k={k}, l={l})"));
                }
                Ok(())
            }
            SchemeParams::Share { k, l, n, m } => {
                if *k == 0 || *l == 0 || *n == 0 {
                    return fail(format!("k, l, n must be positive (k={k}, l={l}, n={n})"));
                }
                if k > n {
                    return fail(format!("onion rows k={k} cannot exceed total rows n={n}"));
                }
                // NOTE: `n` is deliberately NOT capped at 255 here. The
                // analysis and Monte-Carlo engines evaluate the paper-scale
                // grids (n up to N/l = 1250 at 10000 nodes); only the
                // wire-level package builder is bound by GF(256) sharing
                // and enforces n <= 255 itself.
                if m.len() != l - 1 {
                    return fail(format!(
                        "threshold vector has {} entries, expected l-1 = {}",
                        m.len(),
                        l - 1
                    ));
                }
                for (i, &mi) in m.iter().enumerate() {
                    if mi == 0 || mi > *n {
                        return fail(format!("threshold m[{i}] = {mi} out of range 1..={n}"));
                    }
                }
                Ok(())
            }
        }
    }

    /// Convenience accessor: `(k, l)` for the multipath schemes.
    pub fn grid(&self) -> Option<(usize, usize)> {
        match self {
            SchemeParams::Central => None,
            SchemeParams::Disjoint { k, l }
            | SchemeParams::Joint { k, l }
            | SchemeParams::Share { k, l, .. } => Some((*k, *l)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_figures() {
        assert_eq!(SchemeKind::Central.to_string(), "central");
        assert_eq!(SchemeKind::Disjoint.to_string(), "disjoint");
        assert_eq!(SchemeKind::Joint.to_string(), "joint");
        assert_eq!(SchemeKind::Share.to_string(), "share");
    }

    #[test]
    fn node_cost_matches_structure() {
        assert_eq!(SchemeParams::Central.node_cost(), 1);
        assert_eq!(SchemeParams::Disjoint { k: 2, l: 3 }.node_cost(), 6);
        assert_eq!(SchemeParams::Joint { k: 4, l: 5 }.node_cost(), 20);
        assert_eq!(
            SchemeParams::Share {
                k: 2,
                l: 3,
                n: 7,
                m: vec![3, 3]
            }
            .node_cost(),
            21
        );
    }

    #[test]
    fn validation_accepts_good_params() {
        assert!(SchemeParams::Central.validate().is_ok());
        assert!(SchemeParams::Disjoint { k: 2, l: 3 }.validate().is_ok());
        assert!(SchemeParams::Joint { k: 1, l: 1 }.validate().is_ok());
        assert!(SchemeParams::Share {
            k: 2,
            l: 3,
            n: 5,
            m: vec![2, 3]
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn validation_rejects_zero_dims() {
        assert!(SchemeParams::Disjoint { k: 0, l: 3 }.validate().is_err());
        assert!(SchemeParams::Joint { k: 2, l: 0 }.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_share_params() {
        // k > n
        assert!(SchemeParams::Share {
            k: 6,
            l: 2,
            n: 5,
            m: vec![2]
        }
        .validate()
        .is_err());
        // wrong threshold vector length
        assert!(SchemeParams::Share {
            k: 2,
            l: 3,
            n: 5,
            m: vec![2]
        }
        .validate()
        .is_err());
        // threshold out of range
        assert!(SchemeParams::Share {
            k: 2,
            l: 2,
            n: 5,
            m: vec![6]
        }
        .validate()
        .is_err());
        // n beyond GF(256) is fine for analysis/Monte-Carlo (wire-level
        // packaging enforces its own limit).
        assert!(SchemeParams::Share {
            k: 2,
            l: 2,
            n: 300,
            m: vec![100]
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn grid_and_path_length() {
        assert_eq!(SchemeParams::Central.grid(), None);
        assert_eq!(SchemeParams::Central.path_length(), 1);
        assert_eq!(SchemeParams::Joint { k: 3, l: 7 }.grid(), Some((3, 7)));
        assert_eq!(
            SchemeParams::Share {
                k: 2,
                l: 4,
                n: 9,
                m: vec![4, 4, 5]
            }
            .path_length(),
            4
        );
    }

    #[test]
    fn kind_roundtrip() {
        for kind in SchemeKind::ALL {
            let params = match kind {
                SchemeKind::Central => SchemeParams::Central,
                SchemeKind::Disjoint => SchemeParams::Disjoint { k: 1, l: 1 },
                SchemeKind::Joint => SchemeParams::Joint { k: 1, l: 1 },
                SchemeKind::Share => SchemeParams::Share {
                    k: 1,
                    l: 1,
                    n: 1,
                    m: vec![],
                },
            };
            assert_eq!(params.kind(), kind);
        }
    }
}
