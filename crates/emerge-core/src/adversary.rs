//! Adversary model: holder timelines and the release-ahead / drop attack
//! predicates.
//!
//! A *trial* samples, for every holder position in the scheme's grid, a
//! [`HolderTimeline`]: which node occupies the position over time (churn
//! replaces tenants; each tenant is independently malicious with the
//! population's rate, matching the paper's replication re-exposure model).
//! The predicates in this module then decide — mechanistically, not via
//! the closed forms — whether each attack succeeds on that trial. The
//! Monte-Carlo engine averages them into measured `Rr`/`Rd`.
//!
//! Two release-ahead notions are provided:
//!
//! * the **paper metric** ([`KeyedTrial::release_succeeds`],
//!   [`ShareTrial::release_succeeds`]): the adversary reconstructs the
//!   secret key from material leaked across the whole emerging period —
//!   for the keyed schemes this requires a malicious holder of *every*
//!   column key (the full chain of equation 1);
//! * a **stricter extension metric**
//!   ([`KeyedTrial::release_before_tr_succeeds`],
//!   [`ShareTrial::release_strict_succeeds`]): any suffix chain counts,
//!   because a malicious holder that first touches the onion at column
//!   `j₀` already holds everything below it. The paper's formulas do not
//!   count these partial-early releases; we expose them as an ablation
//!   (see EXPERIMENTS.md).

/// One holder position's tenancy over a trial, in units of the mean node
/// lifetime. `renewals[g]` is the instant tenant `g` is replaced by tenant
/// `g+1`; `statuses[g]` is tenant `g`'s malicious flag.
///
/// Beyond death-churn, a holder can be **transiently unavailable** at its
/// forwarding instant (Section II-C's "node unavailability": transient
/// departures with later return). This is modelled as a single Bernoulli
/// flag per position — the steady-state probability of being offline when
/// the forwarding deadline hits.
#[derive(Debug, Clone, PartialEq)]
pub struct HolderTimeline {
    renewals: Vec<f64>,
    statuses: Vec<bool>,
    offline_at_forward: bool,
}

impl HolderTimeline {
    /// A churn-free timeline: one tenant forever.
    pub fn stable(malicious: bool) -> Self {
        HolderTimeline {
            renewals: Vec::new(),
            statuses: vec![malicious],
            offline_at_forward: false,
        }
    }

    /// A timeline with tenant replacements at the given (sorted, positive)
    /// instants. `statuses.len()` must be `renewals.len() + 1`.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree or renewals are not strictly increasing
    /// and positive.
    pub fn with_renewals(renewals: Vec<f64>, statuses: Vec<bool>) -> Self {
        // LINT-WAIVER(panic): documented # Panics contract: renewal and status vectors must align
        assert_eq!(
            statuses.len(),
            renewals.len() + 1,
            "one status per tenant: {} renewals need {} statuses",
            renewals.len(),
            renewals.len() + 1
        );
        let mut prev = 0.0;
        for &r in &renewals {
            // LINT-WAIVER(panic): documented # Panics contract: renewal times must be ordered and positive
            assert!(
                r > prev,
                "renewals must be strictly increasing and positive"
            );
            prev = r;
        }
        HolderTimeline {
            renewals,
            statuses,
            offline_at_forward: false,
        }
    }

    /// Marks the holder transiently offline at its forwarding instant.
    pub fn with_offline_at_forward(mut self, offline: bool) -> Self {
        self.offline_at_forward = offline;
        self
    }

    /// Whether the holder is offline exactly when it should forward.
    pub fn offline_at_forward(&self) -> bool {
        self.offline_at_forward
    }

    /// Number of tenants.
    pub fn tenant_count(&self) -> usize {
        self.statuses.len()
    }

    /// Whether the tenant occupying the position at time `t` is malicious.
    pub fn tenant_malicious_at(&self, t: f64) -> bool {
        let idx = self.renewals.partition_point(|&r| r <= t);
        self.statuses[idx]
    }

    /// Whether any tenant whose tenancy overlaps `[from, to]` is malicious
    /// — the churn *re-exposure* predicate: every overlapping tenant saw
    /// whatever the position stored during that window.
    pub fn malicious_exposure_in(&self, from: f64, to: f64) -> bool {
        // LINT-WAIVER(panic): documented # Panics contract: the exposure window must be ordered
        assert!(from <= to, "exposure window must be ordered");
        let first = self.renewals.partition_point(|&r| r <= from);
        let last = self.renewals.partition_point(|&r| r <= to);
        self.statuses[first..=last].iter().any(|&m| m)
    }

    /// Whether the same tenant occupies the position at `from` and through
    /// `to` (no replacement in between) — i.e. the holder "survives" the
    /// holding period without dying.
    pub fn same_tenant_through(&self, from: f64, to: f64) -> bool {
        // LINT-WAIVER(panic): documented # Panics contract: the holding window must be ordered
        assert!(from <= to);
        let a = self.renewals.partition_point(|&r| r <= from);
        let b = self.renewals.partition_point(|&r| r <= to);
        a == b
    }
}

/// A sampled trial for the centralized scheme.
#[derive(Debug, Clone)]
pub struct CentralTrial {
    /// The single holder's timeline.
    pub holder: HolderTimeline,
    /// Total emerging period `T` (in lifetime units).
    pub t_total: f64,
}

impl CentralTrial {
    /// Release-ahead success: any tenant during `T` saw the key.
    pub fn release_succeeds(&self) -> bool {
        self.holder.malicious_exposure_in(0.0, self.t_total)
    }

    /// Drop success: identical exposure condition — a malicious tenant can
    /// destroy the key just as easily as leak it. A holder that is
    /// transiently offline at the release instant also fails to release on
    /// time (Section II-C's unavailability).
    pub fn drop_succeeds(&self) -> bool {
        self.release_succeeds() || self.holder.offline_at_forward()
    }
}

/// A sampled trial for the disjoint/joint multipath schemes: a `k × l`
/// grid of holder timelines, row-major (`holders[row * l + col]`).
#[derive(Debug, Clone)]
pub struct KeyedTrial {
    /// Holder timelines, row-major.
    pub holders: Vec<HolderTimeline>,
    /// Rows (replication factor k).
    pub k: usize,
    /// Columns (path length l).
    pub l: usize,
    /// Holding period `th` in lifetime units.
    pub th: f64,
}

impl KeyedTrial {
    fn holder(&self, row: usize, col: usize) -> &HolderTimeline {
        &self.holders[row * self.l + col]
    }

    /// Arrival time of the onion at column `col` (0-based): `col · th`.
    fn arrival(&self, col: usize) -> f64 {
        col as f64 * self.th
    }

    /// Key `K_j` of column `col` is stored from `ts` until the onion
    /// arrives; any malicious tenant in that window learns it. For column
    /// 0 the key is used immediately at `ts`, so only the initial tenant
    /// counts.
    pub fn key_exposed(&self, col: usize) -> bool {
        let until = self.arrival(col);
        (0..self.k).any(|row| {
            if until == 0.0 {
                self.holder(row, col).tenant_malicious_at(0.0)
            } else {
                self.holder(row, col).malicious_exposure_in(0.0, until)
            }
        })
    }

    /// Any malicious contact with the onion while it rests at `col`
    /// (window `[col·th, (col+1)·th]`), in any row.
    pub fn onion_contact(&self, col: usize) -> bool {
        let from = self.arrival(col);
        let to = from + self.th;
        (0..self.k).any(|row| self.holder(row, col).malicious_exposure_in(from, to))
    }

    /// **Paper release-ahead metric** (equation 1's event): the adversary
    /// assembles every column key, i.e. each column leaks its key at some
    /// point during its storage life. Column 0 exposure also hands the
    /// adversary the full onion at `ts`.
    pub fn release_succeeds(&self) -> bool {
        (0..self.l).all(|col| self.key_exposed(col))
    }

    /// **Stricter metric**: the adversary obtains the (peeled) onion at
    /// some column `j₀` and every later column's key — releasing at
    /// `t_{j₀}` < `tr`. Includes the paper event as the `j₀ = 0` case.
    pub fn release_before_tr_succeeds(&self) -> bool {
        // Precompute key exposure per column.
        let exposed: Vec<bool> = (0..self.l).map(|c| self.key_exposed(c)).collect();
        let mut suffix_ok = true; // all columns > j0 exposed
        for j0 in (0..self.l).rev() {
            if self.onion_contact(j0) && suffix_ok {
                return true;
            }
            suffix_ok = suffix_ok && exposed[j0];
        }
        false
    }

    /// Whether the holder at `(row, col)` fails to forward: a malicious
    /// tenant touched the onion during its stay, or the holder is
    /// transiently offline at the forwarding deadline.
    fn forwarding_blocked(&self, row: usize, col: usize) -> bool {
        let from = self.arrival(col);
        let h = self.holder(row, col);
        h.malicious_exposure_in(from, from + self.th) || h.offline_at_forward()
    }

    /// Drop success for the **node-disjoint** topology: every row (path)
    /// has at least one column where forwarding is blocked (malicious
    /// contact or transient unavailability).
    pub fn drop_disjoint_succeeds(&self) -> bool {
        (0..self.k).all(|row| (0..self.l).any(|col| self.forwarding_blocked(row, col)))
    }

    /// Drop success for the **node-joint** topology: some column is
    /// entirely blocked, cutting every forwarding route at once.
    pub fn drop_joint_succeeds(&self) -> bool {
        (0..self.l).any(|col| (0..self.k).all(|row| self.forwarding_blocked(row, col)))
    }
}

/// A sampled trial for the key-share routing scheme: an `n × l` grid
/// (rows `0..k` carry the secret-bearing onion), with per-column
/// reconstruction thresholds.
#[derive(Debug, Clone)]
pub struct ShareTrial {
    /// Holder timelines, row-major (`holders[row * l + col]`).
    pub holders: Vec<HolderTimeline>,
    /// Onion-carrying rows.
    pub k: usize,
    /// Total rows (share count n).
    pub n: usize,
    /// Columns (path length l).
    pub l: usize,
    /// Holding period in lifetime units.
    pub th: f64,
    /// `m[j-1]` is the threshold for the keys of column `j` (0-based
    /// columns `1..l`), i.e. `m.len() == l - 1`.
    pub m: Vec<usize>,
}

impl ShareTrial {
    fn holder(&self, row: usize, col: usize) -> &HolderTimeline {
        &self.holders[row * self.l + col]
    }

    fn arrival(&self, col: usize) -> f64 {
        col as f64 * self.th
    }

    /// Whether the tenant that receives column `col`'s package is
    /// malicious.
    pub fn receiver_malicious(&self, row: usize, col: usize) -> bool {
        self.holder(row, col).tenant_malicious_at(self.arrival(col))
    }

    /// Whether the receiving tenant survives its holding period (dying
    /// mid-hold loses the in-flight package: the share scheme deliberately
    /// stores nothing replicable).
    pub fn survives_hold(&self, row: usize, col: usize) -> bool {
        let from = self.arrival(col);
        self.holder(row, col)
            .same_tenant_through(from, from + self.th)
    }

    /// Number of malicious receivers in a column (share leak sources).
    pub fn malicious_count(&self, col: usize) -> usize {
        (0..self.n)
            .filter(|&row| self.receiver_malicious(row, col))
            .count()
    }

    /// Number of honest receivers that survive their hold, are online at
    /// the forwarding deadline, and therefore actually deliver their
    /// shares to the next column.
    pub fn honest_forwarder_count(&self, col: usize) -> usize {
        (0..self.n)
            .filter(|&row| {
                !self.receiver_malicious(row, col)
                    && self.survives_hold(row, col)
                    && !self.holder(row, col).offline_at_forward()
            })
            .count()
    }

    /// **Paper-aligned release-ahead metric** (the per-column accumulation
    /// of Algorithm 1, lines 8–9 and 14–15): every column is compromised,
    /// where a column falls either through a malicious onion-row holder or
    /// through a share quorum at the previous column.
    pub fn release_succeeds(&self) -> bool {
        (0..self.l).all(|col| {
            let onion_row_leak = (0..self.k).any(|row| self.receiver_malicious(row, col));
            let share_leak = col >= 1 && self.malicious_count(col - 1) >= self.m[col - 1];
            onion_row_leak || share_leak
        })
    }

    /// **Strict chain metric**: the adversary must assemble a share quorum
    /// at every column boundary (and touch the onion at column 0); single
    /// malicious onion rows mid-path do not substitute for quorums. This
    /// is what the wire-level package format actually enforces.
    pub fn release_strict_succeeds(&self) -> bool {
        let onion_at_start = (0..self.k).any(|row| self.receiver_malicious(row, 0));
        onion_at_start && (1..self.l).all(|col| self.malicious_count(col - 1) >= self.m[col - 1])
    }

    /// Drop success: some column fails to deliver. Two channels exist:
    ///
    /// * **share starvation** — the keys of column `col` cannot be
    ///   reconstructed because fewer than `m` of column `col−1`'s holders
    ///   forwarded their shares (malicious receivers withhold; a holder
    ///   dying mid-hold takes its shares with it — shares are deliberately
    ///   *not* re-homed by replication, since handing key material to a
    ///   fresh possibly-malicious tenant is the exposure channel this
    ///   scheme exists to close);
    /// * **onion capture** — all `k` onion-row tenants of some column are
    ///   malicious and withhold every copy of the secret-bearing onion.
    ///   Honest deaths do *not* lose the onion: it is an opaque
    ///   ciphertext, replicated `k`-wide and re-homed to slot replacements
    ///   by ordinary DHT replication (re-exposing it leaks nothing). This
    ///   mirrors Algorithm 1's per-column `(Pd_i)^k` fold.
    pub fn drop_succeeds(&self) -> bool {
        for col in 0..self.l {
            if col >= 1 && self.honest_forwarder_count(col - 1) < self.m[col - 1] {
                return true;
            }
            let onion_captured = (0..self.k).all(|row| self.receiver_malicious(row, col));
            if onion_captured {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stable_grid(flags: &[&[bool]]) -> Vec<HolderTimeline> {
        // flags[row][col]
        let mut v = Vec::new();
        for row in flags {
            for &m in *row {
                v.push(HolderTimeline::stable(m));
            }
        }
        v
    }

    mod timeline {
        use super::*;

        #[test]
        fn stable_tenant_everywhere() {
            let t = HolderTimeline::stable(true);
            assert!(t.tenant_malicious_at(0.0));
            assert!(t.tenant_malicious_at(1e9));
            assert!(t.malicious_exposure_in(0.0, 5.0));
            assert!(t.same_tenant_through(0.0, 1e9));
            assert_eq!(t.tenant_count(), 1);
        }

        #[test]
        fn renewals_switch_tenants() {
            // honest until 1.0, malicious until 2.5, honest after.
            let t = HolderTimeline::with_renewals(vec![1.0, 2.5], vec![false, true, false]);
            assert!(!t.tenant_malicious_at(0.5));
            assert!(t.tenant_malicious_at(1.0)); // boundary: new tenant owns it
            assert!(t.tenant_malicious_at(2.0));
            assert!(!t.tenant_malicious_at(3.0));
        }

        #[test]
        fn exposure_sees_all_overlapping_tenants() {
            let t = HolderTimeline::with_renewals(vec![1.0, 2.0], vec![false, true, false]);
            assert!(!t.malicious_exposure_in(0.0, 0.9));
            assert!(t.malicious_exposure_in(0.0, 1.0)); // tenant 1 arrives at 1.0
            assert!(t.malicious_exposure_in(1.5, 1.7));
            assert!(t.malicious_exposure_in(0.5, 3.0));
            assert!(!t.malicious_exposure_in(2.5, 3.0));
        }

        #[test]
        fn survival_requires_no_renewal() {
            let t = HolderTimeline::with_renewals(vec![1.0], vec![false, false]);
            assert!(t.same_tenant_through(0.0, 0.99));
            assert!(!t.same_tenant_through(0.5, 1.0));
            assert!(t.same_tenant_through(1.0, 5.0));
        }

        #[test]
        #[should_panic(expected = "one status per tenant")]
        fn mismatched_lengths_panic() {
            let _ = HolderTimeline::with_renewals(vec![1.0], vec![true]);
        }

        #[test]
        #[should_panic(expected = "strictly increasing")]
        fn unsorted_renewals_panic() {
            let _ = HolderTimeline::with_renewals(vec![2.0, 1.0], vec![true, true, true]);
        }
    }

    mod central {
        use super::*;

        #[test]
        fn honest_holder_resists() {
            let t = CentralTrial {
                holder: HolderTimeline::stable(false),
                t_total: 3.0,
            };
            assert!(!t.release_succeeds());
            assert!(!t.drop_succeeds());
        }

        #[test]
        fn malicious_replacement_breaks_it() {
            let t = CentralTrial {
                holder: HolderTimeline::with_renewals(vec![1.5], vec![false, true]),
                t_total: 3.0,
            };
            assert!(t.release_succeeds());
        }

        #[test]
        fn replacement_after_release_time_is_harmless() {
            let t = CentralTrial {
                holder: HolderTimeline::with_renewals(vec![5.0], vec![false, true]),
                t_total: 3.0,
            };
            assert!(!t.release_succeeds());
        }
    }

    mod keyed {
        use super::*;

        /// The paper's Figure 2 example: 4 keys, path length 4 is reduced
        /// here to focused 1-row cases plus multi-row grids.
        fn trial(flags: &[&[bool]], th: f64) -> KeyedTrial {
            let k = flags.len();
            let l = flags[0].len();
            KeyedTrial {
                holders: stable_grid(flags),
                k,
                l,
                th,
            }
        }

        #[test]
        fn clean_path_resists_everything() {
            let t = trial(&[&[false, false, false]], 1.0);
            assert!(!t.release_succeeds());
            assert!(!t.release_before_tr_succeeds());
            assert!(!t.drop_disjoint_succeeds());
            assert!(!t.drop_joint_succeeds());
        }

        #[test]
        fn fully_malicious_path_releases_at_ts() {
            // Figure 2(b)'s K4: all holders malicious => release at t1 = ts.
            let t = trial(&[&[true, true, true]], 1.0);
            assert!(t.release_succeeds());
            assert!(t.release_before_tr_succeeds());
        }

        #[test]
        fn broken_chain_blocks_paper_release() {
            // Figure 2(b)'s K3: malicious at head/middle/tail but a gap
            // stops the release-ahead attack.
            let t = trial(&[&[true, true, false, true]], 1.0);
            assert!(!t.release_succeeds());
            // The stricter metric catches the malicious terminal holder.
            assert!(t.release_before_tr_succeeds());
        }

        #[test]
        fn suffix_chain_counts_only_for_strict_metric() {
            // Figure 2(b)'s K2: last two holders malicious.
            let t = trial(&[&[false, true, true]], 1.0);
            assert!(!t.release_succeeds(), "paper metric needs the full chain");
            assert!(
                t.release_before_tr_succeeds(),
                "onion reaches a malicious holder at column 1 with all later keys"
            );
        }

        #[test]
        fn replication_requires_one_leak_per_column() {
            // Two rows; column coverage split across rows still releases.
            let t = trial(&[&[true, false, true], &[false, true, false]], 1.0);
            assert!(t.release_succeeds());
        }

        #[test]
        fn drop_disjoint_needs_every_path_cut() {
            // Figure 2(c): any malicious holder on a path cuts it.
            let both_cut = trial(&[&[true, false, false], &[false, false, true]], 1.0);
            assert!(both_cut.drop_disjoint_succeeds());
            let one_clean = trial(&[&[true, true, true], &[false, false, false]], 1.0);
            assert!(!one_clean.drop_disjoint_succeeds());
        }

        #[test]
        fn drop_joint_needs_a_full_column() {
            // The paper's example: (H1,1 , H2,2 , H1,3) malicious drops the
            // disjoint scheme but not the joint one.
            let t = trial(&[&[true, false, true], &[false, true, false]], 1.0);
            assert!(t.drop_disjoint_succeeds());
            assert!(!t.drop_joint_succeeds());

            let full_column = trial(&[&[false, true, false], &[false, true, false]], 1.0);
            assert!(full_column.drop_joint_succeeds());
        }

        #[test]
        fn churn_reexposure_enables_release() {
            // Column 1's key is stored until t1 = 1.0; an honest tenant dying
            // at 0.5 hands it to a malicious replacement.
            let holders = vec![
                HolderTimeline::stable(true), // column 0 malicious at ts
                HolderTimeline::with_renewals(vec![0.5], vec![false, true]),
            ];
            let t = KeyedTrial {
                holders,
                k: 1,
                l: 2,
                th: 1.0,
            };
            assert!(t.key_exposed(0));
            assert!(t.key_exposed(1), "replacement saw the stored key");
            assert!(t.release_succeeds());
        }

        #[test]
        fn late_replacement_does_not_expose_key() {
            // Column 1's key is used at t = 1.0; a malicious replacement at
            // t = 1.5 arrives after the key was consumed… but during the
            // onion window [1.0, 2.0], so only the strict metric fires
            // (and only with a prior onion contact — here column 0 is
            // honest so nothing fires).
            let holders = vec![
                HolderTimeline::stable(false),
                HolderTimeline::with_renewals(vec![1.5], vec![false, true]),
            ];
            let t = KeyedTrial {
                holders,
                k: 1,
                l: 2,
                th: 1.0,
            };
            assert!(!t.key_exposed(1));
            assert!(!t.release_succeeds());
            // Strict: onion contact at column 1 with empty suffix => release
            // one holding period early.
            assert!(t.release_before_tr_succeeds());
        }
    }

    mod share {
        use super::*;

        /// Build a share trial with stable (no-churn) malicious flags.
        /// `flags[row][col]`, rows 0..k carry the onion.
        fn trial(flags: &[&[bool]], k: usize, m: Vec<usize>) -> ShareTrial {
            let n = flags.len();
            let l = flags[0].len();
            ShareTrial {
                holders: stable_grid(flags),
                k,
                n,
                l,
                th: 1.0,
                m,
            }
        }

        #[test]
        fn clean_grid_resists() {
            let t = trial(&[&[false; 3], &[false; 3], &[false; 3]], 2, vec![2, 2]);
            assert!(!t.release_succeeds());
            assert!(!t.release_strict_succeeds());
            assert!(!t.drop_succeeds());
        }

        #[test]
        fn onion_row_chain_releases_paper_metric() {
            // A malicious onion row in every column (row 0).
            let t = trial(
                &[&[true, true, true], &[false; 3], &[false; 3]],
                2,
                vec![3, 3],
            );
            assert!(t.release_succeeds());
            // Strict metric needs quorums, which are absent.
            assert!(!t.release_strict_succeeds());
        }

        #[test]
        fn share_quorums_release_both_metrics() {
            // Columns 0 and 1 have >= m = 2 malicious rows, and row 0 of
            // column 0 is malicious (onion contact at ts).
            let t = trial(
                &[
                    &[true, false, false],
                    &[true, true, false],
                    &[false, true, false],
                ],
                1,
                vec![2, 2],
            );
            assert!(t.release_strict_succeeds());
            // Paper metric: col 0 leak (row 0 onion), col 1 via quorum at
            // col 0, col 2 via quorum at col 1.
            assert!(t.release_succeeds());
        }

        #[test]
        fn below_quorum_resists() {
            // Only 1 malicious per column with m = 2, and no malicious
            // onion row (row 0 honest everywhere).
            let t = trial(
                &[
                    &[false, false, false],
                    &[true, false, false],
                    &[false, true, false],
                ],
                1,
                vec![2, 2],
            );
            assert!(!t.release_succeeds());
            assert!(!t.release_strict_succeeds());
        }

        #[test]
        fn drop_by_share_starvation() {
            // m = 3 but column 0 has only 2 honest forwarders.
            let t = trial(
                &[
                    &[true, false, false],
                    &[false, false, false],
                    &[false, false, false],
                ],
                3,
                vec![3, 1],
            );
            assert_eq!(t.honest_forwarder_count(0), 2);
            assert!(t.drop_succeeds());
        }

        #[test]
        fn drop_by_onion_row_loss() {
            // All k = 2 onion rows malicious at column 1: the onion dies
            // even though shares are plentiful.
            let t = trial(
                &[
                    &[false, true, false],
                    &[false, true, false],
                    &[false, false, false],
                    &[false, false, false],
                ],
                2,
                vec![1, 1],
            );
            assert!(t.drop_succeeds());
        }

        #[test]
        fn dead_holders_starve_shares() {
            // No malicious nodes at all; churn kills 2 of 3 rows during
            // column 0's hold, leaving 1 < m = 2 forwarders.
            let dying = || HolderTimeline::with_renewals(vec![0.5], vec![false, false]);
            // Row-major [row0c0, row0c1, row1c0, row1c1, row2c0, row2c1]:
            // rows 0 and 1 die during column 0's hold.
            let holders = vec![
                dying(),
                HolderTimeline::stable(false),
                dying(),
                HolderTimeline::stable(false),
                HolderTimeline::stable(false),
                HolderTimeline::stable(false),
            ];
            let t = ShareTrial {
                holders,
                k: 3,
                n: 3,
                l: 2,
                th: 1.0,
                m: vec![2],
            };
            assert_eq!(t.honest_forwarder_count(0), 1);
            assert!(t.drop_succeeds());
            assert!(!t.release_succeeds());
        }

        #[test]
        fn malicious_but_dead_still_leaks() {
            // A malicious receiver that dies mid-hold leaked its share on
            // arrival; it counts for release but not for forwarding.
            let mut holders = vec![
                HolderTimeline::with_renewals(vec![0.5], vec![true, false]),
                HolderTimeline::stable(true),
                HolderTimeline::stable(false),
            ];
            // second column (l = 2): all honest
            holders = holders
                .into_iter()
                .flat_map(|h| [h, HolderTimeline::stable(false)])
                .collect();
            let t = ShareTrial {
                holders,
                k: 1,
                n: 3,
                l: 2,
                th: 1.0,
                m: vec![2],
            };
            assert_eq!(t.malicious_count(0), 2);
            // Column 1 falls via the quorum; column 0 needs its own onion
            // row leak — row 0 of column 0 is malicious, so yes.
            assert!(t.release_succeeds());
        }
    }
}
