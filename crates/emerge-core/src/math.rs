//! Numerical helpers: log-gamma, binomial tails, and safe probability
//! arithmetic used by the resilience analysis.
//!
//! Algorithm 1 of the paper needs binomial tail probabilities
//! `P(Bin(n, p) ≥ m)` for `n` as large as the DHT population, so the
//! implementation works in log space (Lanczos log-gamma) with an upward
//! pmf recurrence — exact enough for all sweeps and free of overflow.

/// Lanczos approximation of `ln Γ(x)` for `x > 0`.
///
/// Accurate to ~1e-13 over the range used here.
pub fn ln_gamma(x: f64) -> f64 {
    // LINT-WAIVER(panic): documented mathematical domain precondition
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // g = 7, n = 9 Lanczos coefficients.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln C(n, k)` via log-gamma.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    // LINT-WAIVER(panic): documented mathematical domain precondition
    assert!(k <= n, "ln_choose requires k <= n");
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Binomial pmf `P(Bin(n, p) = k)`.
pub fn binomial_pmf(n: u64, p: f64, k: u64) -> f64 {
    // LINT-WAIVER(panic): documented mathematical domain precondition
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    if k > n {
        return 0.0;
    }
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let ln_pmf = ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln();
    ln_pmf.exp()
}

/// Upper binomial tail `P(Bin(n, p) ≥ m)`.
///
/// Uses the complement for small `m` and direct summation from `m` upward
/// otherwise (with an incremental pmf recurrence to avoid re-evaluating
/// log-gamma per term).
pub fn binomial_tail_ge(n: u64, p: f64, m: u64) -> f64 {
    // LINT-WAIVER(panic): documented mathematical domain precondition
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    if m == 0 {
        return 1.0;
    }
    if m > n {
        return 0.0;
    }
    if p == 0.0 {
        return 0.0; // m >= 1 cannot be reached with p = 0
    }
    if p == 1.0 {
        return 1.0; // X = n >= m always
    }

    // Sum the smaller side for accuracy.
    let mean = n as f64 * p;
    if (m as f64) <= mean {
        // P(X >= m) = 1 - P(X <= m-1): sum 0..m-1 upward.
        1.0 - binomial_sum_range(n, p, 0, m - 1)
    } else {
        binomial_sum_range(n, p, m, n)
    }
}

/// Sums `P(Bin(n,p) = k)` for `k` in `[lo, hi]` with a stable recurrence.
///
/// The recurrence is anchored at the pmf's mode (clamped into the range):
/// starting at `lo` would underflow for large `n` (e.g. `pmf(10000, 0.3, 0)
/// ≈ e^-3567`), silently zeroing the whole sum.
fn binomial_sum_range(n: u64, p: f64, lo: u64, hi: u64) -> f64 {
    debug_assert!(lo <= hi && hi <= n);
    let q = 1.0 - p;
    let up_ratio = p / q;
    let mode = (((n + 1) as f64) * p).floor() as u64;
    let anchor = mode.clamp(lo, hi);

    let anchor_term = binomial_pmf(n, p, anchor);
    let mut sum = anchor_term;

    // Upward from the anchor: pmf(k+1) = pmf(k) * (n-k)/(k+1) * p/q.
    let mut term = anchor_term;
    for k in anchor..hi {
        term *= (n - k) as f64 / (k + 1) as f64 * up_ratio;
        sum += term;
        if term < sum * 1e-18 {
            break; // remaining terms cannot affect the sum
        }
    }
    // Downward from the anchor: pmf(k-1) = pmf(k) * k/(n-k+1) * q/p.
    term = anchor_term;
    let mut k = anchor;
    while k > lo {
        term *= k as f64 / (n - k + 1) as f64 / up_ratio;
        sum += term;
        k -= 1;
        if term < sum * 1e-18 {
            break;
        }
    }
    sum.clamp(0.0, 1.0)
}

/// Clamps a computed probability into `[0, 1]`, absorbing tiny negative
/// rounding artifacts.
pub fn clamp_prob(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(5) = 24, Γ(0.5) = sqrt(pi).
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_choose_small_cases() {
        assert!((ln_choose(5, 2) - 10f64.ln()).abs() < 1e-10);
        assert!((ln_choose(10, 5) - 252f64.ln()).abs() < 1e-9);
        assert_eq!(ln_choose(7, 0), 0.0);
        assert_eq!(ln_choose(7, 7), 0.0);
    }

    #[test]
    fn pmf_sums_to_one() {
        for &(n, p) in &[(10u64, 0.3), (50, 0.5), (200, 0.05), (1000, 0.9)] {
            let total: f64 = (0..=n).map(|k| binomial_pmf(n, p, k)).sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n} p={p}: sum={total}");
        }
    }

    #[test]
    fn tail_matches_bruteforce() {
        for &(n, p) in &[(10u64, 0.3), (25, 0.7), (100, 0.12)] {
            for m in 0..=n {
                let brute: f64 = (m..=n).map(|k| binomial_pmf(n, p, k)).sum();
                let fast = binomial_tail_ge(n, p, m);
                assert!(
                    (brute - fast).abs() < 1e-9,
                    "n={n} p={p} m={m}: brute={brute} fast={fast}"
                );
            }
        }
    }

    #[test]
    fn tail_edge_cases() {
        assert_eq!(binomial_tail_ge(10, 0.5, 0), 1.0);
        assert_eq!(binomial_tail_ge(10, 0.5, 11), 0.0);
        assert_eq!(binomial_tail_ge(10, 0.0, 1), 0.0);
        assert_eq!(binomial_tail_ge(10, 1.0, 10), 1.0);
        assert_eq!(binomial_tail_ge(0, 0.3, 0), 1.0);
    }

    #[test]
    fn tail_large_n_is_finite_and_sane() {
        // Around the mean the tail should be ~0.5; far above, ~0.
        let t_mean = binomial_tail_ge(10_000, 0.3, 3_000);
        assert!((0.4..=0.6).contains(&t_mean), "tail at mean: {t_mean}");
        let t_far = binomial_tail_ge(10_000, 0.3, 4_000);
        assert!(t_far < 1e-80, "far tail should vanish: {t_far}");
        // (1e-80 below 1.0 is not representable in f64, so compare >=.)
        let t_low = binomial_tail_ge(10_000, 0.3, 2_000);
        assert!(t_low >= 1.0 - 1e-12, "low tail should be ~1: {t_low}");
    }

    proptest! {
        #[test]
        fn tail_is_monotone_in_m(n in 1u64..300, p in 0.01f64..0.99) {
            let mut prev = 1.0f64;
            for m in 0..=n {
                let t = binomial_tail_ge(n, p, m);
                prop_assert!(t <= prev + 1e-12, "m={m}: {t} > {prev}");
                prop_assert!((0.0..=1.0).contains(&t));
                prev = t;
            }
        }

        #[test]
        fn tail_is_monotone_in_p(n in 1u64..200, m_frac in 0.0f64..1.0) {
            let m = ((n as f64) * m_frac).floor() as u64;
            let mut prev = 0.0f64;
            for i in 0..20 {
                let p = i as f64 / 19.0 * 0.98 + 0.01;
                let t = binomial_tail_ge(n, p, m);
                prop_assert!(t + 1e-9 >= prev, "p={p}: {t} < {prev}");
                prev = t;
            }
        }
    }
}
