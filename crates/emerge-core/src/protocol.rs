//! The package transmission protocol (Section III): hop-by-hop execution
//! of a send operation on the simulated DHT, with real onions, real
//! shares, churn, and optional attacks.
//!
//! The run is driven by hop-deadline events on the discrete-event engine:
//! packages arrive at column `c` at `t_c = ts + c·th`, rest for one
//! holding period, and move at `t_{c+1}`. Holders peel with keys they were
//! pre-assigned (keyed schemes) or just reconstructed from shares (share
//! scheme). Malicious holders behave according to the [`AttackMode`]:
//! under [`AttackMode::Drop`] they withhold everything; under
//! [`AttackMode::ReleaseAhead`] they cooperate outwardly while copying all
//! material into the adversary's ledger, which then attempts a *real*
//! cryptographic reconstruction of the secret.

use crate::config::SchemeParams;
use crate::error::EmergeError;
use crate::package::{
    decode_segment_headers, decode_segment_headers_into, open_header_for_executor,
    open_header_into, open_segment_headers, open_segment_headers_into, parse_share_segment_spans,
    visit_executor_payload, KeyedPackages, SegmentHeaders, SharePackage, SharePackages,
};
use crate::path::PathPlan;
use crate::substrate::HolderSubstrate;
use emerge_crypto::keys::{KeyShare, SymmetricKey};
use emerge_crypto::onion::{peel, peel_core, peel_in_place, LayerKind, Peeled};
use emerge_crypto::shamir;
use emerge_crypto::CryptoError;
use emerge_sim::engine::Engine;
use emerge_sim::time::{SimDuration, SimTime};
use std::rc::Rc;

/// Adversarial posture of the malicious nodes during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackMode {
    /// Malicious nodes behave exactly like honest ones.
    Passive,
    /// Malicious nodes copy everything they see to the adversary, who
    /// tries to reconstruct the secret key before `tr`.
    ReleaseAhead,
    /// Malicious nodes silently discard all packages.
    Drop,
}

/// Run parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    /// Start time `ts`.
    pub ts: SimTime,
    /// Emerging period `T = tr − ts`.
    pub emerging_period: SimDuration,
    /// Malicious node behaviour.
    pub attack: AttackMode,
}

/// The outcome of one protocol run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// The secret and instant of legitimate release, if it happened.
    pub released: Option<(SimTime, Vec<u8>)>,
    /// Why the key failed to emerge (drop attack, churn starvation, ...).
    pub failure: Option<String>,
    /// The instant the adversary reconstructed the secret, with the
    /// reconstructed bytes, if the release-ahead attack succeeded.
    pub adversary_reconstruction: Option<(SimTime, Vec<u8>)>,
    /// Messages the run pushed through the simulated network.
    pub messages_sent: u64,
}

impl RunReport {
    /// Whether the key emerged exactly as intended: released at `tr` and
    /// never reconstructed early.
    pub fn clean_emergence(&self, tr: SimTime) -> bool {
        matches!(&self.released, Some((at, _)) if *at == tr)
            && self.adversary_reconstruction.is_none()
    }
}

/// Events driving a protocol run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Packages arrive at column `col` and are processed.
    Arrive { col: usize },
    /// Terminal holders release the secret to the receiver.
    Release,
}

/// Executes a keyed-scheme (disjoint/joint) run.
///
/// # Errors
///
/// Returns [`EmergeError::InvalidParameters`] for mismatched parameters.
pub fn execute_keyed<S: HolderSubstrate + ?Sized>(
    substrate: &mut S,
    plan: &PathPlan,
    params: &SchemeParams,
    packages: &KeyedPackages,
    config: &RunConfig,
) -> Result<RunReport, EmergeError> {
    let joint = match params {
        SchemeParams::Disjoint { .. } => false,
        SchemeParams::Joint { .. } => true,
        _ => {
            return Err(EmergeError::InvalidParameters(
                "execute_keyed requires disjoint or joint parameters".into(),
            ))
        }
    };
    let (rows, cols) = (plan.rows, plan.cols);
    let th = config.emerging_period / cols as u64;
    let ts = config.ts;
    let tr = ts + config.emerging_period;

    // Onion in flight per grid position.
    let mut onions: Vec<Option<Vec<u8>>> = vec![None; rows * cols];
    for row in 0..rows {
        onions[row * cols] = Some(packages.onions[row].clone());
    }

    let mut messages = rows as u64; // initial deliveries from the sender
    let mut released: Option<(SimTime, Vec<u8>)> = None;
    let mut failure: Option<String> = None;
    let mut terminal_secrets: Vec<Vec<u8>> = Vec::new();

    // Adversary ledger: earliest acquisition time of each column key, and
    // of an onion copy (with its bytes and the column it was taken at).
    let mut adv_key_time: Vec<Option<SimTime>> = vec![None; cols];
    let mut adv_onions: Vec<(SimTime, usize, Vec<u8>)> = Vec::new();

    if config.attack == AttackMode::ReleaseAhead {
        // Pre-assigned keys leak from any malicious tenant during the
        // half-open storage window [ts, arrival(col)), or from the tenant
        // occupying the slot at the arrival instant itself — that tenant
        // is the peeler, so it necessarily holds the column key.
        for (col, key_time) in adv_key_time.iter_mut().enumerate() {
            let arrival = ts + th * col as u64;
            for row in 0..rows {
                let slot = plan.slot(row, col);
                let leak = substrate
                    .first_malicious_exposure(slot, ts, arrival)
                    .or_else(|| {
                        substrate
                            .generation_at(slot, arrival)
                            .malicious
                            .then_some(arrival)
                    });
                if let Some(t) = leak {
                    *key_time = Some(match *key_time {
                        Some(prev) if prev <= t => prev,
                        _ => t,
                    });
                }
            }
        }
    }

    let mut engine: Engine<Ev> = Engine::new();
    engine.schedule_at(ts, Ev::Arrive { col: 0 });

    while let Some((now, ev)) = engine.pop() {
        match ev {
            Ev::Arrive { col } => {
                let depart = now + th;
                let mut next: Vec<Option<Vec<u8>>> = vec![None; rows];
                for row in 0..rows {
                    let Some(onion) = onions[row * cols + col].take() else {
                        continue;
                    };
                    let slot = plan.slot(row, col);
                    // Release-ahead adversary copies the (pre-peel) onion
                    // on any malicious contact during the stay.
                    if config.attack == AttackMode::ReleaseAhead {
                        if let Some(t) = substrate.first_malicious_exposure(slot, now, depart) {
                            adv_onions.push((t, col, onion.clone()));
                        }
                    }
                    // Drop attack: any malicious tenant during the stay
                    // destroys the copy (replication cannot resurrect what
                    // a malicious node refuses to hand over).
                    if config.attack == AttackMode::Drop
                        && substrate.any_malicious_exposure(slot, now, depart)
                    {
                        continue;
                    }
                    // Peel this layer with the pre-assigned column key.
                    match peel(&packages.column_keys[col], &onion) {
                        Ok(Peeled::Intermediate { inner, .. }) => {
                            if joint {
                                // Forward to the whole next column; a single
                                // survivor feeds every next holder.
                                for slot_next in &mut next {
                                    if slot_next.is_none() {
                                        *slot_next = Some(inner.clone());
                                    }
                                }
                                messages += rows as u64;
                            } else {
                                next[row] = Some(inner.clone());
                                messages += 1;
                            }
                        }
                        Ok(Peeled::Core { .. }) => {
                            // Terminal layer: recover via peel_core below.
                            let (_, secret) = peel_core(&packages.column_keys[col], &onion)?;
                            terminal_secrets.push(secret);
                        }
                        Err(e) => return Err(EmergeError::Crypto(e)),
                    }
                }
                if col + 1 < cols {
                    for (row, n) in next.into_iter().enumerate() {
                        if let Some(bytes) = n {
                            onions[row * cols + col + 1] = Some(bytes);
                        }
                    }
                    engine.schedule_at(depart, Ev::Arrive { col: col + 1 });
                } else {
                    engine.schedule_at(tr, Ev::Release);
                }
            }
            Ev::Release => {
                if let Some(secret) = terminal_secrets.first() {
                    released = Some((now, secret.clone()));
                    messages += terminal_secrets.len() as u64;
                } else {
                    failure = Some("no terminal holder delivered the secret".into());
                }
            }
        }
    }
    if released.is_none() && failure.is_none() {
        failure = Some("onion lost in transit before the terminal column".into());
    }

    // Adversary reconstruction: take the best onion copy and peel it with
    // the leaked column keys. Every key for columns >= the copy's column
    // must be available; the reconstruction time is the max acquisition
    // instant. Reconstruction uses the real ciphertexts.
    let mut adversary_reconstruction: Option<(SimTime, Vec<u8>)> = None;
    if config.attack == AttackMode::ReleaseAhead {
        for (t_onion, col0, bytes) in &adv_onions {
            let mut when = *t_onion;
            let keys: Option<Vec<&SymmetricKey>> = (*col0..cols)
                .map(|c| {
                    adv_key_time[c].map(|t| {
                        when = when.max(t);
                        &packages.column_keys[c]
                    })
                })
                .collect();
            let Some(keys) = keys else { continue };
            if when >= tr {
                continue; // no gain over waiting for the legitimate release
            }
            // Really peel it.
            let mut onion = bytes.clone();
            let mut secret = None;
            for (i, key) in keys.iter().enumerate() {
                if *col0 + i + 1 == cols {
                    let (_, s) = peel_core(key, &onion)?;
                    secret = Some(s);
                } else {
                    match peel(key, &onion)? {
                        Peeled::Intermediate { inner, .. } => onion = inner,
                        Peeled::Core { payload } => {
                            secret = Some(payload);
                            break;
                        }
                    }
                }
            }
            // LINT-WAIVER(panic): the peel loop above always reduces a valid keyed onion to its core
            let secret = secret.expect("keyed onion must peel to a core");
            let better = match &adversary_reconstruction {
                None => true,
                Some((prev, _)) => when < *prev,
            };
            if better {
                adversary_reconstruction = Some((when, secret));
            }
        }
    }

    Ok(RunReport {
        released,
        failure,
        adversary_reconstruction,
        messages_sent: messages,
    })
}

/// Executes a key-share routing run.
///
/// # Errors
///
/// Returns [`EmergeError::InvalidParameters`] for mismatched parameters.
pub fn execute_share<S: HolderSubstrate + ?Sized>(
    substrate: &mut S,
    plan: &PathPlan,
    params: &SchemeParams,
    packages: &SharePackages,
    config: &RunConfig,
) -> Result<RunReport, EmergeError> {
    let (k, l, n, m) = match params {
        SchemeParams::Share { k, l, n, m } => (*k, *l, *n, m.clone()),
        _ => {
            return Err(EmergeError::InvalidParameters(
                "execute_share requires share parameters".into(),
            ))
        }
    };
    let th = config.emerging_period / l as u64;
    let ts = config.ts;
    let tr = ts + config.emerging_period;

    // Parse the flat package once. The sealed segment table is immutable
    // and shared by every holder; what travels hop to hop is the opened
    // header table of the current column (plus, conceptually, the
    // still-sealed tail of the table — identical bytes from every
    // forwarder, so holding one `Rc` to the whole table models it
    // exactly).
    let package = SharePackage::from_bytes(&packages.package)?;
    if package.segments.len() != l {
        return Err(EmergeError::InvalidParameters(format!(
            "share package has {} segments for an l = {l} run",
            package.segments.len()
        )));
    }
    let mut segments = package.segments;
    let headers0: Rc<SegmentHeaders> =
        Rc::new(decode_segment_headers(std::mem::take(&mut segments[0]))?);

    /// In-flight state of one holder position.
    #[derive(Default, Clone)]
    struct Inbox {
        /// This column's opened header table (same blob from every
        /// forwarder; one kept). `Rc`-shared: every holder of a column
        /// carries identical bytes, so pointer identity lets the
        /// per-column hot loop open the next sealed segment once instead
        /// of once per row. `None` means no honest upstream forwarder
        /// delivered the package tail.
        headers: Option<Rc<SegmentHeaders>>,
        core_onion: Option<Vec<u8>>,
        key_shares: Vec<KeyShare>,
        core_shares: Vec<KeyShare>,
        direct_row_key: Option<SymmetricKey>,
        direct_core_key: Option<SymmetricKey>,
    }

    let mut inboxes: Vec<Inbox> = vec![Inbox::default(); n * l];
    for row in 0..n {
        let inbox = &mut inboxes[row * l];
        inbox.headers = Some(headers0.clone());
        inbox.direct_row_key = Some(packages.col0_row_keys[row].clone());
        if row < k {
            inbox.core_onion = Some(packages.core_onion.clone());
            inbox.direct_core_key = Some(packages.col0_core_key.clone());
        }
    }

    let mut messages = n as u64;
    let mut released: Option<(SimTime, Vec<u8>)> = None;
    let mut failure: Option<String> = None;
    let mut terminal_secrets: Vec<Vec<u8>> = Vec::new();

    // Adversary ledger: per column, the count of malicious receivers and
    // the share material they leaked; plus leaked onion/core copies.
    let mut adv_key_shares: Vec<Vec<KeyShare>> = vec![Vec::new(); l]; // for col c key (row 0's key as witness)
    let mut adv_core_shares: Vec<Vec<KeyShare>> = vec![Vec::new(); l];
    let mut adv_core_onion_col0: Option<Vec<u8>> = None;
    let mut adv_direct_core_key: Option<SymmetricKey> = None;

    let mut engine: Engine<Ev> = Engine::new();
    engine.schedule_at(ts, Ev::Arrive { col: 0 });

    // Lagrange-weight memo shared by every reconstruction of the run:
    // within a column all holders combine shares from the same surviving
    // rows, so the O(m²) basis computation runs ~once per column.
    let mut weight_cache = shamir::WeightCache::default();

    while let Some((now, ev)) = engine.pop() {
        match ev {
            Ev::Arrive { col } => {
                let depart = now + th;
                // Plan of what each next-column holder will receive.
                let mut next: Vec<Inbox> = vec![Inbox::default(); n];
                // Per-column memo: the transit redundancy hands every
                // holder the same opened header table, so the AEAD open of
                // the next sealed segment is computed once and reused by
                // pointer identity (a divergent table or key still
                // recomputes). With the flat format this is a single
                // `O(n·header)` segment open — no parse or re-wrap of
                // deeper columns ever happens.
                let mut unwrap_memo: Option<(
                    Rc<SegmentHeaders>,
                    SymmetricKey,
                    Rc<SegmentHeaders>,
                )> = None;
                for row in 0..n {
                    let inbox = std::mem::take(&mut inboxes[row * l + col]);
                    let slot = plan.slot(row, col);
                    let tenant = *substrate.generation_at(slot, now);

                    // Reconstruct this holder's row key.
                    let row_key = if col == 0 {
                        inbox.direct_row_key.clone()
                    } else if inbox.key_shares.len() >= m[col - 1] {
                        combine_key_cached(&inbox.key_shares, m[col - 1], &mut weight_cache)?
                    } else {
                        None
                    };
                    let Some(row_key) = row_key else {
                        continue; // starved: cannot act this hop
                    };
                    let Some(headers) = inbox.headers.clone() else {
                        continue; // no honest forwarder upstream delivered
                    };
                    let Some(header) = headers.get(row) else {
                        return Err(EmergeError::InvalidParameters(
                            "segment is missing this row's header".into(),
                        ));
                    };

                    // Malicious receiver leaks its direct material.
                    if config.attack == AttackMode::ReleaseAhead && tenant.malicious && col == 0 {
                        if let Some(core) = &inbox.core_onion {
                            adv_core_onion_col0 = Some(core.clone());
                        }
                        if inbox.direct_core_key.is_some() {
                            adv_direct_core_key = inbox.direct_core_key.clone();
                        }
                    }

                    // Drop attack: malicious tenants withhold everything.
                    if config.attack == AttackMode::Drop && tenant.malicious {
                        continue;
                    }
                    // Churn: a tenant dying mid-hold takes its *shares*
                    // with it (key material is never re-homed), but the
                    // opaque package/onion blobs are re-homed to the slot
                    // replacement by DHT replication and still move.
                    let survivor = substrate.generation_at(slot, depart).spawn == tenant.spawn;

                    // Open this row's header (executor-path parse: the
                    // next-hop list is validated but not materialized —
                    // forwarding goes by grid position).
                    let mut payload = open_header_for_executor(&row_key, header)?;

                    // Adversary copies the payload's onward shares.
                    if config.attack == AttackMode::ReleaseAhead && tenant.malicious && col + 1 < l
                    {
                        // Witness: row 0's next-column key-shares; the core
                        // shares matter for the actual reconstruction.
                        if let Some(s) = payload.row_key_shares.first() {
                            adv_key_shares[col + 1].push(s.clone());
                        }
                        if let Some(s) = &payload.core_key_share {
                            adv_core_shares[col + 1].push(s.clone());
                        }
                    }

                    // Open the next column's segment for relay (once per
                    // distinct header table and key; every row after the
                    // first is a memo hit).
                    let next_headers: Option<Rc<SegmentHeaders>> = match &payload.bundle_key {
                        Some(bk) if col + 1 < l => Some(match &unwrap_memo {
                            Some((table, key, opened))
                                if Rc::ptr_eq(table, &headers) && key == bk =>
                            {
                                opened.clone()
                            }
                            _ => {
                                let opened = Rc::new(open_segment_headers(bk, &segments[col + 1])?);
                                unwrap_memo = Some((headers.clone(), bk.clone(), opened.clone()));
                                opened
                            }
                        }),
                        _ => None,
                    };

                    // Onion rows also process the core onion.
                    let mut inner_core: Option<Vec<u8>> = None;
                    let mut core_secret: Option<Vec<u8>> = None;
                    if row < k {
                        let core_key = if col == 0 {
                            inbox.direct_core_key.clone()
                        } else if inbox.core_shares.len() >= m[col - 1] {
                            combine_key_cached(&inbox.core_shares, m[col - 1], &mut weight_cache)?
                        } else {
                            None
                        };
                        if let (Some(core_key), Some(core_onion)) =
                            (core_key, inbox.core_onion.clone())
                        {
                            match peel(&core_key, &core_onion)? {
                                Peeled::Intermediate { inner, .. } => {
                                    inner_core = Some(inner);
                                }
                                Peeled::Core { payload } => {
                                    core_secret = Some(payload);
                                }
                            }
                        }
                    }

                    if col + 1 == l {
                        if let Some(secret) = core_secret {
                            terminal_secrets.push(secret);
                        }
                        continue;
                    }

                    // Forward. Shares travel only if the tenant survived
                    // the hold; package/onion blobs always move (re-homed
                    // on death). The payload is this holder's own copy,
                    // so its shares move into the next inboxes instead of
                    // being cloned (the dominant allocation of the loop).
                    if survivor {
                        for (target_row, s) in payload.row_key_shares.drain(..).enumerate() {
                            if let Some(next_inbox) = next.get_mut(target_row) {
                                next_inbox.key_shares.push(s);
                                messages += 1;
                            }
                        }
                        if let Some(s) = &payload.core_key_share {
                            for next_inbox in next.iter_mut().take(k) {
                                next_inbox.core_shares.push(s.clone());
                            }
                        }
                    }
                    if let Some(nh) = next_headers {
                        for next_inbox in &mut next {
                            if next_inbox.headers.is_none() {
                                next_inbox.headers = Some(nh.clone());
                                messages += 1;
                            }
                        }
                    }
                    if row < k {
                        if let Some(inner) = inner_core {
                            for next_inbox in next.iter_mut().take(k) {
                                if next_inbox.core_onion.is_none() {
                                    next_inbox.core_onion = Some(inner.clone());
                                    messages += 1;
                                }
                            }
                        }
                    }
                }

                if col + 1 < l {
                    for (row, nb) in next.into_iter().enumerate() {
                        inboxes[row * l + col + 1] = nb;
                    }
                    engine.schedule_at(depart, Ev::Arrive { col: col + 1 });
                } else {
                    engine.schedule_at(tr, Ev::Release);
                }
            }
            Ev::Release => {
                if let Some(secret) = terminal_secrets.first() {
                    released = Some((now, secret.clone()));
                    messages += terminal_secrets.len() as u64;
                } else {
                    failure = Some("no terminal onion row reconstructed the secret".into());
                }
            }
        }
    }
    if released.is_none() && failure.is_none() {
        failure = Some("share flow starved before the terminal column".into());
    }

    // Adversary reconstruction (strict quorum chain, real crypto): needs
    // the core onion from column 0 plus enough core-key shares at every
    // later column boundary.
    let mut adversary_reconstruction: Option<(SimTime, Vec<u8>)> = None;
    if config.attack == AttackMode::ReleaseAhead {
        if let (Some(core_onion), Some(core_key0)) = (adv_core_onion_col0, adv_direct_core_key) {
            let mut onion = core_onion;
            let mut ok = true;
            let mut when = ts;
            for col in 0..l {
                let key = if col == 0 {
                    Some(core_key0.clone())
                } else if adv_core_shares[col].len() >= m[col - 1] {
                    when = when.max(ts + (config.emerging_period / l as u64) * (col as u64 - 1));
                    combine_key(&adv_core_shares[col], m[col - 1])?
                } else {
                    None
                };
                let Some(key) = key else {
                    ok = false;
                    break;
                };
                if col + 1 == l {
                    let (_, secret) = peel_core(&key, &onion)?;
                    if when < tr {
                        adversary_reconstruction = Some((when, secret));
                    }
                } else {
                    match peel(&key, &onion)? {
                        Peeled::Intermediate { inner, .. } => onion = inner,
                        Peeled::Core { payload } => {
                            if when < tr {
                                adversary_reconstruction = Some((when, payload));
                            }
                            break;
                        }
                    }
                }
            }
            let _ = ok;
        }
    }

    Ok(RunReport {
        released,
        failure,
        adversary_reconstruction,
        messages_sent: messages,
    })
}

/// Executes the centralized scheme: one holder stores the secret for the
/// whole period.
pub fn execute_central<S: HolderSubstrate + ?Sized>(
    substrate: &mut S,
    plan: &PathPlan,
    secret: &[u8],
    config: &RunConfig,
) -> Result<RunReport, EmergeError> {
    let slot = plan.slot(0, 0);
    let ts = config.ts;
    let tr = ts + config.emerging_period;

    let exposed = substrate.any_malicious_exposure(slot, ts, tr);
    let mut report = RunReport {
        released: None,
        failure: None,
        adversary_reconstruction: None,
        messages_sent: 2,
    };
    match config.attack {
        AttackMode::Drop if exposed => {
            report.failure = Some("central holder destroyed the key".into());
        }
        AttackMode::ReleaseAhead if exposed => {
            let t = substrate
                .first_malicious_exposure(slot, ts, tr)
                // LINT-WAIVER(panic): first_malicious_exposure is Some exactly when exposure was reported
                .expect("exposure implies a first exposure");
            report.adversary_reconstruction = Some((t, secret.to_vec()));
            report.released = Some((tr, secret.to_vec()));
        }
        _ => {
            report.released = Some((tr, secret.to_vec()));
        }
    }
    Ok(report)
}

/// Combines key shares into a 32-byte symmetric key.
///
/// Convenience form of [`combine_key_cached`] for one-off call sites.
fn combine_key(shares: &[KeyShare], m: usize) -> Result<Option<SymmetricKey>, EmergeError> {
    combine_key_cached(shares, m, &mut shamir::WeightCache::default())
}

/// Combines key shares into a 32-byte symmetric key, memoizing the
/// Lagrange weights across calls with the same share-index set — the
/// common case in the executor's per-column reconstruction loop, where
/// every holder's shares come from the same surviving rows.
fn combine_key_cached(
    shares: &[KeyShare],
    m: usize,
    cache: &mut shamir::WeightCache,
) -> Result<Option<SymmetricKey>, EmergeError> {
    match shamir::combine_cached(shares, m, cache) {
        Ok(bytes) if bytes.len() == 32 => {
            let mut kb = [0u8; 32];
            kb.copy_from_slice(&bytes);
            Ok(Some(SymmetricKey::from_bytes(kb)))
        }
        Ok(_) => Err(EmergeError::InvalidParameters(
            "reconstructed key has wrong length".into(),
        )),
        Err(emerge_crypto::CryptoError::NotEnoughShares { .. }) => Ok(None),
        Err(e) => Err(EmergeError::Crypto(e)),
    }
}

/// The outcome of one pooled protocol run: the same facts as
/// [`RunReport`], held in reusable buffers instead of per-run
/// allocations. The secret buffers are only meaningful when the matching
/// `_at` field is `Some`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PooledRunReport {
    /// Instant of legitimate release, if it happened.
    pub released_at: Option<SimTime>,
    /// The released secret (valid when `released_at` is `Some`).
    pub released_secret: Vec<u8>,
    /// Why the key failed to emerge, if it did not.
    pub failure: Option<&'static str>,
    /// Instant of early adversary reconstruction, if the attack won.
    pub adversary_at: Option<SimTime>,
    /// The adversary's bytes (valid when `adversary_at` is `Some`).
    pub adversary_secret: Vec<u8>,
    /// Messages the run pushed through the simulated network.
    pub messages_sent: u64,
}

impl PooledRunReport {
    /// Whether the key emerged exactly as intended (see
    /// [`RunReport::clean_emergence`]).
    pub fn clean_emergence(&self, tr: SimTime) -> bool {
        self.released_at == Some(tr) && self.adversary_at.is_none()
    }

    /// Copies out an allocating [`RunReport`] — for oracle comparisons
    /// and cold callers.
    pub fn to_report(&self) -> RunReport {
        RunReport {
            released: self
                .released_at
                .map(|at| (at, self.released_secret.clone())),
            failure: self.failure.map(String::from),
            adversary_reconstruction: self
                .adversary_at
                .map(|at| (at, self.adversary_secret.clone())),
            messages_sent: self.messages_sent,
        }
    }
}

/// Fixed-stride slab of 32-byte key shares: `buckets` rows, each holding
/// up to `stride` `(index, share)` pairs in arrival order. Replaces the
/// per-inbox `Vec<KeyShare>` of the allocating executor; reset is an
/// `O(buckets)` count clear, never a free.
#[derive(Debug, Default)]
struct ShareBank {
    counts: Vec<u16>,
    idx: Vec<u8>,
    data: Vec<u8>,
    stride: usize,
}

impl ShareBank {
    fn reset(&mut self, buckets: usize, stride: usize) {
        self.stride = stride;
        self.counts.clear();
        self.counts.resize(buckets, 0);
        let need = buckets * stride;
        if self.idx.len() < need {
            self.idx.resize(need, 0);
        }
        if self.data.len() < need * 32 {
            self.data.resize(need * 32, 0);
        }
    }

    fn push(&mut self, bucket: usize, index: u8, share: &[u8]) {
        debug_assert_eq!(share.len(), 32);
        let c = self.counts[bucket] as usize;
        debug_assert!(c < self.stride, "share bank bucket overflow");
        let at = bucket * self.stride + c;
        self.idx[at] = index;
        self.data[at * 32..at * 32 + 32].copy_from_slice(share);
        self.counts[bucket] = (c + 1) as u16;
    }

    /// `(indices, data)` of one bucket, in push order.
    fn bucket(&self, bucket: usize) -> (&[u8], &[u8]) {
        let c = self.counts[bucket] as usize;
        let at = bucket * self.stride;
        (&self.idx[at..at + c], &self.data[at * 32..(at + c) * 32])
    }
}

/// Reusable buffers for [`execute_share_pooled`]: held per shard and
/// recycled across trials. After a per-shape warmup trial, a run touches
/// none of the allocator.
#[derive(Debug, Default)]
pub struct ShareExecScratch {
    /// Segment spans over the serialized package.
    seg_spans: Vec<(u32, u32)>,
    /// The current column's opened header table.
    cur_headers: SegmentHeaders,
    /// The next column's opened header table.
    next_headers: SegmentHeaders,
    /// Row-key shares held by the current column's rows.
    cur_key: ShareBank,
    /// Row-key shares being delivered to the next column.
    next_key: ShareBank,
    /// Core-key shares held by the current column's onion rows.
    cur_core: ShareBank,
    /// Core-key shares being delivered to the next column.
    next_core: ShareBank,
    /// The core onion as held by the current column's onion rows.
    cur_core_onion: Vec<u8>,
    /// The peeled core onion being forwarded to the next column.
    next_core_onion: Vec<u8>,
    /// Per-hop onion payload sink (validated, discarded).
    onion_payload: Vec<u8>,
    /// Opened header payload plaintext.
    plain: Vec<u8>,
    /// Reconstructed 32-byte key output.
    key_out: Vec<u8>,
    /// First terminal core secret of the run.
    terminal_secret: Vec<u8>,
    /// Adversary core-share ledger, bucketed by column.
    adv_core: ShareBank,
    /// Adversary's copy of the column-0 core onion (peeled in place
    /// during reconstruction).
    adv_onion: Vec<u8>,
    /// Lagrange-weight memo shared by every reconstruction of the run.
    weight_cache: shamir::WeightCache,
}

/// Combines a `ShareBank` bucket into a 32-byte symmetric key —
/// [`combine_key_cached`] over slab storage, with identical outcome
/// mapping.
fn combine_key_slab(
    indices: &[u8],
    data: &[u8],
    m: usize,
    cache: &mut shamir::WeightCache,
    out: &mut Vec<u8>,
) -> Result<Option<SymmetricKey>, EmergeError> {
    match shamir::combine_slab_cached_into(indices, data, 32, m, cache, out) {
        Ok(()) => {
            let mut kb = [0u8; 32];
            kb.copy_from_slice(out);
            Ok(Some(SymmetricKey::from_bytes(kb)))
        }
        Err(CryptoError::NotEnoughShares { .. }) => Ok(None),
        Err(e) => Err(EmergeError::Crypto(e)),
    }
}

/// Executes a key-share routing run into reusable buffers.
///
/// Semantically identical to [`execute_share`] (the retained oracle):
/// same substrate query sequence, message accounting, adversary ledger,
/// failure strings and secrets — pinned equal by test across substrates,
/// attack modes and churn. The differences are purely representational:
///
/// - the package is parsed as spans over `packages.package` instead of
///   per-segment copies;
/// - in-flight shares live in fixed-stride `ShareBank` slabs instead
///   of per-inbox `Vec<KeyShare>`s;
/// - per-column state (header table, core onion) is held once per
///   column — the allocating executor's per-row `Rc`s and option flags
///   always carry column-uniform values, a consequence of the uniform
///   forwarding loops — and the redundant per-row core-onion peels
///   (identical inputs, identical outputs) collapse to one peel per
///   column;
/// - the trivially sequential event schedule (arrive columns `0..l`,
///   then release at `tr`) is a plain loop instead of an [`Engine`].
///
/// One scope restriction: this path requires the 32-byte shares that
/// [`crate::package::build_share_packages`] emits and rejects others
/// with [`EmergeError::InvalidParameters`]; foreign packages with
/// exotic share lengths must go through [`execute_share`]. (The unused
/// witness ledger of row-0 key shares kept by the oracle is dropped —
/// it is never read.)
///
/// # Errors
///
/// Returns [`EmergeError::InvalidParameters`] for mismatched parameters
/// and propagates crypto failures exactly as [`execute_share`] does.
pub fn execute_share_pooled<S: HolderSubstrate + ?Sized>(
    substrate: &mut S,
    plan: &PathPlan,
    params: &SchemeParams,
    packages: &SharePackages,
    config: &RunConfig,
    scratch: &mut ShareExecScratch,
    out: &mut PooledRunReport,
) -> Result<(), EmergeError> {
    let (k, l, n, m) = match params {
        SchemeParams::Share { k, l, n, m } => (*k, *l, *n, m),
        _ => {
            return Err(EmergeError::InvalidParameters(
                "execute_share requires share parameters".into(),
            ))
        }
    };
    let th = config.emerging_period / l as u64;
    let ts = config.ts;
    let tr = ts + config.emerging_period;

    parse_share_segment_spans(&packages.package, &mut scratch.seg_spans)?;
    if scratch.seg_spans.len() != l {
        // LINT-WAIVER(alloc): error construction is a cold path; valid packages never reach it
        return Err(EmergeError::InvalidParameters(format!(
            "share package has {} segments for an l = {l} run",
            scratch.seg_spans.len()
        )));
    }
    let (off0, len0) = scratch.seg_spans[0];
    decode_segment_headers_into(
        &packages.package[off0 as usize..(off0 + len0) as usize],
        &mut scratch.cur_headers,
    )?;

    // Column-0 state: every row holds the header table and its direct
    // row key; rows `0..k` additionally hold the core onion and core key.
    let mut cur_has_headers = true;
    let mut cur_has_core_onion = true;
    scratch.cur_core_onion.clear();
    scratch
        .cur_core_onion
        .extend_from_slice(&packages.core_onion);
    scratch.cur_key.reset(n, n);
    scratch.cur_core.reset(n, n);
    scratch.adv_core.reset(l, n);

    out.released_at = None;
    out.released_secret.clear();
    out.failure = None;
    out.adversary_at = None;
    out.adversary_secret.clear();

    let mut messages = n as u64;
    let mut terminal_count: u64 = 0;
    let mut adv_has_onion0 = false;
    let mut adv_direct_core_key: Option<SymmetricKey> = None;

    let mut now = ts;
    for col in 0..l {
        let depart = now + th;
        let forwarding = col + 1 < l;
        if forwarding {
            scratch.next_key.reset(n, n);
            scratch.next_core.reset(n, n);
        }
        let mut next_has_headers = false;
        let mut next_has_core_onion = false;
        // Per-column memo of the opened next segment (the oracle's
        // `unwrap_memo`: table identity is constant within a column, so
        // the memo key reduces to the bundle key).
        let mut opened_next_key: Option<SymmetricKey> = None;
        // Per-column memo of the core-onion peel: every acting onion row
        // reconstructs the same core key and holds the same onion bytes,
        // so one peel serves the column.
        let mut core_kind: Option<LayerKind> = None;

        for row in 0..n {
            let slot = plan.slot(row, col);
            let tenant = *substrate.generation_at(slot, now);

            // Reconstruct this holder's row key.
            let row_key = if col == 0 {
                // LINT-WAIVER(alloc): SymmetricKey is a 32-byte array wrapper, so clone is a stack copy
                Some(packages.col0_row_keys[row].clone())
            } else {
                let (idx, data) = scratch.cur_key.bucket(row);
                if idx.len() >= m[col - 1] {
                    combine_key_slab(
                        idx,
                        data,
                        m[col - 1],
                        &mut scratch.weight_cache,
                        &mut scratch.key_out,
                    )?
                } else {
                    None
                }
            };
            let Some(row_key) = row_key else {
                continue; // starved: cannot act this hop
            };
            if !cur_has_headers {
                continue; // no honest forwarder upstream delivered
            }
            if scratch.cur_headers.get(row).is_none() {
                return Err(EmergeError::InvalidParameters(
                    "segment is missing this row's header".into(),
                ));
            }

            // Malicious receiver leaks its direct material.
            if config.attack == AttackMode::ReleaseAhead && tenant.malicious && col == 0 && row < k
            {
                scratch.adv_onion.clear();
                scratch.adv_onion.extend_from_slice(&scratch.cur_core_onion);
                adv_has_onion0 = true;
                // LINT-WAIVER(alloc): SymmetricKey is a 32-byte array wrapper, so clone is a stack copy
                adv_direct_core_key = Some(packages.col0_core_key.clone());
            }

            // Drop attack: malicious tenants withhold everything.
            if config.attack == AttackMode::Drop && tenant.malicious {
                continue;
            }
            // Churn: a dying tenant takes its *shares* with it; opaque
            // package/onion blobs are re-homed by replication and move.
            let survivor = substrate.generation_at(slot, depart).spawn == tenant.spawn;

            // Open this row's header and fan its shares straight into
            // the next column's slab.
            // LINT-WAIVER(panic): rows were bounds-checked against cur_headers at the top of the loop
            let header = scratch.cur_headers.get(row).expect("checked above");
            open_header_into(&row_key, header, &mut scratch.plain).map_err(EmergeError::Crypto)?;
            let mut bad_share = false;
            let next_key = &mut scratch.next_key;
            let (core_share, bundle_key) =
                visit_executor_payload(&scratch.plain, |target, index, share| {
                    if share.len() != 32 {
                        bad_share = true;
                    } else if survivor && forwarding && target < n {
                        next_key.push(target, index, share);
                        messages += 1;
                    }
                })
                .map_err(EmergeError::Crypto)?;
            if bad_share || core_share.is_some_and(|(_, s)| s.len() != 32) {
                return Err(EmergeError::InvalidParameters(
                    "pooled executor requires 32-byte key shares".into(),
                ));
            }
            if survivor && forwarding {
                if let Some((index, share)) = core_share {
                    for bucket in 0..k {
                        scratch.next_core.push(bucket, index, share);
                    }
                }
            }

            // Adversary copies the payload's onward core share.
            if config.attack == AttackMode::ReleaseAhead && tenant.malicious && col + 1 < l {
                if let Some((index, share)) = core_share {
                    scratch.adv_core.push(col + 1, index, share);
                }
            }

            // Open the next column's segment for relay (once per column).
            let forwards_headers = match &bundle_key {
                Some(bk) if col + 1 < l => {
                    if opened_next_key.as_ref() != Some(bk) {
                        let (off, len) = scratch.seg_spans[col + 1];
                        open_segment_headers_into(
                            bk,
                            &packages.package[off as usize..(off + len) as usize],
                            &mut scratch.next_headers,
                        )
                        .map_err(EmergeError::Crypto)?;
                        // LINT-WAIVER(alloc): SymmetricKey is a 32-byte array wrapper, so clone is a stack copy
                        opened_next_key = Some(bk.clone());
                    }
                    true
                }
                _ => false,
            };

            // Onion rows also process the core onion.
            let mut has_inner = false;
            let mut has_core_secret = false;
            if row < k && cur_has_core_onion {
                let core_key = if col == 0 {
                    // LINT-WAIVER(alloc): SymmetricKey is a 32-byte array wrapper, so clone is a stack copy
                    Some(packages.col0_core_key.clone())
                } else {
                    let (idx, data) = scratch.cur_core.bucket(row);
                    if idx.len() >= m[col - 1] {
                        combine_key_slab(
                            idx,
                            data,
                            m[col - 1],
                            &mut scratch.weight_cache,
                            &mut scratch.key_out,
                        )?
                    } else {
                        None
                    }
                };
                if let Some(core_key) = core_key {
                    if core_kind.is_none() {
                        scratch.next_core_onion.clear();
                        scratch
                            .next_core_onion
                            .extend_from_slice(&scratch.cur_core_onion);
                        let kind = peel_in_place(
                            &core_key,
                            &mut scratch.next_core_onion,
                            &mut scratch.onion_payload,
                        )
                        .map_err(EmergeError::Crypto)?;
                        core_kind = Some(kind);
                        if kind == LayerKind::Core {
                            scratch.terminal_secret.clear();
                            scratch
                                .terminal_secret
                                .extend_from_slice(&scratch.next_core_onion);
                        }
                    }
                    match core_kind {
                        Some(LayerKind::Intermediate) => has_inner = true,
                        Some(LayerKind::Core) => has_core_secret = true,
                        None => {}
                    }
                }
            }

            if col + 1 == l {
                if has_core_secret {
                    terminal_count += 1;
                }
                continue;
            }

            // Forward the column-uniform material (shares were already
            // fanned out above).
            if forwards_headers && !next_has_headers {
                next_has_headers = true;
                messages += n as u64;
            }
            if has_inner && !next_has_core_onion {
                next_has_core_onion = true;
                messages += k as u64;
            }
        }

        if forwarding {
            std::mem::swap(&mut scratch.cur_key, &mut scratch.next_key);
            std::mem::swap(&mut scratch.cur_core, &mut scratch.next_core);
            std::mem::swap(&mut scratch.cur_headers, &mut scratch.next_headers);
            std::mem::swap(&mut scratch.cur_core_onion, &mut scratch.next_core_onion);
            cur_has_headers = next_has_headers;
            cur_has_core_onion = next_has_core_onion;
            now = depart;
        }
    }

    // Release at `tr`.
    if terminal_count > 0 {
        out.released_at = Some(tr);
        out.released_secret
            .extend_from_slice(&scratch.terminal_secret);
        messages += terminal_count;
    } else {
        out.failure = Some("no terminal onion row reconstructed the secret");
    }

    // Adversary reconstruction (strict quorum chain, real crypto).
    if config.attack == AttackMode::ReleaseAhead && adv_has_onion0 {
        if let Some(core_key0) = adv_direct_core_key {
            let mut when = ts;
            for col in 0..l {
                let key = if col == 0 {
                    // LINT-WAIVER(alloc): SymmetricKey is a 32-byte array wrapper, so clone is a stack copy
                    Some(core_key0.clone())
                } else {
                    let (idx, data) = scratch.adv_core.bucket(col);
                    if idx.len() >= m[col - 1] {
                        when =
                            when.max(ts + (config.emerging_period / l as u64) * (col as u64 - 1));
                        combine_key_slab(
                            idx,
                            data,
                            m[col - 1],
                            &mut scratch.weight_cache,
                            &mut scratch.key_out,
                        )?
                    } else {
                        None
                    }
                };
                let Some(key) = key else {
                    break;
                };
                let kind = peel_in_place(&key, &mut scratch.adv_onion, &mut scratch.onion_payload)
                    .map_err(EmergeError::Crypto)?;
                if col + 1 == l && kind != LayerKind::Core {
                    return Err(EmergeError::Crypto(CryptoError::Malformed(
                        "expected core onion layer, found intermediate",
                    )));
                }
                if kind == LayerKind::Core {
                    if when < tr {
                        out.adversary_at = Some(when);
                        out.adversary_secret.extend_from_slice(&scratch.adv_onion);
                    }
                    break;
                }
            }
        }
    }

    out.messages_sent = messages;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::{build_keyed_packages, build_share_packages, KeySchedule};
    use crate::path::construct_paths;
    use crate::substrate::{Overlay, OverlayConfig};

    const SECRET: &[u8] = b"THE SELF-EMERGING SECRET KEY 32B";

    fn overlay_with(n: usize, p: f64, seed: u64) -> Overlay {
        Overlay::build(
            OverlayConfig {
                n_nodes: n,
                malicious_fraction: p,
                ..OverlayConfig::default()
            },
            seed,
        )
    }

    fn run_config(attack: AttackMode) -> RunConfig {
        RunConfig {
            ts: SimTime::from_ticks(0),
            emerging_period: SimDuration::from_ticks(3000),
            attack,
        }
    }

    fn keyed_setup(params: &SchemeParams, p: f64, seed: u64) -> (Overlay, PathPlan, KeyedPackages) {
        let overlay = overlay_with(100, p, seed);
        let sender_seed = SymmetricKey::from_bytes([seed as u8; 32]);
        let plan = construct_paths(&overlay, params, &sender_seed).unwrap();
        let schedule = KeySchedule::new(sender_seed);
        let pkgs = build_keyed_packages(&plan, params, &schedule, SECRET).unwrap();
        (overlay, plan, pkgs)
    }

    #[test]
    fn clean_joint_run_releases_at_tr() {
        let params = SchemeParams::Joint { k: 2, l: 3 };
        let (mut overlay, plan, pkgs) = keyed_setup(&params, 0.0, 1);
        let report = execute_keyed(
            &mut overlay,
            &plan,
            &params,
            &pkgs,
            &run_config(AttackMode::Passive),
        )
        .unwrap();
        let (at, secret) = report.released.clone().expect("must release");
        assert_eq!(at, SimTime::from_ticks(3000));
        assert_eq!(secret, SECRET);
        assert!(report.adversary_reconstruction.is_none());
        assert!(report.clean_emergence(SimTime::from_ticks(3000)));
    }

    #[test]
    fn clean_disjoint_run_releases_at_tr() {
        let params = SchemeParams::Disjoint { k: 2, l: 3 };
        let (mut overlay, plan, pkgs) = keyed_setup(&params, 0.0, 2);
        let report = execute_keyed(
            &mut overlay,
            &plan,
            &params,
            &pkgs,
            &run_config(AttackMode::Passive),
        )
        .unwrap();
        assert_eq!(report.released.unwrap().1, SECRET);
    }

    #[test]
    fn fully_malicious_population_releases_at_ts() {
        let params = SchemeParams::Joint { k: 2, l: 3 };
        let (mut overlay, plan, pkgs) = keyed_setup(&params, 1.0, 3);
        let report = execute_keyed(
            &mut overlay,
            &plan,
            &params,
            &pkgs,
            &run_config(AttackMode::ReleaseAhead),
        )
        .unwrap();
        let (at, secret) = report
            .adversary_reconstruction
            .expect("all-malicious must reconstruct");
        assert_eq!(at, SimTime::from_ticks(0), "reconstruction at ts");
        assert_eq!(secret, SECRET);
    }

    #[test]
    fn fully_malicious_population_drops_everything() {
        let params = SchemeParams::Joint { k: 2, l: 3 };
        let (mut overlay, plan, pkgs) = keyed_setup(&params, 1.0, 4);
        let report = execute_keyed(
            &mut overlay,
            &plan,
            &params,
            &pkgs,
            &run_config(AttackMode::Drop),
        )
        .unwrap();
        assert!(report.released.is_none());
        assert!(report.failure.is_some());
    }

    #[test]
    fn passive_malicious_nodes_do_not_disrupt() {
        let params = SchemeParams::Joint { k: 2, l: 3 };
        let (mut overlay, plan, pkgs) = keyed_setup(&params, 0.5, 5);
        let report = execute_keyed(
            &mut overlay,
            &plan,
            &params,
            &pkgs,
            &run_config(AttackMode::Passive),
        )
        .unwrap();
        assert_eq!(report.released.unwrap().1, SECRET);
        assert!(report.adversary_reconstruction.is_none());
    }

    #[test]
    fn share_clean_run_releases_at_tr() {
        let params = SchemeParams::Share {
            k: 2,
            l: 3,
            n: 5,
            m: vec![3, 3],
        };
        let mut overlay = overlay_with(100, 0.0, 6);
        let sender_seed = SymmetricKey::from_bytes([6; 32]);
        let plan = construct_paths(&overlay, &params, &sender_seed).unwrap();
        let schedule = KeySchedule::new(sender_seed);
        let pkgs = build_share_packages(&plan, &params, &schedule, SECRET).unwrap();
        let report = execute_share(
            &mut overlay,
            &plan,
            &params,
            &pkgs,
            &run_config(AttackMode::Passive),
        )
        .unwrap();
        let (at, secret) = report.released.expect("share flow must deliver");
        assert_eq!(at, SimTime::from_ticks(3000));
        assert_eq!(secret, SECRET);
    }

    #[test]
    fn share_all_malicious_reconstructs_and_drops() {
        let params = SchemeParams::Share {
            k: 2,
            l: 3,
            n: 5,
            m: vec![3, 3],
        };
        let mut overlay = overlay_with(100, 1.0, 7);
        let sender_seed = SymmetricKey::from_bytes([7; 32]);
        let plan = construct_paths(&overlay, &params, &sender_seed).unwrap();
        let schedule = KeySchedule::new(sender_seed);
        let pkgs = build_share_packages(&plan, &params, &schedule, SECRET).unwrap();

        let release = execute_share(
            &mut overlay,
            &plan,
            &params,
            &pkgs,
            &run_config(AttackMode::ReleaseAhead),
        )
        .unwrap();
        let (_, secret) = release
            .adversary_reconstruction
            .expect("full quorum must reconstruct");
        assert_eq!(secret, SECRET);

        let drop = execute_share(
            &mut overlay,
            &plan,
            &params,
            &pkgs,
            &run_config(AttackMode::Drop),
        )
        .unwrap();
        assert!(drop.released.is_none());
    }

    #[test]
    fn pooled_share_executor_matches_allocating_executor() {
        // One scratch/report pair reused across every shape, malicious
        // fraction, churn level and attack mode: the pooled executor must
        // reproduce the oracle bit for bit even on dirty buffers.
        let mut scratch = ShareExecScratch::default();
        let mut pooled = PooledRunReport::default();
        let shapes = [
            (2usize, 3usize, 5usize, vec![3usize, 3]),
            (3, 4, 9, vec![4, 5, 5]),
            (2, 2, 6, vec![3]),
            (1, 1, 4, vec![]),
        ];
        let mut case = 0u64;
        for (k, l, n, m) in shapes {
            let params = SchemeParams::Share { k, l, n, m };
            for fraction in [0.0, 0.3, 1.0] {
                for lifetime in [None, Some(2_000u64)] {
                    case += 1;
                    let mut overlay = Overlay::build(
                        OverlayConfig {
                            n_nodes: 80,
                            malicious_fraction: fraction,
                            mean_lifetime: lifetime,
                            horizon: 100_000,
                            ..OverlayConfig::default()
                        },
                        case,
                    );
                    let sender_seed = SymmetricKey::from_bytes([case as u8; 32]);
                    let plan = construct_paths(&overlay, &params, &sender_seed).unwrap();
                    let schedule = KeySchedule::new(sender_seed);
                    let pkgs = build_share_packages(&plan, &params, &schedule, SECRET).unwrap();
                    for attack in [
                        AttackMode::Passive,
                        AttackMode::ReleaseAhead,
                        AttackMode::Drop,
                    ] {
                        let config = run_config(attack);
                        let oracle =
                            execute_share(&mut overlay, &plan, &params, &pkgs, &config).unwrap();
                        execute_share_pooled(
                            &mut overlay,
                            &plan,
                            &params,
                            &pkgs,
                            &config,
                            &mut scratch,
                            &mut pooled,
                        )
                        .unwrap();
                        assert_eq!(
                            pooled.to_report(),
                            oracle,
                            "pooled/oracle divergence: case {case} attack {attack:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn central_behaviour_matches_malicious_rate_extremes() {
        for (p, seed) in [(0.0f64, 8u64), (1.0, 9)] {
            let mut overlay = overlay_with(50, p, seed);
            let sender_seed = SymmetricKey::from_bytes([seed as u8; 32]);
            let plan = construct_paths(&overlay, &SchemeParams::Central, &sender_seed).unwrap();
            let report = execute_central(
                &mut overlay,
                &plan,
                SECRET,
                &run_config(AttackMode::ReleaseAhead),
            )
            .unwrap();
            if p == 0.0 {
                assert!(report.adversary_reconstruction.is_none());
                assert!(report.released.is_some());
            } else {
                assert!(report.adversary_reconstruction.is_some());
            }
        }
    }

    #[test]
    fn churned_share_run_still_delivers_with_headroom() {
        // Thresholds far below n tolerate the deaths over a short run.
        let params = SchemeParams::Share {
            k: 3,
            l: 3,
            n: 9,
            m: vec![3, 3],
        };
        let mut overlay = Overlay::build(
            OverlayConfig {
                n_nodes: 100,
                malicious_fraction: 0.0,
                mean_lifetime: Some(30_000), // 10x the emerging period
                horizon: 100_000,
                ..OverlayConfig::default()
            },
            10,
        );
        let sender_seed = SymmetricKey::from_bytes([10; 32]);
        let plan = construct_paths(&overlay, &params, &sender_seed).unwrap();
        let schedule = KeySchedule::new(sender_seed);
        let pkgs = build_share_packages(&plan, &params, &schedule, SECRET).unwrap();
        let report = execute_share(
            &mut overlay,
            &plan,
            &params,
            &pkgs,
            &run_config(AttackMode::Passive),
        )
        .unwrap();
        assert_eq!(
            report.released.map(|(_, s)| s),
            Some(SECRET.to_vec()),
            "failure: {:?}",
            report.failure
        );
    }

    #[test]
    fn keyed_report_counts_messages() {
        let params = SchemeParams::Joint { k: 2, l: 3 };
        let (mut overlay, plan, pkgs) = keyed_setup(&params, 0.0, 11);
        let report = execute_keyed(
            &mut overlay,
            &plan,
            &params,
            &pkgs,
            &run_config(AttackMode::Passive),
        )
        .unwrap();
        assert!(report.messages_sent > 2, "hops must generate traffic");
    }

    /// Cross-format oracle: the retained v1 (nested) builder and executor
    /// run side by side with the v2 flat format on identical worlds. The
    /// two formats package the same key material under a different
    /// sealing topology, so every run — across attacks, churn, and
    /// starvation — must end in the exact same [`RunReport`].
    mod format_oracle {
        use super::*;
        use crate::package::legacy::{
            self, build_share_packages_v1, open_header_v1, ColumnBundle, SharePackagesV1,
        };
        use crate::substrate::AnalyticSubstrate;

        /// The pre-flattening `execute_share`, retained verbatim (nested
        /// bundle parse + inner unwrap, memoized per column) against the
        /// legacy v1 package types.
        fn execute_share_v1<S: HolderSubstrate + ?Sized>(
            substrate: &mut S,
            plan: &PathPlan,
            params: &SchemeParams,
            packages: &SharePackagesV1,
            config: &RunConfig,
        ) -> Result<RunReport, EmergeError> {
            let (k, l, n, m) = match params {
                SchemeParams::Share { k, l, n, m } => (*k, *l, *n, m.clone()),
                _ => {
                    return Err(EmergeError::InvalidParameters(
                        "execute_share requires share parameters".into(),
                    ))
                }
            };
            let th = config.emerging_period / l as u64;
            let ts = config.ts;
            let tr = ts + config.emerging_period;

            #[derive(Default, Clone)]
            struct Inbox {
                bundle: Option<Rc<Vec<u8>>>,
                core_onion: Option<Vec<u8>>,
                key_shares: Vec<KeyShare>,
                core_shares: Vec<KeyShare>,
                direct_row_key: Option<SymmetricKey>,
                direct_core_key: Option<SymmetricKey>,
            }

            let mut inboxes: Vec<Inbox> = vec![Inbox::default(); n * l];
            let bundle0 = Rc::new(packages.bundle.clone());
            for row in 0..n {
                let inbox = &mut inboxes[row * l];
                inbox.bundle = Some(bundle0.clone());
                inbox.direct_row_key = Some(packages.col0_row_keys[row].clone());
                if row < k {
                    inbox.core_onion = Some(packages.core_onion.clone());
                    inbox.direct_core_key = Some(packages.col0_core_key.clone());
                }
            }

            let mut messages = n as u64;
            let mut released: Option<(SimTime, Vec<u8>)> = None;
            let mut failure: Option<String> = None;
            let mut terminal_secrets: Vec<Vec<u8>> = Vec::new();

            let mut adv_key_shares: Vec<Vec<KeyShare>> = vec![Vec::new(); l];
            let mut adv_core_shares: Vec<Vec<KeyShare>> = vec![Vec::new(); l];
            let mut adv_core_onion_col0: Option<Vec<u8>> = None;
            let mut adv_direct_core_key: Option<SymmetricKey> = None;

            let mut engine: Engine<Ev> = Engine::new();
            engine.schedule_at(ts, Ev::Arrive { col: 0 });

            while let Some((now, ev)) = engine.pop() {
                match ev {
                    Ev::Arrive { col } => {
                        let depart = now + th;
                        let mut next: Vec<Inbox> = vec![Inbox::default(); n];
                        let mut parsed_memo: Option<(Rc<Vec<u8>>, Rc<ColumnBundle>)> = None;
                        let mut unwrap_memo: Option<(Rc<ColumnBundle>, SymmetricKey, Rc<Vec<u8>>)> =
                            None;
                        for row in 0..n {
                            let inbox = std::mem::take(&mut inboxes[row * l + col]);
                            let slot = plan.slot(row, col);
                            let tenant = *substrate.generation_at(slot, now);

                            let row_key = if col == 0 {
                                inbox.direct_row_key.clone()
                            } else if inbox.key_shares.len() >= m[col - 1] {
                                combine_key(&inbox.key_shares, m[col - 1])?
                            } else {
                                None
                            };
                            let Some(row_key) = row_key else {
                                continue;
                            };
                            let Some(bundle_bytes) = inbox.bundle.clone() else {
                                continue;
                            };
                            let bundle: Rc<ColumnBundle> = match &parsed_memo {
                                Some((blob, parsed)) if Rc::ptr_eq(blob, &bundle_bytes) => {
                                    parsed.clone()
                                }
                                _ => {
                                    let parsed = Rc::new(ColumnBundle::from_bytes(&bundle_bytes)?);
                                    parsed_memo = Some((bundle_bytes.clone(), parsed.clone()));
                                    parsed
                                }
                            };
                            let Some(header) = bundle.headers.get(row) else {
                                return Err(EmergeError::InvalidParameters(
                                    "bundle is missing this row's header".into(),
                                ));
                            };

                            if config.attack == AttackMode::ReleaseAhead
                                && tenant.malicious
                                && col == 0
                            {
                                if let Some(core) = &inbox.core_onion {
                                    adv_core_onion_col0 = Some(core.clone());
                                }
                                if inbox.direct_core_key.is_some() {
                                    adv_direct_core_key = inbox.direct_core_key.clone();
                                }
                            }

                            if config.attack == AttackMode::Drop && tenant.malicious {
                                continue;
                            }
                            let survivor =
                                substrate.generation_at(slot, depart).spawn == tenant.spawn;

                            let payload = open_header_v1(&row_key, header)?;

                            if config.attack == AttackMode::ReleaseAhead
                                && tenant.malicious
                                && col + 1 < l
                            {
                                if let Some(s) = payload.row_key_shares.first() {
                                    adv_key_shares[col + 1].push(s.clone());
                                }
                                if let Some(s) = &payload.core_key_share {
                                    adv_core_shares[col + 1].push(s.clone());
                                }
                            }

                            let next_bundle: Option<Rc<Vec<u8>>> =
                                match (&payload.bundle_key, &bundle.inner) {
                                    (Some(bk), Some(sealed)) => Some(match &unwrap_memo {
                                        Some((parsed, key, bytes))
                                            if Rc::ptr_eq(parsed, &bundle) && key == bk =>
                                        {
                                            bytes.clone()
                                        }
                                        _ => {
                                            let bytes =
                                                Rc::new(legacy::open_inner_bytes(bk, sealed)?);
                                            unwrap_memo =
                                                Some((bundle.clone(), bk.clone(), bytes.clone()));
                                            bytes
                                        }
                                    }),
                                    _ => None,
                                };

                            let mut inner_core: Option<Vec<u8>> = None;
                            let mut core_secret: Option<Vec<u8>> = None;
                            if row < k {
                                let core_key = if col == 0 {
                                    inbox.direct_core_key.clone()
                                } else if inbox.core_shares.len() >= m[col - 1] {
                                    combine_key(&inbox.core_shares, m[col - 1])?
                                } else {
                                    None
                                };
                                if let (Some(core_key), Some(core_onion)) =
                                    (core_key, inbox.core_onion.clone())
                                {
                                    match peel(&core_key, &core_onion)? {
                                        Peeled::Intermediate { inner, .. } => {
                                            inner_core = Some(inner);
                                        }
                                        Peeled::Core { payload } => {
                                            core_secret = Some(payload);
                                        }
                                    }
                                }
                            }

                            if col + 1 == l {
                                if let Some(secret) = core_secret {
                                    terminal_secrets.push(secret);
                                }
                                continue;
                            }

                            if survivor {
                                for (target_row, next_inbox) in next.iter_mut().enumerate() {
                                    if let Some(s) = payload.row_key_shares.get(target_row) {
                                        next_inbox.key_shares.push(s.clone());
                                        messages += 1;
                                    }
                                    if target_row < k {
                                        if let Some(s) = &payload.core_key_share {
                                            next_inbox.core_shares.push(s.clone());
                                        }
                                    }
                                }
                            }
                            if let Some(nb) = next_bundle {
                                for next_inbox in &mut next {
                                    if next_inbox.bundle.is_none() {
                                        next_inbox.bundle = Some(nb.clone());
                                        messages += 1;
                                    }
                                }
                            }
                            if row < k {
                                if let Some(inner) = inner_core {
                                    for next_inbox in next.iter_mut().take(k) {
                                        if next_inbox.core_onion.is_none() {
                                            next_inbox.core_onion = Some(inner.clone());
                                            messages += 1;
                                        }
                                    }
                                }
                            }
                        }

                        if col + 1 < l {
                            for (row, nb) in next.into_iter().enumerate() {
                                inboxes[row * l + col + 1] = nb;
                            }
                            engine.schedule_at(depart, Ev::Arrive { col: col + 1 });
                        } else {
                            engine.schedule_at(tr, Ev::Release);
                        }
                    }
                    Ev::Release => {
                        if let Some(secret) = terminal_secrets.first() {
                            released = Some((now, secret.clone()));
                            messages += terminal_secrets.len() as u64;
                        } else {
                            failure = Some("no terminal onion row reconstructed the secret".into());
                        }
                    }
                }
            }
            if released.is_none() && failure.is_none() {
                failure = Some("share flow starved before the terminal column".into());
            }

            let mut adversary_reconstruction: Option<(SimTime, Vec<u8>)> = None;
            if config.attack == AttackMode::ReleaseAhead {
                if let (Some(core_onion), Some(core_key0)) =
                    (adv_core_onion_col0, adv_direct_core_key)
                {
                    let mut onion = core_onion;
                    let mut when = ts;
                    for col in 0..l {
                        let key = if col == 0 {
                            Some(core_key0.clone())
                        } else if adv_core_shares[col].len() >= m[col - 1] {
                            when = when
                                .max(ts + (config.emerging_period / l as u64) * (col as u64 - 1));
                            combine_key(&adv_core_shares[col], m[col - 1])?
                        } else {
                            None
                        };
                        let Some(key) = key else {
                            break;
                        };
                        if col + 1 == l {
                            let (_, secret) = peel_core(&key, &onion)?;
                            if when < tr {
                                adversary_reconstruction = Some((when, secret));
                            }
                        } else {
                            match peel(&key, &onion)? {
                                Peeled::Intermediate { inner, .. } => onion = inner,
                                Peeled::Core { payload } => {
                                    if when < tr {
                                        adversary_reconstruction = Some((when, payload));
                                    }
                                    break;
                                }
                            }
                        }
                    }
                }
            }

            Ok(RunReport {
                released,
                failure,
                adversary_reconstruction,
                messages_sent: messages,
            })
        }

        #[test]
        fn v1_and_v2_runs_produce_identical_reports() {
            let grids = [
                SchemeParams::Share {
                    k: 2,
                    l: 3,
                    n: 5,
                    m: vec![3, 3],
                },
                SchemeParams::Share {
                    k: 3,
                    l: 5,
                    n: 8,
                    m: vec![4, 4, 4, 5],
                },
            ];
            let attacks = [
                AttackMode::Passive,
                AttackMode::ReleaseAhead,
                AttackMode::Drop,
            ];
            let mut compared = 0usize;
            for params in &grids {
                for &attack in &attacks {
                    for seed in 0..4u64 {
                        // A hostile, churny world so drops, leaks and
                        // share starvation all occur across the seeds.
                        let cfg = OverlayConfig {
                            n_nodes: 150,
                            malicious_fraction: 0.35,
                            mean_lifetime: Some(9_000),
                            horizon: 100_000,
                            ..OverlayConfig::default()
                        };
                        let sender = SymmetricKey::from_bytes([seed as u8 + 100; 32]);
                        let mut world_a = AnalyticSubstrate::build(cfg, seed);
                        let mut world_b = AnalyticSubstrate::build(cfg, seed);
                        let plan = construct_paths(&world_a, params, &sender).unwrap();
                        let schedule = KeySchedule::new(sender);
                        let v2 = build_share_packages(&plan, params, &schedule, SECRET).unwrap();
                        let v1 = build_share_packages_v1(&plan, params, &schedule, SECRET).unwrap();
                        let config = run_config(attack);
                        let report_v2 =
                            execute_share(&mut world_a, &plan, params, &v2, &config).unwrap();
                        let report_v1 =
                            execute_share_v1(&mut world_b, &plan, params, &v1, &config).unwrap();
                        assert_eq!(
                            report_v2, report_v1,
                            "formats diverged: {params:?}, {attack:?}, seed {seed}"
                        );
                        compared += 1;
                    }
                }
            }
            assert_eq!(compared, 24);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]

            /// Liveness: in a clean network every keyed configuration
            /// delivers the exact secret at exactly tr.
            #[test]
            fn clean_keyed_runs_always_deliver(
                k in 1usize..5,
                l in 1usize..5,
                joint: bool,
                seed in 0u64..1000,
            ) {
                let params = if joint {
                    SchemeParams::Joint { k, l }
                } else {
                    SchemeParams::Disjoint { k, l }
                };
                let (mut overlay, plan, pkgs) = keyed_setup(&params, 0.0, seed);
                let report = execute_keyed(
                    &mut overlay,
                    &plan,
                    &params,
                    &pkgs,
                    &run_config(AttackMode::Passive),
                )
                .unwrap();
                let (at, secret) = report.released.clone().expect("clean run delivers");
                prop_assert_eq!(at, SimTime::from_ticks(3000));
                prop_assert_eq!(&secret[..], SECRET);
                prop_assert!(report.adversary_reconstruction.is_none());
            }

            /// Liveness for the share scheme across valid (k, n, m, l).
            #[test]
            fn clean_share_runs_always_deliver(
                k in 1usize..4,
                extra_rows in 0usize..4,
                l in 2usize..5,
                seed in 0u64..1000,
            ) {
                let n = k + extra_rows;
                let m: Vec<usize> = (1..l).map(|_| (n / 2).max(1)).collect();
                let params = SchemeParams::Share { k, l, n, m };
                let mut overlay = overlay_with(100, 0.0, seed);
                let sender_seed = SymmetricKey::from_bytes([seed as u8; 32]);
                let plan = construct_paths(&overlay, &params, &sender_seed).unwrap();
                let schedule = KeySchedule::new(sender_seed);
                let pkgs =
                    build_share_packages(&plan, &params, &schedule, SECRET).unwrap();
                let report = execute_share(
                    &mut overlay,
                    &plan,
                    &params,
                    &pkgs,
                    &run_config(AttackMode::Passive),
                )
                .unwrap();
                let (at, secret) = report.released.clone().expect("clean share run delivers");
                prop_assert_eq!(at, SimTime::from_ticks(3000));
                prop_assert_eq!(&secret[..], SECRET);
            }

            /// Safety: with every node malicious and dropping, nothing is
            /// ever released.
            #[test]
            fn total_drop_never_releases(
                k in 1usize..4,
                l in 1usize..4,
                seed in 0u64..1000,
            ) {
                let params = SchemeParams::Joint { k, l };
                let (mut overlay, plan, pkgs) = keyed_setup(&params, 1.0, seed);
                let report = execute_keyed(
                    &mut overlay,
                    &plan,
                    &params,
                    &pkgs,
                    &run_config(AttackMode::Drop),
                )
                .unwrap();
                prop_assert!(report.released.is_none());
            }
        }
    }
}
