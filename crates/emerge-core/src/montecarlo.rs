//! Figure-scale Monte-Carlo evaluation.
//!
//! Reproduces the paper's experimental setup: "We invoke 10000 DHT node
//! instances and run each experiment 1000 times to take the average. We
//! randomly select 10000·p non-repeated nodes and mark them as malicious.
//! The probability density function of node death follows the exponential
//! distribution."
//!
//! Each trial samples the scheme's holder grid from a population with
//! exactly `⌊p·N⌋` malicious members (drawing distinct population indices,
//! i.e. hypergeometric — this matters at `N = 100` where a structure can
//! consume the whole network), overlays exponential churn timelines, and
//! evaluates the attack predicates from [`crate::adversary`].
//!
//! Time is measured in units of the mean node lifetime `tlife`, so the
//! emerging period is `T = α` and the holding period `th = α / l`
//! (Figure 7 sweeps `α ∈ {1, 2, 3, 5}`).

use crate::adversary::{CentralTrial, HolderTimeline, KeyedTrial, ShareTrial};
use crate::config::SchemeParams;
use crate::error::EmergeError;
use crate::package::{
    build_keyed_packages, build_share_packages, build_share_packages_into, KeySchedule,
    PackageScratch, SharePackages,
};
use crate::path::{construct_paths, construct_paths_into, PathPlan};
use crate::protocol::{
    execute_central, execute_keyed, execute_share, execute_share_pooled, AttackMode,
    PooledRunReport, RunConfig, RunReport, ShareExecScratch,
};
use crate::substrate::HolderSubstrate;
use emerge_crypto::keys::SymmetricKey;
use emerge_obs::trace::{span, SpanId};
use emerge_sim::metrics::{Rate, Summary};
use emerge_sim::rng::SeedSource;
use emerge_sim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, RngCore};

/// Span over the per-trial substrate (re)build — `substrate_factory` in
/// the allocating loop, `reseed` (e.g. `AnalyticSubstrate::rebuild`) in
/// the pooled one.
pub static SPAN_WORLD_REBUILD: SpanId = SpanId::new("trial.world_rebuild");
/// Span over holder-path construction.
pub static SPAN_PATHS: SpanId = SpanId::new("trial.paths");
/// Span over package building; attributes the share-packaging seal
/// volume ([`crate::package::SEALED_BYTES`]) grown inside the span to
/// `trial.package_build.sealed_bytes`.
pub static SPAN_PACKAGE_BUILD: SpanId = SpanId::tracking(
    "trial.package_build",
    &crate::package::SEALED_BYTES,
    ".sealed_bytes",
);
/// Span over protocol execution (hop schedule + attack predicates).
pub static SPAN_EXECUTE: SpanId = SpanId::new("trial.execute");

/// Specification of one Monte-Carlo experiment cell.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialSpec {
    /// Scheme parameters (typically from the [`crate::analysis`] solver).
    pub params: SchemeParams,
    /// DHT population size `N`.
    pub population: usize,
    /// Node malicious rate `p` (marked exactly as `⌊p·N⌋` nodes).
    pub p: f64,
    /// Churn intensity: `Some(α)` sets the emerging period to `α` mean
    /// node lifetimes; `None` disables churn entirely.
    pub alpha: Option<f64>,
    /// Steady-state probability that a holder is transiently offline at
    /// its forwarding deadline (Section II-C's node unavailability;
    /// `0.0` disables the model).
    pub unavailability: f64,
}

impl TrialSpec {
    /// A spec with no churn and no transient unavailability.
    pub fn new(params: SchemeParams, population: usize, p: f64) -> Self {
        TrialSpec {
            params,
            population,
            p,
            alpha: None,
            unavailability: 0.0,
        }
    }
}

/// Measured resilience estimates from a batch of trials.
#[derive(Debug, Clone, Default)]
pub struct McResults {
    /// `Rr` — fraction of trials where the release-ahead attack failed
    /// (paper metric: the full-chain / Algorithm-1 event).
    pub release_resilience: Rate,
    /// `Rd` — fraction of trials where the drop attack failed.
    pub drop_resilience: Rate,
    /// Fraction of trials where **neither** attack succeeded.
    pub combined_resilience: Rate,
    /// Stricter extension metric: release strictly before `tr` via any
    /// suffix chain (keyed schemes) or the wire-enforced quorum chain
    /// (share scheme).
    pub strict_release_resilience: Rate,
}

impl McResults {
    /// The effective resilience `R = min(Rr, Rd)` as plotted in the
    /// paper's figures.
    pub fn r_min(&self) -> f64 {
        self.release_resilience
            .value()
            .min(self.drop_resilience.value())
    }
}

/// Runs `trials` independent trials of `spec`, deterministically from
/// `seed`.
///
/// # Errors
///
/// Returns [`EmergeError::InvalidParameters`] when the scheme parameters,
/// malicious rate, churn intensity or unavailability are out of range, and
/// [`EmergeError::InsufficientNodes`] when the scheme structure needs more
/// holders than the population provides.
pub fn run_trials(spec: &TrialSpec, trials: usize, seed: u64) -> Result<McResults, EmergeError> {
    spec.params.validate()?;
    let cost = spec.params.node_cost();
    if cost > spec.population {
        return Err(EmergeError::InsufficientNodes {
            required: cost,
            available: spec.population,
        });
    }
    if !(0.0..=1.0).contains(&spec.p) {
        return Err(EmergeError::InvalidParameters(format!(
            "malicious rate must be in [0, 1], got {}",
            spec.p
        )));
    }
    if let Some(a) = spec.alpha {
        if !(a > 0.0 && a.is_finite()) {
            return Err(EmergeError::InvalidParameters(format!(
                "alpha must be positive and finite, got {a}"
            )));
        }
    }
    if !(0.0..1.0).contains(&spec.unavailability) {
        return Err(EmergeError::InvalidParameters(format!(
            "unavailability must be in [0, 1), got {}",
            spec.unavailability
        )));
    }

    let seeds = SeedSource::new(seed);
    let mut results = McResults::default();
    for trial_idx in 0..trials {
        let mut rng = seeds.stream_n("mc-trial", trial_idx as u64);
        let outcome = run_one_trial(spec, &mut rng);
        results.release_resilience.record(!outcome.release);
        results.drop_resilience.record(!outcome.drop);
        results
            .combined_resilience
            .record(!outcome.release && !outcome.drop);
        results
            .strict_release_resilience
            .record(!outcome.strict_release);
    }
    Ok(results)
}

/// Attack outcomes of a single trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TrialOutcome {
    release: bool,
    drop: bool,
    strict_release: bool,
}

fn run_one_trial(spec: &TrialSpec, rng: &mut StdRng) -> TrialOutcome {
    let malicious_count = (spec.p * spec.population as f64).floor() as usize;
    let cost = spec.params.node_cost();
    // Distinct population indices; an index below the malicious count is a
    // malicious node (the population marking is uniform, so this is an
    // exact hypergeometric draw).
    let indices = rand::seq::index::sample(rng, spec.population, cost);
    let mut initial_flags = indices.iter().map(|idx| idx < malicious_count);

    // Emerging period in lifetime units; irrelevant without churn.
    let l = spec.params.path_length();
    let t_total = spec.alpha.unwrap_or(1.0);
    let th = t_total / l as f64;

    let mut sampler = TimelineSampler {
        rng,
        p: spec.p,
        churn: spec.alpha.is_some(),
        unavailability: spec.unavailability,
    };

    match &spec.params {
        SchemeParams::Central => {
            // LINT-WAIVER(panic): the flag iterator was sized to the holder count computed above
            let holder = sampler.sample(initial_flags.next().expect("one holder"), t_total);
            let trial = CentralTrial { holder, t_total };
            TrialOutcome {
                release: trial.release_succeeds(),
                drop: trial.drop_succeeds(),
                strict_release: trial.release_succeeds(),
            }
        }
        SchemeParams::Disjoint { k, l } | SchemeParams::Joint { k, l } => {
            let joint = matches!(spec.params, SchemeParams::Joint { .. });
            let mut holders = Vec::with_capacity(k * l);
            for _row in 0..*k {
                for col in 0..*l {
                    // A column-`col` holder is relevant until the onion
                    // leaves it at t_{col+1}.
                    let window = (col as f64 + 1.0) * th;
                    holders
                        // LINT-WAIVER(panic): the flag iterator was sized to the holder count computed above
                        .push(sampler.sample(initial_flags.next().expect("enough flags"), window));
                }
            }
            let trial = KeyedTrial {
                holders,
                k: *k,
                l: *l,
                th,
            };
            TrialOutcome {
                release: trial.release_succeeds(),
                drop: if joint {
                    trial.drop_joint_succeeds()
                } else {
                    trial.drop_disjoint_succeeds()
                },
                strict_release: trial.release_before_tr_succeeds(),
            }
        }
        SchemeParams::Share { k, l, n, m } => {
            let mut holders = Vec::with_capacity(n * l);
            for _row in 0..*n {
                for col in 0..*l {
                    let window = (col as f64 + 1.0) * th;
                    holders
                        // LINT-WAIVER(panic): the flag iterator was sized to the holder count computed above
                        .push(sampler.sample(initial_flags.next().expect("enough flags"), window));
                }
            }
            let trial = ShareTrial {
                holders,
                k: *k,
                n: *n,
                l: *l,
                th,
                m: m.clone(),
            };
            TrialOutcome {
                release: trial.release_succeeds(),
                drop: trial.drop_succeeds(),
                strict_release: trial.release_strict_succeeds(),
            }
        }
    }
}

/// Specification of a substrate-backed (wire-protocol) Monte-Carlo cell.
///
/// Unlike [`TrialSpec`], which evaluates the combinatorial attack
/// predicates on sampled holder timelines, a protocol cell runs the *real*
/// protocol — path construction, onion/share packaging, hop-by-hop
/// execution with genuine cryptography — on a fresh
/// [`HolderSubstrate`] world per trial. Running the same spec on the full
/// overlay and on the analytic substrate must produce identical results
/// (see [`ProtocolMcResults::fingerprint`]); the analytic substrate just
/// gets there dramatically faster.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolTrialSpec {
    /// Scheme parameters to instantiate each trial.
    pub params: SchemeParams,
    /// Emerging period `T` in ticks.
    pub emerging_period: SimDuration,
    /// Behaviour of malicious holders.
    pub attack: AttackMode,
}

/// Aggregated outcomes of a batch of wire-protocol trials.
#[derive(Debug, Clone, Default)]
pub struct ProtocolMcResults {
    /// Fraction of trials where the key was released at all.
    pub released: Rate,
    /// Fraction of trials with a clean emergence: released exactly at `tr`
    /// and never reconstructed early.
    pub clean: Rate,
    /// Fraction of trials where the adversary reconstructed the secret
    /// before `tr`.
    pub reconstructed_early: Rate,
    /// Messages pushed through the substrate per trial.
    pub messages: Summary,
    /// Digest of every trial's holder slots and report. Each trial
    /// contributes a `trial_digest` keyed by its *global* trial index,
    /// and contributions combine by wrapping addition — an associative,
    /// commutative operation — so merging shard digests over disjoint
    /// contiguous trial ranges reproduces the serial digest bit for bit.
    /// Two runs (or two substrates) agree on this iff they agreed on every
    /// single trial (up to 64-bit collision). An empty batch digests to 0.
    pub fingerprint: u64,
}

impl ProtocolMcResults {
    /// Merges the results of a disjoint batch of trials into this one.
    ///
    /// The counter-valued fields ([`Rate`] numerators/denominators, the
    /// [`Summary`] count/min/max and the fingerprint) merge *exactly*:
    /// any merge tree over disjoint trial batches is bit-identical to one
    /// serial run. The floating-point moments of `messages` (mean,
    /// variance) merge via the parallel Welford update (Chan et al.),
    /// which agrees with the serial computation up to normal
    /// floating-point rounding.
    pub fn merge(&mut self, other: &ProtocolMcResults) {
        self.released.merge(&other.released);
        self.clean.merge(&other.clean);
        self.reconstructed_early.merge(&other.reconstructed_early);
        self.messages.merge(&other.messages);
        self.fingerprint = self.fingerprint.wrapping_add(other.fingerprint);
    }
}

/// Runs `trials` wire-protocol trials of `spec`, deterministically from
/// `seed`, building a fresh substrate world per trial via
/// `substrate_factory` (which receives the trial's world seed).
///
/// Equivalent to [`run_protocol_trial_range`] over `[0, trials)`.
///
/// # Errors
///
/// Propagates construction failures, e.g.
/// [`EmergeError::InsufficientNodes`] when the structure does not fit the
/// factory's worlds.
pub fn run_protocol_trials<S, F>(
    spec: &ProtocolTrialSpec,
    trials: usize,
    seed: u64,
    substrate_factory: F,
) -> Result<ProtocolMcResults, EmergeError>
where
    S: HolderSubstrate,
    F: FnMut(u64) -> S,
{
    run_protocol_trial_range(spec, 0, trials, seed, substrate_factory)
}

/// Runs the contiguous trial range `[first_trial, first_trial + count)`
/// of a wire-protocol Monte-Carlo batch.
///
/// Every trial draws its randomness from its own
/// `SeedSource::stream_n("protocol-trial", trial_idx)` stream keyed by
/// the *global* trial index, so a range run is bit-identical to the same
/// trials inside a serial [`run_protocol_trials`] batch — no stream
/// replay, no cross-trial coupling. Shard workers each run one range and
/// [`ProtocolMcResults::merge`] the partial results.
///
/// # Errors
///
/// Propagates construction failures, e.g.
/// [`EmergeError::InsufficientNodes`] when the structure does not fit the
/// factory's worlds.
pub fn run_protocol_trial_range<S, F>(
    spec: &ProtocolTrialSpec,
    first_trial: usize,
    count: usize,
    seed: u64,
    mut substrate_factory: F,
) -> Result<ProtocolMcResults, EmergeError>
where
    S: HolderSubstrate,
    F: FnMut(u64) -> S,
{
    spec.params.validate()?;
    let seeds = SeedSource::new(seed);
    let mut results = ProtocolMcResults::default();
    for trial_idx in first_trial..first_trial + count {
        let mut trial_rng = seeds.stream_n("protocol-trial", trial_idx as u64);
        let world_seed = trial_rng.next_u64();
        let mut substrate = {
            let _phase = span(&SPAN_WORLD_REBUILD);
            substrate_factory(world_seed)
        };
        let run = run_protocol_trial(spec, &mut substrate, &mut trial_rng)?;
        record_protocol_trial(&mut results, trial_idx, &run);
    }
    Ok(results)
}

/// One completed wire-protocol trial: the path plan it ran on, the run
/// report and the nominal release time `tr`.
pub(crate) struct TrialRun {
    pub(crate) plan: PathPlan,
    pub(crate) report: RunReport,
    pub(crate) tr: SimTime,
}

/// Runs one wire-protocol trial on an already-built substrate, drawing
/// sender randomness from `trial_rng`. Shared verbatim by the plain trial
/// loop and the fault-plane runner (`crate::faults`) so the two agree bit
/// for bit whenever the fault plan is empty.
pub(crate) fn run_protocol_trial<S: HolderSubstrate>(
    spec: &ProtocolTrialSpec,
    substrate: &mut S,
    trial_rng: &mut StdRng,
) -> Result<TrialRun, EmergeError> {
    let sender_seed = SymmetricKey::generate(trial_rng);
    let secret = sender_seed
        .derive(b"message-secret-key")
        .as_bytes()
        .to_vec();

    let plan = {
        let _phase = span(&SPAN_PATHS);
        construct_paths(substrate, &spec.params, &sender_seed)?
    };
    let config = RunConfig {
        ts: substrate.now(),
        emerging_period: spec.emerging_period,
        attack: spec.attack,
    };
    let schedule = KeySchedule::new(sender_seed);
    let report = match &spec.params {
        SchemeParams::Central => {
            let _phase = span(&SPAN_EXECUTE);
            execute_central(substrate, &plan, &secret, &config)?
        }
        SchemeParams::Disjoint { .. } | SchemeParams::Joint { .. } => {
            let pkgs = {
                let _phase = span(&SPAN_PACKAGE_BUILD);
                build_keyed_packages(&plan, &spec.params, &schedule, &secret)?
            };
            let _phase = span(&SPAN_EXECUTE);
            execute_keyed(substrate, &plan, &spec.params, &pkgs, &config)?
        }
        SchemeParams::Share { .. } => {
            let pkgs = {
                let _phase = span(&SPAN_PACKAGE_BUILD);
                build_share_packages(&plan, &spec.params, &schedule, &secret)?
            };
            let _phase = span(&SPAN_EXECUTE);
            execute_share(substrate, &plan, &spec.params, &pkgs, &config)?
        }
    };

    let tr = config.ts + config.emerging_period;
    Ok(TrialRun { plan, report, tr })
}

/// Folds one completed trial into a result batch (rates, message summary
/// and the index-keyed fingerprint contribution).
pub(crate) fn record_protocol_trial(
    results: &mut ProtocolMcResults,
    trial_idx: usize,
    run: &TrialRun,
) {
    results.released.record(run.report.released.is_some());
    results.clean.record(run.report.clean_emergence(run.tr));
    results
        .reconstructed_early
        .record(run.report.adversary_reconstruction.is_some());
    results.messages.record(run.report.messages_sent as f64);
    results.fingerprint = results.fingerprint.wrapping_add(trial_digest(
        trial_idx as u64,
        &run.plan.slots,
        &run.report,
    ));
}

/// Every reusable buffer one Monte-Carlo shard needs to run share-scheme
/// wire-protocol trials without touching the allocator: the path plan,
/// the key schedule, the package build output and scratch, the pooled
/// executor scratch, the pooled report and the per-trial secret buffer.
/// Build one per shard, reuse it across every trial of every cell; the
/// first trial of each scheme shape warms the capacities and subsequent
/// trials allocate nothing.
#[derive(Debug)]
pub struct TrialWorkspace {
    plan: PathPlan,
    schedule: KeySchedule,
    packages: SharePackages,
    pkg_scratch: PackageScratch,
    exec_scratch: ShareExecScratch,
    report: PooledRunReport,
    secret: Vec<u8>,
}

impl TrialWorkspace {
    /// An empty (cold) workspace. The placeholder key schedule is
    /// replaced by each trial's sender seed before any derivation.
    pub fn new() -> Self {
        TrialWorkspace {
            plan: PathPlan::default(),
            schedule: KeySchedule::new(SymmetricKey::from_bytes([0u8; 32])),
            packages: SharePackages::default(),
            pkg_scratch: PackageScratch::new(),
            exec_scratch: ShareExecScratch::default(),
            report: PooledRunReport::default(),
            secret: Vec::new(),
        }
    }
}

impl Default for TrialWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

/// Pooled form of [`run_protocol_trial_range`] for the share scheme: the
/// caller supplies a substrate that is *re-seeded in place* per trial
/// (e.g. `AnalyticSubstrate::rebuild`) and a [`TrialWorkspace`] of
/// recycled buffers, and every trial runs through the pooled
/// path/builder/executor pipeline. Results — including the fingerprint —
/// are bit-identical to the allocating loop with a fresh
/// `build(config, world_seed)` substrate per trial (pinned by test and by
/// the recorded baseline fingerprints); after the first trial of a scheme
/// shape, a trial performs zero heap allocations.
///
/// # Errors
///
/// Returns [`EmergeError::InvalidParameters`] for non-share parameters
/// (the other schemes keep the allocating loop) and propagates
/// construction failures such as [`EmergeError::InsufficientNodes`].
pub fn run_protocol_trial_range_pooled<S, R>(
    spec: &ProtocolTrialSpec,
    first_trial: usize,
    count: usize,
    seed: u64,
    substrate: &mut S,
    mut reseed: R,
    ws: &mut TrialWorkspace,
) -> Result<ProtocolMcResults, EmergeError>
where
    S: HolderSubstrate,
    R: FnMut(&mut S, u64),
{
    spec.params.validate()?;
    if !matches!(spec.params, SchemeParams::Share { .. }) {
        return Err(EmergeError::InvalidParameters(
            "the pooled trial loop supports share parameters only".into(),
        ));
    }
    let seeds = SeedSource::new(seed);
    let mut results = ProtocolMcResults::default();
    for trial_idx in first_trial..first_trial + count {
        let mut trial_rng = seeds.stream_n("protocol-trial", trial_idx as u64);
        let world_seed = trial_rng.next_u64();
        {
            let _phase = span(&SPAN_WORLD_REBUILD);
            reseed(substrate, world_seed);
        }
        let sender_seed = SymmetricKey::generate(&mut trial_rng);
        let message_key = sender_seed.derive(b"message-secret-key");
        ws.secret.clear();
        ws.secret.extend_from_slice(message_key.as_bytes());

        {
            let _phase = span(&SPAN_PATHS);
            construct_paths_into(&*substrate, &spec.params, &sender_seed, &mut ws.plan)?;
        }
        let config = RunConfig {
            ts: substrate.now(),
            emerging_period: spec.emerging_period,
            attack: spec.attack,
        };
        ws.schedule.reset(sender_seed);
        {
            let _phase = span(&SPAN_PACKAGE_BUILD);
            build_share_packages_into(
                &ws.plan,
                &spec.params,
                &ws.schedule,
                &ws.secret,
                &mut ws.packages,
                &mut ws.pkg_scratch,
            )?;
        }
        {
            let _phase = span(&SPAN_EXECUTE);
            execute_share_pooled(
                substrate,
                &ws.plan,
                &spec.params,
                &ws.packages,
                &config,
                &mut ws.exec_scratch,
                &mut ws.report,
            )?;
        }

        let tr = config.ts + config.emerging_period;
        results.released.record(ws.report.released_at.is_some());
        results.clean.record(ws.report.clean_emergence(tr));
        results
            .reconstructed_early
            .record(ws.report.adversary_at.is_some());
        results.messages.record(ws.report.messages_sent as f64);
        results.fingerprint = results.fingerprint.wrapping_add(pooled_trial_digest(
            trial_idx as u64,
            &ws.plan.slots,
            &ws.report,
        ));
    }
    Ok(results)
}

pub use emerge_sim::shard::shard_ranges;

/// Runs `trials` wire-protocol trials split over `shards` contiguous
/// ranges ([`shard_ranges`]) and merges the partial results.
///
/// The merged [`ProtocolMcResults`] is bit-identical to a serial
/// [`run_protocol_trials`] run on the counter-valued fields and the
/// fingerprint, for *any* shard count — the property the sharded
/// Monte-Carlo test suite pins down. This driver executes the shards
/// sequentially; `emerge-bench`'s `mc::run_protocol_trials_parallel`
/// spreads the same ranges over OS threads.
///
/// # Errors
///
/// Propagates the first shard failure, e.g.
/// [`EmergeError::InsufficientNodes`] when the structure does not fit the
/// factory's worlds.
pub fn run_protocol_trials_sharded<S, F>(
    spec: &ProtocolTrialSpec,
    trials: usize,
    seed: u64,
    shards: usize,
    mut substrate_factory: F,
) -> Result<ProtocolMcResults, EmergeError>
where
    S: HolderSubstrate,
    F: FnMut(u64) -> S,
{
    let mut results = ProtocolMcResults::default();
    for (first_trial, count) in shard_ranges(trials, shards) {
        let shard =
            run_protocol_trial_range(spec, first_trial, count, seed, &mut substrate_factory)?;
        results.merge(&shard);
    }
    Ok(results)
}

/// Digest of one trial, keyed by its global trial index: FNV-1a
/// ([`emerge_sim::shard::TrialDigest`]) over the index, the plan's holder
/// slots and the run report. Keying by the trial index makes the digest
/// sensitive to *which* trial produced an outcome even though the
/// combination is commutative.
fn trial_digest(trial_idx: u64, slots: &[usize], report: &RunReport) -> u64 {
    let mut d = emerge_sim::shard::TrialDigest::new();
    d.eat(&trial_idx.to_le_bytes());
    for &slot in slots {
        d.eat(&(slot as u64).to_le_bytes());
    }
    match &report.released {
        Some((at, secret)) => {
            d.eat(&[1]);
            d.eat(&at.ticks().to_le_bytes());
            d.eat(secret);
        }
        None => d.eat(&[0]),
    }
    match &report.adversary_reconstruction {
        Some((at, secret)) => {
            d.eat(&[1]);
            d.eat(&at.ticks().to_le_bytes());
            d.eat(secret);
        }
        None => d.eat(&[0]),
    }
    if let Some(reason) = &report.failure {
        d.eat(reason.as_bytes());
    }
    d.eat(&report.messages_sent.to_le_bytes());
    d.finish()
}

/// [`trial_digest`] over a [`PooledRunReport`]: identical byte stream
/// (the pooled report's secret buffers and `&'static str` failure reasons
/// serialize to the same bytes as the allocating report's owned copies),
/// so pooled and allocating runs of the same trials share one
/// fingerprint.
fn pooled_trial_digest(trial_idx: u64, slots: &[usize], report: &PooledRunReport) -> u64 {
    let mut d = emerge_sim::shard::TrialDigest::new();
    d.eat(&trial_idx.to_le_bytes());
    for &slot in slots {
        d.eat(&(slot as u64).to_le_bytes());
    }
    match report.released_at {
        Some(at) => {
            d.eat(&[1]);
            d.eat(&at.ticks().to_le_bytes());
            d.eat(&report.released_secret);
        }
        None => d.eat(&[0]),
    }
    match report.adversary_at {
        Some(at) => {
            d.eat(&[1]);
            d.eat(&at.ticks().to_le_bytes());
            d.eat(&report.adversary_secret);
        }
        None => d.eat(&[0]),
    }
    if let Some(reason) = report.failure {
        d.eat(reason.as_bytes());
    }
    d.eat(&report.messages_sent.to_le_bytes());
    d.finish()
}

/// Samples holder timelines: exponential tenant lifetimes (mean 1.0 in
/// lifetime units), replacements malicious at rate `p`, optional transient
/// unavailability at the forwarding deadline.
struct TimelineSampler<'a> {
    rng: &'a mut StdRng,
    p: f64,
    churn: bool,
    unavailability: f64,
}

impl TimelineSampler<'_> {
    fn sample(&mut self, initial_malicious: bool, window: f64) -> HolderTimeline {
        let timeline = if !self.churn {
            HolderTimeline::stable(initial_malicious)
        } else {
            let mut renewals = Vec::new();
            let mut statuses = vec![initial_malicious];
            let mut t = 0.0f64;
            loop {
                // Exponential(mean 1) via inverse CDF.
                let u: f64 = self.rng.gen();
                t += -(1.0 - u).ln();
                if t >= window {
                    break;
                }
                renewals.push(t);
                statuses.push(self.rng.gen::<f64>() < self.p);
            }
            HolderTimeline::with_renewals(renewals, statuses)
        };
        if self.unavailability > 0.0 {
            let offline = self.rng.gen::<f64>() < self.unavailability;
            timeline.with_offline_at_forward(offline)
        } else {
            timeline
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::substrate::{AnalyticSubstrate, Overlay, OverlayConfig};

    fn protocol_spec(params: SchemeParams, attack: AttackMode) -> ProtocolTrialSpec {
        ProtocolTrialSpec {
            params,
            emerging_period: SimDuration::from_ticks(3_000),
            attack,
        }
    }

    fn world_config(n: usize, p: f64) -> OverlayConfig {
        OverlayConfig {
            n_nodes: n,
            malicious_fraction: p,
            ..OverlayConfig::default()
        }
    }

    #[test]
    fn protocol_trials_clean_network_always_clean() {
        let spec = protocol_spec(SchemeParams::Joint { k: 2, l: 3 }, AttackMode::Passive);
        let r = run_protocol_trials(&spec, 25, 7, |s| {
            AnalyticSubstrate::build(world_config(120, 0.0), s)
        })
        .unwrap();
        assert_eq!(r.clean.value(), 1.0);
        assert_eq!(r.released.value(), 1.0);
        assert_eq!(r.reconstructed_early.value(), 0.0);
        assert!(r.messages.mean() > 2.0);
    }

    #[test]
    fn protocol_trials_are_deterministic() {
        let spec = protocol_spec(SchemeParams::Disjoint { k: 2, l: 2 }, AttackMode::Drop);
        let run = || {
            run_protocol_trials(&spec, 20, 11, |s| {
                AnalyticSubstrate::build(world_config(100, 0.3), s)
            })
            .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.clean.successes(), b.clean.successes());
    }

    #[test]
    fn protocol_trials_substrates_agree() {
        for (params, attack) in [
            (SchemeParams::Central, AttackMode::ReleaseAhead),
            (SchemeParams::Joint { k: 2, l: 3 }, AttackMode::ReleaseAhead),
            (SchemeParams::Disjoint { k: 2, l: 3 }, AttackMode::Drop),
            (
                SchemeParams::Share {
                    k: 2,
                    l: 3,
                    n: 5,
                    m: vec![3, 3],
                },
                AttackMode::ReleaseAhead,
            ),
        ] {
            let spec = protocol_spec(params, attack);
            let full =
                run_protocol_trials(&spec, 8, 5, |s| Overlay::build(world_config(150, 0.4), s))
                    .unwrap();
            let fast = run_protocol_trials(&spec, 8, 5, |s| {
                AnalyticSubstrate::build(world_config(150, 0.4), s)
            })
            .unwrap();
            assert_eq!(
                full.fingerprint, fast.fingerprint,
                "substrates diverged for {:?}",
                spec.params
            );
        }
    }

    /// Exact-field equality between two protocol result batches: the
    /// fingerprint, every rate counter and the integer-valued summary
    /// fields must match bit for bit; the floating-point moments agree up
    /// to parallel-Welford rounding.
    fn assert_results_identical(a: &ProtocolMcResults, b: &ProtocolMcResults) {
        assert_eq!(a.fingerprint, b.fingerprint, "fingerprint");
        assert_eq!(a.released, b.released, "released");
        assert_eq!(a.clean, b.clean, "clean");
        assert_eq!(a.reconstructed_early, b.reconstructed_early, "early");
        assert_eq!(a.messages.count(), b.messages.count(), "message count");
        assert_eq!(a.messages.min(), b.messages.min(), "message min");
        assert_eq!(a.messages.max(), b.messages.max(), "message max");
        assert!((a.messages.mean() - b.messages.mean()).abs() < 1e-9);
        assert!((a.messages.variance() - b.messages.variance()).abs() < 1e-6);
    }

    #[test]
    fn pooled_trial_loop_matches_allocating_loop() {
        // One workspace and one rebuilt substrate reused across every
        // shape, attack and trial — the exact steady-state reuse pattern
        // of a bench shard — must reproduce the allocating loop's results
        // (fingerprint included) bit for bit.
        let mut ws = TrialWorkspace::new();
        for (params, attack) in [
            (
                SchemeParams::Share {
                    k: 2,
                    l: 3,
                    n: 5,
                    m: vec![3, 3],
                },
                AttackMode::ReleaseAhead,
            ),
            (
                SchemeParams::Share {
                    k: 3,
                    l: 4,
                    n: 9,
                    m: vec![4, 5, 5],
                },
                AttackMode::Drop,
            ),
            (
                SchemeParams::Share {
                    k: 2,
                    l: 2,
                    n: 6,
                    m: vec![3],
                },
                AttackMode::Passive,
            ),
        ] {
            for cfg in [
                world_config(150, 0.4),
                OverlayConfig {
                    n_nodes: 150,
                    malicious_fraction: 0.3,
                    mean_lifetime: Some(2_500),
                    horizon: 100_000,
                    ..OverlayConfig::default()
                },
            ] {
                let spec = protocol_spec(params.clone(), attack);
                let serial =
                    run_protocol_trials(&spec, 10, 5, |s| AnalyticSubstrate::build(cfg, s))
                        .unwrap();
                let mut substrate = AnalyticSubstrate::build(cfg, 0);
                let pooled = run_protocol_trial_range_pooled(
                    &spec,
                    0,
                    10,
                    5,
                    &mut substrate,
                    |s, seed| s.rebuild(seed),
                    &mut ws,
                )
                .unwrap();
                assert_results_identical(&serial, &pooled);
                // Range splits must also merge to the serial result.
                let head = run_protocol_trial_range_pooled(
                    &spec,
                    0,
                    4,
                    5,
                    &mut substrate,
                    |s, seed| s.rebuild(seed),
                    &mut ws,
                )
                .unwrap();
                let tail = run_protocol_trial_range_pooled(
                    &spec,
                    4,
                    6,
                    5,
                    &mut substrate,
                    |s, seed| s.rebuild(seed),
                    &mut ws,
                )
                .unwrap();
                let mut merged = head;
                merged.merge(&tail);
                assert_results_identical(&serial, &merged);
            }
        }
    }

    #[test]
    fn workspace_reuse_across_100_trials_matches_fresh_runs() {
        // One workspace and one in-place-rebuilt substrate carried across
        // 100 trials (run as several ranges, like a long-lived bench
        // shard) must be indistinguishable from 100 fresh allocating
        // runs.
        let spec = protocol_spec(
            SchemeParams::Share {
                k: 2,
                l: 3,
                n: 8,
                m: vec![4, 4],
            },
            AttackMode::ReleaseAhead,
        );
        let cfg = OverlayConfig {
            n_nodes: 200,
            malicious_fraction: 0.2,
            mean_lifetime: Some(40_000),
            horizon: 200_000,
            ..OverlayConfig::default()
        };
        let fresh =
            run_protocol_trials(&spec, 100, 0xB45E, |s| AnalyticSubstrate::build(cfg, s)).unwrap();
        let mut substrate = AnalyticSubstrate::build(cfg, 0);
        let mut ws = TrialWorkspace::new();
        let mut reused = ProtocolMcResults::default();
        for (first, count) in [(0usize, 40usize), (40, 25), (65, 35)] {
            let part = run_protocol_trial_range_pooled(
                &spec,
                first,
                count,
                0xB45E,
                &mut substrate,
                |s, seed| s.rebuild(seed),
                &mut ws,
            )
            .unwrap();
            reused.merge(&part);
        }
        assert_results_identical(&fresh, &reused);
    }

    mod pooled_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Any small share shape, attack mode and trial batch: the
            /// pooled loop (reused workspace, rebuilt substrate) and the
            /// allocating loop (fresh everything per trial) agree bit for
            /// bit.
            #[test]
            fn pooled_loop_matches_allocating_loop_for_any_shape(
                k in 1usize..=3,
                l in 1usize..=4,
                extra in 0usize..=4,
                m_seed in 0u64..u64::MAX,
                attack_idx in 0usize..3,
                trials in 1usize..=5,
            ) {
                let n = k + extra;
                // Thresholds in [1, n], varied but deterministic per case.
                let m: Vec<usize> = (0..l.saturating_sub(1))
                    .map(|c| 1 + ((m_seed >> (8 * c)) as usize % n))
                    .collect();
                let params = SchemeParams::Share { k, l, n, m };
                prop_assert!(params.validate().is_ok());
                let attack = [AttackMode::Passive, AttackMode::ReleaseAhead, AttackMode::Drop]
                    [attack_idx];
                let spec = protocol_spec(params, attack);
                let cfg = OverlayConfig {
                    n_nodes: 120,
                    malicious_fraction: 0.3,
                    mean_lifetime: Some(3_000),
                    horizon: 100_000,
                    ..OverlayConfig::default()
                };
                let fresh = run_protocol_trials(&spec, trials, 7, |s| {
                    AnalyticSubstrate::build(cfg, s)
                })
                .unwrap();
                let mut substrate = AnalyticSubstrate::build(cfg, 0);
                let mut ws = TrialWorkspace::new();
                let pooled = run_protocol_trial_range_pooled(
                    &spec,
                    0,
                    trials,
                    7,
                    &mut substrate,
                    |s, seed| s.rebuild(seed),
                    &mut ws,
                )
                .unwrap();
                prop_assert_eq!(fresh.fingerprint, pooled.fingerprint);
                prop_assert_eq!(fresh.released, pooled.released);
                prop_assert_eq!(fresh.clean, pooled.clean);
            }
        }
    }

    #[test]
    fn pooled_trial_loop_rejects_non_share_schemes() {
        let spec = protocol_spec(SchemeParams::Joint { k: 2, l: 3 }, AttackMode::Passive);
        let mut substrate = AnalyticSubstrate::build(world_config(100, 0.0), 0);
        let err = run_protocol_trial_range_pooled(
            &spec,
            0,
            1,
            1,
            &mut substrate,
            |s, seed| s.rebuild(seed),
            &mut TrialWorkspace::new(),
        )
        .unwrap_err();
        assert!(matches!(err, EmergeError::InvalidParameters(_)));
    }

    #[test]
    fn shard_ranges_partition_contiguously() {
        for (trials, shards) in [(10, 3), (7, 7), (5, 9), (1, 1), (0, 4), (1000, 16)] {
            let ranges = shard_ranges(trials, shards);
            assert_eq!(ranges.len(), shards.max(1), "one range per shard");
            let mut next = 0;
            for &(start, count) in &ranges {
                assert_eq!(start, next, "ranges must be contiguous");
                next = start + count;
            }
            assert_eq!(next, trials, "ranges must cover every trial");
            let sizes: Vec<usize> = ranges.iter().map(|&(_, c)| c).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "near-equal split: {sizes:?}");
        }
        assert_eq!(shard_ranges(5, 0), vec![(0, 5)], "0 shards clamps to 1");
    }

    #[test]
    fn merge_identity_and_associativity_with_empty_shards() {
        // More shards than trials: the surplus ranges are empty and their
        // results must merge as the identity, so a fixed worker fleet can
        // split any batch without perturbing the outcome.
        let spec = protocol_spec(SchemeParams::Joint { k: 2, l: 3 }, AttackMode::ReleaseAhead);
        let factory = |s| AnalyticSubstrate::build(world_config(120, 0.3), s);
        let serial = run_protocol_trials(&spec, 5, 21, factory).unwrap();

        let ranges = shard_ranges(5, 9);
        assert_eq!(ranges.len(), 9, "empty tail ranges are emitted");
        let parts: Vec<ProtocolMcResults> = ranges
            .iter()
            .map(|&(first, count)| {
                run_protocol_trial_range(&spec, first, count, 21, factory).unwrap()
            })
            .collect();
        let mut merged = ProtocolMcResults::default();
        for part in &parts {
            merged.merge(part);
        }
        assert_results_identical(&serial, &merged);

        // Identity on both sides: empty ⊕ a == a ⊕ empty == a, bit for
        // bit (Rate/Summary merges short-circuit on a zero count).
        let a = &parts[0];
        let mut left = ProtocolMcResults::default();
        left.merge(a);
        let mut right = a.clone();
        right.merge(&ProtocolMcResults::default());
        for merged in [&left, &right] {
            assert_eq!(merged.fingerprint, a.fingerprint);
            assert_eq!(merged.released, a.released);
            assert_eq!(merged.clean, a.clean);
            assert_eq!(merged.reconstructed_early, a.reconstructed_early);
            assert_eq!(merged.messages.count(), a.messages.count());
            assert_eq!(
                merged.messages.mean().to_bits(),
                a.messages.mean().to_bits()
            );
            assert_eq!(
                merged.messages.variance().to_bits(),
                a.messages.variance().to_bits()
            );
        }

        // Associativity including empty middles: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        // exactly on every counter-valued field.
        let (b, c) = (&parts[6], &parts[1]);
        let mut ab_c = a.clone();
        ab_c.merge(b);
        ab_c.merge(c);
        let mut bc = b.clone();
        bc.merge(c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_results_identical(&ab_c, &a_bc);
        assert_eq!(ab_c.messages.count(), a_bc.messages.count());
    }

    #[test]
    fn sharded_protocol_trials_match_serial() {
        for params in [
            SchemeParams::Central,
            SchemeParams::Joint { k: 2, l: 3 },
            SchemeParams::Disjoint { k: 2, l: 3 },
            SchemeParams::Share {
                k: 2,
                l: 3,
                n: 5,
                m: vec![3, 3],
            },
        ] {
            let spec = protocol_spec(params, AttackMode::ReleaseAhead);
            let factory = |s| AnalyticSubstrate::build(world_config(120, 0.3), s);
            let serial = run_protocol_trials(&spec, 14, 21, factory).unwrap();
            for shards in [1usize, 2, 7] {
                let sharded = run_protocol_trials_sharded(&spec, 14, 21, shards, factory).unwrap();
                assert_results_identical(&serial, &sharded);
            }
        }
    }

    #[test]
    fn trial_range_reproduces_serial_suffix() {
        let spec = protocol_spec(SchemeParams::Joint { k: 2, l: 2 }, AttackMode::Drop);
        let factory = |s| AnalyticSubstrate::build(world_config(100, 0.3), s);
        let full = run_protocol_trials(&spec, 10, 3, factory).unwrap();
        let head = run_protocol_trial_range(&spec, 0, 4, 3, factory).unwrap();
        let tail = run_protocol_trial_range(&spec, 4, 6, 3, factory).unwrap();
        let mut merged = head.clone();
        merged.merge(&tail);
        assert_results_identical(&full, &merged);
        // Merge order must not matter (commutative combination).
        let mut swapped = tail;
        swapped.merge(&head);
        assert_eq!(swapped.fingerprint, full.fingerprint);
    }

    #[test]
    fn fingerprint_is_keyed_by_trial_index() {
        // The same worlds run as trials [0, 2) vs [2, 4) must digest
        // differently: the index key makes position matter even though the
        // combination is commutative.
        let spec = protocol_spec(SchemeParams::Central, AttackMode::Passive);
        let factory = |s| AnalyticSubstrate::build(world_config(80, 0.0), s);
        let a = run_protocol_trial_range(&spec, 0, 2, 9, factory).unwrap();
        let b = run_protocol_trial_range(&spec, 2, 2, 9, factory).unwrap();
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn empty_batch_is_the_merge_identity() {
        let spec = protocol_spec(SchemeParams::Central, AttackMode::Passive);
        let factory = |s| AnalyticSubstrate::build(world_config(80, 0.1), s);
        let empty = run_protocol_trials(&spec, 0, 1, factory).unwrap();
        assert_eq!(empty.fingerprint, 0);
        assert_eq!(empty.released.trials(), 0);
        let run = run_protocol_trials(&spec, 6, 1, factory).unwrap();
        let mut merged = empty;
        merged.merge(&run);
        assert_results_identical(&run, &merged);
    }

    #[test]
    fn protocol_trials_reject_oversized_structures() {
        let spec = protocol_spec(SchemeParams::Joint { k: 20, l: 20 }, AttackMode::Passive);
        let err = run_protocol_trials(&spec, 1, 1, |s| {
            AnalyticSubstrate::build(world_config(50, 0.0), s)
        })
        .unwrap_err();
        assert!(matches!(err, EmergeError::InsufficientNodes { .. }));
    }

    fn spec(params: SchemeParams, population: usize, p: f64, alpha: Option<f64>) -> TrialSpec {
        TrialSpec {
            params,
            population,
            p,
            alpha,
            unavailability: 0.0,
        }
    }

    #[test]
    fn central_matches_one_minus_p() {
        let s = spec(SchemeParams::Central, 10_000, 0.3, None);
        let r = run_trials(&s, 4000, 1).unwrap();
        let rr = r.release_resilience.value();
        assert!((rr - 0.7).abs() < 0.02, "measured {rr}, analytic 0.7");
        assert_eq!(
            r.release_resilience.value(),
            r.drop_resilience.value(),
            "central release and drop coincide"
        );
    }

    #[test]
    fn disjoint_matches_equations_1_and_2() {
        let (k, l, p) = (3usize, 4usize, 0.2f64);
        let s = spec(SchemeParams::Disjoint { k, l }, 10_000, p, None);
        let r = run_trials(&s, 6000, 2).unwrap();
        let analytic = analysis::disjoint(p, k, l);
        assert!(
            (r.release_resilience.value() - analytic.release).abs() < 0.02,
            "Rr measured {} vs analytic {}",
            r.release_resilience.value(),
            analytic.release
        );
        assert!(
            (r.drop_resilience.value() - analytic.drop).abs() < 0.02,
            "Rd measured {} vs analytic {}",
            r.drop_resilience.value(),
            analytic.drop
        );
    }

    #[test]
    fn joint_matches_equations_1_and_3() {
        let (k, l, p) = (3usize, 4usize, 0.25f64);
        let s = spec(SchemeParams::Joint { k, l }, 10_000, p, None);
        let r = run_trials(&s, 6000, 3).unwrap();
        let analytic = analysis::joint(p, k, l);
        assert!(
            (r.release_resilience.value() - analytic.release).abs() < 0.02,
            "Rr measured {} vs analytic {}",
            r.release_resilience.value(),
            analytic.release
        );
        assert!(
            (r.drop_resilience.value() - analytic.drop).abs() < 0.02,
            "Rd measured {} vs analytic {}",
            r.drop_resilience.value(),
            analytic.drop
        );
    }

    #[test]
    fn small_population_hypergeometric_effect() {
        // With N = 20 and cost 20 (k=4, l=5), the structure uses the whole
        // population: exactly ⌊0.25·20⌋ = 5 malicious holders always.
        // Release needs >= 1 per column across 4 rows; with exactly 5
        // malicious spread over 20 cells, outcomes are hypergeometric, not
        // Bernoulli — the test just checks we run and stay in bounds.
        let s = spec(SchemeParams::Joint { k: 4, l: 5 }, 20, 0.25, None);
        let r = run_trials(&s, 2000, 4).unwrap();
        let rr = r.release_resilience.value();
        assert!((0.0..=1.0).contains(&rr));
        // Bernoulli analytic would be eq(1) with p=0.25; hypergeometric
        // marking shifts it, but not wildly.
        let analytic = analysis::release_multipath(0.25, 4, 5);
        assert!((rr - analytic).abs() < 0.2);
    }

    #[test]
    fn deterministic_given_seed() {
        let s = spec(SchemeParams::Joint { k: 2, l: 3 }, 1000, 0.3, Some(2.0));
        let a = run_trials(&s, 500, 42).unwrap();
        let b = run_trials(&s, 500, 42).unwrap();
        assert_eq!(
            a.release_resilience.successes(),
            b.release_resilience.successes()
        );
        assert_eq!(a.drop_resilience.successes(), b.drop_resilience.successes());
        let c = run_trials(&s, 500, 43).unwrap();
        // Overwhelmingly likely to differ.
        assert_ne!(
            (
                a.release_resilience.successes(),
                a.drop_resilience.successes()
            ),
            (
                c.release_resilience.successes(),
                c.drop_resilience.successes()
            )
        );
    }

    #[test]
    fn churn_degrades_keyed_schemes() {
        let params = SchemeParams::Joint { k: 4, l: 8 };
        let p = 0.2;
        let no_churn = run_trials(&spec(params.clone(), 10_000, p, None), 2000, 5).unwrap();
        let churned = run_trials(&spec(params, 10_000, p, Some(3.0)), 2000, 5).unwrap();
        assert!(
            churned.release_resilience.value() < no_churn.release_resilience.value() - 0.05,
            "churn must hurt release resilience: {} vs {}",
            churned.release_resilience.value(),
            no_churn.release_resilience.value()
        );
    }

    #[test]
    fn share_scheme_survives_churn() {
        // Same conditions as churn_degrades_keyed_schemes, but the share
        // scheme's just-in-time key delivery resists.
        let p = 0.2;
        let a = analysis::algorithm1(4, 8, 10_000, 3.0, p);
        let params = SchemeParams::Share {
            k: 4,
            l: 8,
            n: a.n,
            m: a.m.clone(),
        };
        let r = run_trials(&spec(params, 10_000, p, Some(3.0)), 300, 6).unwrap();
        assert!(
            r.release_resilience.value() > 0.95,
            "share Rr under churn: {}",
            r.release_resilience.value()
        );
        assert!(
            r.drop_resilience.value() > 0.95,
            "share Rd under churn: {}",
            r.drop_resilience.value()
        );
    }

    #[test]
    fn strict_release_is_no_easier_to_resist() {
        // The strict metric counts strictly more adversary wins for keyed
        // schemes, so its resilience is <= the paper metric's.
        let s = spec(SchemeParams::Joint { k: 3, l: 5 }, 5000, 0.3, None);
        let r = run_trials(&s, 2000, 7).unwrap();
        assert!(r.strict_release_resilience.value() <= r.release_resilience.value() + 1e-9);
    }

    #[test]
    fn combined_is_at_most_min() {
        let s = spec(SchemeParams::Disjoint { k: 2, l: 4 }, 5000, 0.35, None);
        let r = run_trials(&s, 2000, 8).unwrap();
        assert!(r.combined_resilience.value() <= r.r_min() + 1e-9);
    }

    #[test]
    fn oversized_structure_is_an_error() {
        let s = spec(SchemeParams::Joint { k: 50, l: 50 }, 100, 0.1, None);
        let err = run_trials(&s, 1, 9).unwrap_err();
        assert!(matches!(
            err,
            EmergeError::InsufficientNodes {
                required: 2500,
                available: 100
            }
        ));
    }

    #[test]
    fn out_of_range_inputs_are_errors_not_panics() {
        let mut bad_p = spec(SchemeParams::Central, 100, 1.5, None);
        assert!(matches!(
            run_trials(&bad_p, 1, 9),
            Err(EmergeError::InvalidParameters(_))
        ));
        bad_p.p = f64::NAN;
        assert!(matches!(
            run_trials(&bad_p, 1, 9),
            Err(EmergeError::InvalidParameters(_))
        ));
        let bad_alpha = spec(SchemeParams::Central, 100, 0.1, Some(-1.0));
        assert!(matches!(
            run_trials(&bad_alpha, 1, 9),
            Err(EmergeError::InvalidParameters(_))
        ));
    }

    #[test]
    fn unavailability_degrades_drop_resilience_only() {
        let params = SchemeParams::Disjoint { k: 2, l: 5 };
        let base = spec(params.clone(), 5000, 0.1, None);
        let mut flaky = base.clone();
        flaky.unavailability = 0.2;
        let r0 = run_trials(&base, 3000, 10).unwrap();
        let r1 = run_trials(&flaky, 3000, 10).unwrap();
        assert!(
            r1.drop_resilience.value() < r0.drop_resilience.value() - 0.05,
            "20% offline probability must hurt disjoint delivery: {} vs {}",
            r1.drop_resilience.value(),
            r0.drop_resilience.value()
        );
        assert!(
            (r1.release_resilience.value() - r0.release_resilience.value()).abs() < 0.03,
            "unavailability must not affect confidentiality"
        );
    }

    #[test]
    fn joint_tolerates_unavailability_better_than_disjoint() {
        let (k, l, p, u) = (3usize, 5usize, 0.05, 0.2);
        let mut joint = spec(SchemeParams::Joint { k, l }, 5000, p, None);
        joint.unavailability = u;
        let mut disjoint = spec(SchemeParams::Disjoint { k, l }, 5000, p, None);
        disjoint.unavailability = u;
        let rj = run_trials(&joint, 3000, 11)
            .unwrap()
            .drop_resilience
            .value();
        let rd = run_trials(&disjoint, 3000, 11)
            .unwrap()
            .drop_resilience
            .value();
        assert!(
            rj > rd + 0.1,
            "column-complete forwarding must mask offline holders: joint={rj} disjoint={rd}"
        );
    }

    #[test]
    fn share_headroom_absorbs_unavailability() {
        let a = crate::analysis::algorithm1(4, 6, 5000, 0.0, 0.1);
        let params = SchemeParams::Share {
            k: 4,
            l: 6,
            n: a.n,
            m: a.m,
        };
        let mut s = spec(params, 5000, 0.1, None);
        s.unavailability = 0.15;
        let r = run_trials(&s, 500, 12).unwrap();
        assert!(
            r.drop_resilience.value() > 0.95,
            "thresholds sized with slack must absorb 15% offline: {}",
            r.drop_resilience.value()
        );
    }

    #[test]
    fn unavailability_out_of_range_is_an_error() {
        let mut s = spec(SchemeParams::Central, 100, 0.1, None);
        s.unavailability = 1.0;
        assert!(matches!(
            run_trials(&s, 1, 13),
            Err(EmergeError::InvalidParameters(_))
        ));
    }
}
