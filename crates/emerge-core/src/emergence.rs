//! High-level API: the full self-emerging data pipeline of Figure 1.
//!
//! A [`SelfEmergingSystem`] owns the DHT overlay and the cloud. The sender
//! calls [`SelfEmergingSystem::send`] at `ts`: the message is encrypted
//! with a fresh secret key, the ciphertext goes to the cloud, and the key
//! is dispatched into the DHT along the chosen scheme's routing paths.
//! After `tr`, [`SelfEmergingSystem::receive`] collects the emerged key
//! from the terminal holders and decrypts the cloud ciphertext.
//!
//! ```
//! use emerge_core::emergence::{SelfEmergingSystem, SendRequest};
//! use emerge_core::config::SchemeKind;
//! use emerge_core::substrate::OverlayConfig;
//! use emerge_sim::time::SimDuration;
//!
//! # fn main() -> Result<(), emerge_core::error::EmergeError> {
//! let mut system = SelfEmergingSystem::new(
//!     OverlayConfig { n_nodes: 128, ..OverlayConfig::default() },
//!     4242,
//! );
//! let mut handle = system.send(SendRequest {
//!     message: b"exam questions".to_vec(),
//!     emerging_period: SimDuration::from_ticks(3_000),
//!     scheme: SchemeKind::Joint,
//!     target_resilience: 0.99,
//!     expected_malicious_rate: 0.1,
//! })?;
//!
//! // Too early: the key has not emerged yet.
//! assert!(system.receive(&handle).is_err());
//!
//! system.run_to_release(&mut handle);
//! let message = system.receive(&handle)?;
//! assert_eq!(message, b"exam questions");
//! # Ok(())
//! # }
//! ```

use crate::analysis;
use crate::config::{SchemeKind, SchemeParams};
use crate::error::EmergeError;
use crate::package::{build_keyed_packages, build_share_packages, KeySchedule};
use crate::path::{construct_paths, PathPlan};
use crate::protocol::{
    execute_central, execute_keyed, execute_share, AttackMode, RunConfig, RunReport,
};
use crate::substrate::{AnalyticSubstrate, HolderSubstrate, Overlay, OverlayConfig};
use emerge_cloud::{AccessToken, BlobId, BlobStore};
use emerge_crypto::aead;
use emerge_crypto::keys::SymmetricKey;
use emerge_sim::rng::SeedSource;
use emerge_sim::time::{SimDuration, SimTime};
use rand::RngCore;

/// What the sender asks for.
#[derive(Debug, Clone)]
pub struct SendRequest {
    /// The plaintext message to release in the future.
    pub message: Vec<u8>,
    /// The emerging period `T = tr − ts`.
    pub emerging_period: SimDuration,
    /// Which routing scheme protects the key.
    pub scheme: SchemeKind,
    /// Target resilience `R*` for the parameter solver.
    pub target_resilience: f64,
    /// The sender's estimate of the malicious node rate `p`.
    pub expected_malicious_rate: f64,
}

/// A pending self-emerging message.
#[derive(Debug)]
pub struct SendHandle {
    /// The cloud blob holding the ciphertext.
    pub blob: BlobId,
    /// Release time `tr`.
    pub release_time: SimTime,
    /// The resolved scheme parameters.
    pub params: SchemeParams,
    /// The holder grid used.
    pub plan: PathPlan,
    /// Protocol report (populated by `run_to_release`).
    pub report: Option<RunReport>,
    token: AccessToken,
    nonce: [u8; 12],
    /// Retained only to drive the deterministic protocol simulation; a
    /// real sender forgets this after `ts`.
    sender_seed: SymmetricKey,
    attack: AttackMode,
}

/// The assembled system: DHT substrate + cloud.
///
/// Generic over the [`HolderSubstrate`] carrying the key packages; the
/// default is the fully simulated [`Overlay`]. Use
/// [`SelfEmergingSystem::new_analytic`] (or [`with_substrate`] with any
/// other backend) for the routing-free substrate, which produces identical
/// emergence outcomes at a fraction of the cost.
///
/// [`with_substrate`]: SelfEmergingSystem::with_substrate
#[derive(Debug)]
pub struct SelfEmergingSystem<S: HolderSubstrate = Overlay> {
    substrate: S,
    cloud: BlobStore,
    seeds: SeedSource,
    sends: u64,
    attack: AttackMode,
}

impl SelfEmergingSystem<Overlay> {
    /// Builds a system over a fresh fully simulated overlay.
    pub fn new(config: OverlayConfig, seed: u64) -> Self {
        Self::with_substrate(Overlay::build(config, seed), seed)
    }
}

impl SelfEmergingSystem<AnalyticSubstrate> {
    /// Builds a system over the routing-free analytic substrate — the
    /// same population and emergence outcomes as [`SelfEmergingSystem::new`]
    /// for equal `(config, seed)`, without routing-table or network costs.
    pub fn new_analytic(config: OverlayConfig, seed: u64) -> Self {
        Self::with_substrate(AnalyticSubstrate::build(config, seed), seed)
    }
}

impl<S: HolderSubstrate> SelfEmergingSystem<S> {
    /// Assembles a system over an existing substrate. `seed` drives the
    /// sender-side randomness (message keys, nonces, tokens) and should
    /// match the substrate's build seed for full-run reproducibility.
    pub fn with_substrate(substrate: S, seed: u64) -> Self {
        SelfEmergingSystem {
            substrate,
            cloud: BlobStore::new(),
            seeds: SeedSource::new(seed),
            sends: 0,
            attack: AttackMode::Passive,
        }
    }

    /// Sets the behaviour of malicious substrate nodes for subsequent runs.
    pub fn set_attack_mode(&mut self, attack: AttackMode) {
        self.attack = attack;
    }

    /// Read access to the substrate.
    pub fn substrate(&self) -> &S {
        &self.substrate
    }

    /// Read access to the cloud.
    pub fn cloud(&self) -> &BlobStore {
        &self.cloud
    }

    /// Sends a message to the future: encrypts, uploads to the cloud, and
    /// dispatches the key into the DHT.
    ///
    /// # Errors
    ///
    /// Fails when the solver's structure does not fit the overlay
    /// ([`EmergeError::InsufficientNodes`]) or parameters are invalid.
    pub fn send(&mut self, request: SendRequest) -> Result<SendHandle, EmergeError> {
        if request.message.is_empty() {
            return Err(EmergeError::InvalidParameters(
                "refusing to send an empty message".into(),
            ));
        }
        let p = request.expected_malicious_rate;
        if !(0.0..=1.0).contains(&p) {
            return Err(EmergeError::InvalidParameters(format!(
                "malicious rate estimate {p} out of [0,1]"
            )));
        }
        let budget = self.substrate.n_nodes();
        let params = match request.scheme {
            SchemeKind::Central => SchemeParams::Central,
            SchemeKind::Disjoint => {
                analysis::solve_disjoint(p, request.target_resilience, budget).params
            }
            SchemeKind::Joint => analysis::solve_joint(p, request.target_resilience, budget).params,
            SchemeKind::Share => {
                // Without a better estimate, assume the emerging period
                // spans one mean node lifetime for threshold selection.
                // Wire-level sharing runs over GF(256), so cap the grid at
                // 255 rows: re-run Algorithm 1 with the reduced budget.
                let sol = analysis::solve_share(p, request.target_resilience, budget, 1.0);
                match sol.params {
                    SchemeParams::Share { k, l, n, .. } if n > 255 => {
                        let capped_budget = 255 * l;
                        let a = analysis::algorithm1(k.min(255), l, capped_budget, 1.0, p);
                        SchemeParams::Share {
                            k: k.min(255),
                            l,
                            n: a.n,
                            m: a.m,
                        }
                    }
                    other => other,
                }
            }
        };
        params.validate()?;

        // Fresh randomness per send, deterministic per system seed. The
        // message secret key derives from the sender seed so the key that
        // emerges from the DHT is the key the ciphertext was sealed with.
        let mut rng = self.seeds.stream_n("send", self.sends);
        self.sends += 1;
        let sender_seed = SymmetricKey::generate(&mut rng);
        let secret_key = sender_seed.derive(b"message-secret-key");
        let mut nonce = [0u8; 12];
        rng.fill_bytes(&mut nonce);
        let mut token_bytes = vec![0u8; 32];
        rng.fill_bytes(&mut token_bytes);
        let token = AccessToken::from_bytes(token_bytes);

        // Encrypt and upload.
        let ciphertext = aead::seal(&secret_key, &nonce, &request.message, b"self-emerging-v1");
        let blob = self.cloud.put(ciphertext, &[token.fingerprint()]);

        // Plan the routing paths.
        let plan = construct_paths(&self.substrate, &params, &sender_seed)?;

        Ok(SendHandle {
            blob,
            release_time: self.substrate.now() + request.emerging_period,
            params,
            plan,
            report: None,
            token,
            nonce,
            sender_seed,
            attack: self.attack,
        })
    }

    /// Drives the DHT protocol to the release time, populating
    /// `handle.report` and advancing the overlay clock to `tr`.
    pub fn run_to_release(&mut self, handle: &mut SendHandle) {
        let ts = self.substrate.now();
        let emerging_period = handle.release_time.since(ts);
        let config = RunConfig {
            ts,
            emerging_period,
            attack: handle.attack,
        };
        let schedule = KeySchedule::new(handle.sender_seed.clone());
        let secret = secret_for(handle);
        let report = match &handle.params {
            SchemeParams::Central => {
                execute_central(&mut self.substrate, &handle.plan, &secret, &config)
            }
            SchemeParams::Disjoint { .. } | SchemeParams::Joint { .. } => {
                let pkgs = build_keyed_packages(&handle.plan, &handle.params, &schedule, &secret)
                    // LINT-WAIVER(panic): the plan was validated at construction, so the package build cannot fail
                    .expect("planned parameters build packages");
                execute_keyed(
                    &mut self.substrate,
                    &handle.plan,
                    &handle.params,
                    &pkgs,
                    &config,
                )
            }
            SchemeParams::Share { .. } => {
                let pkgs = build_share_packages(&handle.plan, &handle.params, &schedule, &secret)
                    // LINT-WAIVER(panic): the plan was validated at construction, so the package build cannot fail
                    .expect("planned parameters build packages");
                execute_share(
                    &mut self.substrate,
                    &handle.plan,
                    &handle.params,
                    &pkgs,
                    &config,
                )
            }
        }
        // LINT-WAIVER(panic): protocol execution over packages built in this function is infallible
        .expect("protocol execution is infallible for valid packages");
        handle.report = Some(report);
        self.substrate.advance_to(handle.release_time);
    }

    /// Fetches and decrypts the message after release.
    ///
    /// # Errors
    ///
    /// * [`EmergeError::NotYetReleased`] before `tr` (the DHT has not
    ///   emitted the key).
    /// * [`EmergeError::KeyLost`] if the protocol run ended without the
    ///   key emerging (drop attack, churn starvation).
    /// * [`EmergeError::Cloud`] / [`EmergeError::Crypto`] on fetch or
    ///   decryption failures.
    pub fn receive(&mut self, handle: &SendHandle) -> Result<Vec<u8>, EmergeError> {
        let now = self.substrate.now();
        let Some(report) = &handle.report else {
            return Err(EmergeError::NotYetReleased {
                remaining_ticks: handle.release_time.since(now).ticks(),
            });
        };
        let (released_at, key_bytes) =
            report
                .released
                .as_ref()
                .ok_or_else(|| EmergeError::KeyLost {
                    reason: report
                        .failure
                        .clone()
                        .unwrap_or_else(|| "unknown loss".into()),
                })?;
        if now < *released_at {
            return Err(EmergeError::NotYetReleased {
                remaining_ticks: released_at.since(now).ticks(),
            });
        }

        let mut kb = [0u8; 32];
        kb.copy_from_slice(&key_bytes[..32]);
        let key = SymmetricKey::from_bytes(kb);
        let ciphertext = self
            .cloud
            .fetch(&handle.blob, &handle.token)
            .map_err(|e| EmergeError::Cloud(e.to_string()))?;
        let plain = aead::open(&key, &handle.nonce, &ciphertext, b"self-emerging-v1")?;
        Ok(plain)
    }
}

/// The 32-byte secret key protecting the cloud ciphertext, derived from
/// the sender seed (so the protocol run and the receiver agree).
fn secret_for(handle: &SendHandle) -> Vec<u8> {
    handle
        .sender_seed
        .derive(b"message-secret-key")
        .as_bytes()
        .to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system(n: usize, p: f64, seed: u64) -> SelfEmergingSystem {
        SelfEmergingSystem::new(
            OverlayConfig {
                n_nodes: n,
                malicious_fraction: p,
                ..OverlayConfig::default()
            },
            seed,
        )
    }

    fn request(scheme: SchemeKind) -> SendRequest {
        SendRequest {
            message: b"meet me at the usual place".to_vec(),
            emerging_period: SimDuration::from_ticks(6_000),
            scheme,
            target_resilience: 0.99,
            expected_malicious_rate: 0.1,
        }
    }

    #[test]
    fn full_pipeline_all_schemes() {
        for (i, scheme) in SchemeKind::ALL.into_iter().enumerate() {
            let mut sys = system(256, 0.0, 100 + i as u64);
            let mut handle = sys.send(request(scheme)).expect("send succeeds");
            sys.run_to_release(&mut handle);
            let msg = sys
                .receive(&handle)
                .unwrap_or_else(|e| panic!("{scheme}: receive failed: {e}"));
            assert_eq!(msg, b"meet me at the usual place", "{scheme}");
        }
    }

    #[test]
    fn early_receive_is_rejected() {
        let mut sys = system(128, 0.0, 1);
        let handle = sys.send(request(SchemeKind::Joint)).unwrap();
        match sys.receive(&handle) {
            Err(EmergeError::NotYetReleased { remaining_ticks }) => {
                assert_eq!(remaining_ticks, 6_000);
            }
            other => panic!("expected NotYetReleased, got {other:?}"),
        }
    }

    #[test]
    fn drop_attack_loses_the_message() {
        let mut sys = system(64, 1.0, 2);
        sys.set_attack_mode(AttackMode::Drop);
        let mut handle = sys.send(request(SchemeKind::Central)).unwrap();
        sys.run_to_release(&mut handle);
        assert!(matches!(
            sys.receive(&handle),
            Err(EmergeError::KeyLost { .. })
        ));
    }

    #[test]
    fn release_ahead_attack_reconstructs_before_tr() {
        let mut sys = system(64, 1.0, 3);
        sys.set_attack_mode(AttackMode::ReleaseAhead);
        let mut handle = sys.send(request(SchemeKind::Joint)).unwrap();
        sys.run_to_release(&mut handle);
        let report = handle.report.as_ref().unwrap();
        let (at, key) = report
            .adversary_reconstruction
            .as_ref()
            .expect("all-malicious overlay must reconstruct");
        assert!(*at < handle.release_time);
        // The stolen key really decrypts the cloud blob.
        let mut kb = [0u8; 32];
        kb.copy_from_slice(&key[..32]);
        let stolen = SymmetricKey::from_bytes(kb);
        let ct = sys
            .cloud
            .fetch(&handle.blob, &handle.token)
            .expect("fetch with legitimate token for the test");
        let plain = aead::open(&stolen, &handle.nonce, &ct, b"self-emerging-v1").unwrap();
        assert_eq!(plain, b"meet me at the usual place");
    }

    #[test]
    fn empty_message_rejected() {
        let mut sys = system(64, 0.0, 4);
        let mut req = request(SchemeKind::Central);
        req.message.clear();
        assert!(matches!(
            sys.send(req),
            Err(EmergeError::InvalidParameters(_))
        ));
    }

    #[test]
    fn bad_rate_estimate_rejected() {
        let mut sys = system(64, 0.0, 5);
        let mut req = request(SchemeKind::Central);
        req.expected_malicious_rate = 1.5;
        assert!(sys.send(req).is_err());
    }

    #[test]
    fn solver_shapes_the_structure() {
        let mut sys = system(512, 0.0, 6);
        let handle = sys.send(request(SchemeKind::Joint)).unwrap();
        let (k, l) = handle.params.grid().unwrap();
        assert!(k >= 2 && l >= 2, "p=0.1 at R*=0.99 needs real redundancy");
        assert!(handle.params.node_cost() <= 512);
    }

    #[test]
    fn honest_majority_share_send_survives_attacks() {
        let mut sys = system(400, 0.05, 7);
        sys.set_attack_mode(AttackMode::Drop);
        let mut handle = sys.send(request(SchemeKind::Share)).unwrap();
        sys.run_to_release(&mut handle);
        assert_eq!(
            sys.receive(&handle).expect("5% droppers must not win"),
            b"meet me at the usual place"
        );
    }
}
