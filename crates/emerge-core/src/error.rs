//! Error types for the self-emerging data core.

use emerge_crypto::CryptoError;
use std::error::Error;
use std::fmt;

/// Errors raised by scheme construction, protocol execution, or the
/// high-level sender/receiver API.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EmergeError {
    /// Scheme parameters were invalid (zero paths, threshold out of range,
    /// budget exceeded, ...).
    InvalidParameters(String),
    /// The DHT population is too small for the requested path structure.
    InsufficientNodes {
        /// Nodes required by the path structure.
        required: usize,
        /// Nodes available in the overlay.
        available: usize,
    },
    /// A cryptographic operation failed.
    Crypto(CryptoError),
    /// The secret key did not emerge (drop attack or churn loss).
    KeyLost {
        /// Human-readable reason recorded by the protocol run.
        reason: String,
    },
    /// The receiver asked for the message before the release time.
    NotYetReleased {
        /// Ticks remaining until the release time.
        remaining_ticks: u64,
    },
    /// The cloud rejected the fetch.
    Cloud(String),
}

impl fmt::Display for EmergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmergeError::InvalidParameters(msg) => write!(f, "invalid parameters: {msg}"),
            EmergeError::InsufficientNodes {
                required,
                available,
            } => write!(
                f,
                "insufficient DHT nodes: path structure needs {required}, overlay has {available}"
            ),
            EmergeError::Crypto(e) => write!(f, "cryptographic failure: {e}"),
            EmergeError::KeyLost { reason } => write!(f, "secret key lost: {reason}"),
            EmergeError::NotYetReleased { remaining_ticks } => write!(
                f,
                "message not yet released: {remaining_ticks} ticks remain"
            ),
            EmergeError::Cloud(msg) => write!(f, "cloud error: {msg}"),
        }
    }
}

impl Error for EmergeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EmergeError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CryptoError> for EmergeError {
    fn from(e: CryptoError) -> Self {
        EmergeError::Crypto(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all_variants() {
        let variants: Vec<EmergeError> = vec![
            EmergeError::InvalidParameters("k = 0".into()),
            EmergeError::InsufficientNodes {
                required: 100,
                available: 10,
            },
            EmergeError::Crypto(CryptoError::AuthenticationFailed),
            EmergeError::KeyLost {
                reason: "drop attack at column 3".into(),
            },
            EmergeError::NotYetReleased {
                remaining_ticks: 42,
            },
            EmergeError::Cloud("unauthorized".into()),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn crypto_error_converts_and_sources() {
        let e: EmergeError = CryptoError::AuthenticationFailed.into();
        assert!(matches!(e, EmergeError::Crypto(_)));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EmergeError>();
    }
}
