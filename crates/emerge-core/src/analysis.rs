//! Closed-form attack-resilience analysis and parameter selection.
//!
//! Implements the paper's equations and Algorithm 1:
//!
//! * centralized: `Rr = Rd = 1 − p`
//! * node-disjoint (eq. 1, 2):
//!   `Rr = 1 − (1 − (1−p)^k)^l`, `Rd = 1 − (1 − (1−p)^l)^k`
//! * node-joint (eq. 1, 3):
//!   `Rr` as above, `Rd = (1 − p^k)^l`
//! * key-share routing: Algorithm 1 (per-column `(m, n)` selection
//!   balancing release vs. drop success, then the `k`-fold assembly)
//!
//! plus the **solver** the sender uses: given the malicious rate `p`, a
//! target resilience `R*` and a node budget `N`, find the cheapest `(k, l)`
//! meeting the target — or, when the budget can no longer reach the
//! target, the budget-constrained optimum. This reconstruction is what
//! drives Figure 6's "attack resilience" and "required nodes" curves.

use crate::config::SchemeParams;
use crate::math::{binomial_tail_ge, clamp_prob};

/// A pair of resilience values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Resilience {
    /// Release-ahead attack resilience `Rr`.
    pub release: f64,
    /// Drop attack resilience `Rd`.
    pub drop: f64,
}

impl Resilience {
    /// The weaker of the two resiliences (the system's effective `R` when
    /// the adversary picks the better attack).
    pub fn min(&self) -> f64 {
        self.release.min(self.drop)
    }
}

/// `Rr = Rd = 1 − p` for the centralized scheme.
pub fn central(p: f64) -> Resilience {
    assert_p(p);
    Resilience {
        release: 1.0 - p,
        drop: 1.0 - p,
    }
}

/// Equation (1): release-ahead resilience of `k` replicated onion paths of
/// length `l` (shared by the disjoint and joint schemes).
///
/// The adversary must control, for every column `j`, at least one of the
/// `k` holders that were assigned `K_j`.
pub fn release_multipath(p: f64, k: usize, l: usize) -> f64 {
    assert_p(p);
    assert_kl(k, l);
    let per_column = 1.0 - (1.0 - p).powi(k as i32); // >=1 malicious among k
    clamp_prob(1.0 - per_column.powi(l as i32))
}

/// Equation (2): drop resilience of the node-disjoint scheme — the
/// adversary must cut all `k` paths, each needing one malicious holder
/// among `l`.
pub fn drop_disjoint(p: f64, k: usize, l: usize) -> f64 {
    assert_p(p);
    assert_kl(k, l);
    let per_path = 1.0 - (1.0 - p).powi(l as i32);
    clamp_prob(1.0 - per_path.powi(k as i32))
}

/// Equation (3): drop resilience of the node-joint scheme — the adversary
/// must control an entire column of `k` holders.
pub fn drop_joint(p: f64, k: usize, l: usize) -> f64 {
    assert_p(p);
    assert_kl(k, l);
    clamp_prob((1.0 - p.powi(k as i32)).powi(l as i32))
}

/// Resilience of the node-disjoint scheme (eq. 1 + 2).
pub fn disjoint(p: f64, k: usize, l: usize) -> Resilience {
    Resilience {
        release: release_multipath(p, k, l),
        drop: drop_disjoint(p, k, l),
    }
}

/// Resilience of the node-joint scheme (eq. 1 + 3).
pub fn joint(p: f64, k: usize, l: usize) -> Resilience {
    Resilience {
        release: release_multipath(p, k, l),
        drop: drop_joint(p, k, l),
    }
}

/// Output of Algorithm 1: thresholds plus predicted resilience.
#[derive(Debug, Clone, PartialEq)]
pub struct ShareAnalysis {
    /// Rows per column, `n = ⌊N / l⌋`.
    pub n: usize,
    /// Expected dead share-senders per column, `d = ⌊pdead · n⌋`.
    pub d: usize,
    /// Per-holding-period death probability `pdead = 1 − e^(−T/(λ·l))`.
    pub pdead: f64,
    /// Thresholds `m` for columns `2..=l`.
    pub m: Vec<usize>,
    /// Accumulated per-column release-ahead success rates `Pr`.
    pub pr: Vec<f64>,
    /// Accumulated per-column drop success rates `Pd`.
    pub pd: Vec<f64>,
    /// Predicted resilience.
    pub resilience: Resilience,
}

/// Algorithm 1: key-share routing parameter selection and analysis.
///
/// * `k`, `l` — structure determined by the node-joint solver,
/// * `n_available` — node budget `N` for the share grid (`n = ⌊N/l⌋`),
/// * `t_over_lambda` — the ratio `T / λ` (the paper's `α` when `λ` is the
///   mean node lifetime); pass `0.0` for a churn-free analysis,
/// * `p` — node malicious rate.
///
/// # Panics
///
/// Panics if parameters are degenerate (`k == 0`, `l == 0`,
/// `n_available < l`, out-of-range `p`, or `k > n`).
pub fn algorithm1(
    k: usize,
    l: usize,
    n_available: usize,
    t_over_lambda: f64,
    p: f64,
) -> ShareAnalysis {
    assert_p(p);
    assert_kl(k, l);
    // LINT-WAIVER(panic): documented precondition on the (k, l) grid arguments
    assert!(
        t_over_lambda >= 0.0 && t_over_lambda.is_finite(),
        "T/λ must be nonnegative"
    );
    // Line 1: uniform node assignment across columns.
    let n = n_available / l;
    // LINT-WAIVER(panic): documented precondition: the node budget must fill every column
    assert!(n >= 1, "node budget {n_available} cannot fill {l} columns");
    // LINT-WAIVER(panic): documented precondition: k cannot exceed the per-column row count
    assert!(k <= n, "onion rows k={k} exceed share rows n={n}");

    // Line 2-3: dead shares per holding period th = T / l.
    let pdead = 1.0 - (-t_over_lambda / l as f64).exp();
    let d = (pdead * n as f64).floor() as usize;
    let alive = n - d;

    // Line 4-6.
    let mut pr_col = p;
    let mut pd_col = p;
    let mut pr = vec![pr_col];
    let mut pd = vec![pd_col];
    let mut m_vec = Vec::with_capacity(l.saturating_sub(1));

    // Line 7-13: per-column threshold selection.
    for _column in 2..=l {
        let m = select_threshold(n, d, p);
        // qr: adversary gathers >= m of n shares (malicious senders leak).
        let qr = binomial_tail_ge(n as u64, p, m as u64);
        // qd: adversary withholds enough of the alive shares that fewer
        // than m survive: >= alive - m + 1 malicious among the alive.
        // alive < m covers alive == 0: with fewer alive shares than the
        // threshold the key cannot be delivered regardless of attacks.
        let qd = if alive < m {
            1.0
        } else {
            binomial_tail_ge(alive as u64, p, (alive - m + 1) as u64)
        };
        pr_col = 1.0 - (1.0 - pr_col) * (1.0 - qr);
        pd_col = 1.0 - (1.0 - pd_col) * (1.0 - qd);
        pr.push(pr_col);
        pd.push(pd_col);
        m_vec.push(m);
    }

    // Line 14-18: k-fold assembly across the l columns.
    let mut rr_fail = 1.0;
    let mut rd = 1.0;
    for i in 0..l {
        rr_fail *= 1.0 - (1.0 - pr[i]).powi(k as i32);
        rd *= 1.0 - pd[i].powi(k as i32);
    }
    let rr = 1.0 - rr_fail;

    ShareAnalysis {
        n,
        d,
        pdead,
        m: m_vec,
        pr,
        pd,
        resilience: Resilience {
            release: clamp_prob(rr),
            drop: clamp_prob(rd),
        },
    }
}

/// Line 8 of Algorithm 1: the threshold `m ∈ [1, n]` minimizing the gap
/// between the two attack success probabilities.
///
/// `qr(m) = P(Bin(n, p) ≥ m)` falls in `m` while
/// `qd(m) = P(Bin(n−d, p) ≥ n−d−m+1)` rises, so the difference
/// `qr − qd` is monotone and a binary search finds the crossing.
pub fn select_threshold(n: usize, d: usize, p: f64) -> usize {
    // LINT-WAIVER(panic): documented precondition: threshold selection needs n >= 1
    assert!(n >= 1);
    let alive = n.saturating_sub(d);
    let diff = |m: usize| -> f64 {
        let qr = binomial_tail_ge(n as u64, p, m as u64);
        let qd = if alive == 0 || alive < m {
            1.0
        } else {
            binomial_tail_ge(alive as u64, p, (alive - m + 1) as u64)
        };
        qr - qd
    };
    // Binary search for the first m where diff <= 0, then compare
    // neighbours by |diff|.
    let (mut lo, mut hi) = (1usize, n);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if diff(mid) > 0.0 {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    // lo is the first index with diff <= 0 (or n if none). Check lo-1 too.
    let mut best = lo;
    let mut best_gap = diff(lo).abs();
    if lo > 1 {
        let gap = diff(lo - 1).abs();
        if gap < best_gap {
            best = lo - 1;
            best_gap = gap;
        }
    }
    let _ = best_gap;
    best
}

/// Probability that the share flow survives drop attempts and churn at
/// every column boundary: the number of forwarders that are honest *and*
/// outlive their holding period is `Binomial(n, (1−p)·e^(−α/l))`, and each
/// boundary needs at least its threshold `m_j` of them.
///
/// Algorithm 1 as printed does not model this starvation channel (its
/// `d = ⌊pdead·n⌋` is a deterministic expectation with no variance); the
/// solver uses this term in addition so that the parameters it picks hold
/// up in the mechanistic Monte-Carlo. See EXPERIMENTS.md for the
/// comparison.
pub fn share_flow_survival(n: usize, m: &[usize], p: f64, t_over_lambda: f64, l: usize) -> f64 {
    // LINT-WAIVER(panic): documented precondition: share flow needs at least one column
    assert!(l >= 1);
    let survive = (-t_over_lambda / l as f64).exp();
    let q = (1.0 - p) * survive;
    let mut acc = 1.0;
    for &mj in m {
        acc *= binomial_tail_ge(n as u64, q, mj as u64);
    }
    acc
}

/// A parameter choice produced by the solver.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// The chosen parameters.
    pub params: SchemeParams,
    /// Predicted resilience at those parameters.
    pub predicted: Resilience,
    /// Whether the target was met within the budget.
    pub target_met: bool,
}

/// Finds the cheapest `(k, l)` for the **node-joint** scheme with
/// `min(Rr, Rd) ≥ target`, subject to `k·l ≤ budget`. Falls back to the
/// budget-constrained maximizer of `min(Rr, Rd)` when the target is
/// unreachable (this is what bends the curves of Figure 6 down at high
/// `p`).
pub fn solve_joint(p: f64, target: f64, budget: usize) -> Solution {
    solve_multipath(p, target, budget, true)
}

/// Like [`solve_joint`] for the **node-disjoint** scheme (eq. 2 drop
/// resilience).
pub fn solve_disjoint(p: f64, target: f64, budget: usize) -> Solution {
    solve_multipath(p, target, budget, false)
}

fn solve_multipath(p: f64, target: f64, budget: usize, joint_topology: bool) -> Solution {
    assert_p(p);
    // LINT-WAIVER(panic): documented precondition on the resilience target range
    assert!((0.0..1.0).contains(&target), "target must be in [0, 1)");
    // LINT-WAIVER(panic): documented precondition: the solver needs a node budget
    assert!(budget >= 1, "budget must be at least one node");

    let eval = |k: usize, l: usize| -> Resilience {
        if joint_topology {
            joint(p, k, l)
        } else {
            disjoint(p, k, l)
        }
    };

    let make = |k: usize, l: usize| -> SchemeParams {
        if joint_topology {
            SchemeParams::Joint { k, l }
        } else {
            SchemeParams::Disjoint { k, l }
        }
    };

    // Pass 1: cheapest feasible (cost, k, l, res).
    let mut best_feasible: Option<(usize, usize, usize, Resilience)> = None;
    // Pass 2 fallback: maximize min resilience under the budget.
    let mut best_any: (f64, usize, usize, Resilience) = (-1.0, 1, 1, eval(1, 1));

    for k in 1..=budget {
        let max_l = budget / k;
        if max_l == 0 {
            break;
        }
        // Prune: cheapest possible cost with this k already worse.
        if let Some((cost, ..)) = best_feasible {
            if k > cost {
                break;
            }
        }
        for l in 1..=max_l {
            let res = eval(k, l);
            let score = res.min();
            if score > best_any.0 + 1e-15 {
                best_any = (score, k, l, res);
            }
            if score >= target {
                let cost = k * l;
                let better = match best_feasible {
                    None => true,
                    Some((c, ..)) => cost < c,
                };
                if better {
                    best_feasible = Some((cost, k, l, res));
                }
                break; // larger l only costs more for this k
            }
        }
    }

    match best_feasible {
        Some((_, k, l, res)) => Solution {
            params: make(k, l),
            predicted: res,
            target_met: true,
        },
        None => {
            let (_, k, l, res) = best_any;
            Solution {
                params: make(k, l),
                predicted: res,
                target_met: false,
            }
        }
    }
}

/// End-to-end share-scheme parameter selection.
///
/// First tries the paper's pipeline — solve the **node-joint** structure
/// for `(k, l)` under the budget, then run Algorithm 1 for `(n, m)`. When
/// that does not meet the target (high `p`, where the joint solver itself
/// is in its budget-constrained fallback and its `(k, l)` can be
/// degenerate for a share grid), falls back to a direct search over
/// `(k, l)` maximizing Algorithm 1's predicted `min(Rr, Rd)`.
pub fn solve_share(p: f64, target: f64, budget: usize, t_over_lambda: f64) -> Solution {
    // LINT-WAIVER(panic): documented precondition: the solver needs a node budget
    assert!(budget >= 1);
    let joint_sol = solve_joint(p, target, budget);
    let (jk, jl) = joint_sol
        .params
        .grid()
        // LINT-WAIVER(panic): the joint solver always returns grid-shaped params by construction
        .expect("joint solver returns a grid");
    let candidate = |k: usize, l: usize| -> Option<(SchemeParams, Resilience)> {
        let n = budget / l;
        if n == 0 {
            return None;
        }
        let k = k.min(n).max(1);
        let a = algorithm1(k, l, budget, t_over_lambda, p);
        let flow = share_flow_survival(a.n, &a.m, p, t_over_lambda, l);
        let params = SchemeParams::Share {
            k,
            l,
            n: a.n,
            m: a.m,
        };
        // Fold the starvation channel into the predicted drop resilience
        // so the solver's score matches what the Monte-Carlo measures.
        let predicted = Resilience {
            release: a.resilience.release,
            drop: a.resilience.drop * flow,
        };
        Some((params, predicted))
    };

    if let Some((params, res)) = candidate(jk, jl) {
        if res.min() >= target {
            return Solution {
                params,
                predicted: res,
                target_met: true,
            };
        }
    }

    // Direct search: coarse (k, l) grid, best predicted min-resilience.
    let mut best: Option<(f64, SchemeParams, Resilience)> = None;
    let k_candidates: Vec<usize> = (1..=12).chain([16, 20, 24, 32, 48, 64]).collect();
    for l in 1..=32usize {
        if budget / l == 0 {
            break;
        }
        for &k in &k_candidates {
            let Some((params, res)) = candidate(k, l) else {
                continue;
            };
            let score = res.min();
            let better = match &best {
                None => true,
                Some((s, bp, _)) => {
                    score > *s + 1e-12
                        || (score > *s - 1e-12 && params.node_cost() < bp.node_cost())
                }
            };
            if better {
                best = Some((score, params, res));
            }
        }
    }
    // LINT-WAIVER(panic): l = 1 always enters the candidate loop, so best is never None
    let (score, params, predicted) = best.expect("l = 1 is always a candidate");
    Solution {
        params,
        predicted,
        target_met: score >= target,
    }
}

/// Lemma 1: for the node-joint scheme with `p < 0.5`, `Rr + Rd > 1`.
///
/// Exposed as a function so the property tests can sweep it.
pub fn lemma1_holds(p: f64, k: usize, l: usize) -> bool {
    let r = joint(p, k, l);
    r.release + r.drop > 1.0
}

/// One point on the release/drop tradeoff frontier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontierPoint {
    /// Replication factor of this configuration.
    pub k: usize,
    /// Path length of this configuration.
    pub l: usize,
    /// Predicted resilience.
    pub resilience: Resilience,
}

/// The `Rr`/`Rd` tradeoff frontier of the node-joint scheme at a fixed
/// node budget: every `(k, l)` with `k·l ≤ cost` that is not dominated by
/// another configuration (strictly better in one resilience and at least
/// as good in the other).
///
/// This quantifies the paper's remark after Lemma 1 that the scheme
/// "indicates the tradeoff between Rr and Rd and the relationship between
/// the tradeoff and p": larger `k` buys drop resilience at the expense of
/// release resilience, larger `l` the reverse.
///
/// Points are returned sorted by increasing `Rr`.
pub fn joint_frontier(p: f64, cost: usize) -> Vec<FrontierPoint> {
    assert_p(p);
    // LINT-WAIVER(panic): documented precondition: the frontier needs a positive cost
    assert!(cost >= 1);
    let mut points = Vec::new();
    for k in 1..=cost {
        let max_l = cost / k;
        if max_l == 0 {
            break;
        }
        for l in 1..=max_l {
            points.push(FrontierPoint {
                k,
                l,
                resilience: joint(p, k, l),
            });
        }
    }
    // Pareto filter.
    let mut frontier: Vec<FrontierPoint> = Vec::new();
    for cand in points {
        let dominated = |a: &FrontierPoint, b: &FrontierPoint| {
            // b dominates a.
            b.resilience.release >= a.resilience.release - 1e-15
                && b.resilience.drop >= a.resilience.drop - 1e-15
                && (b.resilience.release > a.resilience.release + 1e-15
                    || b.resilience.drop > a.resilience.drop + 1e-15)
        };
        if frontier.iter().any(|f| dominated(&cand, f)) {
            continue;
        }
        frontier.retain(|f| !dominated(f, &cand));
        frontier.push(cand);
    }
    frontier.sort_by(|a, b| {
        a.resilience
            .release
            .partial_cmp(&b.resilience.release)
            // LINT-WAIVER(panic): resiliences are probabilities computed from finite inputs, never NaN
            .expect("resiliences are finite")
    });
    frontier
}

/// The two extreme points of a tradeoff frontier: the drop-optimal
/// configuration (lowest `Rr`, the sorted frontier's first point) and the
/// release-optimal configuration (highest `Rr`, its last point). Returns
/// `None` for an empty frontier instead of panicking — callers composing
/// their own (possibly filtered-empty) frontiers get a typed absence, not
/// an `unwrap` crash.
pub fn frontier_extremes(frontier: &[FrontierPoint]) -> Option<(&FrontierPoint, &FrontierPoint)> {
    Some((frontier.first()?, frontier.last()?))
}

fn assert_p(p: f64) {
    // LINT-WAIVER(panic): this is the documented probability-range guard itself
    assert!(
        (0.0..=1.0).contains(&p) && p.is_finite(),
        "malicious rate p must be in [0, 1], got {p}"
    );
}

fn assert_kl(k: usize, l: usize) {
    // LINT-WAIVER(panic): this is the documented grid-shape guard itself
    assert!(k >= 1 && l >= 1, "k and l must be >= 1 (k={k}, l={l})");
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn central_is_one_minus_p() {
        let r = central(0.3);
        assert!((r.release - 0.7).abs() < 1e-12);
        assert!((r.drop - 0.7).abs() < 1e-12);
    }

    #[test]
    fn equations_match_hand_computation() {
        // k=2, l=3, p=0.2 — the paper's running example shape.
        let p = 0.2f64;
        let rr = 1.0 - (1.0 - 0.8f64.powi(2)).powi(3);
        let rd_dis = 1.0 - (1.0 - 0.8f64.powi(3)).powi(2);
        let rd_joint = (1.0 - 0.2f64.powi(2)).powi(3);
        let d = disjoint(p, 2, 3);
        let j = joint(p, 2, 3);
        assert!((d.release - rr).abs() < 1e-12);
        assert!((d.drop - rd_dis).abs() < 1e-12);
        assert!((j.release - rr).abs() < 1e-12);
        assert!((j.drop - rd_joint).abs() < 1e-12);
    }

    #[test]
    fn degenerate_single_node_equals_central() {
        // k = l = 1 multipath is a single holder.
        let p = 0.25;
        let d = disjoint(p, 1, 1);
        let j = joint(p, 1, 1);
        let c = central(p);
        for r in [d, j] {
            assert!((r.release - c.release).abs() < 1e-12);
            assert!((r.drop - c.drop).abs() < 1e-12);
        }
    }

    #[test]
    fn joint_drop_beats_disjoint_drop() {
        for &p in &[0.05, 0.1, 0.2, 0.3, 0.4] {
            for &(k, l) in &[(2usize, 3usize), (3, 5), (5, 8), (10, 10)] {
                assert!(
                    drop_joint(p, k, l) >= drop_disjoint(p, k, l) - 1e-12,
                    "joint should dominate at p={p}, k={k}, l={l}"
                );
            }
        }
    }

    #[test]
    fn release_improves_with_l_and_degrades_with_k() {
        let p = 0.2;
        assert!(release_multipath(p, 3, 6) > release_multipath(p, 3, 3));
        assert!(release_multipath(p, 6, 3) < release_multipath(p, 3, 3));
    }

    #[test]
    fn lemma1_example_points() {
        for &p in &[0.01, 0.1, 0.25, 0.4, 0.49] {
            for &(k, l) in &[(1usize, 1usize), (2, 3), (4, 7), (10, 20)] {
                assert!(lemma1_holds(p, k, l), "Lemma 1 failed at p={p} k={k} l={l}");
            }
        }
    }

    #[test]
    fn algorithm1_no_churn_keeps_thresholds_feasible() {
        let a = algorithm1(4, 10, 10_000, 0.0, 0.2);
        assert_eq!(a.n, 1000);
        assert_eq!(a.d, 0, "no churn, no dead shares");
        assert_eq!(a.m.len(), 9);
        for &m in &a.m {
            assert!(m >= 1 && m <= a.n);
            // Threshold must exceed the expected malicious share count and
            // stay below the honest share count for both attacks to fail.
            assert!(m as f64 > 0.2 * a.n as f64, "m={m} below np");
            assert!((m as f64) < 0.8 * a.n as f64, "m={m} above n(1-p)");
        }
        assert!(a.resilience.release > 0.99);
        // With shares never leaking, the drop resilience collapses to the
        // joint form (1 - p^k)^l = 0.9841 at k=4, l=10, p=0.2.
        assert!(a.resilience.drop > 0.98);
    }

    #[test]
    fn algorithm1_with_churn_accounts_dead_shares() {
        let a = algorithm1(4, 10, 10_000, 3.0, 0.2);
        let expected_pdead = 1.0 - (-0.3f64).exp();
        assert!((a.pdead - expected_pdead).abs() < 1e-12);
        assert_eq!(a.d, (expected_pdead * 1000.0) as usize);
        assert!(a.d > 200);
        // Still highly resilient at p = 0.2 with a large n.
        assert!(a.resilience.min() > 0.95);
    }

    #[test]
    fn algorithm1_degrades_gracefully_with_small_budget() {
        let big = algorithm1(2, 5, 10_000, 3.0, 0.25).resilience.min();
        let small = algorithm1(2, 5, 100, 3.0, 0.25).resilience.min();
        assert!(
            big > small,
            "larger share pools must not hurt: big={big} small={small}"
        );
    }

    #[test]
    fn select_threshold_balances_tails() {
        let n = 100;
        let d = 20;
        let p = 0.2;
        let m = select_threshold(n, d, p);
        let qr = binomial_tail_ge(n as u64, p, m as u64);
        let alive = n - d;
        let qd = binomial_tail_ge(alive as u64, p, (alive - m + 1) as u64);
        // At the balanced threshold the two tails are within an order of
        // magnitude of each other (they cross between m and m±1).
        let ratio = if qr > qd {
            qr / qd.max(1e-300)
        } else {
            qd / qr.max(1e-300)
        };
        assert!(
            ratio < 1e3,
            "tails should roughly balance: qr={qr:.3e} qd={qd:.3e} m={m}"
        );
    }

    #[test]
    fn solver_meets_target_at_low_p() {
        let sol = solve_joint(0.1, 0.99, 10_000);
        assert!(sol.target_met);
        assert!(sol.predicted.min() >= 0.99);
        // And the cost should be modest at p = 0.1.
        assert!(
            sol.params.node_cost() < 200,
            "cost {}",
            sol.params.node_cost()
        );
    }

    #[test]
    fn solver_cost_grows_with_p() {
        let costs: Vec<usize> = [0.05, 0.15, 0.25, 0.35]
            .iter()
            .map(|&p| solve_joint(p, 0.99, 10_000).params.node_cost())
            .collect();
        for w in costs.windows(2) {
            assert!(w[0] <= w[1], "cost must be nondecreasing in p: {costs:?}");
        }
    }

    #[test]
    fn solver_falls_back_when_target_unreachable() {
        // p = 0.49 with a tiny budget cannot reach 0.99.
        let sol = solve_joint(0.49, 0.99, 50);
        assert!(!sol.target_met);
        assert!(sol.params.node_cost() <= 50);
        // But it still beats the centralized baseline.
        assert!(sol.predicted.min() >= central(0.49).min() - 1e-9);
    }

    #[test]
    fn disjoint_solver_needs_more_nodes_than_joint() {
        // At moderate p the joint topology is strictly more node-efficient.
        let p = 0.25;
        let j = solve_joint(p, 0.99, 10_000);
        let d = solve_disjoint(p, 0.99, 10_000);
        match (j.target_met, d.target_met) {
            (true, true) => {
                assert!(j.params.node_cost() <= d.params.node_cost());
            }
            (true, false) => {} // joint met it, disjoint could not: consistent
            other => panic!("unexpected solver outcomes: {other:?}"),
        }
    }

    #[test]
    fn share_solver_produces_valid_params() {
        let sol = solve_share(0.2, 0.99, 10_000, 3.0);
        sol.params.validate().expect("share params must validate");
        if let SchemeParams::Share { k, l, n, m } = &sol.params {
            assert!(*k >= 1 && *l >= 1);
            assert_eq!(*n, 10_000 / *l);
            assert_eq!(m.len(), *l - 1);
        } else {
            panic!("expected share params");
        }
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn bad_p_panics() {
        let _ = central(1.5);
    }

    #[test]
    fn frontier_is_pareto_and_spans_the_tradeoff() {
        let frontier = joint_frontier(0.25, 64);
        assert!(frontier.len() >= 3, "a 64-node budget offers real choices");
        // Sorted by Rr; Rd must be non-increasing along it (Pareto).
        for w in frontier.windows(2) {
            assert!(w[0].resilience.release <= w[1].resilience.release + 1e-12);
            assert!(
                w[0].resilience.drop >= w[1].resilience.drop - 1e-12,
                "frontier must trade drop for release: {w:?}"
            );
        }
        // All points satisfy Lemma 1 at p < 0.5.
        for pt in &frontier {
            assert!(pt.resilience.release + pt.resilience.drop > 1.0);
        }
        // Budget respected.
        for pt in &frontier {
            assert!(pt.k * pt.l <= 64);
        }
    }

    #[test]
    fn frontier_extremes_favor_k_or_l() {
        let frontier = joint_frontier(0.2, 36);
        let (best_drop, best_release) =
            frontier_extremes(&frontier).expect("a 36-node frontier is never empty");
        assert!(
            best_release.l >= best_release.k,
            "release extreme should favour long paths: {best_release:?}"
        );
        assert!(
            best_drop.k >= best_drop.l,
            "drop extreme should favour wide replication: {best_drop:?}"
        );
    }

    #[test]
    fn frontier_extremes_of_an_empty_frontier_are_none() {
        assert_eq!(frontier_extremes(&[]), None);
        // A filtered-to-empty frontier is the realistic caller mistake the
        // Option guards against.
        let filtered: Vec<FrontierPoint> = joint_frontier(0.2, 16)
            .into_iter()
            .filter(|pt| pt.resilience.min() > 2.0) // impossible bar
            .collect();
        assert_eq!(frontier_extremes(&filtered), None);
        // A single-point frontier has identical extremes.
        let one = joint_frontier(0.2, 1);
        let (lo, hi) = frontier_extremes(&one).unwrap();
        assert_eq!(lo, hi);
    }

    #[test]
    fn flow_survival_monotonic_in_budget_headroom() {
        // Fewer required shares (relative to n) => better survival.
        let s_tight = share_flow_survival(20, &[15, 15], 0.1, 2.0, 3);
        let s_loose = share_flow_survival(20, &[8, 8], 0.1, 2.0, 3);
        assert!(s_loose > s_tight);
        assert!((0.0..=1.0).contains(&s_tight));
        // No churn, no malicious, low thresholds: certain delivery.
        let s_sure = share_flow_survival(20, &[1, 1], 0.0, 0.0, 3);
        assert!((s_sure - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn resilience_values_are_probabilities(
            p in 0.0f64..=0.5,
            k in 1usize..20,
            l in 1usize..20,
        ) {
            for r in [disjoint(p, k, l), joint(p, k, l)] {
                prop_assert!((0.0..=1.0).contains(&r.release));
                prop_assert!((0.0..=1.0).contains(&r.drop));
            }
        }

        #[test]
        fn lemma1_property(p in 0.0f64..0.5, k in 1usize..30, l in 1usize..30) {
            prop_assert!(lemma1_holds(p, k, l), "p={p} k={k} l={l}");
        }

        #[test]
        fn release_monotone_decreasing_in_p(k in 1usize..10, l in 1usize..10) {
            let mut prev = 1.0f64;
            for i in 0..=10 {
                let p = i as f64 * 0.05;
                let r = release_multipath(p, k, l);
                prop_assert!(r <= prev + 1e-12);
                prev = r;
            }
        }

        #[test]
        fn algorithm1_resilience_in_range(
            p in 0.01f64..0.45,
            l in 2usize..12,
            alpha in 0.0f64..5.0,
        ) {
            let a = algorithm1(2, l, 2000, alpha, p);
            prop_assert!((0.0..=1.0).contains(&a.resilience.release));
            prop_assert!((0.0..=1.0).contains(&a.resilience.drop));
            prop_assert_eq!(a.m.len(), l - 1);
        }
    }
}
