//! The fault plane applied at the substrate boundary.
//!
//! [`FaultySubstrate`] wraps any [`HolderSubstrate`] and injects a seeded
//! [`FaultPlan`] at the trait surface — ghost tenants for disrupted
//! holder contacts, hedged redirects for outages and churn storms, lost
//! stores on crashed slots, retried/hedged/tamper-checked lookups — while
//! delegating everything else verbatim. With an empty plan every hook is
//! a single branch and the wrapper is observationally identical to the
//! bare substrate (pinned by test), so the golden fingerprints, the
//! zero-allocation gate and the perf floor are untouched.
//!
//! The fault-aware Monte-Carlo runners mirror
//! [`crate::montecarlo::run_protocol_trial_range`]: each trial arms the
//! plan against its own world seed (a pure function of the global trial
//! index), so sharded runs merge bit-identically to serial runs **under
//! faults** — the property `tests/sharded_montecarlo.rs` pins.
//!
//! ## Outcome taxonomy
//!
//! * **clean success** — the key emerged and the trial saw *zero*
//!   injected disruptions;
//! * **degraded success** — the key emerged despite at least one
//!   disruption (recovered via retry, hedging or m-of-n share slack);
//! * **failure** — the key never emerged.
//!
//! `degraded` is reported separately from `clean_of_faults` precisely so
//! resilience claims can distinguish "nothing went wrong" from "things
//! went wrong and the protocol absorbed them".

use crate::error::EmergeError;
use crate::montecarlo::{
    record_protocol_trial, run_protocol_trial, ProtocolMcResults, ProtocolTrialSpec,
    SPAN_WORLD_REBUILD,
};
use crate::substrate::HolderSubstrate;
use emerge_dht::id::NodeId;
use emerge_dht::population::NodeInfo;
use emerge_faults::injector::DEGRADED_SUCCESS;
use emerge_faults::{FaultInjector, FaultPlan, FaultStats, RecoveryPolicy};
use emerge_obs::trace::span;
use emerge_sim::metrics::{Rate, Summary};
use emerge_sim::rng::SeedSource;
use emerge_sim::shard::{shard_ranges, TrialDigest};
use emerge_sim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::RngCore;

/// Size of the ghost-tenant pool. A hop disrupted at both its arrival and
/// departure instants fakes survival only when both contacts hash to the
/// same ghost — probability `1/GHOST_POOL` per doubly-disrupted hop, a
/// documented artifact of modelling crashes without mutating the
/// underlying population.
const GHOST_POOL: usize = 64;

/// A substrate wrapper that injects an armed fault plan at the
/// [`HolderSubstrate`] boundary and recovers through the configured
/// [`RecoveryPolicy`].
///
/// Fault semantics per trait method:
///
/// * `generation_at` — a disrupted `(slot, t)` contact observes a *ghost
///   tenant*: a benign `NodeInfo` with a far-future spawn no real tenant
///   shares. Executors comparing spawn identities across arrival and
///   departure therefore see the hop as lost; exposure predicates are
///   **not** rerouted through ghosts (delegated to the inner substrate
///   unchanged), so injected loss never masquerades as a confidentiality
///   change.
/// * `resolve_holder` — churn storms redirect resolution to a
///   deterministic neighbour; outages hedge across
///   `closest_slots(fanout)` to the nearest reachable slot.
/// * `store` — a value offered to an unreachable (crashed / outaged) slot
///   is lost: no slot accepts it, and later lookups miss naturally.
/// * `find_value` — bounded retry with deterministic backoff, per-attempt
///   timeouts under slow-node latency inflation, hedged replica recovery
///   when the primary is unreachable, and tamper injection on fetched
///   bytes (authenticated decryption downstream rejects the forgery). A
///   churned address aims the lookup at a neighbour that never held the
///   value; only a hedge wider than the primary (`fanout >= 2`) walks
///   back onto the pre-storm holder, so brittle policies lose the value.
#[derive(Debug)]
pub struct FaultySubstrate<S> {
    inner: S,
    injector: FaultInjector,
    policy: RecoveryPolicy,
    ghosts: Vec<NodeInfo>,
}

impl<S: HolderSubstrate> FaultySubstrate<S> {
    /// Wraps `inner` with an armed injector and a recovery policy.
    pub fn new(inner: S, injector: FaultInjector, policy: RecoveryPolicy) -> Self {
        let ghosts = (0..GHOST_POOL)
            .map(|i| NodeInfo {
                id: NodeId::from_name(format!("fault-ghost-{i}").as_bytes()),
                malicious: false,
                spawn: SimTime::from_ticks(u64::MAX - GHOST_POOL as u64 + i as u64),
                death: SimTime::MAX,
            })
            .collect();
        FaultySubstrate {
            inner,
            injector,
            policy,
            ghosts,
        }
    }

    /// The wrapped substrate.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The armed injector (for statistics snapshots).
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// What the injector did so far in this trial.
    pub fn fault_stats(&self) -> FaultStats {
        self.injector.stats()
    }

    /// Unwraps back into the inner substrate.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: HolderSubstrate> HolderSubstrate for FaultySubstrate<S> {
    fn n_nodes(&self) -> usize {
        self.inner.n_nodes()
    }

    fn now(&self) -> SimTime {
        self.inner.now()
    }

    fn advance_to(&mut self, t: SimTime) {
        self.inner.advance_to(t);
    }

    fn resolve_holder(&self, target: &NodeId) -> usize {
        let slot = self.inner.resolve_holder(target);
        if self.injector.is_empty() {
            return slot;
        }
        let t = self.inner.now();
        if let Some(offset) = self.injector.churn_redirect(slot, t, self.inner.n_nodes()) {
            return (slot + offset) % self.inner.n_nodes();
        }
        if self.injector.unreachable_at(slot, t) {
            self.injector.note_disruption();
            for alt in self.inner.closest_slots(target, self.policy.hedge.fanout) {
                if alt != slot && !self.injector.unreachable_at(alt, t) {
                    self.injector.note_recovery();
                    self.injector.note_redirect();
                    return alt;
                }
            }
        }
        slot
    }

    fn closest_slots(&self, target: &NodeId, count: usize) -> Vec<usize> {
        self.inner.closest_slots(target, count)
    }

    fn generations(&self, slot: usize) -> &[NodeInfo] {
        self.inner.generations(slot)
    }

    fn generation_at(&self, slot: usize, t: SimTime) -> &NodeInfo {
        if self.injector.is_empty() {
            return self.inner.generation_at(slot, t);
        }
        if self.injector.holder_disrupted(slot, t) {
            let idx = self.injector.ghost_index(slot, t, self.ghosts.len());
            return &self.ghosts[idx];
        }
        self.inner.generation_at(slot, t)
    }

    // The exposure predicates delegate to the *inner* substrate (which may
    // override the trait defaults, e.g. the overlay) rather than rerouting
    // through faulted `generation_at`: injected loss models availability,
    // not confidentiality, so it must never grant or revoke an adversary
    // exposure.
    fn any_malicious_exposure(&self, slot: usize, from: SimTime, to: SimTime) -> bool {
        self.inner.any_malicious_exposure(slot, from, to)
    }

    fn first_malicious_exposure(&self, slot: usize, from: SimTime, to: SimTime) -> Option<SimTime> {
        self.inner.first_malicious_exposure(slot, from, to)
    }

    fn exposures_during(&self, slot: usize, from: SimTime, to: SimTime) -> usize {
        self.inner.exposures_during(slot, from, to)
    }

    fn sample_distinct_slots(&self, count: usize, rng: &mut StdRng) -> Vec<usize> {
        self.inner.sample_distinct_slots(count, rng)
    }

    fn store(&mut self, key: NodeId, value: Vec<u8>, ttl: Option<SimDuration>) -> Vec<usize> {
        if self.injector.is_empty() {
            return self.inner.store(key, value, ttl);
        }
        let t = self.inner.now();
        let slot = self.inner.resolve_holder(&key);
        if self.injector.unreachable_at(slot, t) {
            // Crash with state loss: no slot accepts the value.
            self.injector.note_disruption();
            return Vec::new();
        }
        self.inner.store(key, value, ttl)
    }

    fn find_value(&mut self, key: NodeId) -> Option<Vec<u8>> {
        if self.injector.is_empty() {
            return self.inner.find_value(key);
        }
        let t = self.inner.now();
        let key_hash = hash_key(&key);
        let slot = self.inner.resolve_holder(&key);
        if self
            .injector
            .churn_redirect(slot, t, self.inner.n_nodes())
            .is_some()
        {
            // The storm reshuffled the address: the querier's primary
            // contact is now a neighbour that never held the value. The
            // stored copy survives on the pre-storm holder, so only a
            // hedge wider than the primary walks back onto it. The
            // reshuffle is window-stable per slot, so retries cannot help
            // and the miss is final.
            self.injector.note_disruption();
            if self.policy.hedge.fanout < 2 || self.injector.unreachable_at(slot, t) {
                return None;
            }
            self.injector.note_recovery();
        }
        for attempt in 0..self.policy.retry.attempts() {
            if attempt > 0 {
                self.injector
                    .note_retry(self.policy.retry.backoff_ticks(attempt));
            }
            if self.injector.unreachable_at(slot, t) {
                self.injector.note_disruption();
                // Hedge: a replica on a nearby reachable slot may still
                // serve the value.
                let rescued = self
                    .inner
                    .closest_slots(&key, self.policy.hedge.fanout)
                    .into_iter()
                    .any(|alt| alt != slot && !self.injector.unreachable_at(alt, t));
                if !rescued {
                    continue;
                }
                self.injector.note_recovery();
            }
            if self.injector.lookup_attempt_lost(key_hash, attempt, t) {
                self.injector.note_disruption();
                continue;
            }
            let extra = self.injector.extra_latency(slot, t);
            if extra > 0 {
                self.injector.note_latency(extra);
                if extra > self.policy.timeout.per_attempt_ticks {
                    self.injector.note_timeout();
                    continue;
                }
            }
            let mut value = self.inner.find_value(key)?;
            if let Some(selector) = self.injector.tamper_selector(key_hash, t) {
                if !value.is_empty() {
                    let pos = (selector as usize) % value.len();
                    // Guaranteed-nonzero flip mask: the value always changes.
                    value[pos] ^= ((selector >> 32) as u8) | 1;
                }
            }
            if attempt > 0 {
                // A value produced on a retry recovered from a real loss;
                // plain first-try successes stay silent.
                self.injector.note_recovery();
            }
            return Some(value);
        }
        None
    }
}

/// FNV-1a of a node ID, the key identity fault decisions hash on.
fn hash_key(key: &NodeId) -> u64 {
    let mut d = TrialDigest::new();
    d.eat(key.as_bytes());
    d.finish()
}

/// Aggregated outcomes of a fault-plane Monte-Carlo batch: the plain
/// protocol results plus the fault-outcome taxonomy.
#[derive(Debug, Clone, Default)]
pub struct FaultyMcResults {
    /// The underlying protocol results (release/clean/early rates,
    /// messages, fingerprint) as measured *under* the fault plan.
    pub base: ProtocolMcResults,
    /// Fraction of trials that released despite at least one injected
    /// disruption — recovered via retry, hedging or m-of-n slack.
    pub degraded: Rate,
    /// Fraction of trials that released having seen no disruption at all.
    pub clean_of_faults: Rate,
    /// Fraction of trials that saw at least one injected disruption.
    pub disrupted: Rate,
    /// Per-trial injected-disruption counts.
    pub disruptions: Summary,
    /// Per-trial lookup retries.
    pub retries: Summary,
    /// Index-keyed digest over every trial's fault statistics; merges by
    /// wrapping addition exactly like the protocol fingerprint, so
    /// sharded fault streams are checked bit for bit, not just in
    /// aggregate.
    pub fault_fingerprint: u64,
}

impl FaultyMcResults {
    /// Merges a disjoint batch. Counter-valued fields and both
    /// fingerprints merge exactly; the floating-point summary moments use
    /// the parallel Welford update.
    pub fn merge(&mut self, other: &FaultyMcResults) {
        self.base.merge(&other.base);
        self.degraded.merge(&other.degraded);
        self.clean_of_faults.merge(&other.clean_of_faults);
        self.disrupted.merge(&other.disrupted);
        self.disruptions.merge(&other.disruptions);
        self.retries.merge(&other.retries);
        self.fault_fingerprint = self.fault_fingerprint.wrapping_add(other.fault_fingerprint);
    }
}

/// Runs `trials` wire-protocol trials under `plan`, deterministically
/// from `seed`. Equivalent to [`run_faulted_trial_range`] over
/// `[0, trials)`.
///
/// # Errors
///
/// Propagates construction failures, e.g.
/// [`EmergeError::InsufficientNodes`] when the structure does not fit the
/// factory's worlds.
pub fn run_faulted_trials<S, F>(
    spec: &ProtocolTrialSpec,
    plan: &FaultPlan,
    policy: RecoveryPolicy,
    trials: usize,
    seed: u64,
    substrate_factory: F,
) -> Result<FaultyMcResults, EmergeError>
where
    S: HolderSubstrate,
    F: FnMut(u64) -> S,
{
    run_faulted_trial_range(spec, plan, policy, 0, trials, seed, substrate_factory)
}

/// Runs the contiguous trial range `[first_trial, first_trial + count)`
/// of a fault-plane Monte-Carlo batch.
///
/// Each trial draws its world seed from the same per-index stream as
/// [`crate::montecarlo::run_protocol_trial_range`] and arms `plan`
/// against it, so the injected fault stream is a pure function of the
/// global trial index: range runs merge bit-identically to serial runs
/// (both fingerprints), and an empty plan reproduces the plain runner's
/// results exactly.
///
/// # Errors
///
/// Propagates construction failures, e.g.
/// [`EmergeError::InsufficientNodes`] when the structure does not fit the
/// factory's worlds.
#[allow(clippy::too_many_arguments)]
pub fn run_faulted_trial_range<S, F>(
    spec: &ProtocolTrialSpec,
    plan: &FaultPlan,
    policy: RecoveryPolicy,
    first_trial: usize,
    count: usize,
    seed: u64,
    mut substrate_factory: F,
) -> Result<FaultyMcResults, EmergeError>
where
    S: HolderSubstrate,
    F: FnMut(u64) -> S,
{
    spec.params.validate()?;
    let seeds = SeedSource::new(seed);
    let mut results = FaultyMcResults::default();
    for trial_idx in first_trial..first_trial + count {
        let mut trial_rng = seeds.stream_n("protocol-trial", trial_idx as u64);
        let world_seed = trial_rng.next_u64();
        let inner = {
            let _phase = span(&SPAN_WORLD_REBUILD);
            substrate_factory(world_seed)
        };
        let mut substrate = FaultySubstrate::new(inner, plan.arm(world_seed), policy);
        let run = run_protocol_trial(spec, &mut substrate, &mut trial_rng)?;
        let stats = substrate.fault_stats();

        record_protocol_trial(&mut results.base, trial_idx, &run);
        let released = run.report.released.is_some();
        let disrupted = stats.disrupted();
        if released && disrupted {
            DEGRADED_SUCCESS.incr();
        }
        results.degraded.record(released && disrupted);
        results.clean_of_faults.record(released && !disrupted);
        results.disrupted.record(disrupted);
        results.disruptions.record(stats.disruptions as f64);
        results.retries.record(stats.retries as f64);
        // An empty plan leaves the fault fingerprint at zero so faultless
        // runs are trivially distinguishable from all-quiet faulted runs.
        if !plan.is_empty() {
            results.fault_fingerprint = results
                .fault_fingerprint
                .wrapping_add(stats.digest(trial_idx as u64));
        }
    }
    Ok(results)
}

/// Runs `trials` faulted trials split over `shards` contiguous ranges and
/// merges the partial results — bit-identical to the serial
/// [`run_faulted_trials`] on every counter-valued field and both
/// fingerprints, for any shard count.
///
/// # Errors
///
/// Propagates the first shard failure.
pub fn run_faulted_trials_sharded<S, F>(
    spec: &ProtocolTrialSpec,
    plan: &FaultPlan,
    policy: RecoveryPolicy,
    trials: usize,
    seed: u64,
    shards: usize,
    mut substrate_factory: F,
) -> Result<FaultyMcResults, EmergeError>
where
    S: HolderSubstrate,
    F: FnMut(u64) -> S,
{
    let mut results = FaultyMcResults::default();
    for (first_trial, count) in shard_ranges(trials, shards) {
        let shard = run_faulted_trial_range(
            spec,
            plan,
            policy,
            first_trial,
            count,
            seed,
            &mut substrate_factory,
        )?;
        results.merge(&shard);
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchemeParams;
    use crate::montecarlo::run_protocol_trials;
    use crate::protocol::AttackMode;
    use crate::substrate::{AnalyticSubstrate, OverlayConfig};
    use emerge_faults::{FaultEvent, FaultKind, Scenario, PPM_SCALE};

    fn world(n: usize, p: f64) -> OverlayConfig {
        OverlayConfig {
            n_nodes: n,
            malicious_fraction: p,
            mean_lifetime: Some(10_000),
            horizon: 100_000,
            ..OverlayConfig::default()
        }
    }

    fn share_spec() -> ProtocolTrialSpec {
        ProtocolTrialSpec {
            params: SchemeParams::Share {
                k: 2,
                l: 3,
                n: 6,
                m: vec![3, 3],
            },
            emerging_period: SimDuration::from_ticks(3_000),
            attack: AttackMode::ReleaseAhead,
        }
    }

    #[test]
    fn empty_plan_reproduces_the_plain_runner_bit_for_bit() {
        let spec = share_spec();
        let factory = |s| AnalyticSubstrate::build(world(150, 0.3), s);
        let plain = run_protocol_trials(&spec, 12, 5, factory).unwrap();
        let faulted = run_faulted_trials(
            &spec,
            &FaultPlan::none(),
            RecoveryPolicy::default(),
            12,
            5,
            factory,
        )
        .unwrap();
        assert_eq!(plain.fingerprint, faulted.base.fingerprint);
        assert_eq!(plain.released, faulted.base.released);
        assert_eq!(plain.clean, faulted.base.clean);
        assert_eq!(faulted.disrupted.successes(), 0);
        assert_eq!(faulted.degraded.successes(), 0);
        assert_eq!(
            faulted.clean_of_faults.successes(),
            plain.released.successes()
        );
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let spec = share_spec();
        let plan = Scenario::CrashStorm.plan(150_000, 4_000, 0xFA);
        let run = || {
            run_faulted_trials(&spec, &plan, RecoveryPolicy::default(), 10, 7, |s| {
                AnalyticSubstrate::build(world(150, 0.3), s)
            })
            .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.base.fingerprint, b.base.fingerprint);
        assert_eq!(a.fault_fingerprint, b.fault_fingerprint);
        assert_eq!(a.degraded, b.degraded);
    }

    #[test]
    fn sharded_faulted_runs_merge_to_serial() {
        let spec = share_spec();
        let plan = Scenario::LossBurst.plan(120_000, 4_000, 0xB0);
        let factory = |s| AnalyticSubstrate::build(world(150, 0.3), s);
        let serial =
            run_faulted_trials(&spec, &plan, RecoveryPolicy::default(), 11, 3, factory).unwrap();
        for shards in [1usize, 2, 7] {
            let sharded = run_faulted_trials_sharded(
                &spec,
                &plan,
                RecoveryPolicy::default(),
                11,
                3,
                shards,
                factory,
            )
            .unwrap();
            assert_eq!(serial.base.fingerprint, sharded.base.fingerprint);
            assert_eq!(serial.fault_fingerprint, sharded.fault_fingerprint);
            assert_eq!(serial.degraded, sharded.degraded);
            assert_eq!(serial.disrupted, sharded.disrupted);
        }
    }

    #[test]
    fn total_outage_suppresses_release_and_recovery_restores_it() {
        // Every slot out for the whole horizon: nothing can emerge, and
        // every trial is disrupted.
        let spec = share_spec();
        let blackout = FaultPlan::new(
            1,
            vec![FaultEvent {
                from: SimTime::ZERO,
                to: SimTime::MAX,
                kind: FaultKind::SlotOutage {
                    modulus: 1,
                    residue: 0,
                },
            }],
        );
        let r = run_faulted_trials(&spec, &blackout, RecoveryPolicy::default(), 6, 2, |s| {
            AnalyticSubstrate::build(world(150, 0.0), s)
        })
        .unwrap();
        assert_eq!(
            r.base.released.successes(),
            0,
            "blackout must block release"
        );
        assert_eq!(r.disrupted.successes(), 6);

        // A mild loss burst on a benign world: most trials still release,
        // and the ones that saw faults count as degraded, not clean.
        let mild = Scenario::LossBurst.plan(60_000, 4_000, 2);
        let r = run_faulted_trials(&spec, &mild, RecoveryPolicy::default(), 20, 2, |s| {
            AnalyticSubstrate::build(world(150, 0.0), s)
        })
        .unwrap();
        assert!(
            r.base.released.value() > 0.5,
            "mild loss must not collapse release: {}",
            r.base.released.value()
        );
        assert_eq!(
            r.degraded.successes() + r.clean_of_faults.successes(),
            r.base.released.successes(),
            "every release is exactly one of degraded or clean-of-faults"
        );
    }

    #[test]
    fn tampered_lookup_is_rejected_not_misrouted() {
        // Tampering every fetched value must never yield a bogus release:
        // authenticated decryption rejects the forgeries.
        let spec = share_spec();
        let tamper = FaultPlan::new(
            3,
            vec![FaultEvent {
                from: SimTime::ZERO,
                to: SimTime::MAX,
                kind: FaultKind::Tamper {
                    tamper_ppm: PPM_SCALE,
                },
            }],
        );
        let r = run_faulted_trials(&spec, &tamper, RecoveryPolicy::default(), 6, 4, |s| {
            AnalyticSubstrate::build(world(150, 0.0), s)
        })
        .unwrap();
        assert_eq!(r.base.reconstructed_early.successes(), 0);
        // Tampering may or may not block release depending on which
        // lookups the executor performs, but any release that did happen
        // must carry the *correct* secret — guaranteed by the fingerprint
        // being a pure function of the seeds.
        let again = run_faulted_trials(&spec, &tamper, RecoveryPolicy::default(), 6, 4, |s| {
            AnalyticSubstrate::build(world(150, 0.0), s)
        })
        .unwrap();
        assert_eq!(r.base.released.successes(), again.base.released.successes());
    }

    #[test]
    fn ghost_tenants_do_not_grant_confidentiality_exposures() {
        // A crash storm on an adversary-free world must never produce an
        // early reconstruction: ghosts are benign and exposure predicates
        // bypass the fault plane.
        let spec = share_spec();
        let plan = Scenario::CrashStorm.plan(400_000, 4_000, 9);
        let r = run_faulted_trials(&spec, &plan, RecoveryPolicy::default(), 15, 6, |s| {
            AnalyticSubstrate::build(world(150, 0.0), s)
        })
        .unwrap();
        assert_eq!(r.base.reconstructed_early.successes(), 0);
        assert!(r.disrupted.successes() > 0, "storm must actually disrupt");
    }

    #[test]
    fn brittle_policy_fares_no_better_than_recovering_policy() {
        let spec = share_spec();
        let plan = Scenario::CorrelatedOutage.plan(250_000, 4_000, 4);
        let factory = |s| AnalyticSubstrate::build(world(150, 0.0), s);
        let robust =
            run_faulted_trials(&spec, &plan, RecoveryPolicy::default(), 25, 8, factory).unwrap();
        let brittle =
            run_faulted_trials(&spec, &plan, RecoveryPolicy::brittle(), 25, 8, factory).unwrap();
        assert!(
            robust.base.released.successes() >= brittle.base.released.successes(),
            "recovery must not hurt: robust {} vs brittle {}",
            robust.base.released.successes(),
            brittle.base.released.successes()
        );
    }
}
