//! # emerge-core
//!
//! Timed-release of self-emerging data using distributed hash tables —
//! a full reproduction of Li & Palanisamy, ICDCS 2017.
//!
//! A sender encrypts a message at `ts`, parks the ciphertext in a cloud,
//! and routes the decryption key through a pseudo-random sequence of DHT
//! holders so that the key is unobtainable before the release time `tr`
//! and emerges automatically at `tr`. Four key-routing schemes with
//! increasing resilience are provided:
//!
//! | scheme | description |
//! |--------|-------------|
//! | [`config::SchemeKind::Central`] | one holder stores the key for all of `T` (baseline) |
//! | [`config::SchemeKind::Disjoint`] | `k` node-disjoint replicated onion paths of length `l` |
//! | [`config::SchemeKind::Joint`] | column-complete multipath: drop attacks must capture whole columns |
//! | [`config::SchemeKind::Share`] | onion keys delivered just-in-time as Shamir `(m, n)` shares — churn-resilient |
//!
//! ## Module map
//!
//! * [`config`] — scheme kinds and structural parameters
//! * [`analysis`] — equations (1)–(3), Lemma 1, Algorithm 1, and the
//!   `(k, l)` solver behind the paper's cost/resilience sweeps
//! * [`substrate`] — the [`substrate::HolderSubstrate`] trait decoupling
//!   the schemes from any concrete DHT, with the simulated overlay, the
//!   fast analytic substrate and the smart-contract release layer as
//!   backends
//! * [`path`] — pseudo-random holder selection on the DHT
//! * [`package`] — onion and share package generation (real crypto)
//! * [`protocol`] — hop-by-hop execution with churn and attacks
//! * [`adversary`] — trial-level attack predicates (Monte-Carlo ground
//!   truth)
//! * [`faults`] — the [`faults::FaultySubstrate`] wrapper applying a
//!   seeded fault plan at the substrate boundary, with retry/hedge
//!   recovery and fault-aware Monte-Carlo runners
//! * [`montecarlo`] — the paper-scale experiment engine (10000 nodes ×
//!   1000 trials), timeline-based and substrate-backed
//! * [`emergence`] — the high-level sender/receiver API
//! * [`error`], [`math`] — support
//!
//! ## Quick start
//!
//! ```
//! use emerge_core::emergence::{SelfEmergingSystem, SendRequest};
//! use emerge_core::config::SchemeKind;
//! use emerge_core::substrate::OverlayConfig;
//! use emerge_sim::time::SimDuration;
//!
//! # fn main() -> Result<(), emerge_core::error::EmergeError> {
//! let mut system = SelfEmergingSystem::new(
//!     OverlayConfig { n_nodes: 128, ..OverlayConfig::default() },
//!     7,
//! );
//! let mut handle = system.send(SendRequest {
//!     message: b"will: the estate goes to the cat".to_vec(),
//!     emerging_period: SimDuration::from_ticks(10_000),
//!     scheme: SchemeKind::Share,
//!     target_resilience: 0.99,
//!     expected_malicious_rate: 0.05,
//! })?;
//! system.run_to_release(&mut handle);
//! assert_eq!(system.receive(&handle)?, b"will: the estate goes to the cat");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod analysis;
pub mod config;
pub mod emergence;
pub mod error;
pub mod faults;
pub mod math;
pub mod montecarlo;
pub mod package;
pub mod path;
pub mod protocol;
pub mod substrate;

pub use config::{SchemeKind, SchemeParams};
pub use emergence::{SelfEmergingSystem, SendRequest};
pub use error::EmergeError;
pub use substrate::HolderSubstrate;
