//! The DHT abstraction the key-routing schemes are written against.
//!
//! Everything `emerge-core` needs from a DHT is captured by the
//! [`HolderSubstrate`] trait: resolving pseudo-random holder addresses to
//! responsible slots, querying churn generations for the exposure
//! predicates, storing/fetching opaque values, and advancing virtual time.
//! [`path`](crate::path), [`protocol`](crate::protocol) and
//! [`emergence`](crate::emergence) are generic over it, so the same
//! protocol code runs on:
//!
//! * [`Overlay`] — the full simulated Kademlia network (routing tables,
//!   latency/loss model, iterative lookups),
//! * [`AnalyticSubstrate`] — the routing-free twin that makes paper-scale
//!   Monte-Carlo (10 000 nodes × 1 000 trials) cheap, and
//! * [`ContractSubstrate`] — the smart-contract release layer (analytic
//!   DHT semantics plus a block clock, a token ledger and the bonded
//!   commit/reveal escrow contract of `emerge-contract`).
//!
//! All substrates build *identical* populations for the same
//! `(OverlayConfig, seed)` pair, so plans and protocol outcomes agree bit
//! for bit — the workspace's `substrate_parity` and
//! `substrate_conformance` suites enforce that. New backends (an async
//! networked DHT) only need to implement this trait.
//!
//! This module is the **only** place in `emerge-core` that names the
//! concrete substrate types; everything else goes through the trait or
//! through the re-exports below.

use emerge_dht::id::NodeId;
use emerge_dht::population::{self, NodeInfo};
use emerge_sim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;

pub use emerge_contract::{ContractConfig, ContractSubstrate};
pub use emerge_dht::analytic::AnalyticSubstrate;
pub use emerge_dht::overlay::{Overlay, OverlayConfig};

/// The DHT surface consumed by the key-routing schemes.
///
/// Implementations must be deterministic for a fixed build seed: the
/// schemes' reproducibility and parity guarantees rest on it.
pub trait HolderSubstrate {
    /// Number of population slots (live nodes at any instant).
    fn n_nodes(&self) -> usize;

    /// Current simulated time of the substrate.
    fn now(&self) -> SimTime;

    /// Advances the substrate clock (monotonic).
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current time.
    fn advance_to(&mut self, t: SimTime);

    /// The slot responsible for `target` (XOR-closest generation-0 ID) —
    /// how a pseudo-random holder address resolves to an actual node.
    fn resolve_holder(&self, target: &NodeId) -> usize;

    /// The `count` slots XOR-closest to `target`, closest first.
    fn closest_slots(&self, target: &NodeId, count: usize) -> Vec<usize>;

    /// All tenant generations of a slot, in time order.
    fn generations(&self, slot: usize) -> &[NodeInfo];

    /// The generation occupying `slot` at time `t`.
    fn generation_at(&self, slot: usize, t: SimTime) -> &NodeInfo;

    /// Whether any generation of `slot` overlapping the half-open window `[from, to)` is
    /// malicious — the churn re-exposure predicate.
    fn any_malicious_exposure(&self, slot: usize, from: SimTime, to: SimTime) -> bool {
        population::any_malicious_exposure(self.generations(slot), from, to)
    }

    /// The earliest instant in the half-open window `[from, to)` at which a malicious tenant
    /// occupies `slot`, if any.
    fn first_malicious_exposure(&self, slot: usize, from: SimTime, to: SimTime) -> Option<SimTime> {
        population::first_malicious_exposure(self.generations(slot), from, to)
    }

    /// Number of distinct generations whose tenancy overlaps the half-open window `[from, to)`
    /// (the churn analysis' re-exposure count).
    fn exposures_during(&self, slot: usize, from: SimTime, to: SimTime) -> usize {
        population::exposures_during(self.generations(slot), from, to)
    }

    /// Samples `count` distinct slots uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `count > n_nodes()`.
    fn sample_distinct_slots(&self, count: usize, rng: &mut StdRng) -> Vec<usize>;

    /// Stores `value` under `key` on the responsible slots, optionally
    /// with a TTL. Returns the slots that accepted the value.
    fn store(&mut self, key: NodeId, value: Vec<u8>, ttl: Option<SimDuration>) -> Vec<usize>;

    /// Fetches a stored value from the slots responsible for `key`.
    fn find_value(&mut self, key: NodeId) -> Option<Vec<u8>>;
}

impl HolderSubstrate for Overlay {
    fn n_nodes(&self) -> usize {
        Overlay::n_nodes(self)
    }

    fn now(&self) -> SimTime {
        Overlay::now(self)
    }

    fn advance_to(&mut self, t: SimTime) {
        Overlay::advance_to(self, t);
    }

    fn resolve_holder(&self, target: &NodeId) -> usize {
        Overlay::resolve_holder(self, target)
    }

    fn closest_slots(&self, target: &NodeId, count: usize) -> Vec<usize> {
        Overlay::closest_slots(self, target, count)
    }

    fn generations(&self, slot: usize) -> &[NodeInfo] {
        Overlay::generations(self, slot)
    }

    fn generation_at(&self, slot: usize, t: SimTime) -> &NodeInfo {
        Overlay::generation_at(self, slot, t)
    }

    fn any_malicious_exposure(&self, slot: usize, from: SimTime, to: SimTime) -> bool {
        Overlay::any_malicious_exposure(self, slot, from, to)
    }

    fn exposures_during(&self, slot: usize, from: SimTime, to: SimTime) -> usize {
        Overlay::exposures_during(self, slot, from, to)
    }

    fn sample_distinct_slots(&self, count: usize, rng: &mut StdRng) -> Vec<usize> {
        Overlay::sample_distinct_slots(self, count, rng)
    }

    fn store(&mut self, key: NodeId, value: Vec<u8>, ttl: Option<SimDuration>) -> Vec<usize> {
        match ttl {
            Some(ttl) => Overlay::store_with_ttl(self, key, value, ttl),
            None => Overlay::store(self, key, value),
        }
    }

    /// Routed lookup through the overlay's iterative FIND_VALUE; routing
    /// tables are built on first use.
    fn find_value(&mut self, key: NodeId) -> Option<Vec<u8>> {
        if !self.has_routing_tables() {
            self.build_routing_tables();
        }
        Overlay::find_value(self, 0, key).map(|found| found.value)
    }
}

impl HolderSubstrate for AnalyticSubstrate {
    fn n_nodes(&self) -> usize {
        AnalyticSubstrate::n_nodes(self)
    }

    fn now(&self) -> SimTime {
        AnalyticSubstrate::now(self)
    }

    fn advance_to(&mut self, t: SimTime) {
        AnalyticSubstrate::advance_to(self, t);
    }

    fn resolve_holder(&self, target: &NodeId) -> usize {
        AnalyticSubstrate::resolve_holder(self, target)
    }

    fn closest_slots(&self, target: &NodeId, count: usize) -> Vec<usize> {
        AnalyticSubstrate::closest_slots(self, target, count)
    }

    fn generations(&self, slot: usize) -> &[NodeInfo] {
        AnalyticSubstrate::generations(self, slot)
    }

    fn generation_at(&self, slot: usize, t: SimTime) -> &NodeInfo {
        AnalyticSubstrate::generation_at(self, slot, t)
    }

    fn any_malicious_exposure(&self, slot: usize, from: SimTime, to: SimTime) -> bool {
        AnalyticSubstrate::any_malicious_exposure(self, slot, from, to)
    }

    fn exposures_during(&self, slot: usize, from: SimTime, to: SimTime) -> usize {
        AnalyticSubstrate::exposures_during(self, slot, from, to)
    }

    fn sample_distinct_slots(&self, count: usize, rng: &mut StdRng) -> Vec<usize> {
        AnalyticSubstrate::sample_distinct_slots(self, count, rng)
    }

    fn store(&mut self, key: NodeId, value: Vec<u8>, ttl: Option<SimDuration>) -> Vec<usize> {
        match ttl {
            Some(ttl) => AnalyticSubstrate::store_with_ttl(self, key, value, ttl),
            None => AnalyticSubstrate::store(self, key, value),
        }
    }

    fn find_value(&mut self, key: NodeId) -> Option<Vec<u8>> {
        AnalyticSubstrate::find_value(self, key)
    }
}

impl HolderSubstrate for ContractSubstrate {
    fn n_nodes(&self) -> usize {
        ContractSubstrate::n_nodes(self)
    }

    fn now(&self) -> SimTime {
        ContractSubstrate::now(self)
    }

    fn advance_to(&mut self, t: SimTime) {
        ContractSubstrate::advance_to(self, t);
    }

    fn resolve_holder(&self, target: &NodeId) -> usize {
        ContractSubstrate::resolve_holder(self, target)
    }

    fn closest_slots(&self, target: &NodeId, count: usize) -> Vec<usize> {
        ContractSubstrate::closest_slots(self, target, count)
    }

    fn generations(&self, slot: usize) -> &[NodeInfo] {
        ContractSubstrate::generations(self, slot)
    }

    fn generation_at(&self, slot: usize, t: SimTime) -> &NodeInfo {
        ContractSubstrate::generation_at(self, slot, t)
    }

    fn sample_distinct_slots(&self, count: usize, rng: &mut StdRng) -> Vec<usize> {
        ContractSubstrate::sample_distinct_slots(self, count, rng)
    }

    /// Contract-substrate stores are collateralized: each accepting slot
    /// escrows the storage bond, refunded at TTL expiry. The data path
    /// (placement, replication, lookup) is identical to the analytic
    /// substrate's.
    fn store(&mut self, key: NodeId, value: Vec<u8>, ttl: Option<SimDuration>) -> Vec<usize> {
        ContractSubstrate::store(self, key, value, ttl)
    }

    fn find_value(&mut self, key: NodeId) -> Option<Vec<u8>> {
        ContractSubstrate::find_value(self, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn config(n: usize) -> OverlayConfig {
        OverlayConfig {
            n_nodes: n,
            ..OverlayConfig::default()
        }
    }

    /// Exercises every trait method through a `dyn`-free generic fn on
    /// both substrates and cross-checks the answers.
    fn probe<S: HolderSubstrate>(substrate: &mut S) -> (usize, usize, bool, usize, Vec<usize>) {
        let target = NodeId::from_name(b"probe");
        let t0 = SimTime::ZERO;
        let t1 = SimTime::from_ticks(1_000);
        let slot = substrate.resolve_holder(&target);
        let gens = substrate.generations(slot).len();
        let exposed = substrate.any_malicious_exposure(slot, t0, t1);
        let exposures = substrate.exposures_during(slot, t0, t1);
        let mut rng = StdRng::seed_from_u64(5);
        let sample = substrate.sample_distinct_slots(10, &mut rng);
        substrate.store(target, b"blob".to_vec(), None);
        assert_eq!(substrate.find_value(target), Some(b"blob".to_vec()));
        assert_eq!(substrate.generation_at(slot, t0).spawn, t0);
        (slot, gens, exposed, exposures, sample)
    }

    #[test]
    fn all_substrates_answer_identically() {
        let cfg = OverlayConfig {
            malicious_fraction: 0.3,
            mean_lifetime: Some(5_000),
            horizon: 100_000,
            ..config(150)
        };
        let mut overlay = Overlay::build(cfg, 11);
        let mut analytic = AnalyticSubstrate::build(cfg, 11);
        let mut contract = ContractSubstrate::build(ContractConfig::over(cfg), 11);
        assert_eq!(probe(&mut overlay), probe(&mut analytic));
        assert_eq!(probe(&mut analytic), probe(&mut contract));
    }

    fn ttl_roundtrip<S: HolderSubstrate>(mut s: S) {
        let key = NodeId::from_name(b"ttl");
        s.store(key, b"v".to_vec(), Some(SimDuration::from_ticks(5)));
        assert_eq!(s.find_value(key), Some(b"v".to_vec()));
        s.advance_to(SimTime::from_ticks(6));
        assert_eq!(s.find_value(key), None);
    }

    #[test]
    fn ttl_store_expires_on_all() {
        ttl_roundtrip(Overlay::build(config(64), 3));
        ttl_roundtrip(AnalyticSubstrate::build(config(64), 3));
        ttl_roundtrip(ContractSubstrate::build(
            ContractConfig::over(config(64)),
            3,
        ));
    }
}
