//! Routing path construction (Section III's "routing path construction
//! scheme").
//!
//! The sender pseudo-randomly selects holder addresses in the DHT ID space
//! — derived deterministically from her secret seed so no one else can
//! predict the path — and resolves each address to the responsible node.
//! Holders must be pairwise distinct (the schemes' resilience math assumes
//! node-disjoint positions), so colliding resolutions are re-derived with
//! an attempt counter.

use crate::config::SchemeParams;
use crate::error::EmergeError;
use crate::substrate::HolderSubstrate;
use emerge_crypto::hkdf::Hkdf;
use emerge_crypto::keys::SymmetricKey;
use emerge_dht::id::NodeId;
use std::collections::HashSet;

/// A fully resolved holder grid.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PathPlan {
    /// Rows in the grid (k for keyed schemes, n for the share scheme).
    pub rows: usize,
    /// Columns (path length l).
    pub cols: usize,
    /// Holder slots, row-major: `slots[row * cols + col]`.
    pub slots: Vec<usize>,
    /// The pseudo-random DHT addresses that were resolved (same layout).
    pub targets: Vec<NodeId>,
}

impl PathPlan {
    /// The slot of holder `(row, col)`.
    pub fn slot(&self, row: usize, col: usize) -> usize {
        // LINT-WAIVER(panic): documented # Panics contract: slot coordinates must lie in the grid
        assert!(
            row < self.rows && col < self.cols,
            "holder index out of grid"
        );
        self.slots[row * self.cols + col]
    }

    /// Iterates `(row, col, slot)` over the grid.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        (0..self.rows).flat_map(move |r| (0..self.cols).map(move |c| (r, c, self.slot(r, c))))
    }

    /// All slots of one column.
    pub fn column(&self, col: usize) -> Vec<usize> {
        (0..self.rows).map(|r| self.slot(r, col)).collect()
    }
}

/// Derives the holder address for grid position `(row, col)` and a
/// collision-retry attempt.
pub fn holder_address(seed: &SymmetricKey, row: usize, col: usize, attempt: u32) -> NodeId {
    holder_address_with(&Hkdf::from_prk(*seed.as_bytes()), row, col, attempt)
}

/// [`holder_address`] against a prepared expander, so the grid loop pays
/// the HMAC keying of the seed once instead of once per address.
/// `Hkdf::from_prk(seed).expand(label)` *is* `seed.derive(label)`, so the
/// addresses are unchanged. The label is composed on the stack — the
/// per-address `format!` was one of the last heap touches on the trial
/// hot path.
fn holder_address_with(hk: &Hkdf, row: usize, col: usize, attempt: u32) -> NodeId {
    // "holder-addr/" + three u64 decimals + two slashes fits easily.
    let mut label = [0u8; 80];
    const PREFIX: &[u8] = b"holder-addr/";
    label[..PREFIX.len()].copy_from_slice(PREFIX);
    let mut at = PREFIX.len();
    at = push_decimal(&mut label, at, row as u64);
    label[at] = b'/';
    at += 1;
    at = push_decimal(&mut label, at, col as u64);
    label[at] = b'/';
    at += 1;
    at = push_decimal(&mut label, at, u64::from(attempt));
    let bytes = hk.expand_key(&label[..at]);
    let mut id = [0u8; 20];
    id.copy_from_slice(&bytes[..20]);
    NodeId::from_bytes(id)
}

/// Writes `v` in decimal at `buf[at..]`, returning the new cursor.
/// Byte-identical to `format!("{v}")`.
fn push_decimal(buf: &mut [u8; 80], at: usize, mut v: u64) -> usize {
    let mut tmp = [0u8; 20];
    let mut i = tmp.len();
    loop {
        i -= 1;
        tmp[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    let digits = tmp.len() - i;
    buf[at..at + digits].copy_from_slice(&tmp[i..]);
    at + digits
}

/// Constructs the holder grid for `params` on any [`HolderSubstrate`],
/// deterministically from the sender's `seed`.
///
/// # Errors
///
/// Returns [`EmergeError::InsufficientNodes`] when the structure needs more
/// distinct holders than the substrate has nodes.
pub fn construct_paths<S: HolderSubstrate + ?Sized>(
    substrate: &S,
    params: &SchemeParams,
    seed: &SymmetricKey,
) -> Result<PathPlan, EmergeError> {
    params
        .validate()
        .map_err(|e| EmergeError::InvalidParameters(e.to_string()))?;
    let (rows, cols) = match params {
        SchemeParams::Central => (1, 1),
        SchemeParams::Disjoint { k, l } | SchemeParams::Joint { k, l } => (*k, *l),
        SchemeParams::Share { l, n, .. } => (*n, *l),
    };
    let needed = rows * cols;
    if needed > substrate.n_nodes() {
        return Err(EmergeError::InsufficientNodes {
            required: needed,
            available: substrate.n_nodes(),
        });
    }

    let hk = Hkdf::from_prk(*seed.as_bytes());
    let mut used: HashSet<usize> = HashSet::with_capacity(needed);
    let mut slots = Vec::with_capacity(needed);
    let mut targets = Vec::with_capacity(needed);
    for row in 0..rows {
        for col in 0..cols {
            let mut attempt = 0u32;
            let (slot, target) = loop {
                let target = holder_address_with(&hk, row, col, attempt);
                let slot = substrate.resolve_holder(&target);
                if !used.contains(&slot) {
                    break (slot, target);
                }
                attempt += 1;
                // With needed <= n distinct slots always exist; the loop
                // terminates with overwhelming probability long before
                // this, but guard against pathological ID distributions.
                if attempt > 10_000 {
                    return Err(EmergeError::InvalidParameters(
                        "holder selection failed to find distinct nodes".into(),
                    ));
                }
            };
            used.insert(slot);
            slots.push(slot);
            targets.push(target);
        }
    }

    Ok(PathPlan {
        rows,
        cols,
        slots,
        targets,
    })
}

/// Constructs the same holder grid as [`construct_paths`] into a
/// reusable plan: `plan`'s vectors are cleared and refilled, so a warm
/// caller allocates nothing. The distinctness set is replaced by a
/// linear scan of the slots gathered so far — quadratic in grid size,
/// but grids are small (hundreds) and the scan is branch-cheap, while
/// the oracle's `HashSet` costs an allocation per trial.
///
/// Pinned equal to [`construct_paths`] by test.
///
/// # Errors
///
/// Identical to [`construct_paths`].
pub fn construct_paths_into<S: HolderSubstrate + ?Sized>(
    substrate: &S,
    params: &SchemeParams,
    seed: &SymmetricKey,
    plan: &mut PathPlan,
) -> Result<(), EmergeError> {
    params
        .validate()
        // LINT-WAIVER(alloc): validation failure is a cold error path, not the pooled hot loop
        .map_err(|e| EmergeError::InvalidParameters(e.to_string()))?;
    let (rows, cols) = match params {
        SchemeParams::Central => (1, 1),
        SchemeParams::Disjoint { k, l } | SchemeParams::Joint { k, l } => (*k, *l),
        SchemeParams::Share { l, n, .. } => (*n, *l),
    };
    let needed = rows * cols;
    if needed > substrate.n_nodes() {
        return Err(EmergeError::InsufficientNodes {
            required: needed,
            available: substrate.n_nodes(),
        });
    }

    plan.rows = rows;
    plan.cols = cols;
    plan.slots.clear();
    plan.targets.clear();

    let hk = Hkdf::from_prk(*seed.as_bytes());
    for row in 0..rows {
        for col in 0..cols {
            let mut attempt = 0u32;
            let (slot, target) = loop {
                let target = holder_address_with(&hk, row, col, attempt);
                let slot = substrate.resolve_holder(&target);
                if !plan.slots.contains(&slot) {
                    break (slot, target);
                }
                attempt += 1;
                if attempt > 10_000 {
                    return Err(EmergeError::InvalidParameters(
                        "holder selection failed to find distinct nodes".into(),
                    ));
                }
            };
            plan.slots.push(slot);
            plan.targets.push(target);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substrate::{Overlay, OverlayConfig};

    fn overlay(n: usize) -> Overlay {
        Overlay::build(
            OverlayConfig {
                n_nodes: n,
                ..OverlayConfig::default()
            },
            99,
        )
    }

    fn seed(b: u8) -> SymmetricKey {
        SymmetricKey::from_bytes([b; 32])
    }

    #[test]
    fn plan_has_distinct_holders() {
        let ov = overlay(200);
        let plan = construct_paths(&ov, &SchemeParams::Joint { k: 4, l: 6 }, &seed(1)).unwrap();
        assert_eq!(plan.rows, 4);
        assert_eq!(plan.cols, 6);
        let mut sorted = plan.slots.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 24, "holders must be pairwise distinct");
    }

    #[test]
    fn plan_is_deterministic_in_seed() {
        let ov = overlay(100);
        let p1 = construct_paths(&ov, &SchemeParams::Disjoint { k: 2, l: 3 }, &seed(7)).unwrap();
        let p2 = construct_paths(&ov, &SchemeParams::Disjoint { k: 2, l: 3 }, &seed(7)).unwrap();
        assert_eq!(p1, p2);
        let p3 = construct_paths(&ov, &SchemeParams::Disjoint { k: 2, l: 3 }, &seed(8)).unwrap();
        assert_ne!(p1.slots, p3.slots, "different seeds pick different paths");
    }

    #[test]
    fn insufficient_nodes_rejected() {
        let ov = overlay(10);
        let err = construct_paths(&ov, &SchemeParams::Joint { k: 4, l: 6 }, &seed(1)).unwrap_err();
        assert!(matches!(err, EmergeError::InsufficientNodes { .. }));
    }

    #[test]
    fn whole_population_can_be_consumed() {
        // Structure size == population: every node becomes a holder.
        let ov = overlay(12);
        let plan = construct_paths(&ov, &SchemeParams::Joint { k: 3, l: 4 }, &seed(2)).unwrap();
        let mut sorted = plan.slots.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 12);
    }

    #[test]
    fn pooled_path_construction_matches_allocating_form() {
        let ov = overlay(150);
        let mut plan = PathPlan::default();
        // Reuse one plan across shapes (shrinking and growing) so stale
        // contents must be fully overwritten.
        for (params, s) in [
            (
                SchemeParams::Share {
                    k: 2,
                    l: 4,
                    n: 10,
                    m: vec![5, 5, 6],
                },
                11u8,
            ),
            (SchemeParams::Central, 12),
            (SchemeParams::Joint { k: 4, l: 6 }, 13),
            (SchemeParams::Disjoint { k: 2, l: 3 }, 14),
        ] {
            let oracle = construct_paths(&ov, &params, &seed(s)).unwrap();
            construct_paths_into(&ov, &params, &seed(s), &mut plan).unwrap();
            assert_eq!(plan, oracle);
        }
    }

    #[test]
    fn central_plan_is_single_holder() {
        let ov = overlay(50);
        let plan = construct_paths(&ov, &SchemeParams::Central, &seed(3)).unwrap();
        assert_eq!((plan.rows, plan.cols), (1, 1));
        assert_eq!(plan.slots.len(), 1);
    }

    #[test]
    fn share_plan_uses_n_rows() {
        let ov = overlay(100);
        let params = SchemeParams::Share {
            k: 2,
            l: 4,
            n: 10,
            m: vec![5, 5, 6],
        };
        let plan = construct_paths(&ov, &params, &seed(4)).unwrap();
        assert_eq!(plan.rows, 10);
        assert_eq!(plan.cols, 4);
        assert_eq!(plan.slots.len(), 40);
    }

    #[test]
    fn column_accessor() {
        let ov = overlay(100);
        let plan = construct_paths(&ov, &SchemeParams::Joint { k: 3, l: 2 }, &seed(5)).unwrap();
        let col0 = plan.column(0);
        assert_eq!(col0.len(), 3);
        assert_eq!(col0[1], plan.slot(1, 0));
    }

    #[test]
    fn addresses_are_spread_across_id_space() {
        // Coarse uniformity check: top bits of derived addresses vary.
        let s = seed(6);
        let mut top_bits = HashSet::new();
        for row in 0..8 {
            for col in 0..8 {
                let addr = holder_address(&s, row, col, 0);
                top_bits.insert(addr.as_bytes()[0] >> 4);
            }
        }
        assert!(top_bits.len() > 8, "addresses should cover the ID space");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            #[test]
            fn plans_always_have_distinct_holders(
                k in 1usize..6,
                l in 1usize..6,
                seed_byte: u8,
            ) {
                let ov = overlay(120);
                let plan = construct_paths(
                    &ov,
                    &SchemeParams::Joint { k, l },
                    &SymmetricKey::from_bytes([seed_byte; 32]),
                )
                .unwrap();
                let mut sorted = plan.slots.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), k * l);
                prop_assert_eq!(plan.slots.len(), k * l);
                // Every slot index is in range.
                prop_assert!(plan.slots.iter().all(|&s| s < 120));
            }

            #[test]
            fn holder_addresses_never_collide_per_position(
                row in 0usize..32,
                col in 0usize..32,
                attempt in 0u32..4,
                seed_byte: u8,
            ) {
                let s = SymmetricKey::from_bytes([seed_byte; 32]);
                let a = holder_address(&s, row, col, attempt);
                // Distinct positions/attempts give distinct addresses.
                let b = holder_address(&s, row, col, attempt + 1);
                let c = holder_address(&s, row + 1, col, attempt);
                prop_assert_ne!(a, b);
                prop_assert_ne!(a, c);
            }
        }
    }
}
