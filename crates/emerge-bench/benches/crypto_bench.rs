//! Criterion microbenches for the cryptographic substrate.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use emerge_core::package::KeySchedule;
use emerge_crypto::aead;
use emerge_crypto::chacha20::ChaCha20;
use emerge_crypto::gf256;
use emerge_crypto::keys::SymmetricKey;
use emerge_crypto::onion::{build_onion, peel, Peeled};
use emerge_crypto::sha256::Sha256;
use emerge_crypto::shamir;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_gf256(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf256");
    for size in [32usize, 1024] {
        let src: Vec<u8> = (0..size).map(|i| (i * 31 + 1) as u8).collect();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(
            BenchmarkId::new("mul_slice_assign", size),
            &src,
            |b, src| {
                let mut buf = src.clone();
                b.iter(|| gf256::mul_slice_assign(black_box(&mut buf), 0x53));
            },
        );
        group.bench_with_input(BenchmarkId::new("mul_acc_slice", size), &src, |b, src| {
            let mut acc = vec![0u8; src.len()];
            b.iter(|| gf256::mul_acc_slice(black_box(&mut acc), src, 0x53));
        });
        // The scalar path the kernels replaced, for the before/after story.
        group.bench_with_input(BenchmarkId::new("mul_scalar_loop", size), &src, |b, src| {
            let mut buf = src.clone();
            b.iter(|| {
                for byte in &mut buf {
                    *byte = gf256::mul(black_box(*byte), 0x53);
                }
            });
        });
    }
    group.bench_function("lagrange_weights_20", |b| {
        let xs: Vec<u8> = (1..=20).collect();
        b.iter(|| gf256::lagrange_weights_at_zero(black_box(&xs)));
    });
    group.finish();
}

fn bench_key_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("key_schedule");
    let seed = SymmetricKey::from_bytes([0x42u8; 32]);
    // The pre-refactor behavior: a fresh format! allocation plus a full
    // HKDF run on every request.
    group.bench_function("derive_format_label", |b| {
        b.iter(|| seed.derive(format!("row-key/{}/{}", black_box(17), black_box(3)).as_bytes()));
    });
    // Stack label + HKDF, but a cold cache each time (first-request cost).
    group.bench_function("row_key_uncached", |b| {
        b.iter(|| KeySchedule::new(seed.clone()).row_key(black_box(17), black_box(3)));
    });
    // The steady state: every later request is a cache hit.
    group.bench_function("row_key_memoized", |b| {
        let schedule = KeySchedule::new(seed.clone());
        schedule.row_key(17, 3);
        b.iter(|| schedule.row_key(black_box(17), black_box(3)));
    });
    group.finish();
}

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xABu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| Sha256::digest(black_box(data)));
        });
    }
    group.finish();
}

fn bench_chacha20(c: &mut Criterion) {
    let mut group = c.benchmark_group("chacha20");
    let key = [7u8; 32];
    let nonce = [9u8; 12];
    for size in [64usize, 4096] {
        let mut buf = vec![0u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                ChaCha20::new(&key, &nonce, 0).apply_keystream(black_box(&mut buf));
            });
        });
    }
    group.finish();
}

fn bench_aead(c: &mut Criterion) {
    let mut group = c.benchmark_group("aead");
    let key = SymmetricKey::from_bytes([1u8; 32]);
    let nonce = [2u8; 12];
    for size in [256usize, 4096] {
        let plaintext = vec![0x55u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("seal", size), &plaintext, |b, pt| {
            b.iter(|| aead::seal(&key, &nonce, black_box(pt), b"aad"));
        });
        let sealed = aead::seal(&key, &nonce, &plaintext, b"aad");
        group.bench_with_input(BenchmarkId::new("open", size), &sealed, |b, ct| {
            b.iter(|| aead::open(&key, &nonce, black_box(ct), b"aad").unwrap());
        });
    }
    group.finish();
}

fn bench_shamir(c: &mut Criterion) {
    let mut group = c.benchmark_group("shamir");
    let secret = [0xC3u8; 32];
    for (m, n) in [(2usize, 3usize), (5, 9), (13, 25), (64, 127)] {
        group.bench_with_input(
            BenchmarkId::new("split", format!("{m}-of-{n}")),
            &(m, n),
            |b, &(m, n)| {
                let mut rng = StdRng::seed_from_u64(1);
                b.iter(|| shamir::split(black_box(&secret), m, n, &mut rng).unwrap());
            },
        );
        let mut rng = StdRng::seed_from_u64(2);
        let shares = shamir::split(&secret, m, n, &mut rng).unwrap();
        group.bench_with_input(
            BenchmarkId::new("combine", format!("{m}-of-{n}")),
            &shares,
            |b, shares| {
                b.iter(|| shamir::combine(black_box(shares), m).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_onion(c: &mut Criterion) {
    let mut group = c.benchmark_group("onion");
    for depth in [3usize, 8, 16] {
        let keys: Vec<SymmetricKey> = (0..depth)
            .map(|i| SymmetricKey::from_bytes([i as u8 + 1; 32]))
            .collect();
        let payload = vec![0u8; 128];
        let layers: Vec<(&SymmetricKey, &[u8])> =
            keys.iter().map(|k| (k, payload.as_slice())).collect();
        group.bench_with_input(BenchmarkId::new("build", depth), &layers, |b, layers| {
            b.iter(|| build_onion(black_box(layers), b"core secret"));
        });
        let onion = build_onion(&layers, b"core secret");
        group.bench_with_input(BenchmarkId::new("peel_all", depth), &onion, |b, onion| {
            b.iter(|| {
                let mut current = onion.clone();
                for key in &keys {
                    match peel(key, &current).unwrap() {
                        Peeled::Intermediate { inner, .. } => current = inner,
                        Peeled::Core { payload } => {
                            black_box(payload);
                            break;
                        }
                    }
                }
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gf256,
    bench_sha256,
    bench_chacha20,
    bench_aead,
    bench_shamir,
    bench_onion,
    bench_key_schedule
);
criterion_main!(benches);
