//! Criterion microbenches for the DHT substrates.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use emerge_dht::analytic::AnalyticSubstrate;
use emerge_dht::id::NodeId;
use emerge_dht::overlay::{Overlay, OverlayConfig};

fn config(n: usize) -> OverlayConfig {
    OverlayConfig {
        n_nodes: n,
        ..OverlayConfig::default()
    }
}

fn churny_config(n: usize) -> OverlayConfig {
    OverlayConfig {
        n_nodes: n,
        malicious_fraction: 0.2,
        mean_lifetime: Some(40_000),
        horizon: 200_000,
        ..OverlayConfig::default()
    }
}

fn bench_overlay_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay_build");
    group.sample_size(10);
    for n in [1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| Overlay::build(config(n), black_box(7)));
        });
    }
    group.finish();
}

fn bench_routing_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_tables");
    group.sample_size(10);
    for n in [1_000usize, 4_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut overlay = Overlay::build(config(n), 7);
                overlay.build_routing_tables();
                overlay
            });
        });
    }
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("iterative_lookup");
    for n in [512usize, 4_096] {
        let mut overlay = Overlay::build(config(n), 7);
        overlay.build_routing_tables();
        let mut i = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                i += 1;
                let target = NodeId::from_name(format!("target-{i}").as_bytes());
                overlay.find_node(black_box(0), target)
            });
        });
    }
    group.finish();
}

fn bench_resolve_holder(c: &mut Criterion) {
    let mut group = c.benchmark_group("resolve_holder");
    for n in [1_000usize, 10_000] {
        let overlay = Overlay::build(config(n), 7);
        let target = NodeId::from_name(b"addr");
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| overlay.resolve_holder(black_box(&target)));
        });
    }
    group.finish();
}

fn bench_analytic_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("analytic_build");
    group.sample_size(10);
    for n in [1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| AnalyticSubstrate::build(config(n), black_box(7)));
        });
    }
    group.finish();
}

fn bench_churny_world_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("churny_world_build_10000");
    group.sample_size(10);
    group.bench_function("overlay", |b| {
        b.iter(|| Overlay::build(churny_config(10_000), black_box(7)));
    });
    group.bench_function("analytic", |b| {
        b.iter(|| AnalyticSubstrate::build(churny_config(10_000), black_box(7)));
    });
    group.finish();
}

fn bench_analytic_resolve(c: &mut Criterion) {
    let mut group = c.benchmark_group("analytic_resolve_holder");
    for n in [1_000usize, 10_000] {
        let substrate = AnalyticSubstrate::build(config(n), 7);
        let target = NodeId::from_name(b"addr");
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| substrate.resolve_holder(black_box(&target)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_overlay_build,
    bench_routing_tables,
    bench_lookup,
    bench_resolve_holder,
    bench_analytic_build,
    bench_churny_world_build,
    bench_analytic_resolve
);
criterion_main!(benches);
