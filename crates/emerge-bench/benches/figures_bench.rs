//! Criterion wrappers around the figure regenerators (small-scale cells),
//! so `cargo bench` exercises exactly the code paths behind every figure.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use emerge_bench::figures::{fig6_attack_and_cost, fig7_churn_resilience, fig8_share_cost};

fn bench_fig6_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_cell");
    group.sample_size(10);
    group.bench_function("p02_n10000_50trials", |b| {
        b.iter(|| fig6_attack_and_cost(10_000, black_box(&[0.2]), 50, 1));
    });
    group.bench_function("p02_n100_50trials", |b| {
        b.iter(|| fig6_attack_and_cost(100, black_box(&[0.2]), 50, 1));
    });
    group.finish();
}

fn bench_fig7_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_cell");
    group.sample_size(10);
    group.bench_function("alpha3_p02_50trials", |b| {
        b.iter(|| fig7_churn_resilience(10_000, 3.0, black_box(&[0.2]), 50, 2));
    });
    group.finish();
}

fn bench_fig8_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_cell");
    group.sample_size(10);
    group.bench_function("budgets_p02_50trials", |b| {
        b.iter(|| fig8_share_cost(10_000, &[100, 1_000], 3.0, black_box(&[0.2]), 50, 3));
    });
    group.finish();
}

criterion_group!(benches, bench_fig6_cell, bench_fig7_cell, bench_fig8_cell);
criterion_main!(benches);
