//! Criterion benches for the key-routing schemes: path construction,
//! package generation, full protocol runs, and Monte-Carlo throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use emerge_bench::mc::run_protocol_trials_threaded;
use emerge_bench::parallel::mc_threads;
use emerge_contract::economy::HolderStrategy;
use emerge_contract::mc::run_bonded_trials;
use emerge_contract::release::BondedSpec;
use emerge_contract::substrate::{ContractConfig, ContractSubstrate};
use emerge_core::config::SchemeParams;
use emerge_core::montecarlo::{run_trials, ProtocolTrialSpec, TrialSpec};
use emerge_core::package::{build_keyed_packages, build_share_packages, KeySchedule};
use emerge_core::path::construct_paths;
use emerge_core::protocol::{execute_keyed, execute_share, AttackMode, RunConfig};
use emerge_crypto::keys::SymmetricKey;
use emerge_dht::analytic::AnalyticSubstrate;
use emerge_dht::overlay::{Overlay, OverlayConfig};
use emerge_sim::time::{SimDuration, SimTime};

fn overlay(n: usize) -> Overlay {
    Overlay::build(
        OverlayConfig {
            n_nodes: n,
            ..OverlayConfig::default()
        },
        11,
    )
}

fn bench_path_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("path_construction");
    let ov = overlay(2_000);
    let seed = SymmetricKey::from_bytes([3; 32]);
    for (k, l) in [(2usize, 3usize), (5, 10), (10, 20)] {
        let params = SchemeParams::Joint { k, l };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{k}x{l}")),
            &params,
            |b, params| {
                b.iter(|| construct_paths(&ov, black_box(params), &seed).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_package_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("package_generation");
    let ov = overlay(2_000);
    let seed = SymmetricKey::from_bytes([4; 32]);
    let schedule = KeySchedule::new(seed.clone());

    let keyed = SchemeParams::Joint { k: 5, l: 10 };
    let plan = construct_paths(&ov, &keyed, &seed).unwrap();
    group.bench_function("keyed_5x10", |b| {
        b.iter(|| build_keyed_packages(&plan, &keyed, &schedule, black_box(b"secret")).unwrap());
    });

    let share = SchemeParams::Share {
        k: 3,
        l: 5,
        n: 15,
        m: vec![8, 8, 8, 9],
    };
    let plan = construct_paths(&ov, &share, &seed).unwrap();
    group.bench_function("share_15x5", |b| {
        b.iter(|| build_share_packages(&plan, &share, &schedule, black_box(b"secret")).unwrap());
    });
    // Flat v2 vs the nested v1 oracle on the same plan: the before/after
    // pair for the O(l²·n) → O(l·n) seal-volume flattening.
    group.bench_function("share_15x5_nested_v1", |b| {
        b.iter(|| {
            emerge_core::package::legacy::build_share_packages_v1(
                &plan,
                &share,
                &schedule,
                black_box(b"secret"),
            )
            .unwrap()
        });
    });

    // Deep chain (l = 12): the shape the flat format unlocked.
    let deep = SchemeParams::Share {
        k: 3,
        l: 12,
        n: 16,
        m: vec![8; 11],
    };
    let plan = construct_paths(&ov, &deep, &seed).unwrap();
    group.bench_function("share_16x12_deep", |b| {
        b.iter(|| build_share_packages(&plan, &deep, &schedule, black_box(b"secret")).unwrap());
    });
    group.bench_function("share_16x12_deep_nested_v1", |b| {
        b.iter(|| {
            emerge_core::package::legacy::build_share_packages_v1(
                &plan,
                &deep,
                &schedule,
                black_box(b"secret"),
            )
            .unwrap()
        });
    });
    group.finish();
}

fn bench_protocol_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_run");
    group.sample_size(20);
    let config = RunConfig {
        ts: SimTime::ZERO,
        emerging_period: SimDuration::from_ticks(10_000),
        attack: AttackMode::Passive,
    };
    let seed = SymmetricKey::from_bytes([5; 32]);
    let schedule = KeySchedule::new(seed.clone());

    let keyed = SchemeParams::Joint { k: 5, l: 10 };
    {
        let ov = overlay(2_000);
        let plan = construct_paths(&ov, &keyed, &seed).unwrap();
        let pkgs = build_keyed_packages(&plan, &keyed, &schedule, b"secret").unwrap();
        group.bench_function("joint_5x10", |b| {
            b.iter_batched(
                || overlay(2_000),
                |mut ov| execute_keyed(&mut ov, &plan, &keyed, &pkgs, black_box(&config)).unwrap(),
                criterion::BatchSize::SmallInput,
            );
        });
    }

    let share = SchemeParams::Share {
        k: 3,
        l: 5,
        n: 15,
        m: vec![8, 8, 8, 9],
    };
    {
        let ov = overlay(2_000);
        let plan = construct_paths(&ov, &share, &seed).unwrap();
        let pkgs = build_share_packages(&plan, &share, &schedule, b"secret").unwrap();
        group.bench_function("share_15x5", |b| {
            b.iter_batched(
                || overlay(2_000),
                |mut ov| execute_share(&mut ov, &plan, &share, &pkgs, black_box(&config)).unwrap(),
                criterion::BatchSize::SmallInput,
            );
        });
    }

    // Deep chain on the analytic substrate: twelve just-in-time key
    // release hops, the regime the flat package format makes affordable.
    let deep = SchemeParams::Share {
        k: 3,
        l: 12,
        n: 16,
        m: vec![8; 11],
    };
    {
        let world_cfg = OverlayConfig {
            n_nodes: 2_000,
            ..OverlayConfig::default()
        };
        let world = AnalyticSubstrate::build(world_cfg, 11);
        let seed = SymmetricKey::from_bytes([5; 32]);
        let schedule = KeySchedule::new(seed.clone());
        let plan = construct_paths(&world, &deep, &seed).unwrap();
        let pkgs = build_share_packages(&plan, &deep, &schedule, b"secret").unwrap();
        group.bench_function("share_16x12_deep_analytic", |b| {
            b.iter_batched(
                || AnalyticSubstrate::build(world_cfg, 11),
                |mut w| execute_share(&mut w, &plan, &deep, &pkgs, black_box(&config)).unwrap(),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_montecarlo(c: &mut Criterion) {
    let mut group = c.benchmark_group("montecarlo_100_trials");
    group.sample_size(10);
    for (label, params, alpha) in [
        ("joint_no_churn", SchemeParams::Joint { k: 5, l: 12 }, None),
        (
            "joint_churn_a3",
            SchemeParams::Joint { k: 5, l: 12 },
            Some(3.0),
        ),
        (
            "share_churn_a3",
            SchemeParams::Share {
                k: 5,
                l: 12,
                n: 833,
                m: vec![350; 11],
            },
            Some(3.0),
        ),
    ] {
        let spec = TrialSpec {
            params,
            population: 10_000,
            p: 0.2,
            alpha,
            unavailability: 0.0,
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &spec, |b, spec| {
            b.iter(|| run_trials(black_box(spec), 100, 42).unwrap());
        });
    }
    group.finish();
}

fn bench_protocol_montecarlo_sharded(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_mc_sharded_20_trials");
    group.sample_size(10);
    let spec = ProtocolTrialSpec {
        params: SchemeParams::Joint { k: 4, l: 8 },
        emerging_period: SimDuration::from_ticks(8_000),
        attack: AttackMode::ReleaseAhead,
    };
    let world = OverlayConfig {
        n_nodes: 2_000,
        malicious_fraction: 0.2,
        mean_lifetime: Some(40_000),
        horizon: 200_000,
        ..OverlayConfig::default()
    };
    let mut thread_counts = vec![1usize];
    if mc_threads() > 1 {
        thread_counts.push(mc_threads());
    }
    for threads in thread_counts {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{threads}_threads")),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    run_protocol_trials_threaded(black_box(&spec), 20, 42, threads, |s| {
                        AnalyticSubstrate::build(world, s)
                    })
                    .unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_contract_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("contract_substrate_20_trials");
    group.sample_size(10);
    let world = OverlayConfig {
        n_nodes: 2_000,
        malicious_fraction: 0.2,
        mean_lifetime: Some(40_000),
        horizon: 200_000,
        ..OverlayConfig::default()
    };

    // The four-scheme wire protocol on the contract substrate: the cost
    // of the chain layer relative to the bare analytic substrate is the
    // delta against protocol_mc_sharded's joint cell.
    let spec = ProtocolTrialSpec {
        params: SchemeParams::Joint { k: 4, l: 8 },
        emerging_period: SimDuration::from_ticks(8_000),
        attack: AttackMode::ReleaseAhead,
    };
    group.bench_function("joint_4x8_wire", |b| {
        b.iter(|| {
            run_protocol_trials_threaded(black_box(&spec), 20, 42, 1, |s| {
                ContractSubstrate::build(ContractConfig::over(world), s)
            })
            .unwrap()
        });
    });

    // The contract-native bonded release: escrow, commit, reveal, slash
    // and claim with real Shamir shares per trial.
    let bonded = BondedSpec {
        n: 24,
        m: 16,
        emerging_period: SimDuration::from_ticks(8_000),
        reveal_window_blocks: 1,
        strategy: HolderStrategy::Rational {
            withhold_bribe: 100,
            early_reveal_bribe: 100,
        },
    };
    group.bench_function("bonded_24x16_rational", |b| {
        b.iter(|| {
            run_bonded_trials(black_box(&bonded), 20, 42, |s| {
                ContractSubstrate::build(ContractConfig::over(world), s)
            })
            .unwrap()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_path_construction,
    bench_package_generation,
    bench_protocol_run,
    bench_montecarlo,
    bench_protocol_montecarlo_sharded,
    bench_contract_substrate
);
criterion_main!(benches);
