//! Steady-state allocation discipline of the pooled trial loop.
//!
//! The pooled Monte-Carlo pipeline (substrate rebuild + `TrialWorkspace`)
//! promises that after a warm-up pass every trial runs without touching
//! the allocator. This test installs a counting `#[global_allocator]`
//! shim (legal here: integration tests are their own crate roots) and
//! asserts the promise literally: a second, identical pass over the
//! share_8x3 analytic cell performs **zero** heap allocations.
//!
//! Warm-up is an identical pass over the same trial range, so every
//! pooled buffer reaches the exact capacity the measured pass needs —
//! the same steady state a bench shard reaches after its first trials.

use emerge_core::config::SchemeParams;
use emerge_core::montecarlo::{
    run_protocol_trial_range_pooled, ProtocolMcResults, ProtocolTrialSpec, TrialWorkspace,
};
use emerge_core::protocol::AttackMode;
use emerge_core::substrate::{AnalyticSubstrate, OverlayConfig};
use emerge_obs::collector::{install, take};
use emerge_obs::Collector;
use emerge_sim::time::SimDuration;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation-path call (alloc, alloc_zeroed, realloc);
/// frees are uncounted — releasing warm capacity is not the regression
/// this test guards against, acquiring it per trial is.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_share_trials_allocate_nothing() {
    const TRIALS: usize = 20;
    let spec = ProtocolTrialSpec {
        params: SchemeParams::Share {
            k: 2,
            l: 3,
            n: 8,
            m: vec![4, 4],
        },
        emerging_period: SimDuration::from_ticks(8_000),
        attack: AttackMode::ReleaseAhead,
    };
    let config = OverlayConfig {
        n_nodes: 2_000,
        malicious_fraction: 0.2,
        mean_lifetime: Some(40_000),
        horizon: 200_000,
        ..OverlayConfig::default()
    };
    let mut substrate = AnalyticSubstrate::build(config, 0);
    let mut ws = TrialWorkspace::new();

    // Two warm-up passes: the first grows the workspace buffers and fills
    // the substrate's timeline pool; the second runs with the pool's
    // stationary hand-out cycle (a cold pool serves trials in a slightly
    // different order than a seeded one), topping up the last capacities.
    // From the third pass on, the buffer-demand mapping repeats exactly.
    let mut warm = ProtocolMcResults::default();
    for _ in 0..2 {
        warm = run_protocol_trial_range_pooled(
            &spec,
            0,
            TRIALS,
            0xB45E,
            &mut substrate,
            |s, seed| s.rebuild(seed),
            &mut ws,
        )
        .expect("warm-up trials");
    }

    // Measured pass: identical trials, zero allocations allowed.
    let before = ALLOCS.load(Ordering::SeqCst);
    let steady = run_protocol_trial_range_pooled(
        &spec,
        0,
        TRIALS,
        0xB45E,
        &mut substrate,
        |s, seed| s.rebuild(seed),
        &mut ws,
    )
    .expect("steady-state trials");
    let allocations = ALLOCS.load(Ordering::SeqCst) - before;

    assert_eq!(
        steady.fingerprint, warm.fingerprint,
        "the measured pass must rerun the exact warm-up trials"
    );
    assert_eq!(
        allocations, 0,
        "steady-state pooled trials must not touch the allocator \
         ({allocations} allocation(s) across {TRIALS} trials)"
    );
}

/// The same promise with telemetry enabled: an installed `emerge-obs`
/// collector records every phase span, counter increment and ring entry
/// into preallocated storage, so steady-state trials stay at zero
/// allocations even while fully instrumented. This is the property that
/// lets `montecarlo_baseline` run its profiled drivers unconditionally.
#[test]
fn steady_state_share_trials_allocate_nothing_with_metrics_enabled() {
    const TRIALS: usize = 20;
    let spec = ProtocolTrialSpec {
        params: SchemeParams::Share {
            k: 2,
            l: 3,
            n: 8,
            m: vec![4, 4],
        },
        emerging_period: SimDuration::from_ticks(8_000),
        attack: AttackMode::ReleaseAhead,
    };
    let config = OverlayConfig {
        n_nodes: 2_000,
        malicious_fraction: 0.2,
        mean_lifetime: Some(40_000),
        horizon: 200_000,
        ..OverlayConfig::default()
    };

    // The collector preallocates its registry and trace ring here, before
    // the measured window opens. (Thread-local, so the plain variant of
    // this test running on a sibling thread stays uninstrumented.)
    let previous = install(Collector::new());

    let mut substrate = AnalyticSubstrate::build(config, 0);
    let mut ws = TrialWorkspace::new();
    let mut warm = ProtocolMcResults::default();
    for _ in 0..2 {
        warm = run_protocol_trial_range_pooled(
            &spec,
            0,
            TRIALS,
            0xB45E,
            &mut substrate,
            |s, seed| s.rebuild(seed),
            &mut ws,
        )
        .expect("warm-up trials");
    }

    let before = ALLOCS.load(Ordering::SeqCst);
    let steady = run_protocol_trial_range_pooled(
        &spec,
        0,
        TRIALS,
        0xB45E,
        &mut substrate,
        |s, seed| s.rebuild(seed),
        &mut ws,
    )
    .expect("steady-state trials");
    let allocations = ALLOCS.load(Ordering::SeqCst) - before;

    // The instrumentation actually fired during the measured window.
    let snapshot = take().expect("collector installed above").snapshot();
    if let Some(prev) = previous {
        install(prev);
    }
    assert_eq!(
        snapshot.counter("trial.execute.calls"),
        Some(3 * TRIALS as u64),
        "every pass's trials must be span-counted"
    );
    assert!(
        snapshot.counter("package.seal.bytes").unwrap_or(0) > 0,
        "seal volume must be metered"
    );

    assert_eq!(
        steady.fingerprint, warm.fingerprint,
        "the measured pass must rerun the exact warm-up trials"
    );
    assert_eq!(
        allocations, 0,
        "steady-state pooled trials with metrics enabled must not touch \
         the allocator ({allocations} allocation(s) across {TRIALS} trials)"
    );
}
