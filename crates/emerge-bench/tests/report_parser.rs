//! Property tests for the report JSON reader: whatever bytes arrive —
//! random soup, mutated real documents, pathological nesting — the
//! parser must return `Ok` or `Err`, never panic, and everything it
//! accepts must satisfy the reader's structural guarantees.

use emerge_bench::report::{parse_json, JsonValue};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

/// Renders a `JsonValue` back to text, the inverse of `parse_json` for
/// documents the reader itself produced.
fn render(value: &JsonValue) -> String {
    match value {
        JsonValue::Null => "null".to_string(),
        JsonValue::Bool(b) => b.to_string(),
        JsonValue::Number(x) => {
            if x.fract() == 0.0 && x.abs() < 9e15 {
                format!("{}", *x as i64)
            } else {
                format!("{x:?}")
            }
        }
        JsonValue::String(s) => {
            let mut out = String::from("\"");
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        JsonValue::Array(items) => {
            let body: Vec<String> = items.iter().map(render).collect();
            format!("[{}]", body.join(", "))
        }
        JsonValue::Object(members) => {
            let body: Vec<String> = members
                .iter()
                .map(|(k, v)| format!("{}: {}", render(&JsonValue::String(k.clone())), render(v)))
                .collect();
            format!("{{{}}}", body.join(", "))
        }
    }
}

/// Builds a bounded-depth random document from a byte budget.
fn build_doc(bytes: &[u8], depth: usize) -> JsonValue {
    let Some((&tag, rest)) = bytes.split_first() else {
        return JsonValue::Null;
    };
    match tag % if depth == 0 { 4 } else { 6 } {
        0 => JsonValue::Null,
        1 => JsonValue::Bool(tag % 2 == 0),
        2 => JsonValue::Number(f64::from(i32::from_le_bytes([
            tag,
            rest.first().copied().unwrap_or(0),
            rest.get(1).copied().unwrap_or(0),
            rest.get(2).copied().unwrap_or(0),
        ]))),
        3 => JsonValue::String(String::from_utf8_lossy(&rest[..rest.len().min(8)]).into_owned()),
        4 => {
            let n = usize::from(tag % 3);
            JsonValue::Array(
                (0..n)
                    .map(|i| build_doc(&rest[rest.len().min(i * 3)..], depth - 1))
                    .collect(),
            )
        }
        _ => {
            let n = usize::from(tag % 3);
            JsonValue::Object(
                (0..n)
                    .map(|i| {
                        (
                            format!("k{i}"),
                            build_doc(&rest[rest.len().min(i * 5)..], depth - 1),
                        )
                    })
                    .collect(),
            )
        }
    }
}

fn values_equal(a: &JsonValue, b: &JsonValue) -> bool {
    match (a, b) {
        (JsonValue::Null, JsonValue::Null) => true,
        (JsonValue::Bool(x), JsonValue::Bool(y)) => x == y,
        (JsonValue::Number(x), JsonValue::Number(y)) => x.to_bits() == y.to_bits(),
        (JsonValue::String(x), JsonValue::String(y)) => x == y,
        (JsonValue::Array(x), JsonValue::Array(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(a, b)| values_equal(a, b))
        }
        (JsonValue::Object(x), JsonValue::Object(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y)
                    .all(|((ka, va), (kb, vb))| ka == kb && values_equal(va, vb))
        }
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte soup (lossily decoded) never panics the parser.
    #[test]
    fn parser_never_panics_on_arbitrary_bytes(bytes in pvec(any::<u8>(), 0..200)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_json(&text);
    }

    /// Mutating one byte of a valid document never panics, and error
    /// positions stay within the text.
    #[test]
    fn parser_never_panics_on_mutated_documents(
        bytes in pvec(any::<u8>(), 1..40),
        pos in any::<usize>(),
        replacement in any::<u8>(),
    ) {
        let doc = build_doc(&bytes, 3);
        let mut text = render(&doc).into_bytes();
        let at = pos % text.len().max(1);
        if at < text.len() {
            text[at] = replacement;
        }
        let mutated = String::from_utf8_lossy(&text).into_owned();
        if let Err((offset, _)) = parse_json(&mutated) {
            prop_assert!(offset <= mutated.len());
        }
    }

    /// Documents the renderer produced round-trip structurally intact —
    /// duplicate keys, ordering and number bits included.
    #[test]
    fn rendered_documents_round_trip(bytes in pvec(any::<u8>(), 1..60)) {
        let doc = build_doc(&bytes, 3);
        let text = render(&doc);
        let back = parse_json(&text).expect("rendered document must parse");
        prop_assert!(values_equal(&doc, &back), "round trip changed {text}");
    }

    /// Exact integers up to 2^53 survive the f64 channel bit-for-bit.
    #[test]
    fn exact_integers_round_trip(n in 0u64..(1u64 << 53)) {
        let doc = parse_json(&n.to_string()).expect("integer must parse");
        prop_assert_eq!(doc.as_u64(), Some(n));
    }
}
