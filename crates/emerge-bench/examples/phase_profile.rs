//! Phase-timing probe for the pooled share_40x5 analytic trial loop.
//!
//! Times each phase of the zero-allocation pipeline (world rebuild, path
//! construction, package build, pooled execution) over the same trial
//! stream the recorded baseline runs, so a perf session can see where a
//! trial's budget goes before reaching for `perf record`.

use emerge_core::config::SchemeParams;
use emerge_core::montecarlo::{run_protocol_trial_range_pooled, ProtocolTrialSpec, TrialWorkspace};
use emerge_core::package::{build_share_packages_into, KeySchedule, PackageScratch, SharePackages};
use emerge_core::path::{construct_paths_into, PathPlan};
use emerge_core::protocol::{
    execute_share_pooled, AttackMode, PooledRunReport, RunConfig, ShareExecScratch,
};
use emerge_core::substrate::{AnalyticSubstrate, OverlayConfig};
use emerge_crypto::keys::SymmetricKey;
use emerge_sim::rng::SeedSource;
use emerge_sim::time::SimDuration;
use rand::RngCore;
use std::time::Instant;

fn main() {
    let params = SchemeParams::Share {
        k: 3,
        l: 5,
        n: 40,
        m: vec![18, 18, 18, 20],
    };
    let config = OverlayConfig {
        n_nodes: 10_000,
        malicious_fraction: 0.2,
        mean_lifetime: Some(40_000),
        horizon: 200_000,
        ..OverlayConfig::default()
    };
    let seeds = SeedSource::new(0xB45E);
    let trials = 1000usize;

    let mut substrate = AnalyticSubstrate::build(config, 0);
    let mut plan = PathPlan::default();
    let mut schedule = KeySchedule::new(SymmetricKey::from_bytes([0u8; 32]));
    let mut packages = SharePackages::default();
    let mut pkg_scratch = PackageScratch::new();
    let mut exec_scratch = ShareExecScratch::default();
    let mut report = PooledRunReport::default();
    let mut secret = Vec::new();

    let mut t_world = 0.0f64;
    let mut t_paths = 0.0f64;
    let mut t_build = 0.0f64;
    let mut t_exec = 0.0f64;
    let total = Instant::now();
    for trial_idx in 0..trials {
        let mut trial_rng = seeds.stream_n("protocol-trial", trial_idx as u64);
        let world_seed = trial_rng.next_u64();
        let t0 = Instant::now();
        substrate.rebuild(world_seed);
        t_world += t0.elapsed().as_secs_f64();
        let sender_seed = SymmetricKey::generate(&mut trial_rng);
        let message_key = sender_seed.derive(b"message-secret-key");
        secret.clear();
        secret.extend_from_slice(message_key.as_bytes());
        let t1 = Instant::now();
        construct_paths_into(&substrate, &params, &sender_seed, &mut plan).unwrap();
        t_paths += t1.elapsed().as_secs_f64();
        let run = RunConfig {
            ts: substrate.now(),
            emerging_period: SimDuration::from_ticks(8_000),
            attack: AttackMode::ReleaseAhead,
        };
        schedule.reset(sender_seed);
        let t2 = Instant::now();
        build_share_packages_into(
            &plan,
            &params,
            &schedule,
            &secret,
            &mut packages,
            &mut pkg_scratch,
        )
        .unwrap();
        t_build += t2.elapsed().as_secs_f64();
        let t3 = Instant::now();
        execute_share_pooled(
            &mut substrate,
            &plan,
            &params,
            &packages,
            &run,
            &mut exec_scratch,
            &mut report,
        )
        .unwrap();
        t_exec += t3.elapsed().as_secs_f64();
        std::hint::black_box(&report);
    }
    let tt = total.elapsed().as_secs_f64();
    let per = |x: f64| x / trials as f64 * 1e3;
    println!("trials        {trials}");
    println!(
        "total         {:.3} s  ({:.1} trials/s)",
        tt,
        trials as f64 / tt
    );
    println!(
        "world rebuild {:.3} ms/trial ({:.0}%)",
        per(t_world),
        t_world / tt * 100.0
    );
    println!(
        "paths         {:.3} ms/trial ({:.0}%)",
        per(t_paths),
        t_paths / tt * 100.0
    );
    println!(
        "pkg build     {:.3} ms/trial ({:.0}%)",
        per(t_build),
        t_build / tt * 100.0
    );
    println!(
        "execute       {:.3} ms/trial ({:.0}%)",
        per(t_exec),
        t_exec / tt * 100.0
    );
    println!(
        "other         {:.3} ms/trial",
        per(tt - t_world - t_paths - t_build - t_exec)
    );

    // End-to-end through the public pooled range runner, for the number
    // the baseline records.
    let spec = ProtocolTrialSpec {
        params,
        emerging_period: SimDuration::from_ticks(8_000),
        attack: AttackMode::ReleaseAhead,
    };
    let mut ws = TrialWorkspace::new();
    let t = Instant::now();
    let r = run_protocol_trial_range_pooled(
        &spec,
        0,
        trials,
        0xB45E,
        &mut substrate,
        |s, seed| s.rebuild(seed),
        &mut ws,
    )
    .unwrap();
    let dt = t.elapsed().as_secs_f64();
    println!(
        "pooled runner {:.1} trials/s (fingerprint {:#018x})",
        trials as f64 / dt,
        r.fingerprint
    );
}
