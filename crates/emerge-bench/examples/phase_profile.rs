//! Phase-timing probe for the pooled share_40x5 analytic trial loop.
//!
//! The zero-allocation pipeline is instrumented with `emerge-obs` spans
//! (world rebuild, path construction, package build, pooled execution);
//! this example installs a collector around the public pooled runner and
//! prints the per-phase breakdown those spans record — the same
//! collection and extraction path `montecarlo_baseline --profile` uses,
//! so a perf session can see where a trial's budget goes before reaching
//! for `perf record`.
//!
//! The `allocs` column is live because this binary installs the counting
//! allocator: after the pool's cold first pass, the steady state should
//! attribute (close to) zero allocations to every phase.

use emerge_bench::profile::{collected, phase_stats, render_phase_table};
use emerge_core::config::SchemeParams;
use emerge_core::montecarlo::{run_protocol_trial_range_pooled, ProtocolTrialSpec, TrialWorkspace};
use emerge_core::protocol::AttackMode;
use emerge_core::substrate::{AnalyticSubstrate, OverlayConfig};
use emerge_obs::alloccount::CountingAllocator;
use emerge_obs::Stopwatch;
use emerge_sim::time::SimDuration;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn main() {
    let spec = ProtocolTrialSpec {
        params: SchemeParams::Share {
            k: 3,
            l: 5,
            n: 40,
            m: vec![18, 18, 18, 20],
        },
        emerging_period: SimDuration::from_ticks(8_000),
        attack: AttackMode::ReleaseAhead,
    };
    let config = OverlayConfig {
        n_nodes: 10_000,
        malicious_fraction: 0.2,
        mean_lifetime: Some(40_000),
        horizon: 200_000,
        ..OverlayConfig::default()
    };
    let trials = 1000usize;

    let mut substrate = AnalyticSubstrate::build(config, 0);
    let mut ws = TrialWorkspace::new();
    let watch = Stopwatch::start();
    let (result, telemetry) = collected(|| {
        run_protocol_trial_range_pooled(
            &spec,
            0,
            trials,
            0xB45E,
            &mut substrate,
            |s, seed| s.rebuild(seed),
            &mut ws,
        )
    });
    let wall = watch.elapsed_secs();
    let results = result.expect("share_40x5 pooled run");

    println!("trials        {trials}");
    println!(
        "total         {:.3} s  ({:.1} trials/s, fingerprint {:#018x})",
        wall,
        trials as f64 / wall,
        results.fingerprint
    );
    println!();
    print!("{}", render_phase_table(&phase_stats(&telemetry), wall));
}
