//! Regenerates Figure 8: key-share routing scheme cost evaluation.
//!
//! The number of nodes available for path construction shrinks from 10000
//! to 5000, 1000 and 100 while the DHT population stays at 10000 and
//! `α = 3`; the figure shows how much resilience survives the budget cut.
//!
//! ```sh
//! cargo run -p emerge-bench --bin fig8 --release
//! EMERGE_TRIALS=200 EMERGE_P_STEP=0.05 cargo run -p emerge-bench --bin fig8 --release
//! ```

use emerge_bench::figures::{fig8_share_cost, render_and_save};
use emerge_bench::{p_step_from_env, p_sweep, trials_from_env};
use emerge_obs::Stopwatch;

fn main() {
    let trials = trials_from_env();
    let ps = p_sweep(p_step_from_env());
    let population = 10_000;
    let budgets = [100usize, 1_000, 5_000, 10_000];
    let alpha = 3.0;

    println!("# Figure 8 — key-share routing cost evaluation");
    println!("# population {population}, α = {alpha}, budgets {budgets:?}");
    println!("# trials per cell: {trials}; p sweep: {} points", ps.len());

    let watch = Stopwatch::start();
    let table = fig8_share_cost(population, &budgets, alpha, &ps, trials, 0x80);
    println!();
    println!("{}", render_and_save(&table, "fig8"));
    eprintln!("# sweep took {:.1} s", watch.elapsed_secs());
}
