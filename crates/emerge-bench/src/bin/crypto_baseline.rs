//! Records the crypto-kernel throughput baseline to `BENCH_crypto.json`
//! (first CLI arg overrides the path).
//!
//! Measures the batched hot-path kernels the Monte-Carlo share cell leans
//! on — slice-wise GF(256), slab Shamir split/combine, block-wise
//! ChaCha20, AEAD seal/open at header and bundle sizes, the memoized
//! key schedule, and the whole share-package build (flat format v2 vs
//! the nested v1 oracle, with `share_package_seal_bytes_*` recording the
//! AEAD seal volume per build) — each alongside its pre-refactor shape
//! where one still exists, so the before/after ratio stays visible in
//! the recorded numbers. Later PRs diff against the committed file the
//! same way they diff `BENCH_montecarlo.json`.
//!
//! Environment: `EMERGE_CRYPTO_SAMPLE_MS` (default 300) sets the minimum
//! sampling window per operation.

use emerge_bench::report::{render_crypto_report, validate_json, CryptoMeasurement};
use emerge_core::config::SchemeParams;
use emerge_core::package::{build_share_packages, legacy, take_sealed_byte_count, KeySchedule};
use emerge_core::path::construct_paths;
use emerge_crypto::chacha20::ChaCha20;
use emerge_crypto::gf256;
use emerge_crypto::keys::SymmetricKey;
use emerge_crypto::{aead, shamir};
use emerge_dht::analytic::AnalyticSubstrate;
use emerge_dht::overlay::OverlayConfig;
use emerge_obs::{Collector, Stopwatch};
use emerge_sim::rng::SeedSource;

fn sample_ms() -> u64 {
    std::env::var("EMERGE_CRYPTO_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300)
}

/// Runs `op` repeatedly for at least the sampling window and records it.
fn measure<F: FnMut()>(
    out: &mut Vec<CryptoMeasurement>,
    op: &str,
    bytes_per_iter: usize,
    mut f: F,
) {
    // Warm up lazily built tables outside the timed window.
    f();
    let window_secs = sample_ms() as f64 / 1e3;
    let watch = Stopwatch::start();
    let mut iters = 0usize;
    // Check the clock once per batch, not per iteration: a clock read
    // costs tens of nanoseconds and would otherwise be billed to the
    // nanosecond-scale kernels.
    const BATCH: usize = 64;
    while watch.elapsed_secs() < window_secs {
        for _ in 0..BATCH {
            f();
        }
        iters += BATCH;
    }
    let m = CryptoMeasurement {
        op: op.into(),
        iters,
        seconds: watch.elapsed_secs(),
        bytes_per_iter,
    };
    if bytes_per_iter > 0 {
        eprintln!(
            "{op}: {:.1} ops/sec, {:.1} MB/s",
            m.ops_per_sec(),
            m.mb_per_sec()
        );
    } else {
        eprintln!("{op}: {:.1} ops/sec", m.ops_per_sec());
    }
    out.push(m);
}

fn main() {
    // The seal-volume counter (`package.seal.bytes`) records into the
    // thread's telemetry collector; without one installed,
    // `take_sealed_byte_count` would read 0 and the
    // `share_package_seal_bytes_*` ops below would record no volume.
    emerge_obs::collector::install(Collector::new());
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_crypto.json".into());
    let mut ms = Vec::new();

    // GF(256) slice kernels vs the scalar loop they replaced.
    let src: Vec<u8> = (0..1024).map(|i| (i * 31 + 1) as u8).collect();
    let mut buf = src.clone();
    measure(&mut ms, "gf256_mul_slice_assign_1KiB", 1024, || {
        gf256::mul_slice_assign(std::hint::black_box(&mut buf), 0x53);
    });
    let mut acc = vec![0u8; 1024];
    measure(&mut ms, "gf256_mul_acc_slice_1KiB", 1024, || {
        gf256::mul_acc_slice(std::hint::black_box(&mut acc), &src, 0x53);
    });
    let mut sbuf = src.clone();
    measure(&mut ms, "gf256_mul_scalar_loop_1KiB", 1024, || {
        for byte in &mut sbuf {
            *byte = gf256::mul(std::hint::black_box(*byte), 0x53);
        }
    });

    // Shamir at the Monte-Carlo share cell's own shape: 32-byte keys,
    // 20-of-40.
    let secret = [0xC3u8; 32];
    let mut rng = SeedSource::new(7).stream("crypto-baseline");
    measure(&mut ms, "shamir_split_20of40_32B", 32, || {
        // LINT-WAIVER(panic): splitting a 32-byte secret 20-of-40 is a valid hardcoded parameterization
        std::hint::black_box(shamir::split(&secret, 20, 40, &mut rng).unwrap());
    });
    // The packaging hot path's actual shape: one slab split for all 40
    // row keys of a column (kilobyte-wide GF(256) kernels instead of
    // 32-byte ones).
    let secrets: Vec<[u8; 32]> = (0..40).map(|i| [i as u8 + 1; 32]).collect();
    let views: Vec<&[u8]> = secrets.iter().map(|s| s.as_slice()).collect();
    measure(
        &mut ms,
        "shamir_split_many_40keys_20of40_32B",
        40 * 32,
        || {
            // LINT-WAIVER(panic): splitting fixed 32-byte views 20-of-40 is a valid hardcoded parameterization
            std::hint::black_box(shamir::split_many(&views, 20, 40, &mut rng).unwrap());
        },
    );
    // LINT-WAIVER(panic): splitting a 32-byte secret 20-of-40 is a valid hardcoded parameterization
    let shares = shamir::split(&secret, 20, 40, &mut rng).unwrap();
    measure(&mut ms, "shamir_combine_20of40_32B", 32, || {
        // LINT-WAIVER(panic): combining 20 honest shares from the split above cannot fail
        std::hint::black_box(shamir::combine(&shares, 20).unwrap());
    });

    // ChaCha20 keystream over a bundle-sized buffer.
    let key = [7u8; 32];
    let nonce = [9u8; 12];
    let mut stream_buf = vec![0u8; 256 * 1024];
    measure(&mut ms, "chacha20_keystream_256KiB", 256 * 1024, || {
        ChaCha20::new(&key, &nonce, 0).apply_keystream(std::hint::black_box(&mut stream_buf));
    });

    // AEAD at the two sizes the share scheme uses: per-row headers
    // (~4 KiB) and sealed inner bundles (~256 KiB).
    let skey = SymmetricKey::from_bytes([1u8; 32]);
    for (label_seal, label_open, size) in [
        ("aead_seal_4KiB", "aead_open_4KiB", 4 * 1024usize),
        ("aead_seal_256KiB", "aead_open_256KiB", 256 * 1024),
    ] {
        let plaintext = vec![0x55u8; size];
        measure(&mut ms, label_seal, size, || {
            std::hint::black_box(aead::seal(&skey, &nonce, &plaintext, b"aad"));
        });
        let sealed = aead::seal(&skey, &nonce, &plaintext, b"aad");
        measure(&mut ms, label_open, size, || {
            // LINT-WAIVER(panic): opening a box sealed immediately above with the same key, nonce and aad
            std::hint::black_box(aead::open(&skey, &nonce, &sealed, b"aad").unwrap());
        });
    }

    // Share packaging at the Monte-Carlo cell's shape (40 rows × 5
    // columns): total AEAD plaintext bytes sealed per build call, flat
    // format v2 vs the nested v1 oracle. `bytes_per_iter` is the measured
    // seal volume — the quantity the flattening reduced from O(l²·n) to
    // O(l·n) — and the op throughput doubles as a build benchmark.
    {
        let world = AnalyticSubstrate::build(
            OverlayConfig {
                n_nodes: 2_000,
                ..OverlayConfig::default()
            },
            7,
        );
        let params = SchemeParams::Share {
            k: 3,
            l: 5,
            n: 40,
            m: vec![18, 18, 18, 20],
        };
        let sender = SymmetricKey::from_bytes([0x2A; 32]);
        // LINT-WAIVER(panic): the hardcoded world and params form a valid share plan by construction
        let plan = construct_paths(&world, &params, &sender).expect("share plan");

        let _ = take_sealed_byte_count();
        build_share_packages(&plan, &params, &KeySchedule::new(sender.clone()), b"s")
            // LINT-WAIVER(panic): packages built from the valid hardcoded plan above cannot fail
            .expect("v2 build");
        let v2_bytes = take_sealed_byte_count() as usize;
        measure(
            &mut ms,
            "share_package_seal_bytes_v2_40x5",
            v2_bytes,
            || {
                let schedule = KeySchedule::new(sender.clone());
                std::hint::black_box(
                    // LINT-WAIVER(panic): packages built from the valid hardcoded plan above cannot fail
                    build_share_packages(&plan, &params, &schedule, b"s").unwrap(),
                );
            },
        );

        let _ = take_sealed_byte_count();
        legacy::build_share_packages_v1(&plan, &params, &KeySchedule::new(sender.clone()), b"s")
            // LINT-WAIVER(panic): packages built from the valid hardcoded plan above cannot fail
            .expect("v1 build");
        let v1_bytes = take_sealed_byte_count() as usize;
        measure(
            &mut ms,
            "share_package_seal_bytes_v1_40x5",
            v1_bytes,
            || {
                let schedule = KeySchedule::new(sender.clone());
                std::hint::black_box(
                    // LINT-WAIVER(panic): packages built from the valid hardcoded plan above cannot fail
                    legacy::build_share_packages_v1(&plan, &params, &schedule, b"s").unwrap(),
                );
            },
        );
        let _ = take_sealed_byte_count();
        eprintln!(
            "  seal volume per build: v2 {v2_bytes} bytes vs v1 {v1_bytes} bytes ({:.2}x)",
            v1_bytes as f64 / v2_bytes as f64
        );
    }

    // Key schedule: first-request derivation vs the memoized steady state.
    let seed = SymmetricKey::from_bytes([0x42u8; 32]);
    measure(&mut ms, "key_schedule_row_key_uncached", 0, || {
        std::hint::black_box(KeySchedule::new(seed.clone()).row_key(17, 3));
    });
    let schedule = KeySchedule::new(seed.clone());
    measure(&mut ms, "key_schedule_row_key_memoized", 0, || {
        std::hint::black_box(schedule.row_key(17, 3));
    });
    measure(&mut ms, "derive_format_label", 0, || {
        std::hint::black_box(seed.derive(format!("row-key/{}/{}", 17, 3).as_bytes()));
    });

    let json = render_crypto_report(&ms);
    if let Err((pos, msg)) = validate_json(&json) {
        eprintln!("error: generated report is not valid JSON at byte {pos}: {msg}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}
