//! Ablation studies for the design choices called out in DESIGN.md.
//!
//! ```sh
//! cargo run -p emerge-bench --bin ablations --release
//! ```
//!
//! * **A. Threshold policy** — Algorithm 1's balanced `m` vs a naive
//!   majority threshold vs a fixed-fraction threshold, under churn.
//! * **B. Release metric** — the paper's reconstruct-at-`ts` event vs the
//!   strict any-time-before-`tr` suffix-chain event for the joint scheme.
//! * **C. Topology at equal cost** — joint vs disjoint when both get the
//!   same holder budget.
//! * **D. Lifetime misestimation** — the sender solves for α̂ but the
//!   network churns at α = 3: sensitivity of the share scheme.
//! * **E. Transient unavailability** — Section II-C's second churn flavour,
//!   which the paper describes but does not evaluate.

use emerge_bench::figures::TARGET_R;
use emerge_bench::parallel::parallel_map;
use emerge_bench::{p_step_from_env, p_sweep, trials_from_env};
use emerge_core::analysis;
use emerge_core::config::SchemeParams;
use emerge_core::montecarlo::{run_trials, TrialSpec};
use emerge_sim::metrics::SeriesTable;

const POPULATION: usize = 10_000;

fn save(table: &SeriesTable, name: &str) {
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write(format!("results/{name}.dat"), format!("{table}\n"));
    println!("## {name}");
    println!("{table}");
    println!();
}

/// A. Threshold policy: balanced (Algorithm 1) vs majority vs fixed 40%.
fn ablation_thresholds(ps: &[f64], trials: usize) {
    let alpha = 3.0;
    let (k, l) = (4usize, 8usize);
    let rows: Vec<(f64, [f64; 3])> = parallel_map(ps, |&p| {
        let n = POPULATION / l;
        let run = |m: Vec<usize>, salt: u64| {
            let spec = TrialSpec {
                params: SchemeParams::Share { k, l, n, m },
                population: POPULATION,
                p,
                alpha: Some(alpha),
                unavailability: 0.0,
            };
            // LINT-WAIVER(panic): hardcoded ablation spec is valid and trials are clamped >= 1 at the env boundary
            run_trials(&spec, trials, 0xA1 ^ salt).unwrap().r_min()
        };
        let balanced = analysis::algorithm1(k, l, POPULATION, alpha, p).m;
        let majority = vec![n / 2 + 1; l - 1];
        let fixed = vec![(n as f64 * 0.4) as usize; l - 1];
        (p, [run(balanced, 1), run(majority, 2), run(fixed, 3)])
    });
    let mut t = SeriesTable::new("p", &["balanced_alg1", "majority", "fixed_40pct"]);
    for (p, v) in rows {
        t.push_row(p, &v);
    }
    save(&t, "ablation_threshold_policy");
}

/// B. Release metric: paper (at ts) vs strict (before tr), joint scheme.
fn ablation_release_metric(ps: &[f64], trials: usize) {
    let rows: Vec<(f64, [f64; 2])> = parallel_map(ps, |&p| {
        let params = analysis::solve_joint(p, TARGET_R, POPULATION).params;
        let spec = TrialSpec {
            params,
            population: POPULATION,
            p,
            alpha: None,
            unavailability: 0.0,
        };
        // LINT-WAIVER(panic): hardcoded ablation spec is valid and trials are clamped >= 1 at the env boundary
        let r = run_trials(&spec, trials, 0xB1).unwrap();
        (
            p,
            [
                r.release_resilience.value(),
                r.strict_release_resilience.value(),
            ],
        )
    });
    let mut t = SeriesTable::new("p", &["paper_at_ts", "strict_before_tr"]);
    for (p, v) in rows {
        t.push_row(p, &v);
    }
    save(&t, "ablation_release_metric");
}

/// C. Topology: joint vs disjoint with identical (k, l) grids.
fn ablation_topology(ps: &[f64], trials: usize) {
    let (k, l) = (4usize, 8usize);
    let rows: Vec<(f64, [f64; 4])> = parallel_map(ps, |&p| {
        let joint = run_trials(
            &TrialSpec::new(SchemeParams::Joint { k, l }, POPULATION, p),
            trials,
            0xC1,
        )
        // LINT-WAIVER(panic): hardcoded spec is valid by construction; run_trials cannot reject it
        .expect("valid ablation spec");
        let disjoint = run_trials(
            &TrialSpec::new(SchemeParams::Disjoint { k, l }, POPULATION, p),
            trials,
            0xC2,
        )
        // LINT-WAIVER(panic): hardcoded spec is valid by construction; run_trials cannot reject it
        .expect("valid ablation spec");
        (
            p,
            [
                joint.release_resilience.value(),
                joint.drop_resilience.value(),
                disjoint.release_resilience.value(),
                disjoint.drop_resilience.value(),
            ],
        )
    });
    let mut t = SeriesTable::new("p", &["joint_Rr", "joint_Rd", "disjoint_Rr", "disjoint_Rd"]);
    for (p, v) in rows {
        t.push_row(p, &v);
    }
    save(&t, "ablation_topology_equal_cost");
}

/// D. Lifetime misestimation: solve for α̂ ∈ {1, 3, 5}, run at α = 3.
fn ablation_alpha_misestimation(ps: &[f64], trials: usize) {
    let world_alpha = 3.0;
    let rows: Vec<(f64, [f64; 3])> = parallel_map(ps, |&p| {
        let mut vals = [0.0f64; 3];
        for (i, assumed) in [1.0f64, 3.0, 5.0].into_iter().enumerate() {
            let params = analysis::solve_share(p, TARGET_R, POPULATION, assumed).params;
            let spec = TrialSpec {
                params,
                population: POPULATION,
                p,
                alpha: Some(world_alpha),
                unavailability: 0.0,
            };
            // LINT-WAIVER(panic): hardcoded ablation spec is valid and trials are clamped >= 1 at the env boundary
            vals[i] = run_trials(&spec, trials, 0xD1 + i as u64).unwrap().r_min();
        }
        (p, vals)
    });
    let mut t = SeriesTable::new("p", &["assumed_a1", "assumed_a3", "assumed_a5"]);
    for (p, v) in rows {
        t.push_row(p, &v);
    }
    save(&t, "ablation_alpha_misestimation");
}

/// E. Transient unavailability sweep at p = 0.1 (x-axis is the offline
/// probability, not p).
fn ablation_unavailability(trials: usize) {
    let p = 0.1;
    let us: Vec<f64> = (0..=10).map(|i| i as f64 * 0.05).collect();
    let rows: Vec<(f64, [f64; 3])> = parallel_map(&us, |&u| {
        let joint = analysis::solve_joint(p, TARGET_R, POPULATION).params;
        let disjoint = analysis::solve_disjoint(p, TARGET_R, POPULATION).params;
        let share = analysis::solve_share(p, TARGET_R, POPULATION, 1.0).params;
        let run = |params: SchemeParams, salt: u64| {
            let spec = TrialSpec {
                params,
                population: POPULATION,
                p,
                alpha: Some(1.0),
                unavailability: u,
            };
            run_trials(&spec, trials, 0xE1 ^ salt)
                // LINT-WAIVER(panic): hardcoded ablation spec is valid and trials are clamped >= 1 at the env boundary
                .unwrap()
                .drop_resilience
                .value()
        };
        (u, [run(disjoint, 1), run(joint, 2), run(share, 3)])
    });
    let mut t = SeriesTable::new("unavailability", &["disjoint_Rd", "joint_Rd", "share_Rd"]);
    for (u, v) in rows {
        t.push_row(u, &v);
    }
    save(&t, "ablation_unavailability");
}

fn main() {
    let trials = trials_from_env();
    let ps = p_sweep(p_step_from_env().max(0.05));
    println!("# Ablation studies ({trials} trials/cell)");
    println!();
    ablation_thresholds(&ps, trials);
    ablation_release_metric(&ps, trials);
    ablation_topology(&ps, trials);
    ablation_alpha_misestimation(&ps, trials);
    ablation_unavailability(trials);
    println!("# tables written to results/ablation_*.dat");
}
