//! Regenerates Figure 7: churn resilience evaluation.
//!
//! Four panels, `α ∈ {1, 2, 3, 5}` where the emerging period is `α` mean
//! node lifetimes. All four schemes; 10000-node DHT.
//!
//! ```sh
//! cargo run -p emerge-bench --bin fig7 --release
//! EMERGE_TRIALS=200 EMERGE_P_STEP=0.05 cargo run -p emerge-bench --bin fig7 --release
//! ```

use emerge_bench::figures::{fig7_churn_resilience, render_and_save};
use emerge_bench::{p_step_from_env, p_sweep, trials_from_env};
use emerge_obs::Stopwatch;

fn main() {
    let trials = trials_from_env();
    let ps = p_sweep(p_step_from_env());
    let population = 10_000;
    println!("# Figure 7 — churn resilience evaluation ({population} nodes)");
    println!("# trials per cell: {trials}; p sweep: {} points", ps.len());

    for (panel, alpha) in [("a", 1.0f64), ("b", 2.0), ("c", 3.0), ("d", 5.0)] {
        let watch = Stopwatch::start();
        let table = fig7_churn_resilience(population, alpha, &ps, trials, 0x70 + alpha as u64);
        println!();
        println!("## Figure 7({panel}): α = {alpha}");
        println!("{}", render_and_save(&table, &format!("fig7{panel}")));
        eprintln!("# α = {alpha} sweep took {:.1} s", watch.elapsed_secs());
    }
}
