//! Regenerates Figure 6: attack resilience evaluation.
//!
//! * 6(a) attack resilience `R` vs `p`, 10000-node DHT
//! * 6(b) required nodes `C` vs `p`, 10000-node DHT
//! * 6(c) attack resilience `R` vs `p`, 100-node DHT
//! * 6(d) required nodes `C` vs `p`, 100-node DHT
//!
//! ```sh
//! cargo run -p emerge-bench --bin fig6 --release
//! EMERGE_TRIALS=200 EMERGE_P_STEP=0.05 cargo run -p emerge-bench --bin fig6 --release
//! ```

use emerge_bench::figures::{fig6_attack_and_cost, render_and_save};
use emerge_bench::{p_step_from_env, p_sweep, trials_from_env};
use emerge_obs::Stopwatch;

fn main() {
    let trials = trials_from_env();
    let ps = p_sweep(p_step_from_env());
    println!("# Figure 6 — attack resilience evaluation");
    println!("# trials per cell: {trials}; p sweep: {} points", ps.len());

    for (population, tag_r, tag_c) in [(10_000usize, "fig6a", "fig6b"), (100, "fig6c", "fig6d")] {
        let watch = Stopwatch::start();
        let (r, c) = fig6_attack_and_cost(population, &ps, trials, 0x6A);
        println!();
        println!("## Figure 6 ({tag_r}): attack resilience R, {population} nodes");
        println!("{}", render_and_save(&r, tag_r));
        println!();
        println!("## Figure 6 ({tag_c}): required nodes C, {population} nodes (log scale)");
        println!("{}", render_and_save(&c, tag_c));
        eprintln!(
            "# {population}-node sweep took {:.1} s",
            watch.elapsed_secs()
        );
    }
}
