//! Runs every figure regenerator back to back and writes all tables to
//! `results/*.dat`.
//!
//! ```sh
//! cargo run -p emerge-bench --bin all_figures --release
//! ```
//!
//! For a quick pass: `EMERGE_TRIALS=100 EMERGE_P_STEP=0.05 cargo run ...`

use emerge_bench::figures::{
    fig6_attack_and_cost, fig7_churn_resilience, fig8_share_cost, render_and_save,
};
use emerge_bench::{p_step_from_env, p_sweep, trials_from_env};
use emerge_obs::Stopwatch;

fn main() {
    let trials = trials_from_env();
    let ps = p_sweep(p_step_from_env());
    let total = Stopwatch::start();
    println!(
        "# Regenerating all figures ({} trials/cell, {} p-points)",
        trials,
        ps.len()
    );

    for (population, tag_r, tag_c) in [(10_000usize, "fig6a", "fig6b"), (100, "fig6c", "fig6d")] {
        let watch = Stopwatch::start();
        let (r, c) = fig6_attack_and_cost(population, &ps, trials, 0x6A);
        render_and_save(&r, tag_r);
        render_and_save(&c, tag_c);
        println!("# {tag_r}/{tag_c} done in {:.1} s", watch.elapsed_secs());
    }

    for (panel, alpha) in [("a", 1.0f64), ("b", 2.0), ("c", 3.0), ("d", 5.0)] {
        let watch = Stopwatch::start();
        let table = fig7_churn_resilience(10_000, alpha, &ps, trials, 0x70 + alpha as u64);
        render_and_save(&table, &format!("fig7{panel}"));
        println!(
            "# fig7{panel} (α = {alpha}) done in {:.1} s",
            watch.elapsed_secs()
        );
    }

    {
        let watch = Stopwatch::start();
        let table = fig8_share_cost(10_000, &[100, 1_000, 5_000, 10_000], 3.0, &ps, trials, 0x80);
        render_and_save(&table, "fig8");
        println!("# fig8 done in {:.1} s", watch.elapsed_secs());
    }

    println!(
        "# all figures regenerated in {:.1} s; tables in results/",
        total.elapsed_secs()
    );
}
