//! Records the Monte-Carlo throughput baseline for both DHT substrates.
//!
//! Runs the wire-protocol Monte-Carlo (real path construction, packaging
//! and hop-by-hop execution) at the paper's scale — 10 000-node worlds —
//! on the routing-free `AnalyticSubstrate` and on the full `Overlay`, and
//! writes trials/sec for each to `BENCH_montecarlo.json` (first CLI arg
//! overrides the path). Later PRs diff against the committed numbers.
//!
//! The overlay is measured over fewer trials (it is orders of magnitude
//! slower at this population; throughput is what matters), after a
//! fingerprint cross-check on a small shared cell proves both substrates
//! still produce identical outcomes.
//!
//! Environment: `EMERGE_BASELINE_TRIALS` (default 1000) and
//! `EMERGE_BASELINE_OVERLAY_TRIALS` (default 20).

use emerge_core::config::SchemeParams;
use emerge_core::montecarlo::{run_protocol_trials, ProtocolMcResults, ProtocolTrialSpec};
use emerge_core::protocol::AttackMode;
use emerge_dht::analytic::AnalyticSubstrate;
use emerge_dht::overlay::{Overlay, OverlayConfig};
use emerge_sim::time::SimDuration;
use std::time::Instant;

const POPULATION: usize = 10_000;
const SEED: u64 = 0xB45E;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn world_config(n: usize) -> OverlayConfig {
    OverlayConfig {
        n_nodes: n,
        malicious_fraction: 0.2,
        mean_lifetime: Some(40_000),
        horizon: 200_000,
        ..OverlayConfig::default()
    }
}

fn cells() -> Vec<(&'static str, ProtocolTrialSpec)> {
    vec![
        (
            "joint_4x8_release_ahead",
            ProtocolTrialSpec {
                params: SchemeParams::Joint { k: 4, l: 8 },
                emerging_period: SimDuration::from_ticks(8_000),
                attack: AttackMode::ReleaseAhead,
            },
        ),
        (
            "share_40x5_release_ahead",
            ProtocolTrialSpec {
                params: SchemeParams::Share {
                    k: 3,
                    l: 5,
                    n: 40,
                    m: vec![18, 18, 18, 20],
                },
                emerging_period: SimDuration::from_ticks(8_000),
                attack: AttackMode::ReleaseAhead,
            },
        ),
    ]
}

struct Measurement {
    cell: &'static str,
    substrate: &'static str,
    trials: usize,
    seconds: f64,
    clean: f64,
    released: f64,
}

impl Measurement {
    fn trials_per_sec(&self) -> f64 {
        self.trials as f64 / self.seconds
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\"cell\": \"{}\", \"substrate\": \"{}\", \"trials\": {}, ",
                "\"seconds\": {:.3}, \"trials_per_sec\": {:.3}, ",
                "\"clean_rate\": {:.4}, \"released_rate\": {:.4}}}"
            ),
            self.cell,
            self.substrate,
            self.trials,
            self.seconds,
            self.trials_per_sec(),
            self.clean,
            self.released,
        )
    }
}

fn measure<F>(
    cell: &'static str,
    substrate: &'static str,
    spec: &ProtocolTrialSpec,
    trials: usize,
    run: F,
) -> Measurement
where
    F: FnOnce(&ProtocolTrialSpec, usize) -> ProtocolMcResults,
{
    eprintln!("measuring {cell} on {substrate} ({trials} trials at N={POPULATION})...");
    let start = Instant::now();
    let results = run(spec, trials);
    let seconds = start.elapsed().as_secs_f64();
    eprintln!(
        "  {:.2} trials/sec (clean {:.3}, released {:.3})",
        trials as f64 / seconds,
        results.clean.value(),
        results.released.value()
    );
    Measurement {
        cell,
        substrate,
        trials,
        seconds,
        clean: results.clean.value(),
        released: results.released.value(),
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_montecarlo.json".into());
    let analytic_trials = env_usize("EMERGE_BASELINE_TRIALS", 1_000);
    let overlay_trials = env_usize("EMERGE_BASELINE_OVERLAY_TRIALS", 20);

    // Cross-check first: both substrates must agree trial for trial on a
    // small shared cell, otherwise the throughput numbers compare
    // different computations.
    let check_spec = &cells()[0].1;
    let check_cfg = world_config(500);
    let full = run_protocol_trials(check_spec, 10, SEED, |s| Overlay::build(check_cfg, s))
        .expect("overlay check trials");
    let fast = run_protocol_trials(check_spec, 10, SEED, |s| {
        AnalyticSubstrate::build(check_cfg, s)
    })
    .expect("analytic check trials");
    assert_eq!(
        full.fingerprint, fast.fingerprint,
        "substrate parity violated; refusing to record a baseline"
    );
    eprintln!(
        "parity check passed (fingerprint {:#018x})",
        full.fingerprint
    );

    let config = world_config(POPULATION);
    let mut measurements = Vec::new();
    for (cell, spec) in cells() {
        measurements.push(measure(cell, "analytic", &spec, analytic_trials, |s, t| {
            run_protocol_trials(s, t, SEED, |ws| AnalyticSubstrate::build(config, ws))
                .expect("analytic trials")
        }));
        measurements.push(measure(cell, "overlay", &spec, overlay_trials, |s, t| {
            run_protocol_trials(s, t, SEED, |ws| Overlay::build(config, ws))
                .expect("overlay trials")
        }));
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"population\": {POPULATION},\n"));
    json.push_str(&format!("  \"seed\": {SEED},\n"));
    json.push_str("  \"measurements\": [\n");
    let lines: Vec<String> = measurements.iter().map(Measurement::to_json).collect();
    json.push_str(&lines.join(",\n"));
    json.push_str("\n  ]\n}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");

    for (cell, _) in cells() {
        let a = measurements
            .iter()
            .find(|m| m.cell == cell && m.substrate == "analytic")
            .expect("analytic measurement");
        let o = measurements
            .iter()
            .find(|m| m.cell == cell && m.substrate == "overlay")
            .expect("overlay measurement");
        println!(
            "{cell}: analytic {:.2} trials/sec vs overlay {:.2} trials/sec ({:.1}x speedup)",
            a.trials_per_sec(),
            o.trials_per_sec(),
            a.trials_per_sec() / o.trials_per_sec()
        );
    }
}
