//! Records the Monte-Carlo throughput baseline for both DHT substrates.
//!
//! Runs the wire-protocol Monte-Carlo (real path construction, packaging
//! and hop-by-hop execution) at the paper's scale — 10 000-node worlds —
//! on the routing-free `AnalyticSubstrate` and on the full `Overlay`, and
//! writes trials/sec for each to `BENCH_montecarlo.json` (first CLI arg
//! overrides the path). Later PRs diff against the committed numbers.
//!
//! Trials run through the sharded engine
//! (`emerge_bench::mc::run_protocol_trials_parallel`): contiguous trial
//! ranges spread over `EMERGE_MC_THREADS` worker threads (default: the
//! machine's available parallelism). Results are bit-identical to a
//! serial run for any thread count; threads only change the wall clock.
//!
//! The overlay is measured over fewer trials (it is orders of magnitude
//! slower at this population; throughput is what matters), after a
//! fingerprint cross-check on a small shared cell proves both substrates
//! still produce identical outcomes.
//!
//! Environment: `EMERGE_BASELINE_TRIALS` (default 1000),
//! `EMERGE_BASELINE_OVERLAY_TRIALS` (default 20) and `EMERGE_MC_THREADS`.

use emerge_bench::mc::run_protocol_trials_threaded;
use emerge_bench::parallel::mc_threads;
use emerge_bench::report::{render_montecarlo_report, validate_json, McMeasurement};
use emerge_core::config::SchemeParams;
use emerge_core::montecarlo::{ProtocolMcResults, ProtocolTrialSpec};
use emerge_core::protocol::AttackMode;
use emerge_dht::analytic::AnalyticSubstrate;
use emerge_dht::overlay::{Overlay, OverlayConfig};
use emerge_sim::time::SimDuration;
use std::time::Instant;

const POPULATION: usize = 10_000;
const SEED: u64 = 0xB45E;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn world_config(n: usize) -> OverlayConfig {
    OverlayConfig {
        n_nodes: n,
        malicious_fraction: 0.2,
        mean_lifetime: Some(40_000),
        horizon: 200_000,
        ..OverlayConfig::default()
    }
}

fn cells() -> Vec<(&'static str, ProtocolTrialSpec)> {
    vec![
        (
            "joint_4x8_release_ahead",
            ProtocolTrialSpec {
                params: SchemeParams::Joint { k: 4, l: 8 },
                emerging_period: SimDuration::from_ticks(8_000),
                attack: AttackMode::ReleaseAhead,
            },
        ),
        (
            "share_40x5_release_ahead",
            ProtocolTrialSpec {
                params: SchemeParams::Share {
                    k: 3,
                    l: 5,
                    n: 40,
                    m: vec![18, 18, 18, 20],
                },
                emerging_period: SimDuration::from_ticks(8_000),
                attack: AttackMode::ReleaseAhead,
            },
        ),
    ]
}

fn measure<F>(
    cell: &'static str,
    substrate: &'static str,
    threads: usize,
    trials: usize,
    run: F,
) -> McMeasurement
where
    F: FnOnce(usize, usize) -> ProtocolMcResults,
{
    eprintln!(
        "measuring {cell} on {substrate} ({trials} trials at N={POPULATION}, {threads} threads)..."
    );
    let start = Instant::now();
    // The recorded trials/threads and the executed ones cannot drift: the
    // closure receives exactly what the report will claim.
    let results = run(trials, threads);
    let seconds = start.elapsed().as_secs_f64();
    let m = McMeasurement {
        cell: cell.into(),
        substrate: substrate.into(),
        threads,
        trials,
        seconds,
        clean: results.clean.value(),
        released: results.released.value(),
    };
    eprintln!(
        "  {:.2} trials/sec (clean {:.3}, released {:.3})",
        m.trials_per_sec(),
        m.clean,
        m.released
    );
    m
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_montecarlo.json".into());
    let analytic_trials = env_usize("EMERGE_BASELINE_TRIALS", 1_000);
    let overlay_trials = env_usize("EMERGE_BASELINE_OVERLAY_TRIALS", 20);
    let threads = mc_threads();

    // Cross-check first: both substrates must agree trial for trial on a
    // small shared cell — and the threaded runner must agree with itself
    // single-threaded — otherwise the throughput numbers compare
    // different computations.
    let check_spec = &cells()[0].1;
    let check_cfg = world_config(500);
    let full = run_protocol_trials_threaded(check_spec, 10, SEED, threads, |s| {
        Overlay::build(check_cfg, s)
    })
    .expect("overlay check trials");
    let fast = run_protocol_trials_threaded(check_spec, 10, SEED, 1, |s| {
        AnalyticSubstrate::build(check_cfg, s)
    })
    .expect("analytic check trials");
    assert_eq!(
        full.fingerprint, fast.fingerprint,
        "substrate/shard parity violated; refusing to record a baseline"
    );
    eprintln!(
        "parity check passed (fingerprint {:#018x})",
        full.fingerprint
    );

    let config = world_config(POPULATION);
    let mut measurements = Vec::new();
    for (cell, spec) in cells() {
        measurements.push(measure(
            cell,
            "analytic",
            threads,
            analytic_trials,
            |trials, threads| {
                run_protocol_trials_threaded(&spec, trials, SEED, threads, |ws| {
                    AnalyticSubstrate::build(config, ws)
                })
                .expect("analytic trials")
            },
        ));
        measurements.push(measure(
            cell,
            "overlay",
            threads,
            overlay_trials,
            |trials, threads| {
                run_protocol_trials_threaded(&spec, trials, SEED, threads, |ws| {
                    Overlay::build(config, ws)
                })
                .expect("overlay trials")
            },
        ));
    }

    let json = render_montecarlo_report(POPULATION, SEED, &measurements);
    if let Err((pos, msg)) = validate_json(&json) {
        eprintln!("error: generated report is not valid JSON at byte {pos}: {msg}");
        std::process::exit(1);
    }

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");

    for (cell, _) in cells() {
        let a = measurements
            .iter()
            .find(|m| m.cell == cell && m.substrate == "analytic")
            .expect("analytic measurement");
        let o = measurements
            .iter()
            .find(|m| m.cell == cell && m.substrate == "overlay")
            .expect("overlay measurement");
        let speedup = if o.trials_per_sec() > 0.0 {
            a.trials_per_sec() / o.trials_per_sec()
        } else {
            0.0
        };
        println!(
            "{cell}: analytic {:.2} trials/sec vs overlay {:.2} trials/sec ({speedup:.1}x speedup)",
            a.trials_per_sec(),
            o.trials_per_sec(),
        );
    }
}
