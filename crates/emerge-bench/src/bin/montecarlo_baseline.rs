//! Records the Monte-Carlo throughput baseline for every DHT substrate.
//!
//! Runs the wire-protocol Monte-Carlo (real path construction, packaging
//! and hop-by-hop execution) at the paper's scale — 10 000-node worlds —
//! on the routing-free `AnalyticSubstrate`, on the full `Overlay` and on
//! the smart-contract `ContractSubstrate`, plus the contract-native
//! bonded-release cell, and writes trials/sec for each to
//! `BENCH_montecarlo.json` (first non-flag CLI arg overrides the path).
//! Later PRs diff against the committed numbers.
//!
//! Trials run through the profiled sharded engine
//! (`emerge_bench::mc::run_protocol_trials_profiled` and friends):
//! contiguous trial ranges spread over `EMERGE_MC_THREADS` worker
//! threads (default: the machine's available parallelism), each under a
//! per-worker `emerge-obs` collector. Results are bit-identical to a
//! serial run for any thread count; threads only change the wall clock.
//!
//! The overlay is measured over fewer trials (it is orders of magnitude
//! slower at this population; throughput is what matters), after a
//! fingerprint cross-check on a small shared cell proves all substrates
//! still produce identical outcomes.
//!
//! ## Cell filters
//!
//! Single-cell dev loops don't need the full grid:
//!
//! ```sh
//! montecarlo_baseline --scheme joint            # joint cells only
//! montecarlo_baseline --cell share_8x3          # the CI-sized share cell
//! montecarlo_baseline --substrate contract      # contract substrate only
//! montecarlo_baseline --scheme share --substrate analytic out.json
//! ```
//!
//! `--cell` and `--scheme` are the same filter — a case-insensitive
//! substring match on the cell name — and `--substrate` matches the
//! substrate label. A filtered run skips the cross-substrate parity
//! gate (it may not measure comparable pairs) and is meant for iteration,
//! not for re-recording the committed baseline.
//!
//! ## Fault frontier
//!
//! `--faults <scenario|all>` replaces the throughput grid with the
//! survival-vs-fault-intensity frontier: the CI-sized share cell runs
//! under the named deterministic fault scenario (or, for `all`, under
//! loss bursts, correlated outages, crash storms and churn storms, plus
//! block-clock skew on the bonded contract cell) at three intensities,
//! recording release/clean rates with the degraded-success rate — trials
//! that released *despite* injected disruptions — broken out per cell:
//!
//! ```sh
//! montecarlo_baseline --faults all BENCH_montecarlo_faults.json
//! montecarlo_baseline --faults crash_storm /tmp/crash_frontier.json
//! ```
//!
//! Fault injection is a pure function of `(plan, world seed)`, so the
//! frontier is bit-identical for any `EMERGE_MC_THREADS` value.
//!
//! ## Perf floor
//!
//! `--floor <trials/sec>` turns the run into a smoke gate: if any
//! measured cell falls below the floor the process exits nonzero. CI
//! runs the CI-sized `share_8x3_release_ahead` cell this way so a future
//! change cannot silently undo the flat-format packaging win:
//!
//! ```sh
//! montecarlo_baseline --cell share_8x3 --substrate analytic --floor 120 /tmp/perf.json
//! ```
//!
//! ## Phase profiling
//!
//! `--profile` adds a `"phases"` array to every cell's report entry: the
//! per-phase time/allocation/seal-volume breakdown collected from the
//! trial pipeline's `emerge-obs` spans (world rebuild, path
//! construction, package build, share execution — plus the bonded
//! engine's phases on the contract cell). The binary installs the
//! counting allocator, so the `allocs` column is live; on the pooled
//! share cells it shows the steady state holding at zero.
//!
//! Environment: `EMERGE_BASELINE_TRIALS` (default 1000),
//! `EMERGE_BASELINE_OVERLAY_TRIALS` (default 200) and `EMERGE_MC_THREADS`.

use emerge_bench::mc::{
    run_bonded_faulted_trials_profiled, run_bonded_trials_profiled, run_faulted_trials_profiled,
    run_protocol_trials_pooled_profiled, run_protocol_trials_profiled,
    run_protocol_trials_threaded,
};
use emerge_bench::parallel::mc_threads;
use emerge_bench::profile::phase_stats;
use emerge_bench::report::{render_montecarlo_report, validate_json, McMeasurement};
use emerge_contract::economy::HolderStrategy;
use emerge_contract::release::BondedSpec;
use emerge_contract::substrate::{ContractConfig, ContractSubstrate};
use emerge_core::config::SchemeParams;
use emerge_core::montecarlo::ProtocolTrialSpec;
use emerge_core::protocol::AttackMode;
use emerge_dht::analytic::AnalyticSubstrate;
use emerge_dht::overlay::{Overlay, OverlayConfig};
use emerge_faults::{RecoveryPolicy, Scenario};
use emerge_obs::alloccount::CountingAllocator;
use emerge_obs::{MetricsSnapshot, Stopwatch};
use emerge_sim::time::SimDuration;

/// Counting delegate around the system allocator, so the `--profile`
/// breakdown can attribute heap allocations to pipeline phases (and so a
/// profiled run can see the pooled pipeline's steady state stay at zero).
#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

const POPULATION: usize = 10_000;
const SEED: u64 = 0xB45E;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn world_config(n: usize) -> OverlayConfig {
    OverlayConfig {
        n_nodes: n,
        malicious_fraction: 0.2,
        mean_lifetime: Some(40_000),
        horizon: 200_000,
        ..OverlayConfig::default()
    }
}

fn cells() -> Vec<(&'static str, ProtocolTrialSpec)> {
    vec![
        (
            "joint_4x8_release_ahead",
            ProtocolTrialSpec {
                params: SchemeParams::Joint { k: 4, l: 8 },
                emerging_period: SimDuration::from_ticks(8_000),
                attack: AttackMode::ReleaseAhead,
            },
        ),
        (
            "share_40x5_release_ahead",
            ProtocolTrialSpec {
                params: SchemeParams::Share {
                    k: 3,
                    l: 5,
                    n: 40,
                    m: vec![18, 18, 18, 20],
                },
                emerging_period: SimDuration::from_ticks(8_000),
                attack: AttackMode::ReleaseAhead,
            },
        ),
        // A CI-sized share cell: same crypto path as share_40x5 at a
        // fraction of the cost, so automated runs can track the share hot
        // path without paying for the full-width grid.
        (
            "share_8x3_release_ahead",
            ProtocolTrialSpec {
                params: SchemeParams::Share {
                    k: 2,
                    l: 3,
                    n: 8,
                    m: vec![4, 4],
                },
                emerging_period: SimDuration::from_ticks(8_000),
                attack: AttackMode::ReleaseAhead,
            },
        ),
        // The deep-chain cell the flat format v2 unlocked: at l = 12 the
        // nested v1 format re-sealed every column ~6x over (O(l²·n) AEAD
        // volume), making long just-in-time key-release chains
        // prohibitively slow to simulate; v2 seals each column once.
        (
            "share_16x12_release_ahead",
            ProtocolTrialSpec {
                params: SchemeParams::Share {
                    k: 3,
                    l: 12,
                    n: 16,
                    m: vec![8; 11],
                },
                emerging_period: SimDuration::from_ticks(12_000),
                attack: AttackMode::ReleaseAhead,
            },
        ),
    ]
}

/// The contract-native cell: a bonded `(m, n)` release against rational
/// holders offered a bribe that does *not* cover the deviation cost, so
/// the economics (not hop deadlines) carry the release.
fn bonded_cell() -> (&'static str, BondedSpec) {
    (
        "bonded_24x16_rational",
        BondedSpec {
            n: 24,
            m: 16,
            emerging_period: SimDuration::from_ticks(8_000),
            reveal_window_blocks: 1,
            strategy: HolderStrategy::Rational {
                withhold_bribe: 100,
                early_reveal_bribe: 100,
            },
        },
    )
}

/// Parsed CLI: output path plus optional cell-name / substrate filters
/// and a perf floor.
struct Args {
    out_path: String,
    scheme: Option<String>,
    substrate: Option<String>,
    /// Minimum acceptable trials/sec across the measured cells; any
    /// measurement below it makes the process exit nonzero. This is the
    /// CI perf-smoke gate: the workflow stores the floor and runs the
    /// CI-sized cell, so a future change cannot silently undo the
    /// share-packaging win.
    floor: Option<f64>,
    /// Include the per-phase time/alloc/seal-volume breakdown (from the
    /// pipeline's `emerge-obs` spans) in each cell's report entry.
    profile: bool,
    /// `--faults <scenario|all>`: instead of the throughput grid, sweep
    /// the named fault scenario (or every frontier scenario) over an
    /// intensity ladder on the CI-sized share cell, recording the
    /// survival-vs-fault-intensity frontier with degraded successes
    /// broken out from clean ones. `clock_skew` additionally runs the
    /// contract-native bonded cell, where skew slashes missed reveals.
    faults: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out_path: "BENCH_montecarlo.json".into(),
        scheme: None,
        substrate: None,
        floor: None,
        profile: false,
        faults: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--floor" => {
                let value = it
                    .next()
                    .ok_or_else(|| "--floor needs a trials/sec value".to_string())?;
                let parsed: f64 = value
                    .parse()
                    .map_err(|_| format!("--floor value {value:?} is not a number"))?;
                if !(parsed.is_finite() && parsed > 0.0) {
                    return Err(format!("--floor must be positive and finite, got {value}"));
                }
                args.floor = Some(parsed);
            }
            "--profile" => args.profile = true,
            "--faults" => {
                let value = it
                    .next()
                    .ok_or_else(|| {
                        format!(
                            "--faults needs a scenario (all, {})",
                            Scenario::all()
                                .iter()
                                .map(|s| s.name())
                                .collect::<Vec<_>>()
                                .join(", ")
                        )
                    })?
                    .to_lowercase();
                if value != "all" && Scenario::parse(&value).is_none() {
                    return Err(format!(
                        "unknown fault scenario {value:?}; supported: all, {}",
                        Scenario::all()
                            .iter()
                            .map(|s| s.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ));
                }
                args.faults = Some(value);
            }
            // --cell and --scheme are the same filter (a case-insensitive
            // substring match on the cell name); --cell reads better for
            // full names like `share_8x3_release_ahead`, --scheme for
            // family filters like `share`.
            "--cell" | "--scheme" => {
                args.scheme = Some(
                    it.next()
                        .ok_or_else(|| format!("{arg} needs a value (e.g. {arg} share_8x3)"))?
                        .to_lowercase(),
                );
            }
            "--substrate" => {
                args.substrate = Some(
                    it.next()
                        .ok_or_else(|| {
                            "--substrate needs a value (analytic, overlay or contract)".to_string()
                        })?
                        .to_lowercase(),
                );
            }
            flag if flag.starts_with("--") => {
                return Err(format!(
                    "unknown flag {flag}; supported: --cell <substr>, --scheme <substr>, \
                     --substrate <substr>, --floor <trials/sec>, --profile, \
                     --faults <scenario|all>"
                ));
            }
            path => args.out_path = path.to_string(),
        }
    }
    Ok(args)
}

impl Args {
    fn wants_cell(&self, cell: &str) -> bool {
        self.scheme
            .as_deref()
            .is_none_or(|f| cell.to_lowercase().contains(f))
    }

    fn wants_substrate(&self, substrate: &str) -> bool {
        self.substrate
            .as_deref()
            .is_none_or(|f| substrate.contains(f))
    }

    fn filtered(&self) -> bool {
        self.scheme.is_some() || self.substrate.is_some()
    }
}

fn measure<R, E, F>(
    cell: &str,
    substrate: &'static str,
    threads: usize,
    trials: usize,
    profile: bool,
    run: F,
) -> Result<McMeasurement, String>
where
    F: FnOnce(usize, usize) -> Result<(R, MetricsSnapshot), E>,
    R: CellRates,
    E: std::fmt::Display,
{
    eprintln!(
        "measuring {cell} on {substrate} ({trials} trials at N={POPULATION}, {threads} threads)..."
    );
    let watch = Stopwatch::start();
    // The recorded trials/threads and the executed ones cannot drift: the
    // closure receives exactly what the report will claim.
    let (results, telemetry) =
        run(trials, threads).map_err(|e| format!("{cell} on {substrate}: {e}"))?;
    let seconds = watch.elapsed_secs();
    let m = McMeasurement {
        cell: cell.into(),
        substrate: substrate.into(),
        threads,
        trials,
        seconds,
        clean: results.clean_rate(),
        released: results.released_rate(),
        degraded: results.degraded_rate(),
        phases: if profile {
            phase_stats(&telemetry)
        } else {
            Vec::new()
        },
    };
    match m.degraded {
        Some(degraded) => eprintln!(
            "  {:.2} trials/sec (clean {:.3}, released {:.3}, degraded {:.3})",
            m.trials_per_sec(),
            m.clean,
            m.released,
            degraded
        ),
        None => eprintln!(
            "  {:.2} trials/sec (clean {:.3}, released {:.3})",
            m.trials_per_sec(),
            m.clean,
            m.released
        ),
    }
    for p in &m.phases {
        eprintln!(
            "    {:<24} {:>8.1} us/call  allocs {:<8} sealed {} B",
            p.phase,
            p.mean_nanos as f64 / 1e3,
            p.allocs,
            p.sealed_bytes
        );
    }
    Ok(m)
}

/// The rates every cell kind reports, whatever engine produced them.
/// Fault-scenario cells additionally break out the degraded-success rate
/// (released despite ≥1 injected disruption); faultless cells return
/// `None` and the report omits the key.
trait CellRates {
    fn clean_rate(&self) -> f64;
    fn released_rate(&self) -> f64;
    fn degraded_rate(&self) -> Option<f64> {
        None
    }
}

impl CellRates for emerge_core::montecarlo::ProtocolMcResults {
    fn clean_rate(&self) -> f64 {
        self.clean.value()
    }
    fn released_rate(&self) -> f64 {
        self.released.value()
    }
}

impl CellRates for emerge_contract::mc::BondedMcResults {
    fn clean_rate(&self) -> f64 {
        self.clean.value()
    }
    fn released_rate(&self) -> f64 {
        self.released.value()
    }
}

impl CellRates for emerge_core::faults::FaultyMcResults {
    fn clean_rate(&self) -> f64 {
        self.base.clean.value()
    }
    fn released_rate(&self) -> f64 {
        self.base.released.value()
    }
    fn degraded_rate(&self) -> Option<f64> {
        Some(self.degraded.value())
    }
}

impl CellRates for emerge_contract::mc::FaultyBondedMcResults {
    fn clean_rate(&self) -> f64 {
        self.base.clean.value()
    }
    fn released_rate(&self) -> f64 {
        self.base.released.value()
    }
    fn degraded_rate(&self) -> Option<f64> {
        Some(self.degraded.value())
    }
}

/// Intensity ladder for the survival-vs-fault-intensity frontier, in
/// parts-per-million of the scenario's knob (loss probability, crash
/// probability, outage density, skew fraction, ...).
const FAULT_INTENSITIES_PPM: [u32; 3] = [50_000, 150_000, 400_000];

/// Fault plans are compiled over the protocol's *active* window (the
/// 8k-tick emerging period plus headroom), not the 200k-tick world
/// horizon: `Scenario::plan` spreads its burst across the middle 80% of
/// whatever horizon it is given, and a burst placed against the world
/// horizon would never overlap the trials.
const FAULT_HORIZON_TICKS: u64 = 10_000;

/// The scenarios `--faults all` sweeps on the wire-protocol path. Clock
/// skew is contract-native (it bends block clocks, not hop deadlines)
/// and runs on the bonded cell instead.
const FRONTIER: [Scenario; 4] = [
    Scenario::LossBurst,
    Scenario::CorrelatedOutage,
    Scenario::CrashStorm,
    Scenario::ChurnStorm,
];

/// Sweeps the selected fault scenario(s) over [`FAULT_INTENSITIES_PPM`]
/// on the CI-sized share cell (analytic substrate, default recovery
/// policy) and — for clock skew — on the bonded contract cell, recording
/// one measurement per `(scenario, intensity)` with the degraded-success
/// rate broken out.
fn fault_frontier(
    filter: &str,
    config: &OverlayConfig,
    trials: usize,
    threads: usize,
    profile: bool,
    measurements: &mut Vec<McMeasurement>,
) -> Result<(), String> {
    let (base_cell, spec) = cells()
        .into_iter()
        .find(|(name, _)| *name == "share_8x3_release_ahead")
        .ok_or("the share_8x3 cell vanished from the grid")?;
    let protocol_scenarios: Vec<Scenario> = if filter == "all" {
        FRONTIER.to_vec()
    } else {
        Scenario::parse(filter)
            .into_iter()
            .filter(|s| *s != Scenario::ClockSkew)
            .collect()
    };
    for scenario in protocol_scenarios {
        for ppm in FAULT_INTENSITIES_PPM {
            let plan = scenario.plan(ppm, FAULT_HORIZON_TICKS, SEED);
            let name = format!("{base_cell}+{}@{}ppm", scenario.name(), ppm);
            measurements.push(measure(
                &name,
                "analytic",
                threads,
                trials,
                profile,
                |trials, threads| {
                    run_faulted_trials_profiled(
                        &spec,
                        &plan,
                        RecoveryPolicy::default(),
                        trials,
                        SEED,
                        threads,
                        |s| AnalyticSubstrate::build(*config, s),
                    )
                },
            )?);
        }
    }
    if filter == "all" || filter == "clock_skew" {
        let (bonded_name, bonded_spec) = bonded_cell();
        for ppm in FAULT_INTENSITIES_PPM {
            let plan = Scenario::ClockSkew.plan(ppm, FAULT_HORIZON_TICKS, SEED);
            let name = format!("{bonded_name}+clock_skew@{ppm}ppm");
            measurements.push(measure(
                &name,
                "contract",
                threads,
                trials,
                profile,
                |trials, threads| {
                    run_bonded_faulted_trials_profiled(
                        &bonded_spec,
                        &plan,
                        trials,
                        SEED,
                        threads,
                        |s| ContractSubstrate::build(ContractConfig::over(*config), s),
                    )
                },
            )?);
        }
    }
    Ok(())
}

fn main() {
    if let Err(msg) = run() {
        eprintln!("error: {msg}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    let analytic_trials = env_usize("EMERGE_BASELINE_TRIALS", 1_000);
    let overlay_trials = env_usize("EMERGE_BASELINE_OVERLAY_TRIALS", 200);
    let threads = mc_threads();

    // Cross-check first: all substrates must agree trial for trial on a
    // small shared cell — and the threaded runner must agree with itself
    // single-threaded — otherwise the throughput numbers compare
    // different computations. Filtered dev-loop runs skip the gate, and
    // so does the fault frontier (it measures survival, not throughput).
    if args.faults.is_some() {
        eprintln!("fault frontier mode: skipping the cross-substrate parity gate");
    } else if !args.filtered() {
        let check_spec = &cells()[0].1;
        let check_cfg = world_config(500);
        let full = run_protocol_trials_threaded(check_spec, 10, SEED, threads, |s| {
            Overlay::build(check_cfg, s)
        })
        .map_err(|e| format!("overlay parity check: {e}"))?;
        let fast = run_protocol_trials_threaded(check_spec, 10, SEED, 1, |s| {
            AnalyticSubstrate::build(check_cfg, s)
        })
        .map_err(|e| format!("analytic parity check: {e}"))?;
        let chained = run_protocol_trials_threaded(check_spec, 10, SEED, threads, |s| {
            ContractSubstrate::build(ContractConfig::over(check_cfg), s)
        })
        .map_err(|e| format!("contract parity check: {e}"))?;
        if full.fingerprint != fast.fingerprint {
            return Err(format!(
                "overlay/analytic parity violated ({:#018x} vs {:#018x}); refusing to record a baseline",
                full.fingerprint, fast.fingerprint
            ));
        }
        if fast.fingerprint != chained.fingerprint {
            return Err(format!(
                "analytic/contract parity violated ({:#018x} vs {:#018x}); refusing to record a baseline",
                fast.fingerprint, chained.fingerprint
            ));
        }
        eprintln!(
            "parity check passed across 3 substrates (fingerprint {:#018x})",
            full.fingerprint
        );
    } else {
        eprintln!("cell filters active: skipping the cross-substrate parity gate");
    }

    let config = world_config(POPULATION);
    let mut measurements = Vec::new();
    if let Some(filter) = args.faults.as_deref() {
        fault_frontier(
            filter,
            &config,
            analytic_trials,
            threads,
            args.profile,
            &mut measurements,
        )?;
    }
    for (cell, spec) in cells() {
        if args.faults.is_some() {
            break; // frontier mode replaces the throughput grid
        }
        if !args.wants_cell(cell) {
            continue;
        }
        if args.wants_substrate("analytic") {
            // Share cells run the pooled (zero-allocation) pipeline:
            // per-shard substrate rebuilt in place plus a recycled
            // TrialWorkspace. Bit-identical fingerprints to the
            // allocating driver (pinned by the emerge-bench test suite),
            // so the parity gate above still covers it.
            let pooled = matches!(spec.params, SchemeParams::Share { .. });
            measurements.push(measure(
                cell,
                "analytic",
                threads,
                analytic_trials,
                args.profile,
                |trials, threads| {
                    if pooled {
                        run_protocol_trials_pooled_profiled(
                            &spec,
                            trials,
                            SEED,
                            threads,
                            || AnalyticSubstrate::build(config, 0),
                            |s, ws| s.rebuild(ws),
                        )
                    } else {
                        run_protocol_trials_profiled(&spec, trials, SEED, threads, |ws| {
                            AnalyticSubstrate::build(config, ws)
                        })
                    }
                },
            )?);
        }
        if args.wants_substrate("overlay") {
            measurements.push(measure(
                cell,
                "overlay",
                threads,
                overlay_trials,
                args.profile,
                |trials, threads| {
                    run_protocol_trials_profiled(&spec, trials, SEED, threads, |ws| {
                        Overlay::build(config, ws)
                    })
                },
            )?);
        }
        if args.wants_substrate("contract") {
            measurements.push(measure(
                cell,
                "contract",
                threads,
                analytic_trials,
                args.profile,
                |trials, threads| {
                    run_protocol_trials_profiled(&spec, trials, SEED, threads, |ws| {
                        ContractSubstrate::build(ContractConfig::over(config), ws)
                    })
                },
            )?);
        }
    }
    let (bonded_name, bonded_spec) = bonded_cell();
    if args.faults.is_none() && args.wants_cell(bonded_name) && args.wants_substrate("contract") {
        measurements.push(measure(
            bonded_name,
            "contract",
            threads,
            analytic_trials,
            args.profile,
            |trials, threads| {
                run_bonded_trials_profiled(&bonded_spec, trials, SEED, threads, |ws| {
                    ContractSubstrate::build(ContractConfig::over(config), ws)
                })
            },
        )?);
    }

    if measurements.is_empty() {
        eprintln!(
            "error: the filters matched no cells; available cells: {}, substrates: analytic, overlay, contract",
            cells()
                .iter()
                .map(|(name, _)| *name)
                .chain([bonded_name])
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    }

    let json = render_montecarlo_report(POPULATION, SEED, &measurements);
    if let Err((pos, msg)) = validate_json(&json) {
        eprintln!("error: generated report is not valid JSON at byte {pos}: {msg}");
        std::process::exit(1);
    }

    if let Err(e) = std::fs::write(&args.out_path, &json) {
        eprintln!("error: cannot write {}: {e}", args.out_path);
        std::process::exit(1);
    }
    eprintln!("wrote {}", args.out_path);

    // Perf-smoke gate: fail loudly when any measured cell regresses below
    // the floor.
    if let Some(floor) = args.floor {
        let mut failed = false;
        for m in &measurements {
            if m.trials_per_sec() < floor {
                eprintln!(
                    "PERF REGRESSION: {} on {} ran at {:.2} trials/sec, below the floor of {floor}",
                    m.cell,
                    m.substrate,
                    m.trials_per_sec()
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!(
            "perf floor {floor} trials/sec held across {} measurement(s)",
            measurements.len()
        );
    }

    for (cell, _) in cells() {
        let a = measurements
            .iter()
            .find(|m| m.cell == cell && m.substrate == "analytic");
        let o = measurements
            .iter()
            .find(|m| m.cell == cell && m.substrate == "overlay");
        let (Some(a), Some(o)) = (a, o) else {
            continue; // filtered out: nothing to compare
        };
        let speedup = if o.trials_per_sec() > 0.0 {
            a.trials_per_sec() / o.trials_per_sec()
        } else {
            0.0
        };
        println!(
            "{cell}: analytic {:.2} trials/sec vs overlay {:.2} trials/sec ({speedup:.1}x speedup)",
            a.trials_per_sec(),
            o.trials_per_sec(),
        );
    }
    Ok(())
}
