//! The paper's figures as reusable experiment functions.
//!
//! Every function mirrors one evaluation figure: it performs the same
//! parameter selection the paper's sender would (Section III solvers),
//! measures resilience by Monte-Carlo over the same population/trial
//! scale, and returns a [`SeriesTable`] whose columns match the figure's
//! plotted series.

use crate::parallel::parallel_map;
use emerge_core::analysis;
use emerge_core::config::SchemeParams;
use emerge_core::montecarlo::{run_trials, TrialSpec};
use emerge_sim::metrics::SeriesTable;

/// Target resilience the sender aims for when sizing structures; the
/// paper's joint scheme "keeps R > 0.99 before p = 0.34" at 10000 nodes,
/// which is this target hitting the node budget.
pub const TARGET_R: f64 = 0.99;

/// Outcome of one Figure-6 style cell.
#[derive(Debug, Clone, Copy)]
struct AttackCell {
    r_central: f64,
    r_disjoint: f64,
    r_joint: f64,
    c_central: f64,
    c_disjoint: f64,
    c_joint: f64,
}

/// Figure 6(a)/(c): measured attack resilience `R` vs `p` for the
/// centralized, node-disjoint and node-joint schemes, and Figure 6(b)/(d):
/// the required node counts `C` of the solved structures.
///
/// Returns `(resilience_table, cost_table)` with columns
/// `p, central, disjoint, joint`.
pub fn fig6_attack_and_cost(
    population: usize,
    ps: &[f64],
    trials: usize,
    seed: u64,
) -> (SeriesTable, SeriesTable) {
    let cells: Vec<(f64, AttackCell)> = parallel_map(ps, |&p| {
        let cell = attack_cell(population, p, trials, seed);
        (p, cell)
    });

    let mut r_table = SeriesTable::new("p", &["central", "disjoint", "joint"]);
    let mut c_table = SeriesTable::new("p", &["central", "disjoint", "joint"]);
    for (p, cell) in cells {
        r_table.push_row(p, &[cell.r_central, cell.r_disjoint, cell.r_joint]);
        c_table.push_row(p, &[cell.c_central, cell.c_disjoint, cell.c_joint]);
    }
    (r_table, c_table)
}

fn attack_cell(population: usize, p: f64, trials: usize, seed: u64) -> AttackCell {
    let run = |params: SchemeParams, salt: u64| -> f64 {
        let spec = TrialSpec {
            params,
            population,
            p,
            alpha: None,
            unavailability: 0.0,
        };
        // LINT-WAIVER(panic): figure specs are hardcoded valid; trials are clamped >= 1 at the env boundary
        run_trials(&spec, trials, seed ^ salt).unwrap().r_min()
    };

    let central = run(SchemeParams::Central, 0x01);
    let disjoint_sol = analysis::solve_disjoint(p, TARGET_R, population);
    let joint_sol = analysis::solve_joint(p, TARGET_R, population);
    let c_disjoint = disjoint_sol.params.node_cost() as f64;
    let c_joint = joint_sol.params.node_cost() as f64;
    let disjoint = run(disjoint_sol.params, 0x02);
    let joint = run(joint_sol.params, 0x03);

    AttackCell {
        r_central: central,
        r_disjoint: disjoint,
        r_joint: joint,
        c_central: 1.0,
        c_disjoint,
        c_joint,
    }
}

/// Figure 7: churn resilience for a given `α = T / tlife`, all four
/// schemes. Columns: `p, central, disjoint, joint, share`.
pub fn fig7_churn_resilience(
    population: usize,
    alpha: f64,
    ps: &[f64],
    trials: usize,
    seed: u64,
) -> SeriesTable {
    let rows: Vec<(f64, [f64; 4])> = parallel_map(ps, |&p| {
        let run = |params: SchemeParams, salt: u64| -> f64 {
            let spec = TrialSpec {
                params,
                population,
                p,
                alpha: Some(alpha),
                unavailability: 0.0,
            };
            // LINT-WAIVER(panic): figure specs are hardcoded valid; trials are clamped >= 1 at the env boundary
            run_trials(&spec, trials, seed ^ salt).unwrap().r_min()
        };
        let central = run(SchemeParams::Central, 0x11);
        let disjoint = run(
            analysis::solve_disjoint(p, TARGET_R, population).params,
            0x12,
        );
        let joint = run(analysis::solve_joint(p, TARGET_R, population).params, 0x13);
        let share = run(
            analysis::solve_share(p, TARGET_R, population, alpha).params,
            0x14,
        );
        (p, [central, disjoint, joint, share])
    });

    let mut table = SeriesTable::new("p", &["central", "disjoint", "joint", "share"]);
    for (p, r) in rows {
        table.push_row(p, &r);
    }
    table
}

/// Figure 8: the share scheme's cost/benefit — resilience vs `p` when the
/// number of nodes available for path construction shrinks. `α = 3` as in
/// the paper. Columns: `p` plus one series per budget.
pub fn fig8_share_cost(
    population: usize,
    budgets: &[usize],
    alpha: f64,
    ps: &[f64],
    trials: usize,
    seed: u64,
) -> SeriesTable {
    let rows: Vec<(f64, Vec<f64>)> = parallel_map(ps, |&p| {
        let mut values = Vec::with_capacity(budgets.len());
        for (i, &budget) in budgets.iter().enumerate() {
            let sol = analysis::solve_share(p, TARGET_R, budget, alpha);
            let spec = TrialSpec {
                params: sol.params,
                population,
                p,
                alpha: Some(alpha),
                unavailability: 0.0,
            };
            values.push(
                run_trials(&spec, trials, seed ^ (0x20 + i as u64))
                    // LINT-WAIVER(panic): figure specs are hardcoded valid; trials are clamped >= 1 at the env boundary
                    .unwrap()
                    .r_min(),
            );
        }
        (p, values)
    });

    let labels: Vec<String> = budgets.iter().map(|b| b.to_string()).collect();
    let label_refs: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();
    let mut table = SeriesTable::new("p", &label_refs);
    for (p, values) in rows {
        table.push_row(p, &values);
    }
    table
}

/// Writes a table to `results/<name>.dat` (best effort) and returns the
/// rendered text.
pub fn render_and_save(table: &SeriesTable, name: &str) -> String {
    let text = table.to_string();
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write(format!("results/{name}.dat"), format!("{text}\n"));
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    // Small-scale smoke tests; the real scale runs in the binaries.

    #[test]
    fn fig6_tables_have_expected_shape() {
        let ps = [0.0, 0.2, 0.4];
        let (r, c) = fig6_attack_and_cost(500, &ps, 60, 1);
        assert_eq!(r.len(), 3);
        assert_eq!(c.len(), 3);
        // p = 0: everything is perfectly resilient and cheap.
        let row0 = r.row_at(0.0).unwrap();
        assert_eq!(&row0[1..], &[1.0, 1.0, 1.0]);
        let cost0 = c.row_at(0.0).unwrap();
        assert_eq!(cost0[1], 1.0);
        // Central matches 1 - p at p = 0.4.
        let row = r.row_at(0.4).unwrap();
        assert!((row[1] - 0.6).abs() < 0.15);
        // Joint must dominate central everywhere.
        for row in r.iter() {
            assert!(
                row[3] >= row[1] - 0.05,
                "joint under central at p={}",
                row[0]
            );
        }
    }

    #[test]
    fn fig6_costs_grow_with_p() {
        let ps = [0.1, 0.3];
        let (_, c) = fig6_attack_and_cost(2000, &ps, 10, 2);
        let c1 = c.row_at(0.1).unwrap()[3];
        let c3 = c.row_at(0.3).unwrap()[3];
        assert!(c3 > c1, "joint cost must grow with p: {c1} -> {c3}");
    }

    #[test]
    fn fig7_share_beats_keyed_under_heavy_churn() {
        let ps = [0.2];
        let table = fig7_churn_resilience(2000, 3.0, &ps, 80, 3);
        let row = table.row_at(0.2).unwrap();
        let (joint, share) = (row[3], row[4]);
        assert!(
            share > joint + 0.05,
            "share must beat joint at α=3, p=0.2: share={share} joint={joint}"
        );
        assert!(share > 0.9, "share should stay high: {share}");
    }

    #[test]
    fn fig8_budget_ordering() {
        let ps = [0.2];
        let table = fig8_share_cost(2000, &[100, 2000], 3.0, &ps, 80, 4);
        let row = table.row_at(0.2).unwrap();
        assert!(
            row[2] >= row[1] - 0.05,
            "bigger budgets must not hurt: {} vs {}",
            row[1],
            row[2]
        );
    }
}
