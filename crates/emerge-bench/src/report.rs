//! Machine-readable benchmark reports (`BENCH_montecarlo.json`).
//!
//! The baseline binary used to hand-format JSON with `format!("{:.3}")`,
//! which happily prints `inf` — not a JSON token — whenever a measurement
//! finishes below the clock resolution. This module centralizes the
//! rendering: every number goes through `json_number`, which maps
//! non-finite values to `0`, and the unit tests feed the rendered text
//! back through the bundled [`validate_json`] checker so an invalid
//! report can never be written silently again.

use crate::profile::PhaseStats;
use std::fmt::Write as _;

/// One Monte-Carlo throughput measurement of a `(cell, substrate)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct McMeasurement {
    /// Scenario cell label, e.g. `share_40x5_release_ahead`.
    pub cell: String,
    /// Substrate label (`analytic` or `overlay`).
    pub substrate: String,
    /// Worker threads used by the sharded runner.
    pub threads: usize,
    /// Trials executed.
    pub trials: usize,
    /// Wall-clock seconds the batch took.
    pub seconds: f64,
    /// Clean-emergence rate observed.
    pub clean: f64,
    /// Release rate observed.
    pub released: f64,
    /// Degraded-success rate for fault-scenario cells: the fraction of
    /// trials that released *despite* at least one injected disruption.
    /// `None` for faultless cells (the key is omitted from the report),
    /// so clean success and fault-tolerant success never blur together.
    pub degraded: Option<f64>,
    /// Per-phase breakdown from the cell's `emerge-obs` telemetry
    /// (`--profile` runs; empty otherwise, and omitted from the report).
    pub phases: Vec<PhaseStats>,
}

impl McMeasurement {
    /// Trials per wall-clock second, `0.0` when the elapsed time is zero
    /// or non-finite (a sub-resolution measurement carries no throughput
    /// information, and `inf` is not a JSON token).
    pub fn trials_per_sec(&self) -> f64 {
        if self.seconds.is_finite() && self.seconds > 0.0 {
            self.trials as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// Formats `x` with `decimals` fraction digits, substituting `0` for
/// non-finite values so the output is always a valid JSON number.
fn json_number(x: f64, decimals: usize) -> String {
    if x.is_finite() {
        format!("{x:.decimals$}")
    } else {
        format!("{:.decimals$}", 0.0)
    }
}

/// Escapes a string for embedding inside a JSON string literal, so label
/// fields can never corrupt the report.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the full `BENCH_montecarlo.json` document.
pub fn render_montecarlo_report(
    population: usize,
    seed: u64,
    measurements: &[McMeasurement],
) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"population\": {population},");
    let _ = writeln!(json, "  \"seed\": {seed},");
    json.push_str("  \"measurements\": [\n");
    let lines: Vec<String> = measurements
        .iter()
        .map(|m| {
            let mut line = format!(
                concat!(
                    "    {{\"cell\": \"{}\", \"substrate\": \"{}\", ",
                    "\"threads\": {}, \"trials\": {}, ",
                    "\"seconds\": {}, \"trials_per_sec\": {}, ",
                    "\"clean_rate\": {}, \"released_rate\": {}"
                ),
                json_escape(&m.cell),
                json_escape(&m.substrate),
                m.threads,
                m.trials,
                json_number(m.seconds, 3),
                json_number(m.trials_per_sec(), 3),
                json_number(m.clean, 4),
                json_number(m.released, 4),
            );
            if let Some(degraded) = m.degraded {
                let _ = write!(line, ", \"degraded_rate\": {}", json_number(degraded, 4));
            }
            if !m.phases.is_empty() {
                line.push_str(", \"phases\": [\n");
                let phase_lines: Vec<String> = m.phases.iter().map(render_phase).collect();
                line.push_str(&phase_lines.join(",\n"));
                line.push_str("\n    ]");
            }
            line.push('}');
            line
        })
        .collect();
    json.push_str(&lines.join(",\n"));
    json.push_str("\n  ]\n}\n");
    json
}

/// Renders one phase entry of a measurement's `"phases"` array. All
/// fields are integer-valued (nanoseconds, counts, bytes) so no
/// non-finite guard is needed.
fn render_phase(p: &PhaseStats) -> String {
    format!(
        concat!(
            "      {{\"phase\": \"{}\", \"calls\": {}, ",
            "\"total_nanos\": {}, \"mean_nanos\": {}, \"p99_nanos\": {}, ",
            "\"allocs\": {}, \"sealed_bytes\": {}}}"
        ),
        json_escape(&p.phase),
        p.calls,
        p.total_nanos,
        p.mean_nanos,
        p.p99_nanos,
        p.allocs,
        p.sealed_bytes,
    )
}

/// One crypto-kernel throughput measurement (`BENCH_crypto.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct CryptoMeasurement {
    /// Operation label, e.g. `shamir_split_20of40_32B`.
    pub op: String,
    /// Iterations executed.
    pub iters: usize,
    /// Wall-clock seconds the batch took.
    pub seconds: f64,
    /// Bytes processed per iteration (`0` when throughput-in-bytes is not
    /// meaningful for the operation).
    pub bytes_per_iter: usize,
}

impl CryptoMeasurement {
    /// Iterations per wall-clock second (`0.0` for sub-resolution runs).
    pub fn ops_per_sec(&self) -> f64 {
        if self.seconds.is_finite() && self.seconds > 0.0 {
            self.iters as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// Decimal megabytes (10^6 bytes) per second, `0.0` when
    /// `bytes_per_iter` is zero.
    pub fn mb_per_sec(&self) -> f64 {
        self.ops_per_sec() * self.bytes_per_iter as f64 / 1e6
    }
}

/// Renders the full `BENCH_crypto.json` document.
pub fn render_crypto_report(measurements: &[CryptoMeasurement]) -> String {
    let mut json = String::new();
    json.push_str("{\n  \"measurements\": [\n");
    let lines: Vec<String> = measurements
        .iter()
        .map(|m| {
            format!(
                concat!(
                    "    {{\"op\": \"{}\", \"iters\": {}, \"seconds\": {}, ",
                    "\"ops_per_sec\": {}, \"bytes_per_iter\": {}, ",
                    "\"mb_per_sec\": {}}}"
                ),
                json_escape(&m.op),
                m.iters,
                json_number(m.seconds, 3),
                json_number(m.ops_per_sec(), 1),
                m.bytes_per_iter,
                json_number(m.mb_per_sec(), 2),
            )
        })
        .collect();
    json.push_str(&lines.join(",\n"));
    json.push_str("\n  ]\n}\n");
    json
}

/// Checks that `text` is one complete JSON value (RFC 8259 subset: no
/// escapes beyond `\" \\ \/ \b \f \n \r \t \uXXXX`). Returns the byte
/// offset and a message on the first violation.
///
/// This is a *validator*, not a data model — enough to guarantee the
/// reports we emit parse, with no external dependency.
pub fn validate_json(text: &str) -> Result<(), (usize, String)> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err((pos, "trailing characters after the JSON value".into()));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), (usize, String)> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err((*pos, format!("expected '{}'", b as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<(), (usize, String)> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, b"true"),
        Some(b'f') => parse_literal(bytes, pos, b"false"),
        Some(b'n') => parse_literal(bytes, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&b) => Err((*pos, format!("unexpected byte {:?}", b as char))),
        None => Err((*pos, "unexpected end of input".into())),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<(), (usize, String)> {
    expect(bytes, pos, b'{')?;
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err((*pos, "expected ',' or '}' in object".into())),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<(), (usize, String)> {
    expect(bytes, pos, b'[')?;
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err((*pos, "expected ',' or ']' in array".into())),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<(), (usize, String)> {
    expect(bytes, pos, b'"')?;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !bytes.get(*pos).is_some_and(|c| c.is_ascii_hexdigit()) {
                                return Err((*pos, "invalid \\u escape".into()));
                            }
                            *pos += 1;
                        }
                    }
                    _ => return Err((*pos, "invalid escape".into())),
                }
            }
            0x00..=0x1F => return Err((*pos, "raw control character in string".into())),
            _ => *pos += 1,
        }
    }
    Err((*pos, "unterminated string".into()))
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), (usize, String)> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err((
            *pos,
            format!(
                "invalid literal (expected {})",
                String::from_utf8_lossy(lit)
            ),
        ))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<(), (usize, String)> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |bytes: &[u8], pos: &mut usize| {
        let s = *pos;
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > s
    };
    // Integer part: a single 0, or a nonzero digit followed by more.
    match bytes.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(b'1'..=b'9') => {
            digits(bytes, pos);
        }
        _ => return Err((start, "invalid number".into())),
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(bytes, pos) {
            return Err((*pos, "digits required after decimal point".into()));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(bytes, pos) {
            return Err((*pos, "digits required in exponent".into()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measurement(seconds: f64) -> McMeasurement {
        McMeasurement {
            cell: "share_40x5_release_ahead".into(),
            substrate: "analytic".into(),
            threads: 4,
            trials: 1000,
            seconds,
            clean: 1.0,
            released: 1.0,
            degraded: None,
            phases: Vec::new(),
        }
    }

    #[test]
    fn trials_per_sec_guards_sub_resolution_measurements() {
        assert_eq!(measurement(0.0).trials_per_sec(), 0.0);
        assert_eq!(measurement(-0.0).trials_per_sec(), 0.0);
        assert_eq!(measurement(f64::NAN).trials_per_sec(), 0.0);
        assert!((measurement(2.0).trials_per_sec() - 500.0).abs() < 1e-12);
    }

    #[test]
    fn report_with_zero_elapsed_time_still_parses() {
        // The historical bug: seconds == 0 rendered "trials_per_sec": inf.
        let json = render_montecarlo_report(10_000, 0xB45E, &[measurement(0.0)]);
        validate_json(&json).unwrap_or_else(|(pos, msg)| {
            panic!("invalid JSON at byte {pos}: {msg}\n{json}");
        });
        assert!(json.contains("\"trials_per_sec\": 0.000"));
        assert!(!json.contains("inf"));
    }

    #[test]
    fn report_round_trips_normal_measurements() {
        let json = render_montecarlo_report(10_000, 7, &[measurement(278.5), measurement(3.2)]);
        assert!(validate_json(&json).is_ok());
        assert!(json.contains("\"population\": 10000"));
        assert!(json.contains("\"threads\": 4"));
    }

    #[test]
    fn profiled_measurements_embed_a_valid_phases_array() {
        let mut m = measurement(2.0);
        m.phases = vec![
            PhaseStats {
                phase: "trial.package_build".into(),
                calls: 1000,
                total_nanos: 450_000_000,
                mean_nanos: 450_000,
                p99_nanos: 524_287,
                allocs: 0,
                sealed_bytes: 40_960_000,
            },
            PhaseStats {
                phase: "trial.execute".into(),
                calls: 1000,
                total_nanos: 1_200_000_000,
                mean_nanos: 1_200_000,
                p99_nanos: 2_097_151,
                allocs: 3,
                sealed_bytes: 0,
            },
        ];
        let json = render_montecarlo_report(10_000, 1, &[m, measurement(1.0)]);
        validate_json(&json).unwrap_or_else(|(pos, msg)| {
            panic!("invalid JSON at byte {pos}: {msg}\n{json}");
        });
        assert!(json.contains("\"phases\": ["));
        assert!(json.contains("\"phase\": \"trial.package_build\""));
        assert!(json.contains("\"sealed_bytes\": 40960000"));
        // An unprofiled measurement carries no phases key at all.
        assert_eq!(json.matches("\"phases\"").count(), 1);
    }

    #[test]
    fn fault_cells_carry_a_degraded_rate_and_plain_cells_do_not() {
        let mut faulted = measurement(2.0);
        faulted.cell = "share_8x3+loss_burst@100000ppm".into();
        faulted.degraded = Some(0.125);
        let json = render_montecarlo_report(10_000, 1, &[faulted, measurement(1.0)]);
        validate_json(&json).unwrap_or_else(|(pos, msg)| {
            panic!("invalid JSON at byte {pos}: {msg}\n{json}");
        });
        assert_eq!(json.matches("\"degraded_rate\": 0.1250").count(), 1);
        assert_eq!(json.matches("\"degraded_rate\"").count(), 1);
    }

    #[test]
    fn hostile_labels_are_escaped() {
        let mut m = measurement(1.0);
        m.cell = "joint \"fast\" cell\\\n\u{1}".into();
        let json = render_montecarlo_report(100, 1, &[m]);
        validate_json(&json).unwrap_or_else(|(pos, msg)| {
            panic!("invalid JSON at byte {pos}: {msg}\n{json}");
        });
        assert!(json.contains("joint \\\"fast\\\" cell\\\\\\n\\u0001"));
    }

    #[test]
    fn crypto_report_renders_valid_json() {
        let ms = [
            CryptoMeasurement {
                op: "gf256_mul_slice_assign_1KiB".into(),
                iters: 1000,
                seconds: 0.25,
                bytes_per_iter: 1024,
            },
            CryptoMeasurement {
                op: "key_schedule_row_key_memoized".into(),
                iters: 5_000_000,
                seconds: 0.0, // sub-resolution: must render 0, not inf
                bytes_per_iter: 0,
            },
        ];
        let json = render_crypto_report(&ms);
        validate_json(&json).unwrap_or_else(|(pos, msg)| {
            panic!("invalid JSON at byte {pos}: {msg}\n{json}");
        });
        assert!(json.contains("\"ops_per_sec\": 4000.0"));
        assert!(json.contains("\"mb_per_sec\": 0.00"));
        assert!(!json.contains("inf"));
    }

    #[test]
    fn validator_accepts_json_shapes() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-12.5e-3",
            "\"a \\u00e9 b\"",
            "{\"a\": [1, 2, {\"b\": false}], \"c\": null}",
            " { \"x\" : 0.25 } ",
        ] {
            assert!(validate_json(ok).is_ok(), "should accept {ok:?}");
        }
    }

    #[test]
    fn validator_rejects_non_json() {
        for bad in [
            "",
            "inf",
            "{\"a\": inf}",
            "NaN",
            "{\"a\":}",
            "{\"a\": 1,}",
            "[1 2]",
            "{\"a\": 01}",
            "\"unterminated",
            "{} trailing",
            "{'single': 1}",
        ] {
            assert!(validate_json(bad).is_err(), "should reject {bad:?}");
        }
    }
}
