//! Machine-readable benchmark reports (`BENCH_montecarlo.json`).
//!
//! The baseline binary used to hand-format JSON with `format!("{:.3}")`,
//! which happily prints `inf` — not a JSON token — whenever a measurement
//! finishes below the clock resolution. This module centralizes the
//! rendering: every number goes through `json_number`, which maps
//! non-finite values to `0`, and the unit tests feed the rendered text
//! back through the bundled [`validate_json`] checker so an invalid
//! report can never be written silently again.

use crate::profile::PhaseStats;
use std::fmt::Write as _;

/// One Monte-Carlo throughput measurement of a `(cell, substrate)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct McMeasurement {
    /// Scenario cell label, e.g. `share_40x5_release_ahead`.
    pub cell: String,
    /// Substrate label (`analytic` or `overlay`).
    pub substrate: String,
    /// Worker threads used by the sharded runner.
    pub threads: usize,
    /// Trials executed.
    pub trials: usize,
    /// Wall-clock seconds the batch took.
    pub seconds: f64,
    /// Clean-emergence rate observed.
    pub clean: f64,
    /// Release rate observed.
    pub released: f64,
    /// Degraded-success rate for fault-scenario cells: the fraction of
    /// trials that released *despite* at least one injected disruption.
    /// `None` for faultless cells (the key is omitted from the report),
    /// so clean success and fault-tolerant success never blur together.
    pub degraded: Option<f64>,
    /// Per-phase breakdown from the cell's `emerge-obs` telemetry
    /// (`--profile` runs; empty otherwise, and omitted from the report).
    pub phases: Vec<PhaseStats>,
}

impl McMeasurement {
    /// Trials per wall-clock second, `0.0` when the elapsed time is zero
    /// or non-finite (a sub-resolution measurement carries no throughput
    /// information, and `inf` is not a JSON token).
    pub fn trials_per_sec(&self) -> f64 {
        if self.seconds.is_finite() && self.seconds > 0.0 {
            self.trials as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// Formats `x` with `decimals` fraction digits, substituting `0` for
/// non-finite values so the output is always a valid JSON number.
fn json_number(x: f64, decimals: usize) -> String {
    if x.is_finite() {
        format!("{x:.decimals$}")
    } else {
        format!("{:.decimals$}", 0.0)
    }
}

/// Escapes a string for embedding inside a JSON string literal, so label
/// fields can never corrupt the report.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the full `BENCH_montecarlo.json` document.
pub fn render_montecarlo_report(
    population: usize,
    seed: u64,
    measurements: &[McMeasurement],
) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"population\": {population},");
    let _ = writeln!(json, "  \"seed\": {seed},");
    json.push_str("  \"measurements\": [\n");
    let lines: Vec<String> = measurements
        .iter()
        .map(|m| {
            let mut line = format!(
                concat!(
                    "    {{\"cell\": \"{}\", \"substrate\": \"{}\", ",
                    "\"threads\": {}, \"trials\": {}, ",
                    "\"seconds\": {}, \"trials_per_sec\": {}, ",
                    "\"clean_rate\": {}, \"released_rate\": {}"
                ),
                json_escape(&m.cell),
                json_escape(&m.substrate),
                m.threads,
                m.trials,
                json_number(m.seconds, 3),
                json_number(m.trials_per_sec(), 3),
                json_number(m.clean, 4),
                json_number(m.released, 4),
            );
            if let Some(degraded) = m.degraded {
                let _ = write!(line, ", \"degraded_rate\": {}", json_number(degraded, 4));
            }
            if !m.phases.is_empty() {
                line.push_str(", \"phases\": [\n");
                let phase_lines: Vec<String> = m.phases.iter().map(render_phase).collect();
                line.push_str(&phase_lines.join(",\n"));
                line.push_str("\n    ]");
            }
            line.push('}');
            line
        })
        .collect();
    json.push_str(&lines.join(",\n"));
    json.push_str("\n  ]\n}\n");
    json
}

/// Renders one phase entry of a measurement's `"phases"` array. All
/// fields are integer-valued (nanoseconds, counts, bytes) so no
/// non-finite guard is needed.
fn render_phase(p: &PhaseStats) -> String {
    format!(
        concat!(
            "      {{\"phase\": \"{}\", \"calls\": {}, ",
            "\"total_nanos\": {}, \"mean_nanos\": {}, \"p99_nanos\": {}, ",
            "\"allocs\": {}, \"sealed_bytes\": {}}}"
        ),
        json_escape(&p.phase),
        p.calls,
        p.total_nanos,
        p.mean_nanos,
        p.p99_nanos,
        p.allocs,
        p.sealed_bytes,
    )
}

/// One crypto-kernel throughput measurement (`BENCH_crypto.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct CryptoMeasurement {
    /// Operation label, e.g. `shamir_split_20of40_32B`.
    pub op: String,
    /// Iterations executed.
    pub iters: usize,
    /// Wall-clock seconds the batch took.
    pub seconds: f64,
    /// Bytes processed per iteration (`0` when throughput-in-bytes is not
    /// meaningful for the operation).
    pub bytes_per_iter: usize,
}

impl CryptoMeasurement {
    /// Iterations per wall-clock second (`0.0` for sub-resolution runs).
    pub fn ops_per_sec(&self) -> f64 {
        if self.seconds.is_finite() && self.seconds > 0.0 {
            self.iters as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// Decimal megabytes (10^6 bytes) per second, `0.0` when
    /// `bytes_per_iter` is zero.
    pub fn mb_per_sec(&self) -> f64 {
        self.ops_per_sec() * self.bytes_per_iter as f64 / 1e6
    }
}

/// Renders the full `BENCH_crypto.json` document.
pub fn render_crypto_report(measurements: &[CryptoMeasurement]) -> String {
    let mut json = String::new();
    json.push_str("{\n  \"measurements\": [\n");
    let lines: Vec<String> = measurements
        .iter()
        .map(|m| {
            format!(
                concat!(
                    "    {{\"op\": \"{}\", \"iters\": {}, \"seconds\": {}, ",
                    "\"ops_per_sec\": {}, \"bytes_per_iter\": {}, ",
                    "\"mb_per_sec\": {}}}"
                ),
                json_escape(&m.op),
                m.iters,
                json_number(m.seconds, 3),
                json_number(m.ops_per_sec(), 1),
                m.bytes_per_iter,
                json_number(m.mb_per_sec(), 2),
            )
        })
        .collect();
    json.push_str(&lines.join(",\n"));
    json.push_str("\n  ]\n}\n");
    json
}

/// Checks that `text` is one complete JSON value (RFC 8259 subset: no
/// escapes beyond `\" \\ \/ \b \f \n \r \t \uXXXX`). Returns the byte
/// offset and a message on the first violation.
///
/// Implemented on top of [`parse_json`], so the validator and the reader
/// can never disagree about what is well-formed.
pub fn validate_json(text: &str) -> Result<(), (usize, String)> {
    parse_json(text).map(|_| ())
}

/// A parsed JSON value: the data model behind the sweep wire-format
/// reader. Object members keep their document order (duplicates
/// included), so a decoder can detect and reject repeated keys instead
/// of silently last-writer-winning.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number. Stored as `f64`, which represents every integer
    /// the reports emit as plain numbers exactly (the sweep wire format
    /// ships full-width `u64` values as hex *strings* for this reason).
    Number(f64),
    /// A string with all escapes decoded.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object as an ordered list of `(key, value)` members.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up the member `key` of an object. `None` for missing keys
    /// and for non-objects; the *first* occurrence wins for duplicates.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer. `None`
    /// unless the number is integral and at most 2^53 (beyond which
    /// `f64` no longer represents every integer — full-width values
    /// travel as hex strings instead).
    pub fn as_u64(&self) -> Option<u64> {
        const EXACT_MAX: f64 = 9_007_199_254_740_992.0; // 2^53
        match self {
            JsonValue::Number(x) if x.fract() == 0.0 && (0.0..=EXACT_MAX).contains(x) => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }
}

/// Nesting depth bound for the reader. Worker output is adversarial
/// input to the sweep coordinator (corrupt bytes must surface as
/// findings, not a blown stack), so recursion is capped; real reports
/// nest four levels deep.
const MAX_JSON_DEPTH: usize = 128;

/// Parses one complete JSON document into a [`JsonValue`].
///
/// # Errors
///
/// Returns the byte offset and a message for the first violation:
/// malformed syntax, trailing bytes, input nested deeper than 128
/// levels, or invalid `\u` escapes (including lone surrogates). Never
/// panics, whatever the input — the sweep coordinator feeds it raw
/// worker output.
pub fn parse_json(text: &str) -> Result<JsonValue, (usize, String)> {
    let mut r = JsonReader {
        text,
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = r.value(0)?;
    r.skip_ws();
    if r.pos != r.bytes.len() {
        return Err((r.pos, "trailing characters after the JSON value".into()));
    }
    Ok(value)
}

struct JsonReader<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl JsonReader<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), (usize, String)> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err((self.pos, format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, (usize, String)> {
        if depth > MAX_JSON_DEPTH {
            return Err((self.pos, "nesting too deep".into()));
        }
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(JsonValue::String),
            Some(b't') => self.literal(b"true", JsonValue::Bool(true)),
            Some(b'f') => self.literal(b"false", JsonValue::Bool(false)),
            Some(b'n') => self.literal(b"null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(&b) => Err((self.pos, format!("unexpected byte {:?}", b as char))),
            None => Err((self.pos, "unexpected end of input".into())),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, (usize, String)> {
        self.expect_byte(b'{')?;
        self.skip_ws();
        let mut members = Vec::new();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err((self.pos, "expected ',' or '}' in object".into())),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, (usize, String)> {
        self.expect_byte(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err((self.pos, "expected ',' or ']' in array".into())),
            }
        }
    }

    fn string(&mut self) -> Result<String, (usize, String)> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        let mut span_start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'"' => {
                    out.push_str(&self.text[span_start..self.pos]);
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    out.push_str(&self.text[span_start..self.pos]);
                    self.pos += 1;
                    self.escape(&mut out)?;
                    span_start = self.pos;
                }
                0x00..=0x1F => return Err((self.pos, "raw control character in string".into())),
                _ => self.pos += 1,
            }
        }
        Err((self.pos, "unterminated string".into()))
    }

    fn escape(&mut self, out: &mut String) -> Result<(), (usize, String)> {
        let decoded = match self.bytes.get(self.pos) {
            Some(b'"') => '"',
            Some(b'\\') => '\\',
            Some(b'/') => '/',
            Some(b'b') => '\u{8}',
            Some(b'f') => '\u{c}',
            Some(b'n') => '\n',
            Some(b'r') => '\r',
            Some(b't') => '\t',
            Some(b'u') => {
                self.pos += 1;
                return self.unicode_escape(out);
            }
            _ => return Err((self.pos, "invalid escape".into())),
        };
        out.push(decoded);
        self.pos += 1;
        Ok(())
    }

    fn unicode_escape(&mut self, out: &mut String) -> Result<(), (usize, String)> {
        let first = self.hex4()?;
        let code = match first {
            // High surrogate: must pair with an immediately following
            // \uDC00..=\uDFFF low surrogate.
            0xD800..=0xDBFF => {
                if self.bytes.get(self.pos) == Some(&b'\\')
                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                {
                    self.pos += 2;
                    let second = self.hex4()?;
                    if !(0xDC00..=0xDFFF).contains(&second) {
                        return Err((self.pos, "unpaired high surrogate".into()));
                    }
                    0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                } else {
                    return Err((self.pos, "unpaired high surrogate".into()));
                }
            }
            0xDC00..=0xDFFF => return Err((self.pos, "unpaired low surrogate".into())),
            c => c,
        };
        match char::from_u32(code) {
            Some(c) => {
                out.push(c);
                Ok(())
            }
            None => Err((self.pos, "invalid \\u escape".into())),
        }
    }

    fn hex4(&mut self) -> Result<u32, (usize, String)> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = self
                .bytes
                .get(self.pos)
                .and_then(|&b| (b as char).to_digit(16));
            match digit {
                Some(d) => {
                    value = value * 16 + d;
                    self.pos += 1;
                }
                None => return Err((self.pos, "invalid \\u escape".into())),
            }
        }
        Ok(value)
    }

    fn literal(&mut self, lit: &[u8], value: JsonValue) -> Result<JsonValue, (usize, String)> {
        if self.bytes[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err((
                self.pos,
                format!(
                    "invalid literal (expected {})",
                    String::from_utf8_lossy(lit)
                ),
            ))
        }
    }

    fn number(&mut self) -> Result<JsonValue, (usize, String)> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        // Integer part: a single 0, or a nonzero digit followed by more.
        match self.bytes.get(self.pos) {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                self.digits();
            }
            _ => return Err((start, "invalid number".into())),
        }
        if self.bytes.get(self.pos) == Some(&b'.') {
            self.pos += 1;
            if !self.digits() {
                return Err((self.pos, "digits required after decimal point".into()));
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !self.digits() {
                return Err((self.pos, "digits required in exponent".into()));
            }
        }
        match self.text[start..self.pos].parse::<f64>() {
            Ok(x) => Ok(JsonValue::Number(x)),
            Err(_) => Err((start, "unrepresentable number".into())),
        }
    }

    fn digits(&mut self) -> bool {
        let s = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        self.pos > s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measurement(seconds: f64) -> McMeasurement {
        McMeasurement {
            cell: "share_40x5_release_ahead".into(),
            substrate: "analytic".into(),
            threads: 4,
            trials: 1000,
            seconds,
            clean: 1.0,
            released: 1.0,
            degraded: None,
            phases: Vec::new(),
        }
    }

    #[test]
    fn trials_per_sec_guards_sub_resolution_measurements() {
        assert_eq!(measurement(0.0).trials_per_sec(), 0.0);
        assert_eq!(measurement(-0.0).trials_per_sec(), 0.0);
        assert_eq!(measurement(f64::NAN).trials_per_sec(), 0.0);
        assert!((measurement(2.0).trials_per_sec() - 500.0).abs() < 1e-12);
    }

    #[test]
    fn report_with_zero_elapsed_time_still_parses() {
        // The historical bug: seconds == 0 rendered "trials_per_sec": inf.
        let json = render_montecarlo_report(10_000, 0xB45E, &[measurement(0.0)]);
        validate_json(&json).unwrap_or_else(|(pos, msg)| {
            panic!("invalid JSON at byte {pos}: {msg}\n{json}");
        });
        assert!(json.contains("\"trials_per_sec\": 0.000"));
        assert!(!json.contains("inf"));
    }

    #[test]
    fn report_round_trips_normal_measurements() {
        let json = render_montecarlo_report(10_000, 7, &[measurement(278.5), measurement(3.2)]);
        assert!(validate_json(&json).is_ok());
        assert!(json.contains("\"population\": 10000"));
        assert!(json.contains("\"threads\": 4"));
    }

    #[test]
    fn profiled_measurements_embed_a_valid_phases_array() {
        let mut m = measurement(2.0);
        m.phases = vec![
            PhaseStats {
                phase: "trial.package_build".into(),
                calls: 1000,
                total_nanos: 450_000_000,
                mean_nanos: 450_000,
                p99_nanos: 524_287,
                allocs: 0,
                sealed_bytes: 40_960_000,
            },
            PhaseStats {
                phase: "trial.execute".into(),
                calls: 1000,
                total_nanos: 1_200_000_000,
                mean_nanos: 1_200_000,
                p99_nanos: 2_097_151,
                allocs: 3,
                sealed_bytes: 0,
            },
        ];
        let json = render_montecarlo_report(10_000, 1, &[m, measurement(1.0)]);
        validate_json(&json).unwrap_or_else(|(pos, msg)| {
            panic!("invalid JSON at byte {pos}: {msg}\n{json}");
        });
        assert!(json.contains("\"phases\": ["));
        assert!(json.contains("\"phase\": \"trial.package_build\""));
        assert!(json.contains("\"sealed_bytes\": 40960000"));
        // An unprofiled measurement carries no phases key at all.
        assert_eq!(json.matches("\"phases\"").count(), 1);
    }

    #[test]
    fn fault_cells_carry_a_degraded_rate_and_plain_cells_do_not() {
        let mut faulted = measurement(2.0);
        faulted.cell = "share_8x3+loss_burst@100000ppm".into();
        faulted.degraded = Some(0.125);
        let json = render_montecarlo_report(10_000, 1, &[faulted, measurement(1.0)]);
        validate_json(&json).unwrap_or_else(|(pos, msg)| {
            panic!("invalid JSON at byte {pos}: {msg}\n{json}");
        });
        assert_eq!(json.matches("\"degraded_rate\": 0.1250").count(), 1);
        assert_eq!(json.matches("\"degraded_rate\"").count(), 1);
    }

    #[test]
    fn hostile_labels_are_escaped() {
        let mut m = measurement(1.0);
        m.cell = "joint \"fast\" cell\\\n\u{1}".into();
        let json = render_montecarlo_report(100, 1, &[m]);
        validate_json(&json).unwrap_or_else(|(pos, msg)| {
            panic!("invalid JSON at byte {pos}: {msg}\n{json}");
        });
        assert!(json.contains("joint \\\"fast\\\" cell\\\\\\n\\u0001"));
    }

    #[test]
    fn crypto_report_renders_valid_json() {
        let ms = [
            CryptoMeasurement {
                op: "gf256_mul_slice_assign_1KiB".into(),
                iters: 1000,
                seconds: 0.25,
                bytes_per_iter: 1024,
            },
            CryptoMeasurement {
                op: "key_schedule_row_key_memoized".into(),
                iters: 5_000_000,
                seconds: 0.0, // sub-resolution: must render 0, not inf
                bytes_per_iter: 0,
            },
        ];
        let json = render_crypto_report(&ms);
        validate_json(&json).unwrap_or_else(|(pos, msg)| {
            panic!("invalid JSON at byte {pos}: {msg}\n{json}");
        });
        assert!(json.contains("\"ops_per_sec\": 4000.0"));
        assert!(json.contains("\"mb_per_sec\": 0.00"));
        assert!(!json.contains("inf"));
    }

    #[test]
    fn validator_accepts_json_shapes() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-12.5e-3",
            "\"a \\u00e9 b\"",
            "{\"a\": [1, 2, {\"b\": false}], \"c\": null}",
            " { \"x\" : 0.25 } ",
        ] {
            assert!(validate_json(ok).is_ok(), "should accept {ok:?}");
        }
    }

    #[test]
    fn reader_builds_the_document_tree() {
        let doc = parse_json("{\"a\": [1, 2.5, {\"b\": false}], \"c\": null, \"s\": \"x\"}")
            .expect("valid document");
        assert_eq!(doc.get("c"), Some(&JsonValue::Null));
        assert_eq!(doc.get("s").and_then(JsonValue::as_str), Some("x"));
        let a = doc.get("a").and_then(JsonValue::as_array).expect("array");
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[1].as_u64(), None, "non-integral numbers are not u64");
        assert_eq!(a[2].get("b").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(a[0].get("k"), None, "get on a non-object is None");
    }

    #[test]
    fn reader_decodes_escapes() {
        let doc = parse_json("\"a\\u00e9b\\n\\\\\\\"\\u0041\\uD83D\\uDE00\"").expect("valid");
        assert_eq!(doc.as_str(), Some("a\u{e9}b\n\\\"A\u{1F600}"));
        for bad in [
            "\"\\uD83D\"",        // lone high surrogate
            "\"\\uDE00\"",        // lone low surrogate
            "\"\\uD83D\\u0041\"", // high surrogate paired with a non-surrogate
            "\"\\uZZZZ\"",
            "\"\\q\"",
        ] {
            assert!(parse_json(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn reader_keeps_duplicate_object_keys_in_order() {
        let doc = parse_json("{\"k\": 1, \"k\": 2}").expect("valid");
        let members = doc.as_object().expect("object");
        assert_eq!(members.len(), 2, "duplicates are preserved for decoders");
        assert_eq!(doc.get("k").and_then(JsonValue::as_u64), Some(1));
    }

    #[test]
    fn reader_bounds_nesting_depth() {
        let deep_ok = format!("{}0{}", "[".repeat(100), "]".repeat(100));
        assert!(parse_json(&deep_ok).is_ok());
        let too_deep = format!("{}0{}", "[".repeat(500), "]".repeat(500));
        assert!(
            parse_json(&too_deep).is_err(),
            "depth cap, not a blown stack"
        );
    }

    #[test]
    fn reader_keeps_u64_exactness_boundary() {
        // 2^53 is the last integer below which every value is exactly
        // representable; beyond it the f64 parse itself rounds, which is
        // precisely why the wire format ships u64s as hex strings.
        assert_eq!(
            parse_json("9007199254740992").ok().and_then(|v| v.as_u64()),
            Some(1u64 << 53)
        );
        assert_eq!(
            parse_json("9007199254740993").ok().and_then(|v| v.as_u64()),
            Some(1u64 << 53),
            "9007199254740993 rounds to 2^53 in f64 - full-width u64s must travel as hex strings"
        );
        assert_eq!(parse_json("-1").ok().and_then(|v| v.as_u64()), None);
    }

    #[test]
    fn validator_rejects_non_json() {
        for bad in [
            "",
            "inf",
            "{\"a\": inf}",
            "NaN",
            "{\"a\":}",
            "{\"a\": 1,}",
            "[1 2]",
            "{\"a\": 01}",
            "\"unterminated",
            "{} trailing",
            "{'single': 1}",
        ] {
            assert!(validate_json(bad).is_err(), "should reject {bad:?}");
        }
    }
}
