//! Thread-backed driver for the sharded wire-protocol Monte-Carlo.
//!
//! `emerge_core::montecarlo` provides the substrate-generic machinery:
//! [`run_protocol_trial_range`] runs a contiguous range of independently
//! seeded trials and [`shard_ranges`] partitions a batch into such
//! ranges. This module spreads the ranges over OS threads via
//! [`parallel_map_workers`] and merges the partial results in shard
//! order.
//!
//! Because every trial draws from its own `"protocol-trial"` RNG stream
//! keyed by the *global* trial index, the merged result is bit-identical
//! to a serial [`run_protocol_trials`](emerge_core::montecarlo::run_protocol_trials) run — same rates, same
//! fingerprint — for any thread count. Threads change wall-clock time
//! only; `tests/sharded_montecarlo.rs` pins this down.
//!
//! Thread count: `EMERGE_MC_THREADS` if set, else the machine's available
//! parallelism (see [`mc_threads`]).

use crate::parallel::{mc_threads, parallel_map_workers};
use crate::profile::collected;
use emerge_contract::error::ContractError;
use emerge_contract::mc::{
    run_bonded_trial_range, run_bonded_trial_range_faulted, BondedMcResults, FaultyBondedMcResults,
};
use emerge_contract::release::BondedSpec;
use emerge_contract::substrate::ContractSubstrate;
use emerge_core::error::EmergeError;
use emerge_core::faults::{run_faulted_trial_range, FaultyMcResults};
use emerge_core::montecarlo::{
    run_protocol_trial_range, run_protocol_trial_range_pooled, shard_ranges, ProtocolMcResults,
    ProtocolTrialSpec, TrialWorkspace,
};
use emerge_core::substrate::HolderSubstrate;
use emerge_faults::{FaultPlan, RecoveryPolicy};
use emerge_obs::MetricsSnapshot;

/// Merges per-shard `(result, telemetry)` pairs in shard order: results
/// through `merge`, telemetry through [`MetricsSnapshot::merge`] (both
/// associative, so the outcome is shard-count-independent for the
/// counter-valued parts).
fn merge_profiled<P, M, E>(
    partials: Vec<(Result<P, E>, MetricsSnapshot)>,
    mut results: M,
    merge: impl Fn(&mut M, &P),
) -> Result<(M, MetricsSnapshot), E> {
    let mut telemetry = MetricsSnapshot::default();
    for (partial, snapshot) in partials {
        merge(&mut results, &partial?);
        telemetry.merge(&snapshot);
    }
    Ok((results, telemetry))
}

/// Runs `trials` wire-protocol trials of `spec` across `threads` worker
/// threads (one contiguous trial range per shard), merging the partial
/// results in shard order.
///
/// Bit-identical to the serial [`run_protocol_trials`](emerge_core::montecarlo::run_protocol_trials) on the
/// counter-valued fields and the fingerprint, for any `threads` value.
/// Unlike the sequential sharded runner, the substrate factory is shared
/// across workers, so it must be `Fn + Sync` (build worlds from the
/// per-trial world seed it receives, not from mutable state).
///
/// # Errors
///
/// Propagates the first shard failure in shard order, e.g.
/// [`EmergeError::InsufficientNodes`] when the structure does not fit the
/// factory's worlds.
pub fn run_protocol_trials_threaded<S, F>(
    spec: &ProtocolTrialSpec,
    trials: usize,
    seed: u64,
    threads: usize,
    substrate_factory: F,
) -> Result<ProtocolMcResults, EmergeError>
where
    S: HolderSubstrate,
    F: Fn(u64) -> S + Sync,
{
    let ranges = shard_ranges(trials, threads);
    let partials = parallel_map_workers(&ranges, threads, |&(first_trial, count)| {
        run_protocol_trial_range(spec, first_trial, count, seed, &substrate_factory)
    });
    let mut results = ProtocolMcResults::default();
    for partial in partials {
        results.merge(&partial?);
    }
    Ok(results)
}

/// [`run_protocol_trials_threaded`] with the thread count taken from the
/// environment ([`mc_threads`]: `EMERGE_MC_THREADS`, defaulting to the
/// available parallelism).
///
/// # Errors
///
/// See [`run_protocol_trials_threaded`].
pub fn run_protocol_trials_parallel<S, F>(
    spec: &ProtocolTrialSpec,
    trials: usize,
    seed: u64,
    substrate_factory: F,
) -> Result<ProtocolMcResults, EmergeError>
where
    S: HolderSubstrate,
    F: Fn(u64) -> S + Sync,
{
    run_protocol_trials_threaded(spec, trials, seed, mc_threads(), substrate_factory)
}

/// Profiled form of [`run_protocol_trials_threaded`]: every worker shard
/// runs under its own fresh `emerge-obs` collector (installed on the
/// worker thread, or save/restored around the caller's collector when
/// `threads <= 1` runs inline), and the per-shard telemetry snapshots
/// merge in shard order next to the results. The trial outcomes stay
/// bit-identical to the unprofiled runner; the second return value adds
/// the span/counter telemetry the trial pipeline recorded.
///
/// # Errors
///
/// See [`run_protocol_trials_threaded`].
pub fn run_protocol_trials_profiled<S, F>(
    spec: &ProtocolTrialSpec,
    trials: usize,
    seed: u64,
    threads: usize,
    substrate_factory: F,
) -> Result<(ProtocolMcResults, MetricsSnapshot), EmergeError>
where
    S: HolderSubstrate,
    F: Fn(u64) -> S + Sync,
{
    let ranges = shard_ranges(trials, threads);
    let partials = parallel_map_workers(&ranges, threads, |&(first_trial, count)| {
        collected(|| run_protocol_trial_range(spec, first_trial, count, seed, &substrate_factory))
    });
    merge_profiled(partials, ProtocolMcResults::default(), |acc, p| {
        acc.merge(p);
    })
}

/// Pooled form of [`run_protocol_trials_threaded`] for share-scheme
/// cells: each worker thread builds one substrate (`make_substrate`) and
/// one [`TrialWorkspace`] for its whole shard, re-seeds the substrate in
/// place per trial (`reseed`, e.g. `AnalyticSubstrate::rebuild`) and runs
/// the zero-allocation trial pipeline. Bit-identical results and
/// fingerprint to the allocating driver for any thread count; after each
/// shard's first trial the steady state never touches the allocator.
///
/// # Errors
///
/// Propagates the first shard failure in shard order, including
/// `InvalidParameters` for non-share schemes (those keep the allocating
/// driver).
pub fn run_protocol_trials_pooled_threaded<S, M, R>(
    spec: &ProtocolTrialSpec,
    trials: usize,
    seed: u64,
    threads: usize,
    make_substrate: M,
    reseed: R,
) -> Result<ProtocolMcResults, EmergeError>
where
    S: HolderSubstrate,
    M: Fn() -> S + Sync,
    R: Fn(&mut S, u64) + Sync,
{
    let ranges = shard_ranges(trials, threads);
    let partials = parallel_map_workers(&ranges, threads, |&(first_trial, count)| {
        let mut substrate = make_substrate();
        let mut ws = TrialWorkspace::new();
        run_protocol_trial_range_pooled(
            spec,
            first_trial,
            count,
            seed,
            &mut substrate,
            &reseed,
            &mut ws,
        )
    });
    let mut results = ProtocolMcResults::default();
    for partial in partials {
        results.merge(&partial?);
    }
    Ok(results)
}

/// Profiled form of [`run_protocol_trials_pooled_threaded`]: same
/// per-worker collectors and shard-order telemetry merge as
/// [`run_protocol_trials_profiled`], over the zero-allocation pooled
/// pipeline. With a collector installed the pipeline's span guards time
/// each phase into preallocated registry slots, so the steady state
/// still never touches the allocator.
///
/// # Errors
///
/// See [`run_protocol_trials_pooled_threaded`].
pub fn run_protocol_trials_pooled_profiled<S, M, R>(
    spec: &ProtocolTrialSpec,
    trials: usize,
    seed: u64,
    threads: usize,
    make_substrate: M,
    reseed: R,
) -> Result<(ProtocolMcResults, MetricsSnapshot), EmergeError>
where
    S: HolderSubstrate,
    M: Fn() -> S + Sync,
    R: Fn(&mut S, u64) + Sync,
{
    let ranges = shard_ranges(trials, threads);
    let partials = parallel_map_workers(&ranges, threads, |&(first_trial, count)| {
        collected(|| {
            let mut substrate = make_substrate();
            let mut ws = TrialWorkspace::new();
            run_protocol_trial_range_pooled(
                spec,
                first_trial,
                count,
                seed,
                &mut substrate,
                &reseed,
                &mut ws,
            )
        })
    });
    merge_profiled(partials, ProtocolMcResults::default(), |acc, p| {
        acc.merge(p);
    })
}

/// Faulted form of [`run_protocol_trials_profiled`]: every trial runs
/// behind a [`FaultySubstrate`](emerge_core::faults::FaultySubstrate)
/// wrapper armed from `plan` and recovering under `policy`, across
/// `threads` worker shards with per-worker collectors. Bit-identical to
/// the serial [`run_faulted_trials`](emerge_core::faults::run_faulted_trials)
/// on every counter-valued field and both fingerprints, for any thread
/// count — faults are pure functions of `(plan, world seed)`, never of
/// scheduling.
///
/// # Errors
///
/// See [`run_protocol_trials_threaded`].
pub fn run_faulted_trials_profiled<S, F>(
    spec: &ProtocolTrialSpec,
    plan: &FaultPlan,
    policy: RecoveryPolicy,
    trials: usize,
    seed: u64,
    threads: usize,
    substrate_factory: F,
) -> Result<(FaultyMcResults, MetricsSnapshot), EmergeError>
where
    S: HolderSubstrate,
    F: Fn(u64) -> S + Sync,
{
    let ranges = shard_ranges(trials, threads);
    let partials = parallel_map_workers(&ranges, threads, |&(first_trial, count)| {
        collected(|| {
            run_faulted_trial_range(
                spec,
                plan,
                policy,
                first_trial,
                count,
                seed,
                &substrate_factory,
            )
        })
    });
    merge_profiled(partials, FaultyMcResults::default(), |acc, p| {
        acc.merge(p);
    })
}

/// Faulted form of [`run_bonded_trials_profiled`]: each bonded trial's
/// holder actions pass through a [`FaultInjector`](emerge_faults::FaultInjector)
/// armed from `plan` (crashes become slashing withholds, block-clock skew
/// can push reveals out of their window). Per-worker collectors, shard
/// order merges, bit-identical partials for any thread count.
///
/// # Errors
///
/// See [`run_bonded_trials_threaded`].
pub fn run_bonded_faulted_trials_profiled<F>(
    spec: &BondedSpec,
    plan: &FaultPlan,
    trials: usize,
    seed: u64,
    threads: usize,
    substrate_factory: F,
) -> Result<(FaultyBondedMcResults, MetricsSnapshot), ContractError>
where
    F: Fn(u64) -> ContractSubstrate + Sync,
{
    let ranges = shard_ranges(trials, threads);
    let partials = parallel_map_workers(&ranges, threads, |&(first_trial, count)| {
        collected(|| {
            run_bonded_trial_range_faulted(spec, plan, first_trial, count, seed, &substrate_factory)
        })
    });
    merge_profiled(partials, FaultyBondedMcResults::default(), |acc, p| {
        acc.merge(p);
    })
}

/// Runs `trials` bonded-release trials (the contract-native emergence
/// mode) across `threads` worker threads, one contiguous trial range per
/// shard, merging the partials in shard order.
///
/// Bit-identical to the serial
/// [`run_bonded_trials`](emerge_contract::mc::run_bonded_trials) on the
/// counter-valued fields and the fingerprint, for any `threads` value —
/// the same guarantee the wire-protocol driver gives, extended to the
/// contract substrate's native mode.
///
/// # Errors
///
/// Propagates the first shard failure in shard order.
pub fn run_bonded_trials_threaded<F>(
    spec: &BondedSpec,
    trials: usize,
    seed: u64,
    threads: usize,
    substrate_factory: F,
) -> Result<BondedMcResults, ContractError>
where
    F: Fn(u64) -> ContractSubstrate + Sync,
{
    let ranges = shard_ranges(trials, threads);
    let partials = parallel_map_workers(&ranges, threads, |&(first_trial, count)| {
        run_bonded_trial_range(spec, first_trial, count, seed, &substrate_factory)
    });
    let mut results = BondedMcResults::default();
    for partial in partials {
        results.merge(&partial?);
    }
    Ok(results)
}

/// Profiled form of [`run_bonded_trials_threaded`]: per-worker
/// collectors, telemetry merged in shard order — the bonded engine's
/// spans plus the contract's transition-event counters land in the
/// returned snapshot.
///
/// # Errors
///
/// See [`run_bonded_trials_threaded`].
pub fn run_bonded_trials_profiled<F>(
    spec: &BondedSpec,
    trials: usize,
    seed: u64,
    threads: usize,
    substrate_factory: F,
) -> Result<(BondedMcResults, MetricsSnapshot), ContractError>
where
    F: Fn(u64) -> ContractSubstrate + Sync,
{
    let ranges = shard_ranges(trials, threads);
    let partials = parallel_map_workers(&ranges, threads, |&(first_trial, count)| {
        collected(|| run_bonded_trial_range(spec, first_trial, count, seed, &substrate_factory))
    });
    merge_profiled(partials, BondedMcResults::default(), |acc, p| {
        acc.merge(p);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use emerge_core::config::SchemeParams;
    use emerge_core::montecarlo::run_protocol_trials;
    use emerge_core::protocol::AttackMode;
    use emerge_core::substrate::{AnalyticSubstrate, OverlayConfig};
    use emerge_sim::time::SimDuration;

    fn spec(params: SchemeParams) -> ProtocolTrialSpec {
        ProtocolTrialSpec {
            params,
            emerging_period: SimDuration::from_ticks(3_000),
            attack: AttackMode::ReleaseAhead,
        }
    }

    fn factory(s: u64) -> AnalyticSubstrate {
        AnalyticSubstrate::build(
            OverlayConfig {
                n_nodes: 120,
                malicious_fraction: 0.3,
                ..OverlayConfig::default()
            },
            s,
        )
    }

    #[test]
    fn threaded_runs_match_serial_for_any_thread_count() {
        let spec = spec(SchemeParams::Joint { k: 2, l: 3 });
        let serial = run_protocol_trials(&spec, 12, 5, factory).unwrap();
        for threads in [1usize, 2, 3, 8] {
            let threaded = run_protocol_trials_threaded(&spec, 12, 5, threads, factory).unwrap();
            assert_eq!(
                threaded.fingerprint, serial.fingerprint,
                "{threads} threads"
            );
            assert_eq!(threaded.released, serial.released);
            assert_eq!(threaded.clean, serial.clean);
            assert_eq!(threaded.reconstructed_early, serial.reconstructed_early);
            assert_eq!(threaded.messages.count(), serial.messages.count());
        }
    }

    #[test]
    fn pooled_threaded_runs_match_allocating_for_any_thread_count() {
        let spec = spec(SchemeParams::Share {
            k: 2,
            l: 3,
            n: 6,
            m: vec![3, 3],
        });
        let serial = run_protocol_trials(&spec, 12, 5, factory).unwrap();
        for threads in [1usize, 2, 3, 8] {
            let pooled = run_protocol_trials_pooled_threaded(
                &spec,
                12,
                5,
                threads,
                || factory(0),
                |s, seed| s.rebuild(seed),
            )
            .unwrap();
            assert_eq!(pooled.fingerprint, serial.fingerprint, "{threads} threads");
            assert_eq!(pooled.released, serial.released);
            assert_eq!(pooled.clean, serial.clean);
            assert_eq!(pooled.reconstructed_early, serial.reconstructed_early);
            assert_eq!(pooled.messages.count(), serial.messages.count());
        }
    }

    #[test]
    fn profiled_runs_match_serial_and_capture_phase_telemetry() {
        let spec = spec(SchemeParams::Share {
            k: 2,
            l: 3,
            n: 6,
            m: vec![3, 3],
        });
        let serial = run_protocol_trials(&spec, 12, 5, factory).unwrap();
        for threads in [1usize, 3] {
            let (pooled, telemetry) = run_protocol_trials_pooled_profiled(
                &spec,
                12,
                5,
                threads,
                || factory(0),
                |s, seed| s.rebuild(seed),
            )
            .unwrap();
            assert_eq!(pooled.fingerprint, serial.fingerprint, "{threads} threads");
            // One span per pipeline phase per trial, merged across shards.
            assert_eq!(telemetry.counter("trial.execute.calls"), Some(12));
            assert_eq!(telemetry.counter("trial.world_rebuild.calls"), Some(12));
            assert_eq!(telemetry.counter("trial.paths.calls"), Some(12));
            assert_eq!(telemetry.counter("trial.package_build.calls"), Some(12));
            // The tracked seal-volume counter attributes to the build phase.
            let sealed = telemetry
                .counter("trial.package_build.sealed_bytes")
                .unwrap_or(0);
            assert!(sealed > 0, "package build seals AEAD bytes");
            assert_eq!(telemetry.counter("package.seal.bytes"), Some(sealed));
        }

        let (allocating, telemetry) =
            run_protocol_trials_profiled(&spec, 12, 5, 2, factory).unwrap();
        assert_eq!(allocating.fingerprint, serial.fingerprint);
        assert_eq!(telemetry.counter("trial.execute.calls"), Some(12));
    }

    #[test]
    fn threaded_runs_propagate_errors() {
        let spec = spec(SchemeParams::Joint { k: 20, l: 20 });
        let err = run_protocol_trials_threaded(&spec, 4, 1, 2, factory).unwrap_err();
        assert!(matches!(err, EmergeError::InsufficientNodes { .. }));
    }

    #[test]
    fn env_driven_entry_point_agrees_with_serial() {
        let spec = spec(SchemeParams::Central);
        let serial = run_protocol_trials(&spec, 6, 2, factory).unwrap();
        let auto = run_protocol_trials_parallel(&spec, 6, 2, factory).unwrap();
        assert_eq!(auto.fingerprint, serial.fingerprint);
    }

    #[test]
    fn threaded_faulted_runs_match_serial_for_any_thread_count() {
        use emerge_core::faults::run_faulted_trials;
        use emerge_faults::Scenario;

        let spec = spec(SchemeParams::Share {
            k: 2,
            l: 3,
            n: 6,
            m: vec![3, 3],
        });
        // The plan horizon tracks the protocol's active window (the
        // 3k-tick emerging period plus headroom), not the world horizon.
        let plan = Scenario::CrashStorm.plan(300_000, 4_000, 7);
        let policy = RecoveryPolicy::default();
        let serial = run_faulted_trials(&spec, &plan, policy, 12, 5, factory).unwrap();
        for threads in [1usize, 2, 3, 8] {
            let (threaded, _telemetry) =
                run_faulted_trials_profiled(&spec, &plan, policy, 12, 5, threads, factory).unwrap();
            assert_eq!(
                threaded.base.fingerprint, serial.base.fingerprint,
                "{threads} threads"
            );
            assert_eq!(
                threaded.fault_fingerprint, serial.fault_fingerprint,
                "{threads} threads fault fingerprint"
            );
            assert_eq!(threaded.degraded, serial.degraded);
            assert_eq!(threaded.clean_of_faults, serial.clean_of_faults);
            assert_eq!(threaded.disrupted, serial.disrupted);
        }
        assert!(
            serial.disrupted.successes() > 0,
            "the storm must actually disrupt"
        );
    }

    #[test]
    fn threaded_bonded_runs_match_serial_for_any_thread_count() {
        use emerge_contract::mc::run_bonded_trials;
        use emerge_contract::substrate::ContractConfig;
        use emerge_sim::time::SimDuration;

        let spec = BondedSpec::new(6, 4, SimDuration::from_ticks(1_000));
        let contract_factory = |s| {
            ContractSubstrate::build(
                ContractConfig::over(OverlayConfig {
                    n_nodes: 100,
                    malicious_fraction: 0.4,
                    ..OverlayConfig::default()
                }),
                s,
            )
        };
        let serial = run_bonded_trials(&spec, 11, 3, contract_factory).unwrap();
        for threads in [1usize, 2, 5, 11] {
            let threaded =
                run_bonded_trials_threaded(&spec, 11, 3, threads, contract_factory).unwrap();
            assert_eq!(
                threaded.fingerprint, serial.fingerprint,
                "{threads} threads"
            );
            assert_eq!(threaded.released, serial.released);
            assert_eq!(threaded.clean, serial.clean);
            assert_eq!(threaded.slashed.count(), serial.slashed.count());
        }
    }
}
