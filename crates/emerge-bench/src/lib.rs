//! # emerge-bench
//!
//! The experiment harness that regenerates every figure of the paper's
//! evaluation section (Section IV), plus criterion microbenches for the
//! substrates.
//!
//! Binaries:
//!
//! * `fig6` — attack resilience and required nodes vs `p` (Figure 6 a–d)
//! * `fig7` — churn resilience for α ∈ {1, 2, 3, 5} (Figure 7 a–d)
//! * `fig8` — share-scheme cost sweep (Figure 8)
//! * `all_figures` — runs everything and writes `results/*.dat`
//!
//! Each binary prints gnuplot-ready columns in the same shape as the
//! paper's plots. Environment variables `EMERGE_TRIALS` (default 1000)
//! and `EMERGE_P_STEP` (default 0.02) trade accuracy for speed;
//! `EMERGE_MC_THREADS` caps the sharded Monte-Carlo worker threads (see
//! [`parallel::mc_threads`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod mc;
pub mod parallel;
pub mod profile;
pub mod report;

/// Number of Monte-Carlo trials per experiment cell (the paper runs 1000).
///
/// `EMERGE_TRIALS=0` (or unparsable input) falls back rather than
/// propagating a zero-trial spec the engines would reject — this is the
/// input boundary that keeps the interior `run_trials(...)` calls
/// infallible on hardcoded specs.
pub fn trials_from_env() -> usize {
    std::env::var("EMERGE_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&t: &usize| t >= 1)
        .unwrap_or(1000)
}

/// Sweep step for the malicious rate `p`. Out-of-range values (zero,
/// negative, NaN, > 0.5) fall back to the default so `p_sweep`'s
/// documented precondition always holds for env-driven callers.
pub fn p_step_from_env() -> f64 {
    std::env::var("EMERGE_P_STEP")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s: &f64| s > 0.0 && s <= 0.5)
        .unwrap_or(0.02)
}

/// The `p` sweep of the paper's figures: `0.0..=0.5`.
pub fn p_sweep(step: f64) -> Vec<f64> {
    // LINT-WAIVER(panic): documented precondition; env-driven callers are range-clamped by p_step_from_env
    assert!(step > 0.0 && step <= 0.5, "p step must be in (0, 0.5]");
    let mut ps = Vec::new();
    let mut p = 0.0f64;
    while p <= 0.5 + 1e-9 {
        ps.push((p * 1e6).round() / 1e6);
        p += step;
    }
    ps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_sweep_covers_the_range() {
        let ps = p_sweep(0.1);
        assert_eq!(ps.len(), 6);
        assert_eq!(ps[0], 0.0);
        assert_eq!(*ps.last().unwrap(), 0.5);
    }

    #[test]
    fn env_defaults() {
        // Not set in the test environment.
        assert_eq!(trials_from_env(), 1000);
        assert!((p_step_from_env() - 0.02).abs() < 1e-12);
    }
}
