//! Per-phase profiling on top of `emerge-obs` telemetry.
//!
//! The trial pipelines (pooled and allocating wire-protocol, bonded
//! contract) are instrumented with `emerge_obs` spans; this module is the
//! single code path that collects their telemetry and turns a
//! [`MetricsSnapshot`] into a per-phase breakdown. Both the
//! `montecarlo_baseline --profile` report and the `phase_profile` example
//! go through it, so the two can never disagree about what a phase costs.

use emerge_obs::collector::{install, take};
use emerge_obs::{Collector, MetricsSnapshot};
use std::fmt::Write as _;

/// Aggregated statistics of one instrumented span (pipeline phase).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStats {
    /// Span name, e.g. `trial.package_build`.
    pub phase: String,
    /// Times the span was entered.
    pub calls: u64,
    /// Total nanoseconds spent inside the span across all calls.
    pub total_nanos: u64,
    /// Mean nanoseconds per call.
    pub mean_nanos: u64,
    /// 99th-percentile nanoseconds per call (log-bucket upper bound).
    pub p99_nanos: u64,
    /// Heap allocations attributed to the span — 0 unless the binary
    /// installs [`emerge_obs::alloccount::CountingAllocator`] as its
    /// global allocator.
    pub allocs: u64,
    /// AEAD plaintext bytes sealed inside the span (only spans declared
    /// with `SpanId::tracking` over `package.seal.bytes`; 0 elsewhere).
    pub sealed_bytes: u64,
}

/// Extracts the per-phase breakdown from a telemetry snapshot: every
/// histogram with a matching `<name>.calls` counter is a span, and its
/// `.allocs` / `.sealed_bytes` companions fill the attribution columns.
/// Phases come out in the snapshot's (sorted-by-name) order.
pub fn phase_stats(snapshot: &MetricsSnapshot) -> Vec<PhaseStats> {
    let mut out = Vec::new();
    for h in &snapshot.histograms {
        let Some(calls) = snapshot.counter(&format!("{}.calls", h.name)) else {
            continue; // a plain histogram, not a span
        };
        out.push(PhaseStats {
            phase: h.name.clone(),
            calls,
            total_nanos: h.sum,
            mean_nanos: h.mean(),
            p99_nanos: h.quantile(0.99),
            allocs: snapshot.counter(&format!("{}.allocs", h.name)).unwrap_or(0),
            sealed_bytes: snapshot
                .counter(&format!("{}.sealed_bytes", h.name))
                .unwrap_or(0),
        });
    }
    out
}

/// Runs `f` with a fresh telemetry collector installed on the current
/// thread and returns its result plus the collected snapshot. Any
/// collector that was already installed is restored afterwards, so
/// profiled sections nest safely inside instrumented callers.
pub fn collected<R>(f: impl FnOnce() -> R) -> (R, MetricsSnapshot) {
    let previous = install(Collector::new());
    let result = f();
    let snapshot = take().map_or_else(MetricsSnapshot::default, |c| c.snapshot());
    if let Some(prev) = previous {
        install(prev);
    }
    (result, snapshot)
}

/// Renders a human-readable per-phase table. `wall_secs` is the
/// wall-clock time of the profiled section; the `share` column is each
/// phase's fraction of it (phases on parallel workers can sum past 100%).
pub fn render_phase_table(stats: &[PhaseStats], wall_secs: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} {:>9} {:>12} {:>10} {:>6} {:>9} {:>12}",
        "phase", "calls", "mean us", "total s", "share", "allocs", "sealed B"
    );
    let wall_nanos = wall_secs * 1e9;
    for s in stats {
        let share = if wall_nanos > 0.0 {
            s.total_nanos as f64 / wall_nanos * 100.0
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{:<24} {:>9} {:>12.2} {:>10.3} {:>5.0}% {:>9} {:>12}",
            s.phase,
            s.calls,
            s.mean_nanos as f64 / 1e3,
            s.total_nanos as f64 / 1e9,
            share,
            s.allocs,
            s.sealed_bytes,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use emerge_obs::trace::span;
    use emerge_obs::{CounterId, SpanId};

    static TEST_BYTES: CounterId = CounterId::new("profile.test.bytes");
    static SPAN_PLAIN: SpanId = SpanId::new("profile.test.plain");
    static SPAN_TRACKED: SpanId =
        SpanId::tracking("profile.test.tracked", &TEST_BYTES, ".sealed_bytes");

    #[test]
    fn collected_captures_span_telemetry_and_restores_previous() {
        let outer = install(Collector::new());
        let (value, snapshot) = collected(|| {
            for _ in 0..3 {
                let _s = span(&SPAN_PLAIN);
            }
            {
                let _s = span(&SPAN_TRACKED);
                TEST_BYTES.add(512);
            }
            7u32
        });
        assert_eq!(value, 7);
        // The caller's collector is back in place and saw nothing.
        let restored = take().expect("previous collector restored");
        assert!(restored.snapshot().is_empty());
        if let Some(prev) = outer {
            install(prev);
        }

        let stats = phase_stats(&snapshot);
        assert_eq!(stats.len(), 2);
        let plain = stats
            .iter()
            .find(|s| s.phase == "profile.test.plain")
            .unwrap();
        assert_eq!(plain.calls, 3);
        assert_eq!(plain.sealed_bytes, 0);
        let tracked = stats
            .iter()
            .find(|s| s.phase == "profile.test.tracked")
            .unwrap();
        assert_eq!(tracked.calls, 1);
        assert_eq!(tracked.sealed_bytes, 512);
        assert!(tracked.total_nanos >= tracked.mean_nanos);
    }

    #[test]
    fn plain_histograms_are_not_phases() {
        use emerge_obs::HistogramId;
        static LATENCY: HistogramId = HistogramId::new("profile.test.latency");
        let ((), snapshot) = collected(|| {
            LATENCY.record(42);
        });
        assert!(snapshot.histogram("profile.test.latency").is_some());
        assert!(phase_stats(&snapshot).is_empty());
    }

    #[test]
    fn table_renders_every_phase_row() {
        let stats = vec![PhaseStats {
            phase: "trial.execute".into(),
            calls: 1000,
            total_nanos: 2_000_000_000,
            mean_nanos: 2_000_000,
            p99_nanos: 4_194_303,
            allocs: 0,
            sealed_bytes: 123_456,
        }];
        let table = render_phase_table(&stats, 4.0);
        assert!(table.contains("trial.execute"));
        assert!(table.contains("50%"), "2s of 4s wall is a 50% share");
        assert!(table.contains("123456"));
    }
}
