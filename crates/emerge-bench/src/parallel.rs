//! A tiny work-stealing `parallel_map` over OS threads.
//!
//! The figure sweeps are embarrassingly parallel across `p` values; this
//! helper spreads them over the available cores with nothing beyond the
//! standard library (scoped threads + an atomic work index).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item, in parallel, preserving input order in the
/// output. `f` must be `Sync` (it is shared across workers).
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                *results[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every slot filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = parallel_map(&[] as &[u64], |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(&[7], |x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still all complete.
        let items: Vec<u64> = (0..32).collect();
        let out = parallel_map(&items, |x| {
            let mut acc = 0u64;
            for i in 0..(x % 7) * 10_000 {
                acc = acc.wrapping_add(i);
            }
            (*x, acc).0
        });
        assert_eq!(out, items);
    }
}
