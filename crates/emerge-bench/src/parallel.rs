//! A tiny work-stealing `parallel_map` over OS threads.
//!
//! The figure sweeps are embarrassingly parallel across `p` values; this
//! helper spreads them over the available cores with nothing beyond the
//! standard library (scoped threads + an atomic work index).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker-thread count for Monte-Carlo sharding: `EMERGE_MC_THREADS` if
/// set to a positive integer, otherwise the machine's available
/// parallelism (1 if unknown).
///
/// The thread count only affects wall-clock time, never results: the
/// sharded Monte-Carlo engine is bit-identical across thread counts (CI
/// runs the suites with `EMERGE_MC_THREADS=1` and unset to guard this).
pub fn mc_threads() -> usize {
    std::env::var("EMERGE_MC_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
}

/// Applies `f` to every item, in parallel, preserving input order in the
/// output. `f` must be `Sync` (it is shared across workers). Worker count
/// defaults to the available parallelism.
///
/// A panic inside `f` propagates to the caller (the scoped-thread runtime
/// re-raises it when the scope exits); the remaining items may or may not
/// have been processed by then.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = std::thread::available_parallelism().map_or(4, |p| p.get());
    parallel_map_workers(items, workers, f)
}

/// [`parallel_map`] with an explicit worker-thread count (clamped to
/// `[1, items.len()]`). `workers == 1` runs inline on the caller's
/// thread, which keeps single-threaded runs (`EMERGE_MC_THREADS=1`)
/// trivially deterministic in scheduling as well as results.
pub fn parallel_map_workers<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                // LINT-WAIVER(panic): a poisoned slot means a worker panicked, and that panic propagates via join first
                *results[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                // LINT-WAIVER(panic): a poisoned slot means a worker panicked, and that panic propagates via join first
                .expect("result slot poisoned")
                // LINT-WAIVER(panic): the worker loop fills every slot before the threads are joined
                .expect("every slot filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = parallel_map(&[] as &[u64], |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(&[7], |x| x + 1), vec![8]);
    }

    #[test]
    fn explicit_worker_counts_agree() {
        let items: Vec<u64> = (0..50).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [1usize, 2, 7, 64] {
            assert_eq!(parallel_map_workers(&items, workers, |x| x * x), expect);
        }
        assert_eq!(parallel_map_workers(&items, 0, |x| x * x), expect);
    }

    #[test]
    fn worker_panics_propagate_to_the_caller() {
        let items: Vec<u64> = (0..32).collect();
        for workers in [1usize, 4] {
            let caught = std::panic::catch_unwind(|| {
                parallel_map_workers(&items, workers, |&x| {
                    assert!(x != 17, "poisoned item");
                    x
                })
            });
            assert!(
                caught.is_err(),
                "a panic in f must not be swallowed (workers = {workers})"
            );
        }
    }

    #[test]
    fn mc_threads_is_positive() {
        // EMERGE_MC_THREADS is unset in the test environment; the default
        // must be a sane positive worker count either way.
        assert!(mc_threads() >= 1);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still all complete.
        let items: Vec<u64> = (0..32).collect();
        let out = parallel_map(&items, |x| {
            let mut acc = 0u64;
            for i in 0..(x % 7) * 10_000 {
                acc = acc.wrapping_add(i);
            }
            (*x, acc).0
        });
        assert_eq!(out, items);
    }
}
