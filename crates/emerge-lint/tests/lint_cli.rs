//! End-to-end checks of the `emerge-lint` binary: exit codes over fixture
//! workspaces, and the self-check that the real workspace lints clean.

use std::path::Path;
use std::process::Command;

fn run_lint(root: &str) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_emerge-lint"))
        .args(["--check", "--root", root])
        .output()
        .expect("spawn emerge-lint")
}

fn fixture(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .display()
        .to_string()
}

#[test]
fn clean_workspace_exits_zero() {
    let out = run_lint(&fixture("ws_clean"));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout: {stdout}");
    assert!(stdout.contains("clean"), "stdout: {stdout}");
}

#[test]
fn dirty_workspace_exits_one_with_findings() {
    let out = run_lint(&fixture("ws_dirty"));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout: {stdout}");
    assert!(stdout.contains("[panic]"), "stdout: {stdout}");
    assert!(stdout.contains("src/lib.rs:6"), "stdout: {stdout}");
}

#[test]
fn usage_errors_exit_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_emerge-lint"))
        .arg("--no-such-flag")
        .output()
        .expect("spawn emerge-lint");
    assert_eq!(out.status.code(), Some(2));

    let out = run_lint("/nonexistent/fixture/root");
    assert_eq!(out.status.code(), Some(2));
}

/// The real workspace must lint clean — and the scan must actually cover
/// it (a floor on files scanned guards against a path regression turning
/// this into a vacuous pass).
#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = emerge_lint::lint_workspace(&root).expect("workspace scan");
    assert!(
        report.findings.is_empty(),
        "workspace findings: {:#?}",
        report.findings
    );
    assert!(
        report.files_scanned >= 40,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    assert!(report.waivers_honored >= 100, "waiver count collapsed");
}
