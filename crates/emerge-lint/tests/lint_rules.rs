//! Fixture-based self-tests: one passing and one failing fixture per
//! rule family, plus the waiver audit.

use emerge_lint::lint_source;

fn rules_of(findings: &[emerge_lint::Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn unsafe_fixtures() {
    let (findings, _) = lint_source("crates/x/src/a.rs", include_str!("fixtures/unsafe_good.rs"));
    assert!(findings.is_empty(), "good fixture flagged: {findings:?}");

    let (findings, _) = lint_source("crates/x/src/a.rs", include_str!("fixtures/unsafe_bad.rs"));
    assert_eq!(rules_of(&findings), ["unsafe"], "{findings:?}");
    assert_eq!(findings[0].line, 4);
}

#[test]
fn unsafe_rule_is_not_waivable() {
    let src = "// LINT-WAIVER(unsafe): waivers must not silence the audit\n\
               pub fn f(v: &[u8]) -> u8 { unsafe { *v.as_ptr() } }\n";
    let (findings, honored) = lint_source("crates/x/src/a.rs", src);
    // The unsafe finding survives and the waiver itself is rejected.
    assert!(findings.iter().any(|f| f.rule == "unsafe"), "{findings:?}");
    assert!(findings.iter().any(|f| f.rule == "waiver"), "{findings:?}");
    assert_eq!(honored, 0);
}

#[test]
fn panic_fixtures() {
    let (findings, honored) =
        lint_source("crates/x/src/a.rs", include_str!("fixtures/panic_good.rs"));
    assert!(findings.is_empty(), "good fixture flagged: {findings:?}");
    assert_eq!(honored, 1, "the invariant-backed waiver must be consumed");

    let (findings, _) = lint_source("crates/x/src/a.rs", include_str!("fixtures/panic_bad.rs"));
    assert_eq!(
        rules_of(&findings),
        ["panic", "panic", "panic"],
        "{findings:?}"
    );
    assert!(findings[0].message.contains(".unwrap()"));
    assert!(findings[1].message.contains("assert!"));
    assert!(findings[2].message.contains("unreachable!"));
}

#[test]
fn ct_fixtures() {
    let path = "crates/emerge-crypto/src/compare.rs";
    let (findings, _) = lint_source(path, include_str!("fixtures/ct_good.rs"));
    assert!(findings.is_empty(), "good fixture flagged: {findings:?}");

    let (findings, _) = lint_source(path, include_str!("fixtures/ct_bad.rs"));
    assert_eq!(rules_of(&findings), ["ct", "ct"], "{findings:?}");
    assert!(findings[0].message.contains("tag"));
    assert!(findings[1].message.contains("SBOX"));
}

#[test]
fn ct_rule_is_scoped_to_the_crypto_crate() {
    // The same early-exit compare outside emerge-crypto is fine: `tag`
    // there is a wire discriminant, not key material.
    let (findings, _) = lint_source(
        "crates/emerge-core/src/a.rs",
        include_str!("fixtures/ct_bad.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn alloc_fixtures() {
    let (findings, _) = lint_source("crates/x/src/a.rs", include_str!("fixtures/alloc_good.rs"));
    assert!(findings.is_empty(), "good fixture flagged: {findings:?}");

    let (findings, _) = lint_source("crates/x/src/a.rs", include_str!("fixtures/alloc_bad.rs"));
    assert_eq!(rules_of(&findings), ["alloc", "alloc"], "{findings:?}");
    assert!(findings[0].message.contains("digest_into"));
    assert!(findings[1].message.contains("rebuild"));
}

#[test]
fn wire_fixtures() {
    // The rule keys on the module stem: wire.rs / package.rs.
    let (findings, _) = lint_source(
        "crates/emerge-core/src/wire.rs",
        include_str!("fixtures/wire_good.rs"),
    );
    assert!(findings.is_empty(), "good fixture flagged: {findings:?}");

    let (findings, _) = lint_source(
        "crates/emerge-core/src/wire.rs",
        include_str!("fixtures/wire_bad.rs"),
    );
    assert_eq!(rules_of(&findings), ["wire"], "{findings:?}");

    // Outside a wire/package module the cast is not this rule's business.
    let (findings, _) = lint_source(
        "crates/emerge-core/src/other.rs",
        include_str!("fixtures/wire_bad.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn waiver_audit_fixtures() {
    let (findings, honored) =
        lint_source("crates/x/src/a.rs", include_str!("fixtures/waiver_bad.rs"));
    assert_eq!(
        rules_of(&findings),
        ["waiver", "waiver", "waiver"],
        "{findings:?}"
    );
    assert!(findings[0].message.contains("too short"), "{findings:?}");
    assert!(findings[1].message.contains("frobnicate"), "{findings:?}");
    assert!(findings[2].message.contains("unused"), "{findings:?}");
    assert_eq!(honored, 0);
}
