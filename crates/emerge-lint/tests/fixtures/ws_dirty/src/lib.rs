//! A dirty fixture workspace: `emerge-lint --root` over this tree must
//! exit 1 with a panic-freedom finding.

/// Panics on empty input with no waiver.
pub fn boom(v: &[u8]) -> u8 {
    *v.first().unwrap()
}
