//! Fixture: panic sites confined to tests or carrying waivers.

/// Fallible accessor instead of an unwrap.
pub fn first(v: &[u8]) -> Option<u8> {
    v.first().copied()
}

/// Invariant-backed unwrap, waived with a reason.
pub fn half(x: u64) -> u64 {
    // LINT-WAIVER(panic): the divisor is the constant two, never zero
    x.checked_div(2).unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_are_fine_in_tests() {
        assert_eq!(super::first(&[3]).unwrap(), 3);
        assert_eq!(super::half(8), 4);
    }
}
