//! Fixture: timing leaks the constant-time rule must flag.

/// Early-exit slice compare on secret-named operands: the mismatch
/// position leaks through timing.
pub fn tags_match(tag: &[u8], expected: &[u8]) -> bool {
    tag == expected
}

/// A value-derived lookup-table load leaks the operand through the cache.
const SBOX: [u8; 256] = [0; 256];

pub fn substitute(b: u8) -> u8 {
    SBOX[b as usize]
}
