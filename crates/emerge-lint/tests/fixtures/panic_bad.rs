//! Fixture: naked panics in non-test library code.

pub fn first(v: &[u8]) -> u8 {
    *v.first().unwrap()
}

pub fn checked(flag: bool) {
    assert!(flag, "flag must be set");
}

pub fn never() -> u8 {
    unreachable!("but the lint cannot know that")
}
