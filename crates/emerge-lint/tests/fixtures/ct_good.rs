//! Fixture: the designated constant-time comparison shape.

/// Accumulator equality: the loop touches every byte regardless of where
/// the first difference sits, and the final compare is over the all-public
/// difference accumulator, not secret bytes.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}
