//! Fixture: `unsafe` with a SAFETY justification directly above.

/// First byte of a non-empty slice.
pub fn peek(v: &[u8]) -> u8 {
    // LINT-WAIVER(panic): documented precondition; peeking an empty slice is a caller bug
    assert!(!v.is_empty(), "peek needs at least one byte");
    // SAFETY: the assert above guarantees the slice is non-empty, so the
    // pointer read stays in bounds.
    unsafe { *v.as_ptr() }
}
