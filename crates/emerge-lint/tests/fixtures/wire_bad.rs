//! Fixture: a silently truncating cast on a wire length.

pub fn frame_len(payload: &[u8]) -> u16 {
    payload.len() as u16
}
