//! Fixture: hot-path fn reusing caller buffers; allocation elsewhere is fine.

/// On the pooled pipeline: writes into the caller's buffer.
pub fn digest_into(out: &mut Vec<u8>, data: &[u8]) {
    out.clear();
    out.extend_from_slice(data);
}

/// Not a hot-path name: allocating here is allowed.
pub fn assemble(data: &[u8]) -> Vec<u8> {
    data.to_vec()
}
