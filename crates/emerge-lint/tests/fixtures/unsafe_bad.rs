//! Fixture: an `unsafe` block with no SAFETY comment.

pub fn peek(v: &[u8]) -> u8 {
    unsafe { *v.as_ptr() }
}
