//! Fixture: malformed and stale waivers are findings themselves.

// LINT-WAIVER(panic): too short
pub fn short_reason() {}

// LINT-WAIVER(frobnicate): this rule name does not exist anywhere
pub fn unknown_rule() {}

// LINT-WAIVER(alloc): perfectly well formed but suppresses nothing below
pub fn stale() {}
