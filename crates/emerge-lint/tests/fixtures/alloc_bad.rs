//! Fixture: allocations inside pooled hot-path functions.

/// `*_into` naming convention puts this on the pooled pipeline.
pub fn digest_into(out: &mut Vec<u8>, data: &[u8]) {
    let copy = data.to_vec();
    out.extend_from_slice(&copy);
}

/// `rebuild` is on the hot-path list by name.
pub fn rebuild(n: usize) -> Vec<u8> {
    let mut scratch = Vec::with_capacity(n);
    scratch.resize(n, 0);
    scratch
}
