//! A trivially clean fixture workspace: `emerge-lint --root` over this
//! tree must exit 0.

/// Adds without panicking, allocating, casting or unsafe.
pub fn add(a: u32, b: u32) -> u32 {
    a.wrapping_add(b)
}
