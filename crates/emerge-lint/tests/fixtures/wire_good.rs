//! Fixture: checked conversions and literal casts in a wire module.

/// Checked length conversion surfaces the error.
pub fn frame_len(payload: &[u8]) -> Option<u16> {
    u16::try_from(payload.len()).ok()
}

/// Casting a literal cannot truncate at runtime.
pub const VERSION: u8 = 2u16 as u8;
