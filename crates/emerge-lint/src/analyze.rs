//! Structure recovery over the flat token stream: which token ranges are
//! test-gated, where function bodies begin and end, and which
//! `LINT-WAIVER` comments are in force.

use crate::lexer::{Comment, Lexed, TokKind, Token};

/// Rule identifiers accepted in `LINT-WAIVER(<rule>)` comments.
/// `unsafe` findings are deliberately absent: the fix for a missing
/// `SAFETY:` justification is to write the justification, not to waive it.
pub const WAIVABLE_RULES: &[&str] = &["panic", "ct", "alloc", "wire"];

/// Minimum length of a waiver reason. Short "reasons" like `ok` defeat
/// the point of a machine-checked audit trail.
pub const MIN_WAIVER_REASON: usize = 10;

#[derive(Debug, Clone)]
pub struct Waiver {
    pub line: u32,
    pub rule: String,
    pub reason: String,
}

#[derive(Debug, Clone)]
pub struct FnInfo {
    pub name: String,
    pub name_line: u32,
    /// Token index range `[body_start, body_end]` of the `{` ... `}`
    /// delimiters, inclusive. `None` for bodyless declarations.
    pub body: Option<(usize, usize)>,
}

/// Per-file structural facts shared by every rule.
pub struct FileModel<'a> {
    pub tokens: &'a [Token],
    pub comments: &'a [Comment],
    /// Sorted, disjoint token-index ranges (inclusive) gated behind a
    /// `test` cfg or `#[test]`-style attribute.
    pub test_ranges: Vec<(usize, usize)>,
    pub fns: Vec<FnInfo>,
    pub waivers: Vec<Waiver>,
    /// Lines (1-based) that contain at least one token — used to decide
    /// whether a waiver comment is "directly above" a finding.
    pub code_lines: Vec<bool>,
}

impl<'a> FileModel<'a> {
    pub fn build(lexed: &'a Lexed) -> FileModel<'a> {
        let tokens = &lexed.tokens[..];
        let mut model = FileModel {
            tokens,
            comments: &lexed.comments,
            test_ranges: mark_test_ranges(tokens),
            fns: extract_fns(tokens),
            waivers: parse_waivers(&lexed.comments),
            code_lines: Vec::new(),
        };
        let max_line = tokens.last().map_or(0, |t| t.line) as usize;
        model.code_lines = vec![false; max_line + 2];
        for t in tokens {
            model.code_lines[t.line as usize] = true;
        }
        model
    }

    pub fn is_test(&self, token_idx: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| token_idx >= a && token_idx <= b)
    }

    /// True when some comment within `lines_above` lines at or above
    /// `line` contains `needle` (used for the `SAFETY:` audit).
    pub fn comment_near_above(&self, line: u32, lines_above: u32, needles: &[&str]) -> bool {
        let lo = line.saturating_sub(lines_above);
        self.comments.iter().any(|c| {
            c.line_end >= lo && c.line_end <= line && needles.iter().any(|n| c.text.contains(n))
        })
    }

    /// Find a waiver for `rule` covering a finding on `line`: either a
    /// trailing comment on the same line, or a comment line directly
    /// above (with only further comment lines in between, up to 3 lines
    /// so a wrapped reason still counts).
    pub fn waiver_for(&self, rule: &str, line: u32) -> Option<usize> {
        for (i, w) in self.waivers.iter().enumerate() {
            if w.rule != rule {
                continue;
            }
            if w.line == line {
                return Some(i);
            }
            if w.line < line && line - w.line <= 3 {
                let gap_is_comments = (w.line + 1..line)
                    .all(|l| !self.code_lines.get(l as usize).copied().unwrap_or(false));
                if gap_is_comments {
                    return Some(i);
                }
            }
        }
        None
    }
}

/// Parse `// LINT-WAIVER(rule): reason` comments. Malformed variants are
/// still returned (with whatever rule/reason text was present) so the
/// waiver-audit rule can reject them loudly instead of silently ignoring
/// a typo like `LINT-WAIVER(panics)`.
fn parse_waivers(comments: &[Comment]) -> Vec<Waiver> {
    let mut out = Vec::new();
    for c in comments {
        // Waivers live in plain `//` comments only. Rustdoc (`///`,
        // `//!`, `/**`, `/*!`) is documentation *about* the waiver
        // syntax, not a waiver — the lint's own docs must not waive.
        let doc = c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/**")
            || c.text.starts_with("/*!");
        if doc {
            continue;
        }
        let mut rest = c.text.as_str();
        while let Some(at) = rest.find("LINT-WAIVER(") {
            rest = &rest[at + "LINT-WAIVER(".len()..];
            let Some(close) = rest.find(')') else { break };
            let rule = rest[..close].trim().to_string();
            let after = &rest[close + 1..];
            let reason = after.strip_prefix(':').map_or("", |r| r.trim()).to_string();
            out.push(Waiver {
                line: c.line_start,
                rule,
                reason,
            });
            rest = after;
        }
    }
    out
}

/// True when an attribute token sequence (the tokens between `[` and `]`)
/// gates its item to test builds: `#[test]`, `#[cfg(test)]`,
/// `#[cfg(any(test, ...))]`, or a path attribute ending in `::test`.
/// `cfg(not(test))` and `cfg_attr(test, ...)` do NOT gate compilation to
/// tests and are excluded.
fn attr_is_test_gated(attr: &[Token]) -> bool {
    let first_ident = attr.iter().find(|t| t.kind == TokKind::Ident);
    let Some(first) = first_ident else {
        return false;
    };
    match first.text.as_str() {
        "test" => true,
        "cfg" => {
            // Look for a `test` ident not nested inside `not(...)`.
            let mut group_stack: Vec<String> = Vec::new();
            let mut prev_ident: Option<&str> = None;
            for t in attr {
                match (t.kind, t.text.as_str()) {
                    (TokKind::Punct, "(") => {
                        group_stack.push(prev_ident.unwrap_or("").to_string());
                        prev_ident = None;
                    }
                    (TokKind::Punct, ")") => {
                        group_stack.pop();
                        prev_ident = None;
                    }
                    (TokKind::Ident, "test") => {
                        if !group_stack.iter().any(|g| g == "not") {
                            return true;
                        }
                        prev_ident = Some("test");
                    }
                    (TokKind::Ident, name) => prev_ident = Some(name),
                    _ => prev_ident = None,
                }
            }
            false
        }
        // e.g. `#[tokio::test]`, `#[proptest]`-style custom test attrs.
        _ => attr
            .iter()
            .rfind(|t| t.kind == TokKind::Ident)
            .is_some_and(|t| t.text == "test" || t.text.ends_with("test")),
    }
}

/// Scan for `#[...]` / `#![...]` attributes; when one is test-gating,
/// mark the token range of the item it applies to (or the whole file for
/// an inner attribute).
fn mark_test_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].kind != TokKind::Punct || tokens[i].text != "#" {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let inner = j < tokens.len() && tokens[j].text == "!";
        if inner {
            j += 1;
        }
        if j >= tokens.len() || tokens[j].text != "[" {
            i += 1;
            continue;
        }
        // Collect the balanced attribute body.
        let attr_open = j;
        let mut depth = 0usize;
        let mut k = attr_open;
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let attr_body = &tokens[attr_open + 1..k.min(tokens.len())];
        if attr_is_test_gated(attr_body) {
            if inner {
                // `#![cfg(test)]`: the entire file is test-gated.
                ranges.push((0, tokens.len().saturating_sub(1)));
                break;
            }
            if let Some(end) = item_end(tokens, k + 1) {
                ranges.push((i, end));
                i = end + 1;
                continue;
            }
        }
        i = k + 1;
    }
    ranges
}

/// Given the token index just after an attribute, find the inclusive end
/// of the item the attribute decorates: the matching `}` of the first
/// top-level brace, or the first top-level `;` for bodyless items.
/// Further attributes on the same item are skipped over.
fn item_end(tokens: &[Token], mut start: usize) -> Option<usize> {
    // Skip stacked attributes.
    while start + 1 < tokens.len() && tokens[start].text == "#" && tokens[start + 1].text == "[" {
        let mut depth = 0usize;
        let mut k = start + 1;
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        start = k + 1;
    }
    let mut depth = 0i64;
    let mut saw_brace = false;
    for (off, t) in tokens[start..].iter().enumerate() {
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "{") | (TokKind::Punct, "(") | (TokKind::Punct, "[") => {
                if t.text == "{" {
                    saw_brace = true;
                }
                depth += 1;
            }
            (TokKind::Punct, "}") | (TokKind::Punct, ")") | (TokKind::Punct, "]") => {
                depth -= 1;
                if depth == 0 && t.text == "}" && saw_brace {
                    return Some(start + off);
                }
            }
            (TokKind::Punct, ";") if depth == 0 => return Some(start + off),
            _ => {}
        }
    }
    None
}

/// Extract every `fn` item (including nested ones) with its body token
/// range. The signature scanner walks generics (`<...>`, including
/// parenthesized `Fn(...)` bounds), the parameter list, return type and
/// `where` clause without being confused by `->` (a compound token).
fn extract_fns(tokens: &[Token]) -> Vec<FnInfo> {
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].kind == TokKind::Ident && tokens[i].text == "fn") {
            i += 1;
            continue;
        }
        // `fn` in a fn-pointer type has no following identifier.
        let Some(name_tok) = tokens.get(i + 1) else {
            break;
        };
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = name_tok.text.clone();
        let name_line = name_tok.line;
        let mut j = i + 2;

        // Generics: count `<`/`>` individually (no `<<`/`>>` compounds),
        // skipping balanced ()/[] groups such as `F: Fn(T) -> U` bounds.
        if tokens.get(j).is_some_and(|t| t.text == "<") {
            let mut angle = 0i64;
            let mut group = 0i64;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "<" if group == 0 => angle += 1,
                    ">" if group == 0 => {
                        angle -= 1;
                        if angle == 0 {
                            j += 1;
                            break;
                        }
                    }
                    "(" | "[" => group += 1,
                    ")" | "]" => group -= 1,
                    _ => {}
                }
                j += 1;
            }
        }

        // Parameter list.
        if tokens.get(j).is_none_or(|t| t.text != "(") {
            i += 1;
            continue;
        }
        let mut depth = 0i64;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }

        // Return type / where clause until the body `{` or a `;`.
        let mut body = None;
        let mut depth = 0i64;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" if depth == 0 => break,
                "{" if depth == 0 => {
                    let open = j;
                    let mut braces = 0i64;
                    while j < tokens.len() {
                        match tokens[j].text.as_str() {
                            "{" => braces += 1,
                            "}" => {
                                braces -= 1;
                                if braces == 0 {
                                    body = Some((open, j));
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        fns.push(FnInfo {
            name,
            name_line,
            body,
        });
        i += 2; // continue from after the name; nested fns are re-found
    }
    fns
}
