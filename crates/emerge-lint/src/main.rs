//! CLI entry point: `cargo run -p emerge-lint -- --check`.
//!
//! Exit codes: 0 = clean, 1 = findings, 2 = usage or I/O error.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: emerge-lint [--check] [--root <workspace-root>]\n\
         \n\
         Walks crates/*/src and src/ enforcing the five rule families\n\
         (unsafe-audit, panic-freedom, constant-time, hot-path alloc,\n\
         wire hygiene). Exit 0 when clean, 1 on findings, 2 on error."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {} // the default (and only) mode
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    // Default root: the workspace the binary was built from, so
    // `cargo run -p emerge-lint -- --check` needs no arguments.
    let root = root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));

    let report = match emerge_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("emerge-lint: error walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if report.files_scanned == 0 {
        eprintln!(
            "emerge-lint: no .rs sources under {} — wrong --root? (a scan of nothing is not a pass)",
            root.display()
        );
        return ExitCode::from(2);
    }

    for f in &report.findings {
        println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }
    if report.findings.is_empty() {
        println!(
            "emerge-lint: clean — {} files scanned, {} waivers honored",
            report.files_scanned, report.waivers_honored
        );
        ExitCode::SUCCESS
    } else {
        let mut by_rule: Vec<(&str, usize)> = Vec::new();
        for f in &report.findings {
            match by_rule.iter_mut().find(|(r, _)| *r == f.rule) {
                Some((_, n)) => *n += 1,
                None => by_rule.push((f.rule, 1)),
            }
        }
        let summary = by_rule
            .iter()
            .map(|(r, n)| format!("{r}: {n}"))
            .collect::<Vec<_>>()
            .join(", ");
        println!(
            "emerge-lint: {} findings ({summary}) across {} files",
            report.findings.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}
