//! A hand-rolled Rust token lexer.
//!
//! The workspace is air-gapped (no `syn`), so the lint rules run over a
//! flat token stream instead of a real AST. The lexer only needs to be
//! faithful about the things that would otherwise corrupt a token-level
//! analysis: comments (line, doc, *nested* block), string/char/byte/raw
//! string literals (so an `unwrap()` inside a string is not a finding),
//! lifetimes vs char literals, and the handful of compound operators the
//! rules and the signature scanner care about (`==` `!=` `->` `::` ...).
//!
//! Everything else — numbers, single-char punctuation — is passed through
//! with just enough care not to mis-tokenize its neighbours.

/// Token classification. `Literal` covers string/char/number literals;
/// rules never look inside them, they only need to be skipped atomically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Lifetime,
    Literal,
    Punct,
}

#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

/// A comment, kept out of the token stream but retained for the
/// `SAFETY:` audit and `LINT-WAIVER` machinery.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line_start: u32,
    pub line_end: u32,
    pub text: String,
}

#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Compound operators emitted as single tokens. Order matters: longest
/// match first. `<<`/`>>` are deliberately *not* compound so the generic
/// signature scanner can count every `>` individually.
const COMPOUND: &[&str] = &["..=", "...", "==", "!=", "<=", ">=", "::", "->", "=>", ".."];

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

pub fn lex(src: &str) -> Lexed {
    let mut c = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();

    // Shebang line, if any, reads as a comment.
    if c.starts_with("#!") && !c.starts_with("#![") {
        while let Some(b) = c.peek(0) {
            if b == b'\n' {
                break;
            }
            c.bump();
        }
    }

    while let Some(b) = c.peek(0) {
        if b.is_ascii_whitespace() {
            c.bump();
            continue;
        }

        // Comments -------------------------------------------------------
        if c.starts_with("//") {
            let line = c.line;
            let start = c.pos;
            while let Some(b) = c.peek(0) {
                if b == b'\n' {
                    break;
                }
                c.bump();
            }
            out.comments.push(Comment {
                line_start: line,
                line_end: line,
                text: String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
            });
            continue;
        }
        if c.starts_with("/*") {
            let line = c.line;
            let start = c.pos;
            c.bump();
            c.bump();
            let mut depth = 1usize;
            while depth > 0 {
                if c.starts_with("/*") {
                    depth += 1;
                    c.bump();
                    c.bump();
                } else if c.starts_with("*/") {
                    depth -= 1;
                    c.bump();
                    c.bump();
                } else if c.bump().is_none() {
                    break;
                }
            }
            out.comments.push(Comment {
                line_start: line,
                line_end: c.line,
                text: String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
            });
            continue;
        }

        // String-ish literals --------------------------------------------
        // Raw / byte prefixes: r" r#" br" br#" b" rb is not valid Rust.
        if (b == b'r' || b == b'b') && lex_maybe_prefixed_string(&mut c, &mut out) {
            continue;
        }
        if b == b'"' {
            let line = c.line;
            c.bump();
            lex_string_body(&mut c);
            out.tokens.push(Token {
                kind: TokKind::Literal,
                text: "\"str\"".into(),
                line,
            });
            continue;
        }
        if b == b'\'' {
            let line = c.line;
            // Lifetime: 'ident not closed by a quote right after one char.
            let is_lifetime = c
                .peek(1)
                .is_some_and(|n| is_ident_start(n) && c.peek(2) != Some(b'\''));
            if is_lifetime {
                c.bump(); // '
                let start = c.pos;
                while let Some(n) = c.peek(0) {
                    if !is_ident_continue(n) {
                        break;
                    }
                    c.bump();
                }
                out.tokens.push(Token {
                    kind: TokKind::Lifetime,
                    text: String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
                    line,
                });
            } else {
                c.bump(); // opening '
                if c.peek(0) == Some(b'\\') {
                    c.bump();
                    c.bump(); // escaped char (\u{..} handled by the loop below)
                    while c.peek(0).is_some() && c.peek(0) != Some(b'\'') {
                        c.bump();
                    }
                } else {
                    // May be multi-byte UTF-8; consume until the close quote.
                    while c.peek(0).is_some() && c.peek(0) != Some(b'\'') {
                        c.bump();
                    }
                }
                c.bump(); // closing '
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: "'c'".into(),
                    line,
                });
            }
            continue;
        }

        // Identifiers / keywords ------------------------------------------
        if is_ident_start(b) {
            let line = c.line;
            let start = c.pos;
            while let Some(n) = c.peek(0) {
                if !is_ident_continue(n) {
                    break;
                }
                c.bump();
            }
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text: String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
                line,
            });
            continue;
        }

        // Numbers ---------------------------------------------------------
        if b.is_ascii_digit() {
            let line = c.line;
            lex_number(&mut c);
            out.tokens.push(Token {
                kind: TokKind::Literal,
                text: "0".into(),
                line,
            });
            continue;
        }

        // Punctuation ------------------------------------------------------
        let line = c.line;
        let mut matched = false;
        for op in COMPOUND {
            if c.starts_with(op) {
                for _ in 0..op.len() {
                    c.bump();
                }
                out.tokens.push(Token {
                    kind: TokKind::Punct,
                    text: (*op).into(),
                    line,
                });
                matched = true;
                break;
            }
        }
        if !matched {
            c.bump();
            out.tokens.push(Token {
                kind: TokKind::Punct,
                text: (b as char).to_string(),
                line,
            });
        }
    }

    out
}

/// Consume a `"..."` body (opening quote already consumed), honouring
/// backslash escapes and counting embedded newlines.
fn lex_string_body(c: &mut Cursor<'_>) {
    while let Some(b) = c.bump() {
        match b {
            b'\\' => {
                c.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
}

/// Handle `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'` starting at an `r`
/// or `b`. Returns false (consuming nothing) when it's just an identifier
/// that happens to start with those letters.
fn lex_maybe_prefixed_string(c: &mut Cursor<'_>, out: &mut Lexed) -> bool {
    let line = c.line;
    let mut ahead = 1usize; // past the first r/b
    let mut raw = c.peek(0) == Some(b'r');
    if c.peek(0) == Some(b'b') && c.peek(1) == Some(b'r') {
        raw = true;
        ahead = 2;
    }
    if c.peek(0) == Some(b'b') && c.peek(1) == Some(b'\'') {
        // Byte char literal b'x'.
        c.bump(); // b
        c.bump(); // '
        if c.peek(0) == Some(b'\\') {
            c.bump();
        }
        while c.peek(0).is_some() && c.peek(0) != Some(b'\'') {
            c.bump();
        }
        c.bump();
        out.tokens.push(Token {
            kind: TokKind::Literal,
            text: "b'c'".into(),
            line,
        });
        return true;
    }

    let mut hashes = 0usize;
    if raw {
        while c.peek(ahead + hashes) == Some(b'#') {
            hashes += 1;
        }
    }
    if c.peek(ahead + hashes) != Some(b'"') {
        return false;
    }
    // Consume prefix, hashes and the opening quote.
    for _ in 0..(ahead + hashes + 1) {
        c.bump();
    }
    if raw {
        // Scan for `"` followed by `hashes` hash marks; no escapes.
        loop {
            match c.bump() {
                None => break,
                Some(b'"') => {
                    let mut n = 0;
                    while n < hashes && c.peek(n) == Some(b'#') {
                        n += 1;
                    }
                    if n == hashes {
                        for _ in 0..hashes {
                            c.bump();
                        }
                        break;
                    }
                }
                Some(_) => {}
            }
        }
    } else {
        lex_string_body(c);
    }
    out.tokens.push(Token {
        kind: TokKind::Literal,
        text: "\"str\"".into(),
        line,
    });
    true
}

/// Consume a numeric literal: integers with base prefixes and suffixes,
/// floats with fraction and signed exponents. Precision only matters for
/// not swallowing a `..` range after an integer.
fn lex_number(c: &mut Cursor<'_>) {
    let consume_digits = |c: &mut Cursor<'_>| {
        while let Some(n) = c.peek(0) {
            if is_ident_continue(n) {
                let at_exp = (n == b'e' || n == b'E')
                    && matches!(c.peek(1), Some(b'+') | Some(b'-'))
                    && c.peek(2).is_some_and(|d| d.is_ascii_digit());
                c.bump();
                if at_exp {
                    c.bump(); // the sign
                }
            } else {
                break;
            }
        }
    };
    consume_digits(c);
    // Fractional part only when the dot is followed by a digit (so `0..n`
    // stays a range and `1.max(2)` stays a method call).
    if c.peek(0) == Some(b'.') && c.peek(1).is_some_and(|d| d.is_ascii_digit()) {
        c.bump();
        consume_digits(c);
    }
}
