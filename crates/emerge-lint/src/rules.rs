//! The five rule families plus the waiver audit.
//!
//! Every rule reports `Finding`s; the engine subtracts waivered findings
//! (marking the waiver used) and then reports any *unused* waiver as a
//! finding of its own, so stale waivers cannot linger after the code
//! they excused is fixed.

use crate::analyze::{FileModel, MIN_WAIVER_REASON, WAIVABLE_RULES};
use crate::lexer::{TokKind, Token};

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

/// Facts about the file being linted that rules scope themselves by.
pub struct RuleCtx<'a> {
    /// Workspace-relative path, `/`-separated.
    pub path: &'a str,
    /// Crate name (`emerge-crypto`, ...) or `""` for the root package.
    pub krate: &'a str,
}

impl RuleCtx<'_> {
    fn stem(&self) -> &str {
        let base = self.path.rsplit('/').next().unwrap_or(self.path);
        base.strip_suffix(".rs").unwrap_or(base)
    }
}

/// Hot-path functions beyond the `*_into` / `*_pooled` naming convention:
/// the pooled trial pipeline's steady-state entry points whose allocation
/// freedom the PR 6 counting-allocator test asserts at runtime.
pub const HOT_PATH_FNS: &[&str] = &[
    "rebuild",
    "resample",
    "reset",
    "open_segment",
    "pooled_trial_digest",
];

/// Identifier substrings treated as secret material by the constant-time
/// rule (scoped to `emerge-crypto`).
const SECRETISH: &[&str] = &["tag", "mac", "secret", "digest", "key"];

pub fn run_all(ctx: &RuleCtx<'_>, model: &FileModel<'_>) -> Vec<Finding> {
    let mut raw = Vec::new();
    rule_unsafe_audit(ctx, model, &mut raw);
    rule_panic_freedom(ctx, model, &mut raw);
    if ctx.krate == "emerge-crypto" {
        rule_constant_time(ctx, model, &mut raw);
    }
    rule_hot_path_alloc(ctx, model, &mut raw);
    if ctx.stem() == "wire" || ctx.stem() == "package" {
        rule_wire_hygiene(ctx, model, &mut raw);
    }

    // Apply waivers: a finding is dropped when a well-formed waiver for
    // its rule sits on the same line or directly above.
    let mut used = vec![false; model.waivers.len()];
    let mut findings: Vec<Finding> = Vec::new();
    for f in raw {
        match model.waiver_for(f.rule, f.line) {
            Some(idx) if waiver_is_well_formed(model, idx) => used[idx] = true,
            _ => findings.push(f),
        }
    }

    // Waiver audit: malformed or unused waivers are findings themselves.
    for (idx, w) in model.waivers.iter().enumerate() {
        if !WAIVABLE_RULES.contains(&w.rule.as_str()) {
            findings.push(Finding {
                file: ctx.path.to_string(),
                line: w.line,
                rule: "waiver",
                message: format!(
                    "unknown waiver rule `{}` (waivable rules: {})",
                    w.rule,
                    WAIVABLE_RULES.join(", ")
                ),
            });
        } else if w.reason.len() < MIN_WAIVER_REASON {
            findings.push(Finding {
                file: ctx.path.to_string(),
                line: w.line,
                rule: "waiver",
                message: format!(
                    "waiver reason too short ({} chars, need >= {}): a waiver must say *why* the invariant holds",
                    w.reason.len(),
                    MIN_WAIVER_REASON
                ),
            });
        } else if !used[idx] {
            findings.push(Finding {
                file: ctx.path.to_string(),
                line: w.line,
                rule: "waiver",
                message: format!(
                    "unused LINT-WAIVER({}): no matching finding on this or the next code line — delete the stale waiver",
                    w.rule
                ),
            });
        }
    }

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

fn waiver_is_well_formed(model: &FileModel<'_>, idx: usize) -> bool {
    let w = &model.waivers[idx];
    WAIVABLE_RULES.contains(&w.rule.as_str()) && w.reason.len() >= MIN_WAIVER_REASON
}

// ---------------------------------------------------------------------------
// Rule 1: unsafe-audit — every `unsafe` keyword needs a SAFETY justification
// in the comment block directly above (or a `# Safety` rustdoc section for
// `unsafe fn`). Applies to test code too, and cannot be waived.
// ---------------------------------------------------------------------------
fn rule_unsafe_audit(ctx: &RuleCtx<'_>, model: &FileModel<'_>, out: &mut Vec<Finding>) {
    for t in model.tokens {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        if !model.comment_near_above(t.line, 8, &["SAFETY:", "# Safety"]) {
            out.push(Finding {
                file: ctx.path.to_string(),
                line: t.line,
                rule: "unsafe",
                message:
                    "`unsafe` without a `// SAFETY:` justification in the preceding comment block"
                        .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 2: panic-freedom — no unwrap/expect/panic!/assert! family in
// non-test code. `debug_assert*` is allowed (compiled out of release
// builds); invariant-backed sites carry a panic waiver comment whose
// reason states why the invariant holds.
// ---------------------------------------------------------------------------
const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];
const PANIC_MACROS: &[&str] = &[
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];

fn rule_panic_freedom(ctx: &RuleCtx<'_>, model: &FileModel<'_>, out: &mut Vec<Finding>) {
    let toks = model.tokens;
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || model.is_test(i) {
            continue;
        }
        let name = toks[i].text.as_str();
        let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
        let next = toks.get(i + 1).map(|t| t.text.as_str());

        let method_call = PANIC_METHODS.contains(&name) && prev == Some(".") && next == Some("(");
        let macro_call = PANIC_MACROS.contains(&name)
            && next == Some("!")
            // Not a method or path segment named like a macro.
            && prev != Some(".")
            && prev != Some("::");
        if method_call || macro_call {
            let what = if method_call {
                format!(".{name}()")
            } else {
                format!("{name}!")
            };
            out.push(Finding {
                file: ctx.path.to_string(),
                line: toks[i].line,
                rule: "panic",
                message: format!(
                    "`{what}` in non-test code: return an error or add `// LINT-WAIVER(panic): <why the invariant holds>`"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 3: constant-time discipline (emerge-crypto only) — flags
// (a) `==`/`!=` where a nearby operand identifier names secret material
//     (tag/mac/secret/digest/key), unless the comparison is over lengths;
// (b) indexing a SCREAMING_CASE lookup table with a value-derived index
//     (an `as usize` cast inside the brackets — loop counters are already
//     usize and do not trip this).
// The designated constant-time path is `hmac::verify_tag` / `ct_eq`-style
// accumulator loops, which compare an all-public difference accumulator
// and therefore do not trip (a).
// ---------------------------------------------------------------------------
fn rule_constant_time(ctx: &RuleCtx<'_>, model: &FileModel<'_>, out: &mut Vec<Finding>) {
    let toks = model.tokens;
    for i in 0..toks.len() {
        if model.is_test(i) {
            continue;
        }
        let t = &toks[i];
        if t.kind == TokKind::Punct && (t.text == "==" || t.text == "!=") {
            if comparison_is_over_lengths(toks, i) {
                continue;
            }
            let window_secret = window_idents(toks, i, 6).find(|id| {
                let lower = id.to_ascii_lowercase();
                SECRETISH.iter().any(|s| lower.contains(s))
            });
            if let Some(id) = window_secret {
                out.push(Finding {
                    file: ctx.path.to_string(),
                    line: t.line,
                    rule: "ct",
                    message: format!(
                        "`{}` near secret-named operand `{}`: use the constant-time `verify_tag`/`ct_eq` path or waive with the timing argument",
                        t.text, id
                    ),
                });
            }
        }
        // (b) secret-indexed table lookup: CONST_TABLE[ ... as usize ... ]
        if t.kind == TokKind::Ident
            && is_screaming_case(&t.text)
            && toks.get(i + 1).is_some_and(|n| n.text == "[")
        {
            let mut depth = 0i64;
            let mut j = i + 1;
            let mut cast_in_index = false;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "as" if toks[j].kind == TokKind::Ident
                        && toks.get(j + 1).is_some_and(|n| n.text == "usize") =>
                    {
                        cast_in_index = true;
                    }
                    _ => {}
                }
                j += 1;
            }
            if cast_in_index {
                out.push(Finding {
                    file: ctx.path.to_string(),
                    line: t.line,
                    rule: "ct",
                    message: format!(
                        "value-derived index into lookup table `{}`: a data-dependent load leaks the operand through the cache — use a branchless kernel or waive with the reason the operand is public",
                        t.text
                    ),
                });
            }
        }
    }
}

/// `a.len() == b`, `x != y.len()`, `.is_empty()` comparisons are about
/// public sizes, not secret contents. Bare size variables (`len`,
/// `*_len`, `count`, `*_count`) compared directly count too.
fn comparison_is_over_lengths(toks: &[Token], op: usize) -> bool {
    let is_size_ident = |t: &Token| {
        t.kind == TokKind::Ident
            && (t.text == "len"
                || t.text.ends_with("_len")
                || t.text == "count"
                || t.text.ends_with("_count"))
    };
    if op >= 1 && is_size_ident(&toks[op - 1]) {
        return true;
    }
    if toks.get(op + 1).is_some_and(is_size_ident) {
        return true;
    }
    // Left operand ends with `.len()` / `.is_empty()`.
    if op >= 4
        && toks[op - 1].text == ")"
        && toks[op - 2].text == "("
        && (toks[op - 3].text == "len" || toks[op - 3].text == "is_empty")
        && toks[op - 4].text == "."
    {
        return true;
    }
    // Right operand contains `.len()` / `.is_empty()` before any
    // expression terminator.
    let mut j = op + 1;
    while j + 2 < toks.len() {
        match toks[j].text.as_str() {
            ";" | "{" | "," => break,
            "." if toks[j + 1].text == "len" || toks[j + 1].text == "is_empty" => return true,
            _ => {}
        }
        j += 1;
        if j > op + 8 {
            break;
        }
    }
    false
}

fn window_idents(toks: &[Token], center: usize, radius: usize) -> impl Iterator<Item = &str> {
    let lo = center.saturating_sub(radius);
    let hi = (center + radius + 1).min(toks.len());
    toks[lo..hi]
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
}

fn is_screaming_case(s: &str) -> bool {
    s.len() >= 3
        && s.chars().any(|c| c.is_ascii_uppercase())
        && s.chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

// ---------------------------------------------------------------------------
// Rule 4: hot-path allocation discipline — functions on the pooled
// pipeline (`*_into`, `*_pooled`, plus HOT_PATH_FNS) must not call
// allocating constructors. This makes the PR 6 counting-allocator test a
// static invariant rather than a runtime-only one.
// ---------------------------------------------------------------------------
const ALLOC_PATHS: &[(&str, &[&str])] = &[
    ("Vec", &["new", "with_capacity", "from", "from_iter"]),
    (
        "String",
        &[
            "new",
            "with_capacity",
            "from",
            "from_utf8",
            "from_utf8_lossy",
        ],
    ),
    ("Box", &["new"]),
    ("Rc", &["new"]),
    ("Arc", &["new"]),
    ("HashMap", &["new", "with_capacity"]),
    ("HashSet", &["new", "with_capacity"]),
    ("BTreeMap", &["new"]),
    ("VecDeque", &["new", "with_capacity"]),
];
const ALLOC_METHODS: &[&str] = &[
    "to_vec",
    "to_string",
    "to_owned",
    "collect",
    "clone",
    "into_owned",
];
const ALLOC_MACROS: &[&str] = &["vec", "format"];

fn rule_hot_path_alloc(ctx: &RuleCtx<'_>, model: &FileModel<'_>, out: &mut Vec<Finding>) {
    for f in &model.fns {
        let hot = f.name.ends_with("_into")
            || f.name.ends_with("_pooled")
            || HOT_PATH_FNS.contains(&f.name.as_str());
        let Some((body_start, body_end)) = f.body else {
            continue;
        };
        if !hot || model.is_test(body_start) {
            continue;
        }
        let toks = model.tokens;
        for i in body_start..=body_end.min(toks.len().saturating_sub(1)) {
            if toks[i].kind != TokKind::Ident {
                continue;
            }
            let name = toks[i].text.as_str();
            let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
            let next = toks.get(i + 1).map(|t| t.text.as_str());

            let mut hit: Option<String> = None;
            if ALLOC_MACROS.contains(&name) && next == Some("!") && prev != Some(".") {
                hit = Some(format!("{name}!"));
            } else if ALLOC_METHODS.contains(&name) && prev == Some(".") && next == Some("(") {
                hit = Some(format!(".{name}()"));
            } else if next == Some("::") {
                if let Some((_, ctors)) = ALLOC_PATHS.iter().find(|(ty, _)| *ty == name) {
                    if let Some(ctor) = toks.get(i + 2) {
                        // Skip over a turbofish: `Vec::<u8>::new`.
                        let ctor_name = if ctor.text == "<" {
                            let mut j = i + 2;
                            let mut angle = 0i64;
                            while j < toks.len() {
                                match toks[j].text.as_str() {
                                    "<" => angle += 1,
                                    ">" => {
                                        angle -= 1;
                                        if angle == 0 {
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                                j += 1;
                            }
                            toks.get(j + 2).map(|t| t.text.as_str())
                        } else {
                            Some(ctor.text.as_str())
                        };
                        if let Some(c) = ctor_name {
                            if ctors.contains(&c) {
                                hit = Some(format!("{name}::{c}"));
                            }
                        }
                    }
                }
            }
            if let Some(what) = hit {
                out.push(Finding {
                    file: ctx.path.to_string(),
                    line: toks[i].line,
                    rule: "alloc",
                    message: format!(
                        "`{what}` inside hot-path fn `{}`: the pooled pipeline must not allocate — reuse workspace buffers or waive with the reason no heap allocation occurs",
                        f.name
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 5: wire hygiene — truncating `as` casts in wire/package modules.
// A silent `as u16` on a length is exactly how a 70,000-byte segment
// becomes a 4,464-byte one on the wire; use `try_from` + an error.
// ---------------------------------------------------------------------------
const TRUNCATING_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

fn rule_wire_hygiene(ctx: &RuleCtx<'_>, model: &FileModel<'_>, out: &mut Vec<Finding>) {
    let toks = model.tokens;
    for i in 0..toks.len() {
        if model.is_test(i) {
            continue;
        }
        if toks[i].kind == TokKind::Ident && toks[i].text == "as" {
            // `as` inside a `use x as y;` rename has an ident after it too,
            // but renames never target primitive types.
            if let Some(target) = toks.get(i + 1) {
                if TRUNCATING_TARGETS.contains(&target.text.as_str()) {
                    // A literal cast like `0xFF as u8` cannot truncate at
                    // runtime; still noisy, but the compiler already
                    // warns on overflow there. Skip literal operands.
                    let prev_literal = i
                        .checked_sub(1)
                        .is_some_and(|p| toks[p].kind == TokKind::Literal);
                    if !prev_literal {
                        out.push(Finding {
                            file: ctx.path.to_string(),
                            line: toks[i].line,
                            rule: "wire",
                            message: format!(
                                "truncating `as {}` cast in a wire/package module: use `{}::try_from` and surface the error, or waive with the range argument",
                                target.text, target.text
                            ),
                        });
                    }
                }
            }
        }
    }
}
