//! `emerge-lint` — workspace-native static analysis for the
//! self-emerging-data workspace.
//!
//! The paper's guarantee is only as strong as the crypto floor backing
//! it: a tag check that branches on secret bytes or an unaudited
//! `unsafe` SIMD kernel leaks exactly what the protocol withholds. This
//! crate enforces those invariants *structurally*, at CI time, with five
//! rule families over a hand-rolled token lexer (the build is air-gapped,
//! so no `syn`):
//!
//! | rule     | scope                    | requirement |
//! |----------|--------------------------|-------------|
//! | `unsafe` | everywhere (incl. tests) | every `unsafe` carries `// SAFETY:` (or `# Safety` rustdoc); not waivable |
//! | `panic`  | non-test code            | no `unwrap`/`expect`/`panic!`/`assert!` family (`debug_assert*` allowed) |
//! | `ct`     | `emerge-crypto`          | no `==`/`!=` on secret-named operands outside `verify_tag`/`ct_eq`; no value-derived lookup-table indexing |
//! | `alloc`  | `*_into`/`*_pooled`/hot-list fns | no allocating constructors on the pooled pipeline |
//! | `wire`   | `wire`/`package` modules | no truncating `as` casts; use `try_from` |
//!
//! Findings are suppressed site-by-site with a machine-checked comment:
//!
//! ```text
//! // LINT-WAIVER(panic): slot index bounded by the loop over self.slots
//! let slot = self.slots.last().unwrap();
//! ```
//!
//! The waiver rule name must be one of `panic`/`ct`/`alloc`/`wire`, the
//! reason must be substantive (>= 10 chars), and a waiver that no longer
//! suppresses anything is itself a finding — stale waivers cannot rot in
//! place. Run with `cargo run -p emerge-lint -- --check`.
#![forbid(unsafe_code)]

pub mod analyze;
pub mod engine;
pub mod lexer;
pub mod rules;

pub use engine::{lint_source, lint_workspace, Report};
pub use rules::Finding;
