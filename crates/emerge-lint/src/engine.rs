//! Workspace walking and the lint driver.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::analyze::FileModel;
use crate::lexer;
use crate::rules::{self, Finding, RuleCtx};

/// The scan covers non-test library and binary sources: `src/` of the
/// root package and of every crate under `crates/`. Vendor shims,
/// integration-test trees, examples and benches are out of scope — the
/// rules target shipping code (unsafe-audit still applies to in-file
/// `#[cfg(test)]` modules, which live under `src/`).
pub fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk_rs(&root_src, &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<_> = fs::read_dir(&crates_dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for krate in entries {
            let src = krate.join("src");
            if src.is_dir() {
                walk_rs(&src, &mut files)?;
            }
        }
    }
    files.sort();
    Ok(files)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
    pub waivers_honored: usize,
}

/// Lint a single source text. `rel_path` is the `/`-separated
/// workspace-relative path that rules use for crate and module scoping.
pub fn lint_source(rel_path: &str, src: &str) -> (Vec<Finding>, usize) {
    let krate = rel_path
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("");
    let lexed = lexer::lex(src);
    let model = FileModel::build(&lexed);
    let total_waivers = model.waivers.len();
    let ctx = RuleCtx {
        path: rel_path,
        krate,
    };
    let findings = rules::run_all(&ctx, &model);
    // Waivers that produced findings (malformed/unused) were not honored.
    let rejected = findings.iter().filter(|f| f.rule == "waiver").count();
    (findings, total_waivers.saturating_sub(rejected))
}

pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    for path in collect_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = fs::read_to_string(&path)?;
        let (findings, honored) = lint_source(&rel, &src);
        report.findings.extend(findings);
        report.waivers_honored += honored;
        report.files_scanned += 1;
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}
