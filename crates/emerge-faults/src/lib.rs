//! The deterministic fault plane shared by every substrate.
//!
//! Robustness work needs a failure model richer than a single drop
//! probability: correlated outages, crash/restart with state loss, loss
//! bursts, churn storms, slow nodes, block-clock skew and stored-value
//! tampering — plus the recovery machinery (bounded retry, timeouts,
//! hedged lookups) that survives them. This crate provides exactly that,
//! with one non-negotiable property: **everything is a pure function of
//! seeds**. A [`plan::FaultPlan`] compiles from a seed, arms into a
//! per-world [`injector::FaultInjector`], and every individual fault
//! decision hashes `(arm seed, operation, operand)` — so the same plan
//! replays bit-identically at any shard count, and sharded Monte-Carlo
//! stays exactly mergeable under faults.
//!
//! Layering: this crate depends only on `emerge-sim` (time, hashing) and
//! `emerge-obs` (fault counters and retry histograms). The substrate-side
//! wrapper that applies a plan at the `HolderSubstrate` trait boundary
//! lives in `emerge-core::faults`; the contract-path clock-skew and
//! crash-before-reveal wiring lives in `emerge-contract`.
//!
//! * [`plan`] — fault event kinds, windows and the seeded [`plan::FaultPlan`]
//! * [`scenario`] — the named scenario catalog behind `--faults <scenario>`
//! * [`injector`] — per-world armed decisions plus fault statistics
//! * [`recovery`] — retry/backoff, timeout and hedging policies

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod injector;
pub mod plan;
pub mod recovery;
pub mod scenario;

pub use injector::{FaultInjector, FaultStats};
pub use plan::{FaultEvent, FaultKind, FaultPlan, PPM_SCALE};
pub use recovery::{HedgePolicy, RecoveryPolicy, RetryPolicy, TimeoutPolicy};
pub use scenario::Scenario;
