//! The named scenario catalog behind `montecarlo_baseline --faults`.
//!
//! A [`Scenario`] compiles `(intensity, horizon, seed)` into a concrete
//! [`FaultPlan`] with pure integer arithmetic, so the same name and knobs
//! always produce the same schedule. Scenarios place their fault windows
//! over the middle 80% of the horizon: protocols get a clean start, the
//! fault bites while shares are in flight, and trials whose emergence
//! lands late still exercise the tail.

use emerge_sim::time::SimTime;

use crate::plan::{FaultEvent, FaultKind, FaultPlan};

/// A named fault scenario from the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Uncorrelated per-contact message loss at `intensity_ppm`.
    LossBurst,
    /// Correlated outage: a fixed residue class of slots goes dark. The
    /// intensity selects the stride — `intensity_ppm` per million slots
    /// are out (e.g. `250_000` takes out every 4th slot).
    CorrelatedOutage,
    /// Crash + restart with state loss at `intensity_ppm` per slot.
    CrashStorm,
    /// Keyspace reshuffle redirecting `intensity_ppm` of resolutions.
    ChurnStorm,
    /// Slow nodes inflating lookup latency on `intensity_ppm` of slots.
    SlowNodes,
    /// Contract block-clock skew on `intensity_ppm` of holders.
    ClockSkew,
    /// Stored-value corruption on `intensity_ppm` of fetches.
    Tamper,
}

impl Scenario {
    /// Every catalogued scenario, in stable order.
    pub fn all() -> &'static [Scenario] {
        &[
            Scenario::LossBurst,
            Scenario::CorrelatedOutage,
            Scenario::CrashStorm,
            Scenario::ChurnStorm,
            Scenario::SlowNodes,
            Scenario::ClockSkew,
            Scenario::Tamper,
        ]
    }

    /// The scenario's stable CLI / report name.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::LossBurst => "loss_burst",
            Scenario::CorrelatedOutage => "correlated_outage",
            Scenario::CrashStorm => "crash_storm",
            Scenario::ChurnStorm => "churn_storm",
            Scenario::SlowNodes => "slow_nodes",
            Scenario::ClockSkew => "clock_skew",
            Scenario::Tamper => "tamper",
        }
    }

    /// Parses a CLI name back into a scenario.
    pub fn parse(name: &str) -> Option<Scenario> {
        Scenario::all().iter().copied().find(|s| s.name() == name)
    }

    /// Compiles the scenario into a plan: one window over the middle 80%
    /// of `[0, horizon_ticks)` at the given intensity. Deterministic in
    /// all three arguments.
    pub fn plan(&self, intensity_ppm: u32, horizon_ticks: u64, seed: u64) -> FaultPlan {
        let from = SimTime::from_ticks(horizon_ticks / 10);
        let to = SimTime::from_ticks(horizon_ticks - horizon_ticks / 10);
        let kind = match self {
            Scenario::LossBurst => FaultKind::LossBurst {
                loss_ppm: intensity_ppm,
            },
            Scenario::CorrelatedOutage => {
                // Pick the stride whose outage fraction best matches the
                // requested intensity: 1/modulus ~= intensity_ppm / 1e6.
                let modulus = if intensity_ppm == 0 {
                    usize::MAX
                } else {
                    (1_000_000usize / (intensity_ppm as usize).max(1)).max(2)
                };
                FaultKind::SlotOutage {
                    modulus,
                    residue: 1,
                }
            }
            Scenario::CrashStorm => FaultKind::CrashRestart {
                crash_ppm: intensity_ppm,
            },
            Scenario::ChurnStorm => FaultKind::ChurnStorm {
                churn_ppm: intensity_ppm,
            },
            Scenario::SlowNodes => FaultKind::SlowNodes {
                slow_ppm: intensity_ppm,
                extra_ticks: 500,
            },
            Scenario::ClockSkew => FaultKind::ClockSkew {
                skew_ppm: intensity_ppm,
                blocks: 64,
            },
            Scenario::Tamper => FaultKind::Tamper {
                tamper_ppm: intensity_ppm,
            },
        };
        FaultPlan::new(seed, vec![FaultEvent { from, to, kind }])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for s in Scenario::all() {
            assert_eq!(Scenario::parse(s.name()), Some(*s));
        }
        assert_eq!(Scenario::parse("no_such_fault"), None);
    }

    #[test]
    fn plans_are_deterministic() {
        let a = Scenario::CrashStorm.plan(100_000, 1_000_000, 7);
        let b = Scenario::CrashStorm.plan(100_000, 1_000_000, 7);
        assert_eq!(a, b);
        assert_eq!(a.events().len(), 1);
        assert_eq!(a.events()[0].from, SimTime::from_ticks(100_000));
        assert_eq!(a.events()[0].to, SimTime::from_ticks(900_000));
    }

    #[test]
    fn outage_stride_tracks_intensity() {
        let quarter = Scenario::CorrelatedOutage.plan(250_000, 1_000, 1);
        let FaultKind::SlotOutage { modulus, .. } = quarter.events()[0].kind else {
            panic!("wrong kind");
        };
        assert_eq!(modulus, 4);
    }
}
