//! Recovery policies: bounded retry with deterministic backoff,
//! per-attempt timeouts, and hedged redundant lookups.
//!
//! Policies are plain `Copy` configuration — the machinery that applies
//! them (retry loops in `find_value`, hedges over `closest_slots`) lives
//! in the substrate wrappers. Keeping policy and mechanism apart lets the
//! same policy drive the analytic, overlay, contract and cloud paths.

/// Bounded retry with deterministic exponential backoff.
///
/// Backoff is *virtual*: attempts are re-rolled immediately, but the
/// configured wait is accounted as virtual latency so degraded runs
/// report how long recovery would have stalled a real deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per lookup, including the first (`0` acts as `1`).
    pub max_attempts: u32,
    /// Backoff before the first retry, in ticks.
    pub base_backoff_ticks: u64,
    /// Multiplier applied per further retry (`2` doubles each time).
    pub multiplier: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ticks: 8,
            multiplier: 2,
        }
    }
}

impl RetryPolicy {
    /// The backoff waited before retry number `retry` (1-based; `0`
    /// — the initial attempt — waits nothing). Saturates instead of
    /// overflowing so absurd policies stay well-defined.
    pub fn backoff_ticks(&self, retry: u32) -> u64 {
        if retry == 0 {
            return 0;
        }
        let factor = u64::from(self.multiplier).saturating_pow(retry - 1);
        self.base_backoff_ticks.saturating_mul(factor)
    }

    /// Total attempts, never less than one.
    pub fn attempts(&self) -> u32 {
        self.max_attempts.max(1)
    }
}

/// Per-attempt lookup timeout.
///
/// An attempt whose virtual latency (base plus slow-node inflation)
/// exceeds the budget is abandoned and counted as a timeout; the retry
/// policy decides whether another attempt follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeoutPolicy {
    /// Latency budget per attempt, in ticks.
    pub per_attempt_ticks: u64,
}

impl Default for TimeoutPolicy {
    fn default() -> Self {
        TimeoutPolicy {
            per_attempt_ticks: 200,
        }
    }
}

/// Hedged redundant lookups over the `fanout` closest slots.
///
/// When the primary slot is unreachable, resolution and retrieval fall
/// through the next-closest replicas in deterministic order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HedgePolicy {
    /// How many closest slots to consider, including the primary.
    pub fanout: usize,
}

impl Default for HedgePolicy {
    fn default() -> Self {
        HedgePolicy { fanout: 3 }
    }
}

/// The complete recovery stance of a faulty substrate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Retry/backoff behaviour for lookups.
    pub retry: RetryPolicy,
    /// Per-attempt timeout.
    pub timeout: TimeoutPolicy,
    /// Hedged redundancy for resolution and retrieval.
    pub hedge: HedgePolicy,
}

impl RecoveryPolicy {
    /// A policy that never retries, never hedges and never times out —
    /// faults land at full force. Useful as an experimental control.
    pub fn brittle() -> Self {
        RecoveryPolicy {
            retry: RetryPolicy {
                max_attempts: 1,
                base_backoff_ticks: 0,
                multiplier: 1,
            },
            timeout: TimeoutPolicy {
                per_attempt_ticks: u64::MAX,
            },
            hedge: HedgePolicy { fanout: 1 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_saturates() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_backoff_ticks: 10,
            multiplier: 3,
        };
        assert_eq!(p.backoff_ticks(0), 0);
        assert_eq!(p.backoff_ticks(1), 10);
        assert_eq!(p.backoff_ticks(2), 30);
        assert_eq!(p.backoff_ticks(3), 90);
        let huge = RetryPolicy {
            max_attempts: 200,
            base_backoff_ticks: u64::MAX / 2,
            multiplier: u32::MAX,
        };
        assert_eq!(huge.backoff_ticks(100), u64::MAX);
    }

    #[test]
    fn zero_attempts_still_tries_once() {
        let p = RetryPolicy {
            max_attempts: 0,
            base_backoff_ticks: 1,
            multiplier: 2,
        };
        assert_eq!(p.attempts(), 1);
    }

    #[test]
    fn brittle_policy_disables_recovery() {
        let p = RecoveryPolicy::brittle();
        assert_eq!(p.retry.attempts(), 1);
        assert_eq!(p.hedge.fanout, 1);
        assert_eq!(p.timeout.per_attempt_ticks, u64::MAX);
    }
}
