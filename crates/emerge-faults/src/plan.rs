//! Fault events, windows and the seeded [`FaultPlan`].
//!
//! A plan is a *schedule*: a list of [`FaultEvent`]s, each a fault kind
//! active over a half-open window `[from, to)` of substrate time. Plans
//! carry no mutable state and make no decisions themselves — arming a
//! plan against a trial's world seed yields a
//! [`FaultInjector`], and every per-call
//! decision the injector takes is a pure hash of the armed seed and the
//! operation's operands. Probabilities are expressed in integer parts per
//! million ([`PPM_SCALE`]) so decisions are exact and platform-independent.

use emerge_sim::shard::mix64;
use emerge_sim::time::SimTime;

use crate::injector::FaultInjector;

/// The probability denominator: fault intensities are parts per million,
/// so `1_000_000` means "always" and `0` means "never".
pub const PPM_SCALE: u32 = 1_000_000;

/// One kind of injected fault, with its intensity.
///
/// Every probabilistic field is an integer in `[0, PPM_SCALE]` parts per
/// million — exact, hashable, platform-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Message-loss burst: any single holder contact (a hop handoff in
    /// the executor, one lookup attempt in `find_value`) is lost with
    /// probability `loss_ppm`, independently per `(slot, tick)` /
    /// `(key, attempt)` pair. Uncorrelated, fine-grained loss.
    LossBurst {
        /// Per-contact loss probability in parts per million.
        loss_ppm: u32,
    },
    /// Correlated slot outage: every slot congruent to `residue` modulo
    /// `modulus` is unreachable for the whole window. Lookups against an
    /// out slot fail and holder resolution hedges to the nearest live
    /// slot; nothing about the outage set is random.
    SlotOutage {
        /// The outage stride (`0` or `1` takes the whole population out).
        modulus: usize,
        /// Which residue class is out.
        residue: usize,
    },
    /// Crash + restart with state loss: each slot flips one seeded coin
    /// at `crash_ppm` for the window. A crashed slot's holder is
    /// unreachable for the entire window and any value stored on it
    /// while crashed is lost.
    CrashRestart {
        /// Per-slot crash probability in parts per million.
        crash_ppm: u32,
    },
    /// Churn storm: a keyspace reshuffle. Each slot flips one seeded coin
    /// at `churn_ppm`; holder addresses resolving to a churned slot are
    /// redirected to a deterministic neighbour, perturbing placement the
    /// way a mass join/leave wave would. Lookups against a churned
    /// address miss the stored value unless a hedge wider than the
    /// primary walks back onto the pre-storm holder.
    ChurnStorm {
        /// Per-slot reshuffle probability in parts per million.
        churn_ppm: u32,
    },
    /// Slow nodes: each slot flips one seeded coin at `slow_ppm`; a slow
    /// slot inflates every lookup against it by `extra_ticks` of virtual
    /// latency. Combined with a
    /// [`TimeoutPolicy`](crate::recovery::TimeoutPolicy), slow lookups
    /// time out and burn retry attempts.
    SlowNodes {
        /// Per-slot slow probability in parts per million.
        slow_ppm: u32,
        /// Added virtual latency per lookup attempt, in ticks.
        extra_ticks: u64,
    },
    /// Block-clock skew (contract substrate): each holder slot flips one
    /// seeded coin at `skew_ppm`; a skewed holder believes the reveal
    /// window opens `blocks` later than it does and misses it when the
    /// skew exceeds the window length.
    ClockSkew {
        /// Per-holder skew probability in parts per million.
        skew_ppm: u32,
        /// Clock error in blocks.
        blocks: u64,
    },
    /// Stored-value corruption: a fetched value is returned with one
    /// deterministically chosen byte flipped with probability
    /// `tamper_ppm` per lookup. Authenticated encryption downstream must
    /// reject the forgery rather than misroute it.
    Tamper {
        /// Per-lookup corruption probability in parts per million.
        tamper_ppm: u32,
    },
}

impl FaultKind {
    /// Short stable label used in fault fingerprints and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::LossBurst { .. } => "loss_burst",
            FaultKind::SlotOutage { .. } => "slot_outage",
            FaultKind::CrashRestart { .. } => "crash_restart",
            FaultKind::ChurnStorm { .. } => "churn_storm",
            FaultKind::SlowNodes { .. } => "slow_nodes",
            FaultKind::ClockSkew { .. } => "clock_skew",
            FaultKind::Tamper { .. } => "tamper",
        }
    }
}

/// One scheduled fault: a kind active over the half-open window
/// `[from, to)` of substrate time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub to: SimTime,
    /// What goes wrong while the window is open.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Whether the window is open at `t`.
    pub fn active_at(&self, t: SimTime) -> bool {
        self.from <= t && t < self.to
    }
}

/// A deterministic, seeded schedule of fault events.
///
/// The plan seed does **not** vary per trial — it identifies the
/// scenario. Per-trial variation comes from [`FaultPlan::arm`], which
/// mixes the plan seed with the trial's world seed; because world seeds
/// are a pure function of the global trial index, the same plan replays
/// bit-identically at any shard count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: no events, and injectors armed from it answer
    /// "no fault" to everything via a single branch.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            events: Vec::new(),
        }
    }

    /// A plan over an explicit event schedule.
    pub fn new(seed: u64, events: Vec<FaultEvent>) -> Self {
        FaultPlan { seed, events }
    }

    /// The plan's scenario seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled events, in schedule order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Arms the plan for one trial world: decisions taken by the returned
    /// injector are pure functions of `(plan seed, world_seed)` and the
    /// queried operands, so re-arming with the same pair replays the
    /// exact same fault stream.
    pub fn arm(&self, world_seed: u64) -> FaultInjector {
        let arm_seed = mix64(self.seed ^ mix64(world_seed ^ 0xFA17_ED5E_EDF0_0D5E));
        FaultInjector::new(self.events.clone(), arm_seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(from: u64, to: u64, kind: FaultKind) -> FaultEvent {
        FaultEvent {
            from: SimTime::from_ticks(from),
            to: SimTime::from_ticks(to),
            kind,
        }
    }

    #[test]
    fn windows_are_half_open() {
        let e = window(10, 20, FaultKind::LossBurst { loss_ppm: 1 });
        assert!(!e.active_at(SimTime::from_ticks(9)));
        assert!(e.active_at(SimTime::from_ticks(10)));
        assert!(e.active_at(SimTime::from_ticks(19)));
        assert!(!e.active_at(SimTime::from_ticks(20)));
    }

    #[test]
    fn empty_plan_arms_to_an_empty_injector() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(plan.arm(42).is_empty());
    }

    #[test]
    fn arming_is_deterministic_and_seed_sensitive() {
        let plan = FaultPlan::new(
            7,
            vec![window(
                0,
                100,
                FaultKind::CrashRestart { crash_ppm: 500_000 },
            )],
        );
        let a = plan.arm(1);
        let b = plan.arm(1);
        let c = plan.arm(2);
        let t = SimTime::from_ticks(50);
        let a_hits: Vec<bool> = (0..64).map(|s| a.holder_disrupted(s, t)).collect();
        let b_hits: Vec<bool> = (0..64).map(|s| b.holder_disrupted(s, t)).collect();
        let c_hits: Vec<bool> = (0..64).map(|s| c.holder_disrupted(s, t)).collect();
        assert_eq!(a_hits, b_hits, "same world seed, same decisions");
        assert_ne!(a_hits, c_hits, "different world seed, different stream");
    }
}
