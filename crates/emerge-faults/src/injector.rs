//! The armed fault injector: per-world decisions plus fault statistics.
//!
//! A [`FaultInjector`] is what a [`FaultPlan`](crate::plan::FaultPlan)
//! becomes once armed against one trial's world seed. Every decision it
//! takes — is this holder contact lost, is this slot crashed, how many
//! blocks is this holder's clock off — is a **pure hash** of the armed
//! seed, a per-operation tag and the operands (`slot`, tick, key hash,
//! attempt). No decision consumes mutable RNG state, so callers may ask
//! in any order, any number of times, from any shard, and always get the
//! same answer: the property that keeps sharded Monte-Carlo exactly
//! mergeable under faults.
//!
//! The injector also tallies what it did (disruptions, recoveries,
//! retries, timeouts, …) into interior-mutability counters readable via
//! [`FaultInjector::stats`], and mirrors them into `emerge-obs` counters
//! — free no-ops unless a collector is installed.

use std::cell::Cell;

use emerge_obs::metrics::{CounterId, HistogramId};
use emerge_sim::shard::mix64;
use emerge_sim::time::SimTime;

use crate::plan::{FaultEvent, FaultKind, PPM_SCALE};

/// Fault contacts injected (lost hops, crashed holders, outage hits).
pub static FAULTS_INJECTED: CounterId = CounterId::new("faults.injected");
/// Disruptions survived through hedging or replication.
pub static FAULTS_RECOVERED: CounterId = CounterId::new("faults.recovered");
/// Lookup attempts retried after a loss or timeout.
pub static FAULT_RETRIES: CounterId = CounterId::new("faults.lookup_retries");
/// Lookup attempts abandoned to a per-attempt timeout.
pub static FAULT_TIMEOUTS: CounterId = CounterId::new("faults.lookup_timeouts");
/// Trials that released despite at least one injected disruption.
pub static DEGRADED_SUCCESS: CounterId = CounterId::new("faults.degraded_success");
/// Backoff waited before lookup retries, in virtual ticks.
pub static BACKOFF_TICKS: HistogramId = HistogramId::new("faults.backoff_ticks");

// Per-operation hash domain tags (arbitrary odd constants).
const TAG_LOSS: u64 = 0x1ED5;
const TAG_CRASH: u64 = 0x3C4A;
const TAG_CHURN: u64 = 0x4C07;
const TAG_SLOW: u64 = 0x5107;
const TAG_SKEW: u64 = 0x6B3D;
const TAG_TAMPER: u64 = 0x7A21;
const TAG_GHOST: u64 = 0x9057;

/// Counters of what an injector actually did during one trial.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Holder contacts disrupted (lost, crashed or in outage).
    pub disruptions: u64,
    /// Disruptions absorbed by hedging or replication.
    pub recoveries: u64,
    /// Lookup attempts retried.
    pub retries: u64,
    /// Lookup attempts lost to timeouts.
    pub timeouts: u64,
    /// Fetched values returned tampered.
    pub tampered: u64,
    /// Holder resolutions redirected (outage hedge or churn reshuffle).
    pub redirects: u64,
    /// Virtual latency accumulated by slow nodes and backoff, in ticks.
    pub virtual_latency_ticks: u64,
}

impl FaultStats {
    /// Whether the trial saw any injected disruption at all.
    pub fn disrupted(&self) -> bool {
        self.disruptions > 0 || self.tampered > 0 || self.redirects > 0
    }

    /// Digest of the statistics keyed by a global trial index: FNV-1a
    /// over the index and every counter, combined across trials by
    /// wrapping addition exactly like the Monte-Carlo engines' protocol
    /// fingerprints. Lets sharded fault streams be checked bit for bit.
    pub fn digest(&self, trial_idx: u64) -> u64 {
        let mut d = emerge_sim::shard::TrialDigest::new();
        d.eat(&trial_idx.to_le_bytes());
        for v in [
            self.disruptions,
            self.recoveries,
            self.retries,
            self.timeouts,
            self.tampered,
            self.redirects,
            self.virtual_latency_ticks,
        ] {
            d.eat(&v.to_le_bytes());
        }
        d.finish()
    }
}

/// A fault plan armed against one trial world.
///
/// See the [module docs](self) for the determinism contract. All query
/// methods take `&self`; statistics accumulate through [`Cell`]s so the
/// injector can sit inside substrate wrappers whose trait surface is
/// `&self` for reads.
#[derive(Debug)]
pub struct FaultInjector {
    events: Vec<FaultEvent>,
    arm_seed: u64,
    disruptions: Cell<u64>,
    recoveries: Cell<u64>,
    retries: Cell<u64>,
    timeouts: Cell<u64>,
    tampered: Cell<u64>,
    redirects: Cell<u64>,
    virtual_latency_ticks: Cell<u64>,
}

impl FaultInjector {
    /// Arms `events` under `arm_seed`. Use
    /// [`FaultPlan::arm`](crate::plan::FaultPlan::arm) rather than calling
    /// this directly.
    pub fn new(events: Vec<FaultEvent>, arm_seed: u64) -> Self {
        FaultInjector {
            events,
            arm_seed,
            disruptions: Cell::new(0),
            recoveries: Cell::new(0),
            retries: Cell::new(0),
            timeouts: Cell::new(0),
            tampered: Cell::new(0),
            redirects: Cell::new(0),
            virtual_latency_ticks: Cell::new(0),
        }
    }

    /// Whether the injector has no events: the fast path every hook
    /// checks first, so an empty plan costs one branch per call.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The armed events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Pure decision hash: `(arm seed, tag, a, b)` → uniform `u64`.
    fn roll(&self, tag: u64, a: u64, b: u64) -> u64 {
        mix64(mix64(mix64(self.arm_seed ^ tag) ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15)) ^ b)
    }

    fn hits(roll: u64, ppm: u32) -> bool {
        roll % u64::from(PPM_SCALE) < u64::from(ppm)
    }

    /// Whether `slot` is unreachable at `t` through a correlated outage
    /// or a crash window — the coarse, whole-window disruptions that
    /// holder resolution can hedge around.
    pub fn unreachable_at(&self, slot: usize, t: SimTime) -> bool {
        self.events.iter().enumerate().any(|(idx, ev)| {
            ev.active_at(t)
                && match ev.kind {
                    FaultKind::SlotOutage { modulus, residue } => {
                        slot % modulus.max(1) == residue % modulus.max(1)
                    }
                    FaultKind::CrashRestart { crash_ppm } => {
                        Self::hits(self.roll(TAG_CRASH, idx as u64, slot as u64), crash_ppm)
                    }
                    _ => false,
                }
        })
    }

    /// Whether the single holder contact `(slot, t)` is disrupted: the
    /// slot is unreachable, a loss burst eats this specific contact, or a
    /// churn storm replaced the slot's tenant for the window. Counts a
    /// disruption when it fires.
    pub fn holder_disrupted(&self, slot: usize, t: SimTime) -> bool {
        if self.is_empty() {
            return false;
        }
        let hit = self.unreachable_at(slot, t)
            || self.events.iter().enumerate().any(|(idx, ev)| {
                ev.active_at(t)
                    && match ev.kind {
                        FaultKind::LossBurst { loss_ppm } => {
                            Self::hits(self.roll(TAG_LOSS, slot as u64, t.ticks()), loss_ppm)
                        }
                        // A churned slot's tenant is gone for the whole
                        // window: the same slot-stable roll as
                        // `churn_redirect`, so resolution and holder
                        // contacts see one consistent reshuffle.
                        FaultKind::ChurnStorm { churn_ppm } => {
                            Self::hits(self.roll(TAG_CHURN, idx as u64, slot as u64), churn_ppm)
                        }
                        _ => false,
                    }
            });
        if hit {
            self.note_disruption();
        }
        hit
    }

    /// Uniform selector in `[0, pool)` for ghost-tenant identities, keyed
    /// by the exact contact so arrival and departure of the same hop pick
    /// different ghosts (up to a `1/pool` collision).
    pub fn ghost_index(&self, slot: usize, t: SimTime, pool: usize) -> usize {
        (self.roll(TAG_GHOST, slot as u64, t.ticks()) % pool.max(1) as u64) as usize
    }

    /// Churn-storm redirect for a resolution landing on `slot` at `t`:
    /// `Some(offset)` (1-based, `< n_nodes`) when the slot's
    /// responsibility has been reshuffled. Counts a redirect when it
    /// fires.
    pub fn churn_redirect(&self, slot: usize, t: SimTime, n_nodes: usize) -> Option<usize> {
        if self.is_empty() || n_nodes < 2 {
            return None;
        }
        self.events.iter().enumerate().find_map(|(idx, ev)| {
            if !ev.active_at(t) {
                return None;
            }
            let FaultKind::ChurnStorm { churn_ppm } = ev.kind else {
                return None;
            };
            let r = self.roll(TAG_CHURN, idx as u64, slot as u64);
            if Self::hits(r, churn_ppm) {
                self.redirects.set(self.redirects.get() + 1);
                FAULTS_INJECTED.incr();
                Some(1 + (mix64(r) % (n_nodes as u64 - 1)) as usize)
            } else {
                None
            }
        })
    }

    /// Whether one `find_value` attempt for `key_hash` is lost at `t`.
    pub fn lookup_attempt_lost(&self, key_hash: u64, attempt: u32, t: SimTime) -> bool {
        self.events.iter().any(|ev| {
            ev.active_at(t)
                && match ev.kind {
                    FaultKind::LossBurst { loss_ppm } => {
                        Self::hits(self.roll(TAG_LOSS, key_hash, u64::from(attempt)), loss_ppm)
                    }
                    _ => false,
                }
        })
    }

    /// Virtual latency added to a lookup against `slot` at `t` by slow
    /// nodes, in ticks (summed over active events).
    pub fn extra_latency(&self, slot: usize, t: SimTime) -> u64 {
        self.events
            .iter()
            .enumerate()
            .filter_map(|(idx, ev)| {
                if !ev.active_at(t) {
                    return None;
                }
                let FaultKind::SlowNodes {
                    slow_ppm,
                    extra_ticks,
                } = ev.kind
                else {
                    return None;
                };
                Self::hits(self.roll(TAG_SLOW, idx as u64, slot as u64), slow_ppm)
                    .then_some(extra_ticks)
            })
            .fold(0u64, u64::saturating_add)
    }

    /// The tamper decision for one fetched value: `Some(selector)` when
    /// the value must be returned corrupted; the selector picks the byte
    /// to flip. Counts a tampered fetch when it fires.
    pub fn tamper_selector(&self, key_hash: u64, t: SimTime) -> Option<u64> {
        if self.is_empty() {
            return None;
        }
        self.events.iter().enumerate().find_map(|(idx, ev)| {
            if !ev.active_at(t) {
                return None;
            }
            let FaultKind::Tamper { tamper_ppm } = ev.kind else {
                return None;
            };
            let r = self.roll(TAG_TAMPER, idx as u64, key_hash);
            if Self::hits(r, tamper_ppm) {
                self.tampered.set(self.tampered.get() + 1);
                FAULTS_INJECTED.incr();
                Some(mix64(r))
            } else {
                None
            }
        })
    }

    /// How many blocks `slot`'s view of the chain lags at `t` (the
    /// contract-substrate clock-skew fault; `0` means an accurate clock).
    /// Counts a disruption when non-zero.
    pub fn clock_skew_blocks(&self, slot: usize, t: SimTime) -> u64 {
        let skew = self
            .events
            .iter()
            .enumerate()
            .filter_map(|(idx, ev)| {
                if !ev.active_at(t) {
                    return None;
                }
                let FaultKind::ClockSkew { skew_ppm, blocks } = ev.kind else {
                    return None;
                };
                Self::hits(self.roll(TAG_SKEW, idx as u64, slot as u64), skew_ppm).then_some(blocks)
            })
            .max()
            .unwrap_or(0);
        if skew > 0 {
            self.note_disruption();
        }
        skew
    }

    /// Records one injected disruption.
    pub fn note_disruption(&self) {
        self.disruptions.set(self.disruptions.get() + 1);
        FAULTS_INJECTED.incr();
    }

    /// Records one disruption absorbed by hedging or replication.
    pub fn note_recovery(&self) {
        self.recoveries.set(self.recoveries.get() + 1);
        FAULTS_RECOVERED.incr();
    }

    /// Records one retried lookup attempt and the backoff it waited.
    pub fn note_retry(&self, backoff_ticks: u64) {
        self.retries.set(self.retries.get() + 1);
        self.note_latency(backoff_ticks);
        FAULT_RETRIES.incr();
        BACKOFF_TICKS.record(backoff_ticks);
    }

    /// Records one attempt lost to a per-attempt timeout.
    pub fn note_timeout(&self) {
        self.timeouts.set(self.timeouts.get() + 1);
        FAULT_TIMEOUTS.incr();
    }

    /// Records one resolution redirect.
    pub fn note_redirect(&self) {
        self.redirects.set(self.redirects.get() + 1);
    }

    /// Accumulates virtual latency (slow nodes, backoff waits).
    pub fn note_latency(&self, ticks: u64) {
        self.virtual_latency_ticks
            .set(self.virtual_latency_ticks.get().saturating_add(ticks));
    }

    /// A snapshot of everything the injector did so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            disruptions: self.disruptions.get(),
            recoveries: self.recoveries.get(),
            retries: self.retries.get(),
            timeouts: self.timeouts.get(),
            tampered: self.tampered.get(),
            redirects: self.redirects.get(),
            virtual_latency_ticks: self.virtual_latency_ticks.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;

    fn event(from: u64, to: u64, kind: FaultKind) -> FaultEvent {
        FaultEvent {
            from: SimTime::from_ticks(from),
            to: SimTime::from_ticks(to),
            kind,
        }
    }

    #[test]
    fn outage_is_exact_and_windowed() {
        let plan = FaultPlan::new(
            1,
            vec![event(
                100,
                200,
                FaultKind::SlotOutage {
                    modulus: 4,
                    residue: 1,
                },
            )],
        );
        let inj = plan.arm(9);
        let inside = SimTime::from_ticks(150);
        let outside = SimTime::from_ticks(250);
        for slot in 0..32 {
            assert_eq!(
                inj.unreachable_at(slot, inside),
                slot % 4 == 1,
                "slot {slot}"
            );
            assert!(!inj.unreachable_at(slot, outside));
        }
    }

    #[test]
    fn loss_rate_tracks_intensity() {
        let plan = FaultPlan::new(
            2,
            vec![event(
                0,
                1_000_000,
                FaultKind::LossBurst { loss_ppm: 250_000 },
            )],
        );
        let inj = plan.arm(3);
        let t = SimTime::from_ticks(10);
        let lost = (0..10_000u64)
            .filter(|&k| inj.lookup_attempt_lost(k, 0, t))
            .count();
        let rate = lost as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "loss rate {rate}");
    }

    #[test]
    fn decisions_are_stateless_and_repeatable() {
        let plan = FaultPlan::new(
            3,
            vec![event(
                0,
                1_000,
                FaultKind::CrashRestart { crash_ppm: 400_000 },
            )],
        );
        let inj = plan.arm(5);
        let t = SimTime::from_ticks(7);
        let first: Vec<bool> = (0..100).map(|s| inj.unreachable_at(s, t)).collect();
        let again: Vec<bool> = (0..100).map(|s| inj.unreachable_at(s, t)).collect();
        assert_eq!(first, again);
        assert!(first.iter().any(|&b| b) && first.iter().any(|&b| !b));
    }

    #[test]
    fn stats_accumulate() {
        let plan = FaultPlan::new(
            4,
            vec![event(
                0,
                100,
                FaultKind::Tamper {
                    tamper_ppm: PPM_SCALE,
                },
            )],
        );
        let inj = plan.arm(1);
        assert!(inj.tamper_selector(42, SimTime::from_ticks(1)).is_some());
        inj.note_retry(16);
        inj.note_recovery();
        inj.note_timeout();
        let s = inj.stats();
        assert_eq!(s.tampered, 1);
        assert_eq!(s.retries, 1);
        assert_eq!(s.recoveries, 1);
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.virtual_latency_ticks, 16);
        assert!(s.disrupted());
    }

    #[test]
    fn clock_skew_applies_to_a_fraction_of_holders() {
        let plan = FaultPlan::new(
            5,
            vec![event(
                0,
                10_000,
                FaultKind::ClockSkew {
                    skew_ppm: 500_000,
                    blocks: 3,
                },
            )],
        );
        let inj = plan.arm(8);
        let t = SimTime::from_ticks(500);
        let skewed = (0..1000)
            .filter(|&s| inj.clock_skew_blocks(s, t) == 3)
            .count();
        assert!((300..700).contains(&skewed), "skewed {skewed}/1000");
        assert!(inj.stats().disruptions >= skewed as u64);
    }

    #[test]
    fn empty_injector_answers_no_to_everything() {
        let inj = FaultPlan::none().arm(1);
        let t = SimTime::from_ticks(1);
        assert!(inj.is_empty());
        assert!(!inj.holder_disrupted(0, t));
        assert!(!inj.lookup_attempt_lost(0, 0, t));
        assert!(inj.tamper_selector(0, t).is_none());
        assert!(inj.churn_redirect(0, t, 100).is_none());
        assert_eq!(inj.extra_latency(0, t), 0);
        assert_eq!(inj.clock_skew_blocks(0, t), 0);
        assert_eq!(inj.stats(), FaultStats::default());
    }
}
