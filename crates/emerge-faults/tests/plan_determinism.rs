//! Property tests for the fault plane's core guarantee: every decision
//! an armed [`FaultInjector`] makes is a pure function of the plan seed,
//! the world seed, and the query coordinates — never of query order,
//! shard layout, or wall clock. Two injectors armed the same way must
//! answer every question identically, in any order, any number of times.

use emerge_faults::{FaultEvent, FaultKind, FaultPlan, Scenario};
use emerge_sim::time::SimTime;
use proptest::collection::vec as pvec;
use proptest::prelude::*;

fn plan(seed: u64, loss_ppm: u32, crash_ppm: u32) -> FaultPlan {
    let window = |kind| FaultEvent {
        from: SimTime::from_ticks(100),
        to: SimTime::from_ticks(2_000),
        kind,
    };
    FaultPlan::new(
        seed,
        vec![
            window(FaultKind::LossBurst { loss_ppm }),
            window(FaultKind::CrashRestart { crash_ppm }),
            window(FaultKind::SlowNodes {
                slow_ppm: 300_000,
                extra_ticks: 40,
            }),
            window(FaultKind::Tamper {
                tamper_ppm: 200_000,
            }),
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same (plan seed, world seed) → the same answer to every fault
    /// question, replayed in a different order on a separate injector.
    #[test]
    fn same_seeds_replay_the_same_fault_sequence(
        plan_seed in any::<u64>(),
        world_seed in any::<u64>(),
        loss_ppm in 0u32..1_000_000,
        crash_ppm in 0u32..1_000_000,
        slots in pvec(0usize..64, 1..24),
        ticks in pvec(0u64..2_500, 1..24),
    ) {
        let p = plan(plan_seed, loss_ppm, crash_ppm);
        let forward = p.arm(world_seed);
        let backward = p.arm(world_seed);
        let mut seen = Vec::new();
        for (&slot, &tick) in slots.iter().zip(&ticks) {
            let t = SimTime::from_ticks(tick);
            seen.push((
                forward.unreachable_at(slot, t),
                forward.holder_disrupted(slot, t),
                forward.extra_latency(slot, t),
                forward.tamper_selector(slot as u64, t),
                forward.ghost_index(slot, t, 64),
            ));
        }
        // Replay in reverse on the second injector: decisions must be
        // order-independent, not merely repeatable.
        for ((&slot, &tick), expected) in
            slots.iter().zip(&ticks).rev().zip(seen.iter().rev())
        {
            let t = SimTime::from_ticks(tick);
            prop_assert_eq!(backward.unreachable_at(slot, t), expected.0);
            prop_assert_eq!(backward.holder_disrupted(slot, t), expected.1);
            prop_assert_eq!(backward.extra_latency(slot, t), expected.2);
            prop_assert_eq!(backward.tamper_selector(slot as u64, t), expected.3);
            prop_assert_eq!(backward.ghost_index(slot, t, 64), expected.4);
        }
    }

    /// Different world seeds decorrelate the decisions (at full fault
    /// intensity the outcome is forced, so probe at 50%): over enough
    /// coordinates, two worlds must not produce identical loss patterns.
    #[test]
    fn world_seed_decorrelates_decisions(plan_seed in any::<u64>()) {
        let p = plan(plan_seed, 500_000, 500_000);
        let a = p.arm(1);
        let b = p.arm(2);
        let t = SimTime::from_ticks(1_000);
        let differs = (0..256).any(|slot| {
            a.holder_disrupted(slot, t) != b.holder_disrupted(slot, t)
        });
        prop_assert!(differs, "256 slots produced identical patterns across worlds");
    }

    /// Scenario compilation is pure: the same (intensity, horizon, seed)
    /// triple yields the same schedule, and the schedule stays inside the
    /// horizon's middle 80%.
    #[test]
    fn scenario_plans_are_pure_and_windowed(
        intensity in 1u32..1_000_000,
        horizon in 100u64..1_000_000,
        seed in any::<u64>(),
        scenario_idx in 0usize..7,
    ) {
        let scenario = Scenario::all()[scenario_idx];
        let a = scenario.plan(intensity, horizon, seed);
        let b = scenario.plan(intensity, horizon, seed);
        prop_assert_eq!(a.seed(), b.seed());
        prop_assert_eq!(a.events(), b.events());
        for event in a.events() {
            prop_assert!(event.from.ticks() >= horizon / 10);
            prop_assert!(event.to.ticks() <= horizon - horizon / 10);
            prop_assert!(event.from < event.to);
        }
    }
}
