//! # emerge-cloud
//!
//! The cloud substrate of the self-emerging data system (Section II-A of
//! the paper): an always-available store that holds the *encrypted* message
//! during the emerging period `T`. The cloud never sees plaintext or the
//! secret key — those live in the DHT — so a curious cloud learns nothing
//! and a receiver can fetch the ciphertext at any time after `ts`.
//!
//! Access control is token-based: the sender authorizes a receiver by
//! registering the hash of a bearer token; fetches must present the token.
//!
//! ```
//! use emerge_cloud::{BlobStore, AccessToken};
//!
//! let mut cloud = BlobStore::new();
//! let token = AccessToken::from_bytes(b"receiver-credential".to_vec());
//! let id = cloud.put(b"ciphertext...".to_vec(), &[token.fingerprint()]);
//!
//! let blob = cloud.fetch(&id, &token).expect("authorized fetch");
//! assert_eq!(blob, b"ciphertext...");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use emerge_crypto::sha256::Sha256;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Content identifier of a stored blob (SHA-256 of the content).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlobId([u8; 32]);

impl BlobId {
    /// Computes the ID of a blob's content.
    pub fn of(content: &[u8]) -> Self {
        BlobId(Sha256::digest(content))
    }

    /// Raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

impl fmt::Display for BlobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0[..8] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…")
    }
}

/// A bearer credential presented by receivers.
#[derive(Clone, PartialEq, Eq)]
pub struct AccessToken(Vec<u8>);

impl AccessToken {
    /// Wraps raw token bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        AccessToken(bytes)
    }

    /// The token's fingerprint (what the cloud stores — never the token
    /// itself).
    pub fn fingerprint(&self) -> TokenFingerprint {
        TokenFingerprint(Sha256::digest(&self.0))
    }
}

impl fmt::Debug for AccessToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AccessToken(<redacted>)")
    }
}

/// Hash of an access token, safe to store server-side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TokenFingerprint([u8; 32]);

/// Errors returned by cloud operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CloudError {
    /// No blob with the given ID exists.
    NotFound,
    /// The presented token is not authorized for this blob.
    Unauthorized,
}

impl fmt::Display for CloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudError::NotFound => write!(f, "blob not found"),
            CloudError::Unauthorized => write!(f, "token not authorized for blob"),
        }
    }
}

impl Error for CloudError {}

#[derive(Debug, Clone)]
struct BlobRecord {
    content: Vec<u8>,
    authorized: Vec<TokenFingerprint>,
    fetches: u64,
}

/// The cloud blob store.
///
/// Contents are immutable once stored (content-addressed); authorization is
/// a set of token fingerprints fixed by the sender at upload time, with the
/// option to add more grants later.
#[derive(Debug, Clone, Default)]
pub struct BlobStore {
    blobs: HashMap<BlobId, BlobRecord>,
}

impl BlobStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        BlobStore::default()
    }

    /// Stores `content`, granting access to the given token fingerprints.
    /// Returns the content ID. Re-uploading identical content merges the
    /// grant lists.
    pub fn put(&mut self, content: Vec<u8>, grants: &[TokenFingerprint]) -> BlobId {
        let id = BlobId::of(&content);
        let record = self.blobs.entry(id).or_insert_with(|| BlobRecord {
            content,
            authorized: Vec::new(),
            fetches: 0,
        });
        for g in grants {
            if !record.authorized.contains(g) {
                record.authorized.push(*g);
            }
        }
        id
    }

    /// Grants an additional token access to an existing blob.
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::NotFound`] for unknown blobs.
    pub fn grant(&mut self, id: &BlobId, token: TokenFingerprint) -> Result<(), CloudError> {
        let record = self.blobs.get_mut(id).ok_or(CloudError::NotFound)?;
        if !record.authorized.contains(&token) {
            record.authorized.push(token);
        }
        Ok(())
    }

    /// Fetches a blob with an access token.
    ///
    /// # Errors
    ///
    /// [`CloudError::NotFound`] if the blob does not exist,
    /// [`CloudError::Unauthorized`] if the token is not on the grant list.
    pub fn fetch(&mut self, id: &BlobId, token: &AccessToken) -> Result<Vec<u8>, CloudError> {
        let record = self.blobs.get_mut(id).ok_or(CloudError::NotFound)?;
        if !record.authorized.contains(&token.fingerprint()) {
            return Err(CloudError::Unauthorized);
        }
        record.fetches += 1;
        Ok(record.content.clone())
    }

    /// Number of stored blobs.
    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }

    /// How many successful fetches a blob has served.
    pub fn fetch_count(&self, id: &BlobId) -> Option<u64> {
        self.blobs.get(id).map(|r| r.fetches)
    }

    /// Total bytes stored.
    pub fn stored_bytes(&self) -> usize {
        self.blobs.values().map(|r| r.content.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn token(s: &str) -> AccessToken {
        AccessToken::from_bytes(s.as_bytes().to_vec())
    }

    #[test]
    fn put_fetch_roundtrip() {
        let mut cloud = BlobStore::new();
        let t = token("bob");
        let id = cloud.put(b"encrypted exam".to_vec(), &[t.fingerprint()]);
        assert_eq!(cloud.fetch(&id, &t).unwrap(), b"encrypted exam");
        assert_eq!(cloud.fetch_count(&id), Some(1));
    }

    #[test]
    fn unauthorized_token_rejected() {
        let mut cloud = BlobStore::new();
        let id = cloud.put(b"secret".to_vec(), &[token("bob").fingerprint()]);
        assert_eq!(
            cloud.fetch(&id, &token("mallory")),
            Err(CloudError::Unauthorized)
        );
    }

    #[test]
    fn missing_blob_not_found() {
        let mut cloud = BlobStore::new();
        let id = BlobId::of(b"never stored");
        assert_eq!(cloud.fetch(&id, &token("bob")), Err(CloudError::NotFound));
    }

    #[test]
    fn grant_extends_access() {
        let mut cloud = BlobStore::new();
        let id = cloud.put(b"data".to_vec(), &[]);
        let t = token("late-receiver");
        assert_eq!(cloud.fetch(&id, &t), Err(CloudError::Unauthorized));
        cloud.grant(&id, t.fingerprint()).unwrap();
        assert_eq!(cloud.fetch(&id, &t).unwrap(), b"data");
    }

    #[test]
    fn grant_unknown_blob_errors() {
        let mut cloud = BlobStore::new();
        assert_eq!(
            cloud.grant(&BlobId::of(b"x"), token("t").fingerprint()),
            Err(CloudError::NotFound)
        );
    }

    #[test]
    fn content_addressing_dedupes() {
        let mut cloud = BlobStore::new();
        let t1 = token("a");
        let t2 = token("b");
        let id1 = cloud.put(b"same".to_vec(), &[t1.fingerprint()]);
        let id2 = cloud.put(b"same".to_vec(), &[t2.fingerprint()]);
        assert_eq!(id1, id2);
        assert_eq!(cloud.len(), 1);
        // Both grants survive the merge.
        assert!(cloud.fetch(&id1, &t1).is_ok());
        assert!(cloud.fetch(&id1, &t2).is_ok());
    }

    #[test]
    fn token_debug_is_redacted() {
        let t = token("super-secret-token");
        assert!(!format!("{t:?}").contains("super"));
    }

    #[test]
    fn accounting() {
        let mut cloud = BlobStore::new();
        assert!(cloud.is_empty());
        cloud.put(vec![0u8; 100], &[]);
        cloud.put(vec![1u8; 50], &[]);
        assert_eq!(cloud.len(), 2);
        assert_eq!(cloud.stored_bytes(), 150);
    }

    #[test]
    fn blob_id_display() {
        let id = BlobId::of(b"x");
        let s = id.to_string();
        // 8 hex bytes (16 chars) + a 3-byte UTF-8 ellipsis.
        assert_eq!(s.chars().count(), 17);
    }
}
