//! End-to-end sweep robustness: a chaos-ridden distributed run, a clean
//! distributed run and the serial reference must land on bit-identical
//! outcome *and* telemetry fingerprints; and a coordinator killed
//! mid-sweep must resume from its journal without re-running or
//! double-merging anything.
//!
//! The harness drives the real coordinator loop over in-process
//! [`ThreadWorkerLink`] workers, so every robustness path — kills,
//! stalls, garbage, truncation, duplication, hedging, dedup, journal
//! replay — runs inside one seeded, deterministic test process.

use std::path::PathBuf;

use emerge_faults::{HedgePolicy, RecoveryPolicy, RetryPolicy, TimeoutPolicy};
use emerge_sweep::chaos::{ChaosAction, ChaosPlan};
use emerge_sweep::coordinator::{
    assert_outcomes_identical, run_serial, Coordinator, SweepConfig, SweepOutcome,
};
use emerge_sweep::grid::SweepGrid;
use emerge_sweep::links::{ThreadWorkerLink, WorkerLink};

const CHAOS_SEED: u64 = 0xC405_5EED;

fn grid() -> SweepGrid {
    SweepGrid::builtin("share_8x3")
        .unwrap()
        .with_trials_per_cell(12)
}

fn workers(n: usize, chaos: Option<ChaosPlan>) -> Vec<Box<dyn WorkerLink>> {
    (0..n)
        .map(|_| Box::new(ThreadWorkerLink::start(chaos)) as Box<dyn WorkerLink>)
        .collect()
}

fn config() -> SweepConfig {
    SweepConfig {
        unit_trials: 3,
        policy: RecoveryPolicy {
            retry: RetryPolicy {
                max_attempts: 4,
                base_backoff_ticks: 4,
                multiplier: 2,
            },
            timeout: TimeoutPolicy {
                per_attempt_ticks: 10_000,
            },
            hedge: HedgePolicy { fanout: 3 },
        },
        hedge_after_ms: 100,
        max_units: None,
        journal_path: None,
        prom_path: None,
        progress: false,
    }
}

fn run_with(chaos: Option<ChaosPlan>, config: SweepConfig) -> SweepOutcome {
    let mut pool = workers(3, chaos);
    Coordinator::new(grid(), config).run(&mut pool).unwrap()
}

fn temp_journal(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "emerge-sweep-e2e-{tag}-{}.journal",
        std::process::id()
    ))
}

#[test]
fn chaos_clean_and_serial_agree_bit_for_bit() {
    let serial = run_serial(&grid()).unwrap();
    let clean = run_with(None, config());
    let chaos = run_with(Some(ChaosPlan::new(CHAOS_SEED)), config());

    assert_outcomes_identical("clean vs serial", &clean, &serial).unwrap();
    assert_outcomes_identical("chaos vs serial", &chaos, &serial).unwrap();
    assert!(clean.complete() && chaos.complete());

    // The chaos plan must actually have disrupted something, or this
    // test proves nothing. The seed is chosen over 8 units, so some
    // attempt draws a disruption.
    let plan = ChaosPlan::new(CHAOS_SEED);
    let disrupted = grid()
        .units(3)
        .iter()
        .any(|u| plan.decide(u.digest(), 0) != ChaosAction::None);
    assert!(disrupted, "chaos seed must disrupt at least one unit");
    assert!(
        chaos.stats.retries > 0
            || chaos.stats.corrupt_findings > 0
            || chaos.stats.dedup_dropped > 0
            || chaos.stats.worker_restarts > 0,
        "chaos left no trace in the stats: {:?}",
        chaos.stats
    );
    // Clean runs must not pay any robustness cost.
    assert_eq!(clean.stats.retries, 0);
    assert_eq!(clean.stats.corrupt_findings, 0);
    assert_eq!(clean.stats.worker_restarts, 0);
}

#[test]
fn killed_coordinator_resumes_from_journal_without_rerunning() {
    let serial = run_serial(&grid()).unwrap();
    let journal = temp_journal("resume");
    let _ = std::fs::remove_file(&journal);

    let total = grid().units(3).len();
    let pause_at = total / 2;
    assert!(pause_at >= 1, "grid too small for a meaningful pause");

    // Pass 1: the coordinator "dies" after pause_at units (max_units
    // models the kill: the process stops mid-sweep with a half-full
    // journal and its in-memory state lost).
    let mut cfg = config();
    cfg.journal_path = Some(journal.clone());
    cfg.max_units = Some(pause_at);
    let paused = run_with(Some(ChaosPlan::new(CHAOS_SEED)), cfg);
    assert!(!paused.complete());
    assert_eq!(paused.done_units, pause_at);

    // Pass 2: a fresh coordinator resumes from the journal alone.
    let mut cfg = config();
    cfg.journal_path = Some(journal.clone());
    let resumed = run_with(Some(ChaosPlan::new(CHAOS_SEED)), cfg);

    assert!(resumed.complete());
    assert_eq!(resumed.stats.journal_replayed, pause_at as u64);
    assert_outcomes_identical("resumed vs serial", &resumed, &serial).unwrap();

    // An uninterrupted chaotic run agrees too — the pause/resume cycle
    // changed nothing about the merged bits.
    let uninterrupted = run_with(Some(ChaosPlan::new(CHAOS_SEED)), config());
    assert_outcomes_identical("resumed vs uninterrupted", &resumed, &uninterrupted).unwrap();

    let _ = std::fs::remove_file(&journal);
}

#[test]
fn resume_is_idempotent_when_journal_is_already_complete() {
    let journal = temp_journal("idempotent");
    let _ = std::fs::remove_file(&journal);

    let mut cfg = config();
    cfg.journal_path = Some(journal.clone());
    let first = run_with(None, cfg.clone());
    assert!(first.complete());

    // Re-running over a complete journal replays everything and runs
    // nothing fresh.
    let second = run_with(None, cfg);
    assert!(second.complete());
    assert_eq!(second.stats.journal_replayed, second.total_units as u64);
    assert_outcomes_identical("second vs first", &second, &first).unwrap();

    let _ = std::fs::remove_file(&journal);
}

#[test]
fn different_worker_counts_do_not_change_a_single_bit() {
    let serial = run_serial(&grid()).unwrap();
    for n in [1, 2, 5] {
        let mut pool = workers(n, None);
        let outcome = Coordinator::new(grid(), config()).run(&mut pool).unwrap();
        assert_outcomes_identical(&format!("{n} workers vs serial"), &outcome, &serial).unwrap();
    }
}
