//! Property tests for the sweep wire format: decoding must never panic
//! on any input, and everything the encoder produces must decode back
//! bit-for-bit — rates as exact counts, summaries down to their float
//! bit patterns, counters at full u64 width.

use emerge_core::montecarlo::ProtocolMcResults;
use emerge_obs::metrics::CounterSnap;
use emerge_obs::MetricsSnapshot;
use emerge_sim::metrics::Rate;
use emerge_sweep::grid::SweepGrid;
use emerge_sweep::wire::{
    decode_request, decode_worker_line, encode_request, encode_result, WorkerReply,
};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

fn sample_unit(index: usize) -> emerge_sweep::grid::UnitSpec {
    let grid = SweepGrid::builtin("schemes_2x3")
        .unwrap()
        .with_trials_per_cell(97);
    let units = grid.units(13);
    units[index % units.len()].clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup never panics either decoder.
    #[test]
    fn decoders_never_panic_on_arbitrary_bytes(bytes in pvec(any::<u8>(), 0..240)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = decode_worker_line(&text);
        let _ = decode_request(&text);
    }

    /// Mutating one byte of a valid result line never panics; if it
    /// still decodes, the digest field was untouched.
    #[test]
    fn mutated_result_lines_never_panic(
        seed in any::<u64>(),
        pos in any::<usize>(),
        replacement in any::<u8>(),
    ) {
        let results = ProtocolMcResults {
            released: Rate::from_counts(seed % 40, 40).unwrap(),
            fingerprint: seed,
            ..ProtocolMcResults::default()
        };
        let line = encode_result(seed, &results, &MetricsSnapshot::default());
        let mut bytes = line.into_bytes();
        let at = pos % bytes.len();
        bytes[at] = replacement;
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        let _ = decode_worker_line(&mutated);
    }

    /// Requests round-trip exactly for every unit of a real grid, at any
    /// attempt number.
    #[test]
    fn requests_round_trip(index in any::<usize>(), attempt in 0u32..1_000) {
        let unit = sample_unit(index);
        let (decoded, got_attempt) = decode_request(&encode_request(&unit, attempt)).unwrap();
        prop_assert_eq!(decoded.digest(), unit.digest());
        prop_assert_eq!(decoded, unit);
        prop_assert_eq!(got_attempt, attempt);
    }

    /// Results round-trip bit-exactly: rates as counts, the message
    /// summary's raw float state, and full-width counters.
    #[test]
    fn results_round_trip_bit_exactly(
        unit in any::<u64>(),
        released in 0u64..100,
        trials in 100u64..200,
        samples in pvec(0.0f64..1.0e6, 0..20),
        counter_values in pvec(any::<u64>(), 0..8),
        fingerprint in any::<u64>(),
    ) {
        let mut results = ProtocolMcResults {
            released: Rate::from_counts(released, trials).unwrap(),
            clean: Rate::from_counts(released / 2, trials).unwrap(),
            reconstructed_early: Rate::from_counts(0, trials).unwrap(),
            fingerprint,
            ..ProtocolMcResults::default()
        };
        for &x in &samples {
            results.messages.record(x);
        }
        let counters = MetricsSnapshot {
            counters: counter_values
                .iter()
                .enumerate()
                .map(|(i, &value)| CounterSnap {
                    name: format!("prop.counter.{i:02}"),
                    value,
                })
                .collect(),
            gauges: Vec::new(),
            histograms: Vec::new(),
        };
        let line = encode_result(unit, &results, &counters);
        let WorkerReply::Result(back) = decode_worker_line(&line).unwrap() else {
            panic!("expected a result line");
        };
        prop_assert_eq!(back.unit, unit);
        prop_assert_eq!(back.results.fingerprint, fingerprint);
        prop_assert_eq!(back.results.released, results.released);
        prop_assert_eq!(back.results.clean, results.clean);
        let (count_a, mean_a, m2_a, min_a, max_a) = results.messages.raw_parts();
        let (count_b, mean_b, m2_b, min_b, max_b) = back.results.messages.raw_parts();
        prop_assert_eq!(count_a, count_b);
        prop_assert_eq!(mean_a.to_bits(), mean_b.to_bits());
        prop_assert_eq!(m2_a.to_bits(), m2_b.to_bits());
        prop_assert_eq!(min_a.to_bits(), min_b.to_bits());
        prop_assert_eq!(max_a.to_bits(), max_b.to_bits());
        for (i, &value) in counter_values.iter().enumerate() {
            prop_assert_eq!(back.counters.counter(&format!("prop.counter.{i:02}")), Some(value));
        }
        // Merging a decoded result is indistinguishable from merging the
        // original — the property the coordinator's exact merge rests on.
        let mut via_wire = ProtocolMcResults::default();
        via_wire.merge(&back.results);
        let mut direct = ProtocolMcResults::default();
        direct.merge(&results);
        prop_assert_eq!(via_wire.fingerprint, direct.fingerprint);
        prop_assert_eq!(via_wire.released, direct.released);
        prop_assert_eq!(
            via_wire.messages.mean().to_bits(),
            direct.messages.mean().to_bits()
        );
    }
}
