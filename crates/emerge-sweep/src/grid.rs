//! Parameter grids and idempotent work units.
//!
//! A [`SweepGrid`] is a named list of Monte-Carlo cells (scheme × attack
//! × world size) with a trial budget per cell. [`SweepGrid::units`]
//! partitions each cell's trial range into contiguous [`UnitSpec`]s —
//! the sweep's unit of dispatch, retry, hedging and journaling. A unit
//! digests everything that determines its outcome, so the digest doubles
//! as the idempotency key: replayed journals, duplicated worker output
//! and hedged twins all collapse onto the same unit.

use emerge_core::config::SchemeParams;
use emerge_core::montecarlo::ProtocolTrialSpec;
use emerge_core::protocol::AttackMode;
use emerge_dht::overlay::OverlayConfig;
use emerge_sim::shard::TrialDigest;
use emerge_sim::time::SimDuration;

use crate::error::SweepError;

/// One Monte-Carlo cell of a sweep grid.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// Human-readable cell label (stable: part of the unit digest).
    pub name: String,
    /// The protocol cell to run.
    pub spec: ProtocolTrialSpec,
    /// Trials budgeted for this cell.
    pub trials: usize,
}

/// A named parameter grid: the static description of one full sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    /// Grid name (e.g. `share_8x3`).
    pub name: String,
    /// Population slots of every trial world.
    pub population: usize,
    /// Base Monte-Carlo seed shared by every cell.
    pub seed: u64,
    /// The cells, in canonical order.
    pub cells: Vec<CellSpec>,
}

/// The world every sweep trial runs in: the paper's churn/adversary
/// setup at a configurable population (matching `montecarlo_baseline`'s
/// `world_config`, so sweep numbers compare directly with the
/// single-process baseline).
pub fn world_config(population: usize) -> OverlayConfig {
    OverlayConfig {
        n_nodes: population,
        malicious_fraction: 0.2,
        mean_lifetime: Some(40_000),
        horizon: 200_000,
        ..OverlayConfig::default()
    }
}

impl SweepGrid {
    /// Looks up a built-in grid by name.
    ///
    /// * `share_8x3` — the (8, 3) share scheme under release-ahead and
    ///   drop attacks (the CI smoke grid).
    /// * `schemes_2x3` — all four schemes at small shapes under
    ///   release-ahead, the cross-scheme comparison sweep.
    ///
    /// # Errors
    ///
    /// [`SweepError::Config`] for an unknown name.
    pub fn builtin(name: &str) -> Result<SweepGrid, SweepError> {
        let share_8x3 = SchemeParams::Share {
            k: 2,
            l: 3,
            n: 8,
            m: vec![4, 4],
        };
        let period = SimDuration::from_ticks(8_000);
        match name {
            "share_8x3" => Ok(SweepGrid {
                name: name.to_string(),
                population: 1_000,
                seed: 0xB45E,
                cells: vec![
                    CellSpec {
                        name: "share_8x3_release_ahead".to_string(),
                        spec: ProtocolTrialSpec {
                            params: share_8x3.clone(),
                            emerging_period: period,
                            attack: AttackMode::ReleaseAhead,
                        },
                        trials: 120,
                    },
                    CellSpec {
                        name: "share_8x3_drop".to_string(),
                        spec: ProtocolTrialSpec {
                            params: share_8x3,
                            emerging_period: period,
                            attack: AttackMode::Drop,
                        },
                        trials: 120,
                    },
                ],
            }),
            "schemes_2x3" => {
                let shapes: Vec<(&str, SchemeParams)> = vec![
                    ("central", SchemeParams::Central),
                    ("disjoint_2x3", SchemeParams::Disjoint { k: 2, l: 3 }),
                    ("joint_2x3", SchemeParams::Joint { k: 2, l: 3 }),
                    (
                        "share_5x3",
                        SchemeParams::Share {
                            k: 2,
                            l: 3,
                            n: 5,
                            m: vec![3, 3],
                        },
                    ),
                ];
                Ok(SweepGrid {
                    name: name.to_string(),
                    population: 1_000,
                    seed: 0xB45E,
                    cells: shapes
                        .into_iter()
                        .map(|(label, params)| CellSpec {
                            name: format!("{label}_release_ahead"),
                            spec: ProtocolTrialSpec {
                                params,
                                emerging_period: period,
                                attack: AttackMode::ReleaseAhead,
                            },
                            trials: 80,
                        })
                        .collect(),
                })
            }
            other => Err(SweepError::Config(format!(
                "unknown grid {other:?} (try share_8x3 or schemes_2x3)"
            ))),
        }
    }

    /// Scales every cell's trial budget (`--trials` override).
    pub fn with_trials_per_cell(mut self, trials: usize) -> SweepGrid {
        for cell in &mut self.cells {
            cell.trials = trials;
        }
        self
    }

    /// Partitions the grid into work units of at most `unit_trials`
    /// trials each, in canonical order (cells in grid order, ranges
    /// ascending). `unit_trials == 0` is treated as 1.
    pub fn units(&self, unit_trials: usize) -> Vec<UnitSpec> {
        let unit_trials = unit_trials.max(1);
        let mut units = Vec::new();
        for (cell_index, cell) in self.cells.iter().enumerate() {
            let mut first_trial = 0;
            while first_trial < cell.trials {
                let count = unit_trials.min(cell.trials - first_trial);
                units.push(UnitSpec {
                    unit_index: units.len(),
                    cell_index,
                    cell: cell.name.clone(),
                    spec: cell.spec.clone(),
                    population: self.population,
                    seed: self.seed,
                    first_trial,
                    count,
                });
                first_trial += count;
            }
        }
        units
    }
}

/// One idempotent work unit: a contiguous trial range of one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitSpec {
    /// Position in the grid's canonical unit order (the merge order).
    pub unit_index: usize,
    /// Index of the cell this unit belongs to.
    pub cell_index: usize,
    /// Cell label.
    pub cell: String,
    /// The protocol cell to run.
    pub spec: ProtocolTrialSpec,
    /// Population slots of the trial worlds.
    pub population: usize,
    /// Base Monte-Carlo seed (trial streams are keyed by global trial
    /// index under this seed, so range runs merge bit-identically).
    pub seed: u64,
    /// First global trial index of the range.
    pub first_trial: usize,
    /// Number of trials in the range.
    pub count: usize,
}

impl UnitSpec {
    /// The unit's identity digest: a [`TrialDigest`] over every field
    /// that determines the unit's outcome (cell label, scheme shape,
    /// attack, emerging period, population, seed and the trial range).
    /// This is the key for journal replay, first-result-wins dedup of
    /// hedged twins, and duplicate rejection.
    pub fn digest(&self) -> u64 {
        let mut d = TrialDigest::new();
        d.eat(self.cell.as_bytes());
        d.eat(&[0]);
        match &self.spec.params {
            SchemeParams::Central => d.eat(&[1]),
            SchemeParams::Disjoint { k, l } => {
                d.eat(&[2]);
                d.eat(&(*k as u64).to_le_bytes());
                d.eat(&(*l as u64).to_le_bytes());
            }
            SchemeParams::Joint { k, l } => {
                d.eat(&[3]);
                d.eat(&(*k as u64).to_le_bytes());
                d.eat(&(*l as u64).to_le_bytes());
            }
            SchemeParams::Share { k, l, n, m } => {
                d.eat(&[4]);
                d.eat(&(*k as u64).to_le_bytes());
                d.eat(&(*l as u64).to_le_bytes());
                d.eat(&(*n as u64).to_le_bytes());
                d.eat(&(m.len() as u64).to_le_bytes());
                for &th in m {
                    d.eat(&(th as u64).to_le_bytes());
                }
            }
        }
        d.eat(&[match self.spec.attack {
            AttackMode::Passive => 1,
            AttackMode::ReleaseAhead => 2,
            AttackMode::Drop => 3,
        }]);
        d.eat(&self.spec.emerging_period.ticks().to_le_bytes());
        d.eat(&(self.population as u64).to_le_bytes());
        d.eat(&self.seed.to_le_bytes());
        d.eat(&(self.first_trial as u64).to_le_bytes());
        d.eat(&(self.count as u64).to_le_bytes());
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_partition_each_cell_contiguously() {
        let grid = SweepGrid::builtin("share_8x3").unwrap();
        let units = grid.units(25);
        assert_eq!(units.len(), 10, "two cells of 120 trials in units of 25");
        for cell in &grid.cells {
            let mut next = 0;
            for u in units.iter().filter(|u| u.cell == cell.name) {
                assert_eq!(u.first_trial, next);
                next += u.count;
            }
            assert_eq!(next, cell.trials);
        }
        // Canonical order is the vec order.
        for (i, u) in units.iter().enumerate() {
            assert_eq!(u.unit_index, i);
        }
    }

    #[test]
    fn unit_digests_are_distinct_and_stable() {
        let grid = SweepGrid::builtin("share_8x3").unwrap();
        let units = grid.units(25);
        let digests: Vec<u64> = units.iter().map(UnitSpec::digest).collect();
        let mut sorted = digests.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), digests.len(), "digests must be unique");
        // Stable across recomputation and sensitive to the trial range.
        assert_eq!(units[0].digest(), grid.units(25)[0].digest());
        let mut moved = units[0].clone();
        moved.first_trial += 1;
        assert_ne!(moved.digest(), units[0].digest());
    }

    #[test]
    fn unknown_grid_is_a_config_error() {
        assert!(matches!(
            SweepGrid::builtin("nope"),
            Err(SweepError::Config(_))
        ));
    }

    #[test]
    fn zero_unit_trials_is_clamped() {
        let grid = SweepGrid::builtin("share_8x3")
            .unwrap()
            .with_trials_per_cell(2);
        assert_eq!(grid.units(0).len(), 4, "unit size 0 acts as 1");
    }
}
