//! Seeded self-chaos: deterministic worker kills, stalls and output
//! corruption.
//!
//! Every disruption is a pure hash of `(chaos seed, unit digest,
//! attempt)` — the same discipline as `emerge-faults`' per-decision
//! hashing — so a chaos run is exactly reproducible and entirely
//! worker-independent: *which* worker picks a unit up does not change
//! whether the attempt is disrupted. Disruption stops after attempt 1,
//! so any retry budget of three or more attempts converges; combined
//! with first-result-wins dedup this is what lets the e2e suite assert
//! `chaos == clean == serial` bit for bit.

use emerge_sim::shard::mix64;

/// What chaos does to one dispatch attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Serve normally.
    None,
    /// Exit without replying (a crashed worker).
    Kill,
    /// Sleep past the hedge threshold before replying (a straggler; the
    /// late reply exercises first-result-wins dedup).
    Stall,
    /// Emit a non-JSON line instead of the result.
    Garbage,
    /// Emit a truncated prefix of the result line.
    Truncate,
    /// Emit the (valid) result line twice.
    Duplicate,
}

/// A compiled chaos plan: the seed plus the stall length workers use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// The chaos seed (`--chaos <seed>`).
    pub seed: u64,
    /// How long a stalled attempt sleeps, in milliseconds. The
    /// coordinator passes a value beyond its hedge threshold so stalls
    /// actually trigger hedging.
    pub stall_ms: u64,
}

/// Attempts at or beyond this number are never disrupted, bounding the
/// damage per unit below any sane retry budget.
pub const CHAOS_MAX_DISRUPTED_ATTEMPTS: u32 = 2;

impl ChaosPlan {
    /// A plan from a seed with the default stall length.
    pub fn new(seed: u64) -> Self {
        ChaosPlan {
            seed,
            stall_ms: 300,
        }
    }

    /// The (deterministic) action for one dispatch attempt of one unit.
    ///
    /// Attempt 0 is disrupted with probability ~5/8 and attempt 1 with
    /// ~5/16 (the decision hash also keys on the attempt number, so the
    /// draws are independent); later attempts always run clean.
    pub fn decide(&self, unit_digest: u64, attempt: u32) -> ChaosAction {
        if attempt >= CHAOS_MAX_DISRUPTED_ATTEMPTS {
            return ChaosAction::None;
        }
        let h = mix64(self.seed ^ mix64(unit_digest) ^ mix64(0x5EED_CA05 ^ u64::from(attempt)));
        // Attempt 1 disrupts half as often as attempt 0.
        let lane = if attempt == 0 { h % 8 } else { h % 16 };
        match lane {
            0 => ChaosAction::Kill,
            1 => ChaosAction::Stall,
            2 => ChaosAction::Garbage,
            3 => ChaosAction::Truncate,
            4 => ChaosAction::Duplicate,
            _ => ChaosAction::None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_attempt_keyed() {
        let plan = ChaosPlan::new(0xC405);
        for unit in [1u64, 0xABCDEF, u64::MAX] {
            assert_eq!(plan.decide(unit, 0), plan.decide(unit, 0));
        }
        // Across many units, attempt 0 must exercise every action kind.
        let mut seen = [false; 6];
        for unit in 0..512u64 {
            let idx = match plan.decide(mix64(unit), 0) {
                ChaosAction::None => 0,
                ChaosAction::Kill => 1,
                ChaosAction::Stall => 2,
                ChaosAction::Garbage => 3,
                ChaosAction::Truncate => 4,
                ChaosAction::Duplicate => 5,
            };
            seen[idx] = true;
        }
        assert_eq!(seen, [true; 6], "all actions reachable on attempt 0");
    }

    #[test]
    fn attempts_beyond_the_bound_always_run_clean() {
        let plan = ChaosPlan::new(7);
        for unit in 0..256u64 {
            for attempt in CHAOS_MAX_DISRUPTED_ATTEMPTS..6 {
                assert_eq!(plan.decide(mix64(unit), attempt), ChaosAction::None);
            }
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = ChaosPlan::new(1);
        let b = ChaosPlan::new(2);
        let differs = (0..256u64).any(|u| a.decide(mix64(u), 0) != b.decide(mix64(u), 0));
        assert!(differs);
    }
}
