//! The sweep error type. Everything the coordinator and worker can hit —
//! malformed wire lines, exhausted retry budgets, dead workers, journal
//! I/O — surfaces as a [`SweepError`]; nothing in this crate panics on
//! input.

use std::fmt;
use std::io;

/// Any failure surfaced by the sweep layer.
#[derive(Debug)]
pub enum SweepError {
    /// An I/O failure (journal, worker pipes, report files), with the
    /// operation that failed.
    Io {
        /// What was being attempted.
        context: String,
        /// The underlying error.
        source: io::Error,
    },
    /// A wire line failed to decode. Recorded as a finding when it comes
    /// from a worker; fatal when it comes from a trusted source (a
    /// request line on the worker side of a healthy pipe).
    Wire(String),
    /// A work unit exhausted its retry budget without a valid result.
    UnitExhausted {
        /// Label of the cell the unit belongs to.
        cell: String,
        /// First global trial index of the unit.
        first_trial: usize,
        /// Attempts consumed.
        attempts: u32,
    },
    /// A worker reported a unit execution error (e.g. a spec that does
    /// not fit its world). Deterministic, so retrying cannot help.
    Unit(String),
    /// The sweep configuration itself is unusable (unknown grid name,
    /// zero workers, ...).
    Config(String),
    /// A verification pass found a mismatch between two runs that must
    /// be bit-identical.
    Mismatch(String),
}

impl SweepError {
    /// Wraps an I/O error with the operation that failed.
    pub fn io(context: &str, source: io::Error) -> Self {
        SweepError::Io {
            context: context.to_string(),
            source,
        }
    }
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Io { context, source } => write!(f, "{context}: {source}"),
            SweepError::Wire(msg) => write!(f, "wire decode failed: {msg}"),
            SweepError::UnitExhausted {
                cell,
                first_trial,
                attempts,
            } => write!(
                f,
                "unit {cell}[{first_trial}..] exhausted its retry budget after {attempts} attempts"
            ),
            SweepError::Unit(msg) => write!(f, "unit execution failed: {msg}"),
            SweepError::Config(msg) => write!(f, "invalid sweep configuration: {msg}"),
            SweepError::Mismatch(msg) => write!(f, "verification mismatch: {msg}"),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}
