//! # emerge-sweep
//!
//! Crash-safe distributed Monte-Carlo sweeps: the "millions of trials,
//! one command" operational layer over the exactly-mergeable sharded
//! engines.
//!
//! A coordinator process partitions a parameter grid × trial ranges into
//! idempotent **work units** — each a contiguous trial range of one cell,
//! identified by a [`grid::UnitSpec::digest`] over everything that
//! determines its outcome — and dispatches them to worker processes over
//! stdio, speaking a line-oriented JSON wire format ([`wire`]) parsed by
//! the validated reader in `emerge_bench::report`. Results merge through
//! [`emerge_core::montecarlo::ProtocolMcResults::merge`] in canonical
//! unit order, so the merged outcome (and its trial fingerprint *and*
//! its telemetry digest) is bit-identical to a serial run.
//!
//! Robustness is the design center:
//!
//! * **Journaled resume** ([`journal`]): every completed unit's result
//!   line is appended (and synced) to an append-only journal before it
//!   counts as done. A killed coordinator resumes by replaying the
//!   journal — finished units are not re-run and cannot double-merge
//!   (first occurrence wins; a truncated final line is a recorded
//!   finding, not an error).
//! * **Deadlines, bounded retry, deterministic backoff**
//!   ([`coordinator`]): per-unit deadlines and retry budgets reuse
//!   [`emerge_faults::RecoveryPolicy`] semantics — `per_attempt_ticks`
//!   is the per-dispatch deadline in milliseconds and
//!   [`emerge_faults::RetryPolicy::backoff_ticks`] spaces re-dispatches.
//! * **Straggler hedging**: a unit in flight past the hedge threshold is
//!   re-dispatched to another worker (up to the policy's hedge fanout);
//!   whichever copy reports first wins, keyed by the unit digest, and
//!   late duplicates are dedup-dropped.
//! * **Self-chaos** ([`chaos`]): `--chaos <seed>` makes workers
//!   deterministically kill themselves, stall past the deadline, and
//!   corrupt (garbage / truncate / duplicate) their output mid-sweep.
//!   Chaos decisions are pure hashes of `(seed, unit digest, attempt)`,
//!   and disruption stops after the second attempt per unit, so a
//!   bounded retry budget always converges — to the *same bits* as a
//!   clean or serial run, which the e2e suite and CI's `sweep-smoke` job
//!   assert.
//!
//! Progress and fault counters (`sweep.retries`, `sweep.hedges`,
//! `sweep.dedup_dropped`, ...) stream through `emerge-obs` and export as
//! Prometheus text plus the `BENCH_sweep.json` report ([`report`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod coordinator;
pub mod error;
pub mod grid;
pub mod journal;
pub mod links;
pub mod report;
pub mod wire;
pub mod worker;

pub use chaos::ChaosPlan;
pub use coordinator::{Coordinator, SweepConfig, SweepOutcome};
pub use error::SweepError;
pub use grid::{SweepGrid, UnitSpec};
pub use journal::Journal;
