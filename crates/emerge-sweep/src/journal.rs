//! The append-only completion journal: crash-safe resume for the
//! coordinator.
//!
//! Each completed unit's *result line* (the exact wire encoding, which
//! embeds the unit digest) is appended and flushed before the unit
//! counts as done. On resume the journal is replayed through the same
//! wire decoder: the first valid occurrence of each unit digest wins,
//! later duplicates are counted (a coordinator killed between append and
//! ack can legitimately re-append), and a truncated final line — the
//! usual signature of dying mid-write — is tolerated and counted, never
//! fatal. Replay therefore can neither re-run a finished unit nor
//! double-merge one.

use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::error::SweepError;
use crate::wire::{decode_worker_line, UnitResult, WorkerReply};

/// An open append-only journal.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
}

/// What a journal replay recovered.
#[derive(Debug, Default)]
pub struct Replay {
    /// Recovered unit results, first occurrence of each digest, in
    /// journal order.
    pub results: Vec<UnitResult>,
    /// Lines that failed to decode (truncated tail writes, corruption).
    pub corrupt_lines: u64,
    /// Valid result lines whose unit digest had already been recovered.
    pub duplicate_lines: u64,
}

impl Journal {
    /// Opens (creating if missing) the journal at `path` for appending.
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] when the file cannot be opened.
    pub fn open(path: &Path) -> Result<Journal, SweepError> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| SweepError::io(&format!("open journal {}", path.display()), e))?;
        Ok(Journal {
            path: path.to_path_buf(),
            file,
        })
    }

    /// Appends one completed unit's wire line and syncs it to disk. Only
    /// after this returns may the coordinator treat the unit as done —
    /// the journal entry must hit the disk before the merge does.
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] when the write or sync fails.
    pub fn append(&mut self, line: &str) -> Result<(), SweepError> {
        let ctx = || format!("append to journal {}", self.path.display());
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.write_all(b"\n"))
            .and_then(|()| self.file.sync_data())
            .map_err(|e| SweepError::io(&ctx(), e))
    }

    /// Replays the journal at `path`. A missing file is an empty replay
    /// (a fresh sweep); malformed lines and duplicates are counted, not
    /// errors.
    ///
    /// # Errors
    ///
    /// [`SweepError::Io`] only when an *existing* journal cannot be read.
    pub fn replay(path: &Path) -> Result<Replay, SweepError> {
        let mut text = String::new();
        match File::open(path) {
            Ok(mut file) => {
                file.read_to_string(&mut text)
                    .map_err(|e| SweepError::io(&format!("read journal {}", path.display()), e))?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Replay::default()),
            Err(e) => {
                return Err(SweepError::io(
                    &format!("open journal {}", path.display()),
                    e,
                ))
            }
        }
        let mut replay = Replay::default();
        let mut seen: HashSet<u64> = HashSet::new();
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            match decode_worker_line(line) {
                Ok(WorkerReply::Result(unit)) => {
                    if seen.insert(unit.unit) {
                        replay.results.push(unit);
                    } else {
                        replay.duplicate_lines += 1;
                    }
                }
                Ok(WorkerReply::Error { .. }) | Err(_) => replay.corrupt_lines += 1,
            }
        }
        Ok(replay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::encode_result;
    use emerge_core::montecarlo::ProtocolMcResults;
    use emerge_obs::MetricsSnapshot;
    use emerge_sim::metrics::Rate;

    fn result_line(unit: u64, trials: u64) -> String {
        let results = ProtocolMcResults {
            released: Rate::from_counts(trials, trials).unwrap(),
            fingerprint: unit.wrapping_mul(0x9E37),
            ..ProtocolMcResults::default()
        };
        encode_result(unit, &results, &MetricsSnapshot::default())
    }

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("emerge-sweep-journal-{tag}-{}", std::process::id()));
        p
    }

    #[test]
    fn replay_recovers_first_occurrences_and_counts_damage() {
        let path = temp_path("replay");
        let _ = std::fs::remove_file(&path);
        {
            let mut journal = Journal::open(&path).unwrap();
            journal.append(&result_line(1, 10)).unwrap();
            journal.append(&result_line(2, 10)).unwrap();
            // A re-appended unit (coordinator died between append and ack).
            journal.append(&result_line(1, 10)).unwrap();
        }
        // A torn final write: no trailing newline, half a line.
        let torn = result_line(3, 10);
        let mut raw = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        raw.write_all(&torn.as_bytes()[..torn.len() / 2]).unwrap();
        drop(raw);

        let replay = Journal::replay(&path).unwrap();
        assert_eq!(
            replay.results.iter().map(|r| r.unit).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(replay.duplicate_lines, 1);
        assert_eq!(replay.corrupt_lines, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_journal_is_a_fresh_sweep() {
        let replay = Journal::replay(Path::new("/nonexistent/emerge-sweep.journal")).unwrap();
        assert!(replay.results.is_empty());
        assert_eq!(replay.corrupt_lines, 0);
    }
}
