//! `BENCH_sweep.json` rendering: clean-vs-chaos wall clock, the
//! robustness counters, per-cell rates and every fingerprint needed to
//! re-verify a run offline.
//!
//! Full-width integers (fingerprints, digests, seeds) are rendered as
//! 16-digit hex strings for the same reason the wire format ships them
//! that way: JSON numbers stop being exact past 2^53. Counts that fit
//! comfortably (trial and success counts, stats counters) stay plain
//! numbers for readability.

use std::fmt::Write as _;

use emerge_sim::metrics::Rate;

use crate::coordinator::SweepOutcome;
use crate::wire::{hex_u64, json_escape};

/// One labelled run in a sweep benchmark report.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// Run label: `serial`, `clean`, `chaos`, `resumed`...
    pub mode: String,
    /// Chaos seed, when the run was chaotic.
    pub chaos_seed: Option<u64>,
    /// Worker count (0 for the in-process serial reference).
    pub workers: usize,
    /// The run's merged outcome.
    pub outcome: SweepOutcome,
}

fn rate_json(rate: Rate) -> String {
    format!(
        "{{\"successes\": {}, \"trials\": {}}}",
        rate.successes(),
        rate.trials()
    )
}

/// Renders the `BENCH_sweep.json` document for a set of runs over the
/// same grid. The first run is the reference: its cells section is the
/// one rendered, and every run's fingerprints are listed side by side so
/// the bit-for-bit claim is checkable by eye (and by the reader in
/// `emerge-bench`).
pub fn render_sweep_report(runs: &[SweepRun]) -> String {
    let mut out = String::from("{\n");
    let grid = runs.first().map_or("", |r| r.outcome.grid.as_str());
    let _ = writeln!(out, "  \"bench\": \"distributed_sweep\",");
    let _ = writeln!(out, "  \"grid\": \"{}\",", json_escape(grid));
    out.push_str("  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let o = &run.outcome;
        let s = &o.stats;
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"mode\": \"{}\",", json_escape(&run.mode));
        match run.chaos_seed {
            Some(seed) => {
                let _ = writeln!(out, "      \"chaos_seed\": \"{}\",", hex_u64(seed));
            }
            None => {
                let _ = writeln!(out, "      \"chaos_seed\": null,");
            }
        }
        let _ = writeln!(out, "      \"workers\": {},", run.workers);
        let _ = writeln!(out, "      \"seconds\": {:.6},", o.seconds);
        let _ = writeln!(out, "      \"units\": {},", o.total_units);
        let _ = writeln!(out, "      \"units_done\": {},", o.done_units);
        let _ = writeln!(
            out,
            "      \"sweep_fingerprint\": \"{}\",",
            hex_u64(o.sweep_fingerprint)
        );
        let _ = writeln!(
            out,
            "      \"telemetry_digest\": \"{}\",",
            hex_u64(o.telemetry_digest)
        );
        let _ = writeln!(out, "      \"retries\": {},", s.retries);
        let _ = writeln!(out, "      \"hedges\": {},", s.hedges);
        let _ = writeln!(out, "      \"dedup_dropped\": {},", s.dedup_dropped);
        let _ = writeln!(out, "      \"corrupt_findings\": {},", s.corrupt_findings);
        let _ = writeln!(out, "      \"worker_restarts\": {},", s.worker_restarts);
        let _ = writeln!(out, "      \"timeouts\": {},", s.timeouts);
        let _ = writeln!(out, "      \"journal_replayed\": {}", s.journal_replayed);
        out.push_str("    }");
        out.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"cells\": [\n");
    let cells = runs.first().map_or(&[][..], |r| r.outcome.cells.as_slice());
    for (i, cell) in cells.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"cell\": \"{}\",", json_escape(&cell.cell));
        let _ = writeln!(out, "      \"trials\": {},", cell.trials);
        let _ = writeln!(
            out,
            "      \"fingerprint\": \"{}\",",
            hex_u64(cell.results.fingerprint)
        );
        let _ = writeln!(
            out,
            "      \"released\": {},",
            rate_json(cell.results.released)
        );
        let _ = writeln!(out, "      \"clean\": {},", rate_json(cell.results.clean));
        let _ = writeln!(
            out,
            "      \"reconstructed_early\": {},",
            rate_json(cell.results.reconstructed_early)
        );
        let _ = writeln!(
            out,
            "      \"messages_mean\": {:.3}",
            cell.results.messages.mean()
        );
        out.push_str("    }");
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordinator::run_serial;
    use crate::grid::SweepGrid;
    use emerge_bench::report::{parse_json, validate_json};

    fn small_runs() -> Vec<SweepRun> {
        let grid = SweepGrid::builtin("share_8x3")
            .unwrap()
            .with_trials_per_cell(4);
        let outcome = run_serial(&grid).unwrap();
        vec![
            SweepRun {
                mode: "serial".to_string(),
                chaos_seed: None,
                workers: 0,
                outcome: outcome.clone(),
            },
            SweepRun {
                mode: "chaos".to_string(),
                chaos_seed: Some(0xC405),
                workers: 3,
                outcome,
            },
        ]
    }

    #[test]
    fn report_is_valid_json_with_expected_fields() {
        let text = render_sweep_report(&small_runs());
        validate_json(&text).unwrap();
        let doc = parse_json(&text).unwrap();
        assert_eq!(
            doc.get("bench").and_then(|v| v.as_str()),
            Some("distributed_sweep")
        );
        let runs = doc.get("runs").and_then(|v| v.as_array()).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].get("mode").and_then(|v| v.as_str()), Some("serial"));
        assert_eq!(
            runs[1].get("chaos_seed").and_then(|v| v.as_str()),
            Some("000000000000c405")
        );
        // Both runs carry the same fingerprints here by construction.
        assert_eq!(
            runs[0].get("sweep_fingerprint").and_then(|v| v.as_str()),
            runs[1].get("sweep_fingerprint").and_then(|v| v.as_str())
        );
        let cells = doc.get("cells").and_then(|v| v.as_array()).unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].get("trials").and_then(|v| v.as_u64()), Some(4));
    }
}
