//! The line-oriented JSON wire format spoken between coordinator and
//! workers.
//!
//! One message per line. Small structural integers (trial counts, scheme
//! shapes) travel as plain JSON numbers, validated to be exact integers
//! by `JsonValue::as_u64`; **full-width `u64` values — digests, seeds,
//! fingerprints and `f64` bit patterns — travel as 16-digit lowercase
//! hex strings**, because JSON numbers round past 2^53. Floats of the
//! message [`Summary`] ship as [`f64::to_bits`] patterns, which is what
//! makes the decoded result *bit-identical* to the worker's, not merely
//! close.
//!
//! Decoding is total: any malformed line — truncated, garbage, wrong
//! types, missing or duplicated fields, digest mismatch — returns
//! [`SweepError::Wire`] for the coordinator to record as a finding.
//! Nothing here panics on input.

use emerge_bench::report::{parse_json, JsonValue};
use emerge_core::config::SchemeParams;
use emerge_core::montecarlo::{ProtocolMcResults, ProtocolTrialSpec};
use emerge_core::protocol::AttackMode;
use emerge_obs::metrics::CounterSnap;
use emerge_obs::MetricsSnapshot;
use emerge_sim::metrics::{Rate, Summary};
use emerge_sim::time::SimDuration;
use std::fmt::Write as _;

use crate::error::SweepError;
use crate::grid::UnitSpec;

/// Wire protocol version; bumped on any incompatible change.
pub const WIRE_VERSION: u64 = 1;

/// A decoded worker → coordinator line.
#[derive(Debug, Clone)]
pub enum WorkerReply {
    /// A completed unit.
    Result(UnitResult),
    /// A deterministic unit execution failure (retry cannot help).
    Error {
        /// Digest of the failed unit.
        unit: u64,
        /// Worker-side error rendering.
        message: String,
    },
}

/// One completed unit's payload: the merged trial outcomes plus the
/// telemetry counters collected while running it.
#[derive(Debug, Clone)]
pub struct UnitResult {
    /// The unit's identity digest ([`UnitSpec::digest`]).
    pub unit: u64,
    /// Outcomes of the unit's trial range.
    pub results: ProtocolMcResults,
    /// Telemetry counters of the unit run (allocator-dependent counters
    /// already filtered out by the worker).
    pub counters: MetricsSnapshot,
}

pub(crate) fn hex_u64(value: u64) -> String {
    format!("{value:016x}")
}

fn parse_hex_u64(s: &str) -> Result<u64, SweepError> {
    let valid = !s.is_empty()
        && s.len() <= 16
        && s.bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b));
    if !valid {
        return Err(SweepError::Wire(format!("bad hex u64 {s:?}")));
    }
    u64::from_str_radix(s, 16).map_err(|e| SweepError::Wire(format!("bad hex u64 {s:?}: {e}")))
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out
}

/// Looks up a required object member, rejecting duplicates — a repeated
/// key in adversarial worker output must not silently win.
fn field<'a>(value: &'a JsonValue, key: &str) -> Result<&'a JsonValue, SweepError> {
    let members = value
        .as_object()
        .ok_or_else(|| SweepError::Wire(format!("expected an object around {key:?}")))?;
    let mut found = None;
    for (k, v) in members {
        if k == key {
            if found.is_some() {
                return Err(SweepError::Wire(format!("duplicated field {key:?}")));
            }
            found = Some(v);
        }
    }
    found.ok_or_else(|| SweepError::Wire(format!("missing field {key:?}")))
}

fn field_u64(value: &JsonValue, key: &str) -> Result<u64, SweepError> {
    field(value, key)?
        .as_u64()
        .ok_or_else(|| SweepError::Wire(format!("field {key:?} must be an exact integer")))
}

fn field_usize(value: &JsonValue, key: &str) -> Result<usize, SweepError> {
    usize::try_from(field_u64(value, key)?)
        .map_err(|_| SweepError::Wire(format!("field {key:?} overflows usize")))
}

fn field_hex(value: &JsonValue, key: &str) -> Result<u64, SweepError> {
    let s = field(value, key)?
        .as_str()
        .ok_or_else(|| SweepError::Wire(format!("field {key:?} must be a hex string")))?;
    parse_hex_u64(s)
}

fn field_str<'a>(value: &'a JsonValue, key: &str) -> Result<&'a str, SweepError> {
    field(value, key)?
        .as_str()
        .ok_or_else(|| SweepError::Wire(format!("field {key:?} must be a string")))
}

fn scheme_json(params: &SchemeParams) -> String {
    match params {
        SchemeParams::Central => "{\"kind\": \"central\"}".to_string(),
        SchemeParams::Disjoint { k, l } => {
            format!("{{\"kind\": \"disjoint\", \"k\": {k}, \"l\": {l}}}")
        }
        SchemeParams::Joint { k, l } => {
            format!("{{\"kind\": \"joint\", \"k\": {k}, \"l\": {l}}}")
        }
        SchemeParams::Share { k, l, n, m } => {
            let thresholds: Vec<String> = m.iter().map(ToString::to_string).collect();
            format!(
                "{{\"kind\": \"share\", \"k\": {k}, \"l\": {l}, \"n\": {n}, \"m\": [{}]}}",
                thresholds.join(", ")
            )
        }
    }
}

fn decode_scheme(value: &JsonValue) -> Result<SchemeParams, SweepError> {
    match field_str(value, "kind")? {
        "central" => Ok(SchemeParams::Central),
        "disjoint" => Ok(SchemeParams::Disjoint {
            k: field_usize(value, "k")?,
            l: field_usize(value, "l")?,
        }),
        "joint" => Ok(SchemeParams::Joint {
            k: field_usize(value, "k")?,
            l: field_usize(value, "l")?,
        }),
        "share" => {
            let m_field = field(value, "m")?
                .as_array()
                .ok_or_else(|| SweepError::Wire("field \"m\" must be an array".to_string()))?;
            let mut m = Vec::with_capacity(m_field.len());
            for item in m_field {
                let th = item
                    .as_u64()
                    .ok_or_else(|| SweepError::Wire("thresholds must be integers".to_string()))?;
                m.push(
                    usize::try_from(th)
                        .map_err(|_| SweepError::Wire("threshold overflows usize".to_string()))?,
                );
            }
            Ok(SchemeParams::Share {
                k: field_usize(value, "k")?,
                l: field_usize(value, "l")?,
                n: field_usize(value, "n")?,
                m,
            })
        }
        other => Err(SweepError::Wire(format!("unknown scheme kind {other:?}"))),
    }
}

fn attack_tag(attack: AttackMode) -> &'static str {
    match attack {
        AttackMode::Passive => "passive",
        AttackMode::ReleaseAhead => "release_ahead",
        AttackMode::Drop => "drop",
    }
}

fn decode_attack(tag: &str) -> Result<AttackMode, SweepError> {
    match tag {
        "passive" => Ok(AttackMode::Passive),
        "release_ahead" => Ok(AttackMode::ReleaseAhead),
        "drop" => Ok(AttackMode::Drop),
        other => Err(SweepError::Wire(format!("unknown attack {other:?}"))),
    }
}

/// Renders a unit request line (coordinator → worker).
pub fn encode_request(spec: &UnitSpec, attempt: u32) -> String {
    format!(
        concat!(
            "{{\"type\": \"unit\", \"v\": {}, \"unit\": \"{}\", \"cell\": \"{}\", ",
            "\"scheme\": {}, \"attack\": \"{}\", \"period\": {}, ",
            "\"population\": {}, \"seed\": \"{}\", \"first\": {}, \"count\": {}, ",
            "\"index\": {}, \"cell_index\": {}, \"attempt\": {}}}"
        ),
        WIRE_VERSION,
        hex_u64(spec.digest()),
        json_escape(&spec.cell),
        scheme_json(&spec.spec.params),
        attack_tag(spec.spec.attack),
        spec.spec.emerging_period.ticks(),
        spec.population,
        hex_u64(spec.seed),
        spec.first_trial,
        spec.count,
        spec.unit_index,
        spec.cell_index,
        attempt,
    )
}

/// Decodes a unit request line, returning the unit and the attempt
/// number. The embedded digest is recomputed from the decoded fields and
/// must match — a corrupted request can never run the wrong trials.
///
/// # Errors
///
/// [`SweepError::Wire`] on any malformed input.
pub fn decode_request(line: &str) -> Result<(UnitSpec, u32), SweepError> {
    let doc = parse_json(line).map_err(|(pos, msg)| {
        SweepError::Wire(format!("request line is not JSON (byte {pos}): {msg}"))
    })?;
    if field_str(&doc, "type")? != "unit" {
        return Err(SweepError::Wire("expected a \"unit\" message".to_string()));
    }
    if field_u64(&doc, "v")? != WIRE_VERSION {
        return Err(SweepError::Wire("wire version mismatch".to_string()));
    }
    let spec = UnitSpec {
        unit_index: field_usize(&doc, "index")?,
        cell_index: field_usize(&doc, "cell_index")?,
        cell: field_str(&doc, "cell")?.to_string(),
        spec: ProtocolTrialSpec {
            params: decode_scheme(field(&doc, "scheme")?)?,
            emerging_period: SimDuration::from_ticks(field_u64(&doc, "period")?),
            attack: decode_attack(field_str(&doc, "attack")?)?,
        },
        population: field_usize(&doc, "population")?,
        seed: field_hex(&doc, "seed")?,
        first_trial: field_usize(&doc, "first")?,
        count: field_usize(&doc, "count")?,
    };
    let claimed = field_hex(&doc, "unit")?;
    if claimed != spec.digest() {
        return Err(SweepError::Wire(
            "request digest does not match its fields".to_string(),
        ));
    }
    let attempt = u32::try_from(field_u64(&doc, "attempt")?)
        .map_err(|_| SweepError::Wire("attempt overflows u32".to_string()))?;
    Ok((spec, attempt))
}

fn rate_json(rate: Rate) -> String {
    format!(
        "{{\"ok\": \"{}\", \"n\": \"{}\"}}",
        hex_u64(rate.successes()),
        hex_u64(rate.trials())
    )
}

fn decode_rate(value: &JsonValue) -> Result<Rate, SweepError> {
    let successes = field_hex(value, "ok")?;
    let trials = field_hex(value, "n")?;
    Rate::from_counts(successes, trials)
        .ok_or_else(|| SweepError::Wire("rate has more successes than trials".to_string()))
}

/// Renders a unit result line (worker → coordinator). Counters are
/// sorted by name so the encoding is canonical.
pub fn encode_result(unit: u64, results: &ProtocolMcResults, counters: &MetricsSnapshot) -> String {
    let (count, mean, m2, min, max) = results.messages.raw_parts();
    let mut counter_items: Vec<(&str, u64)> = counters
        .counters
        .iter()
        .map(|c| (c.name.as_str(), c.value))
        .collect();
    counter_items.sort_unstable();
    let rendered: Vec<String> = counter_items
        .iter()
        .map(|&(name, value)| format!("[\"{}\", \"{}\"]", json_escape(name), hex_u64(value)))
        .collect();
    format!(
        concat!(
            "{{\"type\": \"result\", \"v\": {}, \"unit\": \"{}\", ",
            "\"fingerprint\": \"{}\", \"released\": {}, \"clean\": {}, ",
            "\"early\": {}, \"messages\": {{\"count\": \"{}\", \"mean\": \"{}\", ",
            "\"m2\": \"{}\", \"min\": \"{}\", \"max\": \"{}\"}}, ",
            "\"counters\": [{}]}}"
        ),
        WIRE_VERSION,
        hex_u64(unit),
        hex_u64(results.fingerprint),
        rate_json(results.released),
        rate_json(results.clean),
        rate_json(results.reconstructed_early),
        hex_u64(count),
        hex_u64(mean.to_bits()),
        hex_u64(m2.to_bits()),
        hex_u64(min.to_bits()),
        hex_u64(max.to_bits()),
        rendered.join(", "),
    )
}

/// Renders a worker-side unit failure line.
pub fn encode_error(unit: u64, message: &str) -> String {
    format!(
        "{{\"type\": \"error\", \"v\": {}, \"unit\": \"{}\", \"message\": \"{}\"}}",
        WIRE_VERSION,
        hex_u64(unit),
        json_escape(message)
    )
}

/// Decodes one worker → coordinator line.
///
/// # Errors
///
/// [`SweepError::Wire`] on any malformed input — truncated JSON, wrong
/// types, missing/duplicated fields, inconsistent rates. The coordinator
/// records these as findings and retries the dispatch; it never panics.
pub fn decode_worker_line(line: &str) -> Result<WorkerReply, SweepError> {
    let doc = parse_json(line).map_err(|(pos, msg)| {
        SweepError::Wire(format!("worker line is not JSON (byte {pos}): {msg}"))
    })?;
    if field_u64(&doc, "v")? != WIRE_VERSION {
        return Err(SweepError::Wire("wire version mismatch".to_string()));
    }
    match field_str(&doc, "type")? {
        "result" => {
            let msg = field(&doc, "messages")?;
            let messages = Summary::from_raw_parts(
                field_hex(msg, "count")?,
                f64::from_bits(field_hex(msg, "mean")?),
                f64::from_bits(field_hex(msg, "m2")?),
                f64::from_bits(field_hex(msg, "min")?),
                f64::from_bits(field_hex(msg, "max")?),
            );
            let counters_field = field(&doc, "counters")?
                .as_array()
                .ok_or_else(|| SweepError::Wire("counters must be an array".to_string()))?;
            let mut counters = Vec::with_capacity(counters_field.len());
            for item in counters_field {
                let pair = item
                    .as_array()
                    .ok_or_else(|| SweepError::Wire("counter must be a pair".to_string()))?;
                let [name, value] = pair else {
                    return Err(SweepError::Wire("counter must be a pair".to_string()));
                };
                let name = name
                    .as_str()
                    .ok_or_else(|| SweepError::Wire("counter name must be a string".to_string()))?;
                let value = value
                    .as_str()
                    .ok_or_else(|| SweepError::Wire("counter value must be hex".to_string()))?;
                counters.push(CounterSnap {
                    name: name.to_string(),
                    value: parse_hex_u64(value)?,
                });
            }
            let results = ProtocolMcResults {
                released: decode_rate(field(&doc, "released")?)?,
                clean: decode_rate(field(&doc, "clean")?)?,
                reconstructed_early: decode_rate(field(&doc, "early")?)?,
                messages,
                fingerprint: field_hex(&doc, "fingerprint")?,
            };
            Ok(WorkerReply::Result(UnitResult {
                unit: field_hex(&doc, "unit")?,
                results,
                counters: MetricsSnapshot {
                    counters,
                    gauges: Vec::new(),
                    histograms: Vec::new(),
                },
            }))
        }
        "error" => Ok(WorkerReply::Error {
            unit: field_hex(&doc, "unit")?,
            message: field_str(&doc, "message")?.to_string(),
        }),
        other => Err(SweepError::Wire(format!("unknown message type {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::SweepGrid;

    fn sample_unit() -> UnitSpec {
        SweepGrid::builtin("share_8x3").unwrap().units(25)[3].clone()
    }

    #[test]
    fn request_round_trips_and_checks_its_digest() {
        let unit = sample_unit();
        let line = encode_request(&unit, 2);
        let (decoded, attempt) = decode_request(&line).unwrap();
        assert_eq!(decoded, unit);
        assert_eq!(attempt, 2);
        // Tampering with any outcome-determining field breaks the digest.
        let tampered = line.replace("\"first\": 75", "\"first\": 50");
        assert!(matches!(
            decode_request(&tampered),
            Err(SweepError::Wire(msg)) if msg.contains("digest")
        ));
    }

    #[test]
    fn result_round_trips_bit_exactly() {
        let mut results = ProtocolMcResults {
            released: Rate::from_counts(7, 9).unwrap(),
            clean: Rate::from_counts(5, 9).unwrap(),
            reconstructed_early: Rate::from_counts(0, 9).unwrap(),
            fingerprint: 0xDEAD_BEEF_0BAD_F00D,
            ..ProtocolMcResults::default()
        };
        for x in [14.0, 15.0, 17.5, 0.1 + 0.2] {
            results.messages.record(x);
        }
        let counters = MetricsSnapshot {
            counters: vec![
                CounterSnap {
                    name: "trial.execute.calls".to_string(),
                    value: 9,
                },
                CounterSnap {
                    name: "dht.analytic.resolves".to_string(),
                    value: u64::MAX,
                },
            ],
            gauges: Vec::new(),
            histograms: Vec::new(),
        };
        let line = encode_result(42, &results, &counters);
        let reply = decode_worker_line(&line).unwrap();
        let WorkerReply::Result(unit) = reply else {
            panic!("expected a result");
        };
        assert_eq!(unit.unit, 42);
        assert_eq!(unit.results.fingerprint, results.fingerprint);
        assert_eq!(unit.results.released, results.released);
        assert_eq!(
            unit.results.messages.mean().to_bits(),
            results.messages.mean().to_bits()
        );
        assert_eq!(
            unit.results.messages.variance().to_bits(),
            results.messages.variance().to_bits()
        );
        // Counters come back sorted by name, full-width values intact.
        assert_eq!(
            unit.counters.counter("dht.analytic.resolves"),
            Some(u64::MAX)
        );
        assert_eq!(unit.counters.counter("trial.execute.calls"), Some(9));
    }

    #[test]
    fn error_lines_round_trip() {
        let line = encode_error(7, "insufficient nodes: need 25, have 10");
        assert!(matches!(
            decode_worker_line(&line).unwrap(),
            WorkerReply::Error { unit: 7, message }
                if message == "insufficient nodes: need 25, have 10"
        ));
    }

    #[test]
    fn corrupt_lines_decode_to_errors_never_panic() {
        let unit = sample_unit();
        let good = encode_result(
            unit.digest(),
            &ProtocolMcResults::default(),
            &MetricsSnapshot::default(),
        );
        let cases: Vec<String> = vec![
            String::new(),
            "not json at all".to_string(),
            "{\"type\": \"result\"}".to_string(),
            "{\"type\": \"mystery\", \"v\": 1}".to_string(),
            "{\"type\": \"result\", \"v\": 99, \"unit\": \"00\"}".to_string(),
            good[..good.len() / 2].to_string(), // truncated mid-line
            format!("{good}{good}"),            // two lines fused
            good.replace(
                "\"ok\": \"0000000000000000\"",
                "\"ok\": \"ffffffffffffffff\"",
            ), // ok > n
            good.replace("0000", "xyzw"),
            good.replace("\"v\": 1", "\"v\": 1, \"v\": 1"), // duplicated field
        ];
        for bad in &cases {
            assert!(
                matches!(decode_worker_line(bad), Err(SweepError::Wire(_))),
                "should reject {bad:?}"
            );
        }
    }

    #[test]
    fn hex_decoding_is_strict() {
        assert_eq!(parse_hex_u64("00ff").unwrap(), 255);
        assert_eq!(parse_hex_u64("ffffffffffffffff").unwrap(), u64::MAX);
        for bad in ["", "+1", "-1", "FF", "0x10", "11111111111111111", "12 "] {
            assert!(parse_hex_u64(bad).is_err(), "should reject {bad:?}");
        }
    }
}
