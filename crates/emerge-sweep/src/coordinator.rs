//! The sweep coordinator: dispatch, deadlines, retry/backoff, hedging,
//! dedup, journaling and the exact merge.
//!
//! The loop is single-threaded and event-driven: dispatch every idle
//! worker, poll every link, expire deadlines, repeat. All robustness
//! decisions route through [`emerge_faults::RecoveryPolicy`] semantics —
//! `timeout.per_attempt_ticks` is the per-dispatch deadline in
//! milliseconds, `retry` bounds and spaces re-dispatches, and
//! `hedge.fanout` caps how many concurrent copies of a straggling unit
//! may run. Completed units are journaled *before* they count as done,
//! and results merge in canonical unit order at the very end, so the
//! merged outcome is independent of completion order — the property that
//! makes `chaos == clean == serial` hold bit for bit.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use emerge_bench::profile::collected;
use emerge_core::montecarlo::{run_protocol_trial_range, ProtocolMcResults};
use emerge_dht::analytic::AnalyticSubstrate;
use emerge_faults::{HedgePolicy, RecoveryPolicy, RetryPolicy, TimeoutPolicy};
use emerge_obs::metrics::CounterSnap;
use emerge_obs::{MetricsSnapshot, Stopwatch};
use emerge_sim::shard::{metrics_digest, TrialDigest};

use crate::error::SweepError;
use crate::grid::{world_config, SweepGrid, UnitSpec};
use crate::journal::Journal;
use crate::links::{LinkEvent, WorkerLink};
use crate::wire::{decode_worker_line, encode_request, UnitResult, WorkerReply};
use crate::worker::filter_env_counters;

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Trials per work unit.
    pub unit_trials: usize,
    /// Recovery semantics: `timeout.per_attempt_ticks` is the
    /// per-dispatch deadline in milliseconds, `retry` bounds and backs
    /// off re-dispatches, `hedge.fanout` caps concurrent copies of one
    /// unit.
    pub policy: RecoveryPolicy,
    /// How long a unit may stay in flight before it is hedged to
    /// another worker, in milliseconds.
    pub hedge_after_ms: u64,
    /// Stop (pause) once this many units are done — the coordinator-kill
    /// hook used by the resume tests and CI. `None` runs to completion.
    pub max_units: Option<usize>,
    /// Append-only completion journal; `None` disables crash-safe
    /// resume.
    pub journal_path: Option<PathBuf>,
    /// Prometheus text file rewritten after every completed unit.
    pub prom_path: Option<PathBuf>,
    /// Emit progress lines on stderr.
    pub progress: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            unit_trials: 25,
            policy: RecoveryPolicy {
                retry: RetryPolicy::default(),
                timeout: TimeoutPolicy {
                    per_attempt_ticks: 5_000,
                },
                hedge: HedgePolicy { fanout: 2 },
            },
            hedge_after_ms: 150,
            max_units: None,
            journal_path: None,
            prom_path: None,
            progress: false,
        }
    }
}

/// Fault and progress counters of one coordinator run. Exported through
/// `emerge-obs` as `sweep.*` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Failed dispatch attempts that were re-queued (timeouts, corrupt
    /// replies, dead workers).
    pub retries: u64,
    /// Straggler units hedged to an additional worker.
    pub hedges: u64,
    /// Valid results for already-completed units dropped by
    /// first-result-wins dedup (hedged twins, duplicated output, journal
    /// races).
    pub dedup_dropped: u64,
    /// Worker lines rejected by the wire decoder (garbage, truncation),
    /// recorded as findings.
    pub corrupt_findings: u64,
    /// Workers torn down and restarted (crashes, stuck deadlines).
    pub worker_restarts: u64,
    /// Dispatches abandoned because their deadline expired.
    pub timeouts: u64,
    /// Units recovered from the journal instead of re-running.
    pub journal_replayed: u64,
    /// Journal lines that failed to decode on replay (torn tail writes).
    pub journal_corrupt_lines: u64,
    /// Journal lines whose unit had already been recovered.
    pub journal_duplicate_lines: u64,
    /// Journal entries whose digest matches no unit of this grid.
    pub journal_stale_entries: u64,
}

impl SweepStats {
    /// The stats as a name-sorted `emerge-obs` snapshot (`sweep.*`).
    pub fn to_snapshot(&self) -> MetricsSnapshot {
        let pairs = [
            ("sweep.corrupt_findings", self.corrupt_findings),
            ("sweep.dedup_dropped", self.dedup_dropped),
            ("sweep.hedges", self.hedges),
            ("sweep.journal_corrupt_lines", self.journal_corrupt_lines),
            (
                "sweep.journal_duplicate_lines",
                self.journal_duplicate_lines,
            ),
            ("sweep.journal_replayed", self.journal_replayed),
            ("sweep.journal_stale_entries", self.journal_stale_entries),
            ("sweep.retries", self.retries),
            ("sweep.timeouts", self.timeouts),
            ("sweep.worker_restarts", self.worker_restarts),
        ];
        let mut counters: Vec<CounterSnap> = pairs
            .iter()
            .map(|(name, value)| CounterSnap {
                name: (*name).to_string(),
                value: *value,
            })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot {
            counters,
            gauges: Vec::new(),
            histograms: Vec::new(),
        }
    }
}

/// One cell's merged outcome.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Cell label.
    pub cell: String,
    /// Trials merged into this cell so far.
    pub trials: usize,
    /// The exactly-merged results.
    pub results: ProtocolMcResults,
}

/// The merged product of a sweep (or of the serial reference run).
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Grid name.
    pub grid: String,
    /// Per-cell outcomes, in grid order.
    pub cells: Vec<CellOutcome>,
    /// Digest over `(cell name, cell fingerprint)` pairs: one number
    /// that changes iff any cell's outcome changed.
    pub sweep_fingerprint: u64,
    /// [`metrics_digest`] of the merged worker telemetry counters.
    pub telemetry_digest: u64,
    /// The merged worker telemetry counters themselves.
    pub telemetry: MetricsSnapshot,
    /// Coordinator fault/progress counters (all zero for serial runs).
    pub stats: SweepStats,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Units completed (this run plus journal replay).
    pub done_units: usize,
    /// Units in the grid.
    pub total_units: usize,
}

impl SweepOutcome {
    /// Whether every unit of the grid is merged (false after a
    /// `max_units` pause).
    pub fn complete(&self) -> bool {
        self.done_units == self.total_units
    }
}

/// Checks that two outcomes that must be bit-identical are: cell
/// labels, every rate's exact counts, message counts, per-cell and
/// sweep fingerprints, and the telemetry digest.
///
/// # Errors
///
/// [`SweepError::Mismatch`] naming the first differing field.
pub fn assert_outcomes_identical(
    label: &str,
    a: &SweepOutcome,
    b: &SweepOutcome,
) -> Result<(), SweepError> {
    let fail = |what: String| Err(SweepError::Mismatch(format!("{label}: {what}")));
    if a.cells.len() != b.cells.len() {
        return fail("cell count differs".to_string());
    }
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        if ca.cell != cb.cell {
            return fail(format!("cell order differs ({} vs {})", ca.cell, cb.cell));
        }
        if ca.trials != cb.trials {
            return fail(format!("{}: trial count differs", ca.cell));
        }
        if ca.results.fingerprint != cb.results.fingerprint {
            return fail(format!(
                "{}: fingerprint {:016x} != {:016x}",
                ca.cell, ca.results.fingerprint, cb.results.fingerprint
            ));
        }
        for (name, ra, rb) in [
            ("released", ca.results.released, cb.results.released),
            ("clean", ca.results.clean, cb.results.clean),
            (
                "reconstructed_early",
                ca.results.reconstructed_early,
                cb.results.reconstructed_early,
            ),
        ] {
            if ra != rb {
                return fail(format!("{}: {name} rate differs", ca.cell));
            }
        }
        if ca.results.messages.count() != cb.results.messages.count() {
            return fail(format!("{}: message count differs", ca.cell));
        }
    }
    if a.sweep_fingerprint != b.sweep_fingerprint {
        return fail("sweep fingerprint differs".to_string());
    }
    if a.telemetry_digest != b.telemetry_digest {
        return fail(format!(
            "telemetry digest {:016x} != {:016x}",
            a.telemetry_digest, b.telemetry_digest
        ));
    }
    Ok(())
}

fn combine_cells(grid_name: &str, cells: &[CellOutcome]) -> u64 {
    let mut d = TrialDigest::new();
    d.eat(grid_name.as_bytes());
    d.eat(&[0]);
    for cell in cells {
        d.eat(cell.cell.as_bytes());
        d.eat(&[0]);
        d.eat(&cell.results.fingerprint.to_le_bytes());
    }
    d.finish()
}

/// Runs the whole grid serially in-process — the ground truth every
/// distributed run must reproduce bit for bit.
///
/// # Errors
///
/// [`SweepError::Unit`] when a cell cannot run at the grid's population.
pub fn run_serial(grid: &SweepGrid) -> Result<SweepOutcome, SweepError> {
    let clock = Stopwatch::start();
    let config = world_config(grid.population);
    let mut cells = Vec::with_capacity(grid.cells.len());
    let mut telemetry = MetricsSnapshot::default();
    for cell in &grid.cells {
        let (outcome, snapshot) = collected(|| {
            run_protocol_trial_range(&cell.spec, 0, cell.trials, grid.seed, |s| {
                AnalyticSubstrate::build(config, s)
            })
        });
        let results = outcome.map_err(|e| SweepError::Unit(e.to_string()))?;
        telemetry.merge(&filter_env_counters(&snapshot));
        cells.push(CellOutcome {
            cell: cell.name.clone(),
            trials: cell.trials,
            results,
        });
    }
    // Serial "units" are whole cells: one uninterrupted range per cell.
    let total = grid.cells.len();
    Ok(SweepOutcome {
        grid: grid.name.clone(),
        sweep_fingerprint: combine_cells(&grid.name, &cells),
        telemetry_digest: metrics_digest(&telemetry),
        cells,
        telemetry,
        stats: SweepStats::default(),
        seconds: clock.elapsed_secs(),
        done_units: total,
        total_units: total,
    })
}

struct UnitState {
    spec: UnitSpec,
    digest: u64,
    failures: u32,
    dispatches: u32,
    ready_at: Instant,
    result: Option<UnitResult>,
}

struct Dispatch {
    unit: usize,
    at: Instant,
}

/// The distributed sweep driver. Owns the unit state machine; workers
/// are handed in as [`WorkerLink`]s (threads in tests, `sweep_worker`
/// processes in the binary).
pub struct Coordinator {
    grid: SweepGrid,
    config: SweepConfig,
}

impl Coordinator {
    /// A coordinator for `grid` under `config`.
    pub fn new(grid: SweepGrid, config: SweepConfig) -> Self {
        Coordinator { grid, config }
    }

    /// Runs the sweep over `workers`, blocking until every unit is done
    /// (or the `max_units` pause point is reached).
    ///
    /// # Errors
    ///
    /// [`SweepError`] on exhausted retry budgets, deterministic unit
    /// failures, unusable configuration or journal I/O failures.
    pub fn run(&self, workers: &mut [Box<dyn WorkerLink>]) -> Result<SweepOutcome, SweepError> {
        if workers.is_empty() {
            return Err(SweepError::Config(
                "at least one worker required".to_string(),
            ));
        }
        let clock = Stopwatch::start();
        let now = Instant::now();
        let mut units: Vec<UnitState> = self
            .grid
            .units(self.config.unit_trials)
            .into_iter()
            .map(|spec| UnitState {
                digest: spec.digest(),
                spec,
                failures: 0,
                dispatches: 0,
                ready_at: now,
                result: None,
            })
            .collect();
        let total_units = units.len();
        let mut stats = SweepStats::default();
        let mut done_units = 0usize;

        // Crash-safe resume: recover completed units from the journal
        // before dispatching anything.
        let mut journal = match &self.config.journal_path {
            Some(path) => {
                let replay = Journal::replay(path)?;
                stats.journal_corrupt_lines = replay.corrupt_lines;
                stats.journal_duplicate_lines = replay.duplicate_lines;
                for recovered in replay.results {
                    match units.iter_mut().find(|u| u.digest == recovered.unit) {
                        Some(unit) if unit.result.is_none() => {
                            unit.result = Some(recovered);
                            done_units += 1;
                            stats.journal_replayed += 1;
                        }
                        Some(_) => stats.journal_duplicate_lines += 1,
                        None => stats.journal_stale_entries += 1,
                    }
                }
                Some(Journal::open(path)?)
            }
            None => None,
        };
        if self.config.progress && stats.journal_replayed > 0 {
            eprintln!(
                "[sweep] resumed from journal: {}/{total_units} units already done",
                stats.journal_replayed
            );
        }

        let deadline = Duration::from_millis(self.config.policy.timeout.per_attempt_ticks);
        let hedge_after = Duration::from_millis(self.config.hedge_after_ms);
        let fanout = self.config.policy.hedge.fanout.max(1);
        let budget = self.config.policy.retry.attempts();
        let stop_at = self
            .config
            .max_units
            .unwrap_or(total_units)
            .min(total_units);
        let retry = self.config.policy.retry;
        let mut dispatches: Vec<Option<Dispatch>> = Vec::new();
        dispatches.resize_with(workers.len(), || None);

        while done_units < stop_at {
            let now = Instant::now();
            // Dispatch phase: hand every idle worker a unit — a fresh
            // one first, else hedge the oldest straggler.
            let mut progressed = false;
            for w in 0..workers.len() {
                if dispatches[w].is_some() {
                    continue;
                }
                let Some((u, is_hedge)) =
                    pick_unit(&units, &dispatches, now, budget, fanout, hedge_after)
                else {
                    continue;
                };
                let attempt = units[u].dispatches;
                units[u].dispatches = units[u].dispatches.saturating_add(1);
                if is_hedge {
                    stats.hedges += 1;
                }
                let line = encode_request(&units[u].spec, attempt);
                if workers[w].send(&line) {
                    dispatches[w] = Some(Dispatch { unit: u, at: now });
                    progressed = true;
                } else {
                    stats.worker_restarts += 1;
                    workers[w].restart()?;
                }
            }

            // Poll phase: drain every link (idle links may still hold
            // late duplicates); route lines by their unit digest, not by
            // which worker they arrived on.
            for w in 0..workers.len() {
                let wait = if dispatches[w].is_some() {
                    Duration::from_millis(5)
                } else {
                    Duration::ZERO
                };
                match workers[w].recv(wait) {
                    LinkEvent::Idle => {}
                    LinkEvent::Dead => {
                        stats.worker_restarts += 1;
                        if let Some(d) = dispatches[w].take() {
                            fail_attempt(&mut units[d.unit], &mut stats, &retry);
                            check_exhausted(&units[d.unit], &dispatches, budget)?;
                        }
                        workers[w].restart()?;
                        progressed = true;
                    }
                    LinkEvent::Line(line) => {
                        progressed = true;
                        match decode_worker_line(&line) {
                            Ok(WorkerReply::Result(result)) => {
                                // Free the worker only if this line answers
                                // its current dispatch; a late duplicate for
                                // an older unit must not.
                                let answers_current = dispatches[w]
                                    .as_ref()
                                    .is_some_and(|d| units[d.unit].digest == result.unit);
                                if answers_current {
                                    dispatches[w] = None;
                                }
                                match units.iter().position(|u| u.digest == result.unit) {
                                    Some(u) if units[u].result.is_none() => {
                                        if let Some(j) = journal.as_mut() {
                                            j.append(&line)?;
                                        }
                                        units[u].result = Some(result);
                                        done_units += 1;
                                        if self.config.progress {
                                            eprintln!(
                                                "[sweep] {done_units}/{total_units} units ({})",
                                                units[u].spec.cell
                                            );
                                        }
                                        self.stream_prometheus(&stats, done_units, total_units);
                                    }
                                    Some(_) => stats.dedup_dropped += 1,
                                    None => {
                                        // Valid JSON for a unit we never
                                        // issued: a finding, and a failed
                                        // attempt for whatever this worker
                                        // was meant to be doing.
                                        stats.corrupt_findings += 1;
                                        if let Some(d) = dispatches[w].take() {
                                            fail_attempt(&mut units[d.unit], &mut stats, &retry);
                                            check_exhausted(&units[d.unit], &dispatches, budget)?;
                                        }
                                    }
                                }
                            }
                            Ok(WorkerReply::Error { unit, message }) => {
                                // A worker decoded the request fine and the
                                // unit itself failed: deterministic, fatal.
                                let cell = units
                                    .iter()
                                    .find(|u| u.digest == unit)
                                    .map_or("<unknown unit>", |u| u.spec.cell.as_str());
                                return Err(SweepError::Unit(format!("{cell}: {message}")));
                            }
                            Err(_) => {
                                stats.corrupt_findings += 1;
                                if let Some(d) = dispatches[w].take() {
                                    fail_attempt(&mut units[d.unit], &mut stats, &retry);
                                    check_exhausted(&units[d.unit], &dispatches, budget)?;
                                }
                            }
                        }
                    }
                }
            }

            // Deadline phase: abandon dispatches that outlived their
            // per-attempt budget and tear the (possibly stuck) worker
            // down.
            let now = Instant::now();
            for w in 0..workers.len() {
                let expired = dispatches[w]
                    .as_ref()
                    .is_some_and(|d| now.duration_since(d.at) > deadline);
                if expired {
                    if let Some(d) = dispatches[w].take() {
                        stats.timeouts += 1;
                        stats.worker_restarts += 1;
                        fail_attempt(&mut units[d.unit], &mut stats, &retry);
                        workers[w].restart()?;
                        check_exhausted(&units[d.unit], &dispatches, budget)?;
                    }
                }
            }

            if !progressed {
                std::thread::sleep(Duration::from_millis(2));
            }
        }

        // Exact merge, in canonical unit order — completion order does
        // not influence a single bit of the outcome.
        let mut cells: Vec<CellOutcome> = self
            .grid
            .cells
            .iter()
            .map(|c| CellOutcome {
                cell: c.name.clone(),
                trials: 0,
                results: ProtocolMcResults::default(),
            })
            .collect();
        let mut telemetry = MetricsSnapshot::default();
        for unit in &units {
            if let Some(result) = &unit.result {
                if let Some(cell) = cells.get_mut(unit.spec.cell_index) {
                    cell.results.merge(&result.results);
                    cell.trials += unit.spec.count;
                }
                telemetry.merge(&result.counters);
            }
        }
        self.stream_prometheus(&stats, done_units, total_units);
        Ok(SweepOutcome {
            grid: self.grid.name.clone(),
            sweep_fingerprint: combine_cells(&self.grid.name, &cells),
            telemetry_digest: metrics_digest(&telemetry),
            cells,
            telemetry,
            stats,
            seconds: clock.elapsed_secs(),
            done_units,
            total_units,
        })
    }

    /// Rewrites the `sweep.*` counters (plus progress) as Prometheus
    /// text, if a scrape path is configured. Best-effort: a failed
    /// scrape-file write never fails the sweep.
    fn stream_prometheus(&self, stats: &SweepStats, done: usize, total: usize) {
        let Some(path) = &self.config.prom_path else {
            return;
        };
        let mut snapshot = stats.to_snapshot();
        snapshot.counters.push(CounterSnap {
            name: "sweep.units_done".to_string(),
            value: done as u64,
        });
        snapshot.counters.push(CounterSnap {
            name: "sweep.units_total".to_string(),
            value: total as u64,
        });
        snapshot.counters.sort_by(|a, b| a.name.cmp(&b.name));
        let _ = std::fs::write(path, snapshot.to_prometheus());
    }
}

/// Picks the next unit for an idle worker: the lowest-index fresh unit
/// that is ready and within budget, else the lowest-index straggler
/// eligible for a hedge. Returns `(unit index, is_hedge)`.
fn pick_unit(
    units: &[UnitState],
    dispatches: &[Option<Dispatch>],
    now: Instant,
    budget: u32,
    fanout: usize,
    hedge_after: Duration,
) -> Option<(usize, bool)> {
    let copies = |u: usize| dispatches.iter().flatten().filter(|d| d.unit == u).count();
    for (i, u) in units.iter().enumerate() {
        if u.result.is_none() && u.ready_at <= now && u.failures < budget && copies(i) == 0 {
            return Some((i, false));
        }
    }
    for (i, u) in units.iter().enumerate() {
        if u.result.is_some() {
            continue;
        }
        let n = copies(i);
        let oldest = dispatches
            .iter()
            .flatten()
            .filter(|d| d.unit == i)
            .map(|d| d.at)
            .min();
        if n >= 1 && n < fanout && oldest.is_some_and(|at| now.duration_since(at) >= hedge_after) {
            return Some((i, true));
        }
    }
    None
}

fn fail_attempt(unit: &mut UnitState, stats: &mut SweepStats, retry: &RetryPolicy) {
    unit.failures = unit.failures.saturating_add(1);
    stats.retries += 1;
    let backoff = Duration::from_millis(retry.backoff_ticks(unit.failures));
    unit.ready_at = Instant::now() + backoff;
}

/// A unit with no result, no in-flight copies and an exhausted budget
/// can never finish: fail the sweep loudly instead of spinning forever.
fn check_exhausted(
    unit: &UnitState,
    dispatches: &[Option<Dispatch>],
    budget: u32,
) -> Result<(), SweepError> {
    let inflight = dispatches
        .iter()
        .flatten()
        .any(|d| d.unit == unit.spec.unit_index);
    if unit.result.is_none() && !inflight && unit.failures >= budget {
        return Err(SweepError::UnitExhausted {
            cell: unit.spec.cell.clone(),
            first_trial: unit.spec.first_trial,
            attempts: unit.failures,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ChaosPlan;
    use crate::links::ThreadWorkerLink;

    fn thread_workers(n: usize, chaos: Option<ChaosPlan>) -> Vec<Box<dyn WorkerLink>> {
        (0..n)
            .map(|_| Box::new(ThreadWorkerLink::start(chaos)) as Box<dyn WorkerLink>)
            .collect()
    }

    fn tiny_grid() -> SweepGrid {
        SweepGrid::builtin("share_8x3")
            .unwrap()
            .with_trials_per_cell(6)
    }

    #[test]
    fn clean_sweep_matches_serial_bit_for_bit() {
        let grid = tiny_grid();
        let serial = run_serial(&grid).unwrap();
        let mut workers = thread_workers(3, None);
        let coordinator = Coordinator::new(
            grid,
            SweepConfig {
                unit_trials: 2,
                ..SweepConfig::default()
            },
        );
        let swept = coordinator.run(&mut workers).unwrap();
        assert!(swept.complete());
        assert_outcomes_identical("clean vs serial", &swept, &serial).unwrap();
        assert_eq!(swept.stats.retries, 0);
        assert_eq!(swept.stats.corrupt_findings, 0);
    }

    #[test]
    fn empty_worker_pool_is_a_config_error() {
        let coordinator = Coordinator::new(tiny_grid(), SweepConfig::default());
        let mut workers: Vec<Box<dyn WorkerLink>> = Vec::new();
        assert!(matches!(
            coordinator.run(&mut workers),
            Err(SweepError::Config(_))
        ));
    }

    #[test]
    fn stats_snapshot_is_sorted_and_prefixed() {
        let stats = SweepStats {
            retries: 3,
            hedges: 1,
            ..SweepStats::default()
        };
        let snapshot = stats.to_snapshot();
        assert!(snapshot.counters.windows(2).all(|w| w[0].name < w[1].name));
        assert!(snapshot
            .counters
            .iter()
            .all(|c| c.name.starts_with("sweep.")));
        assert_eq!(
            snapshot
                .counters
                .iter()
                .find(|c| c.name == "sweep.retries")
                .map(|c| c.value),
            Some(3)
        );
    }
}
