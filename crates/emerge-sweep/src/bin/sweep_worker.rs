//! The sweep worker process: reads unit requests line by line on stdin,
//! writes result lines on stdout, until EOF. With `--chaos <seed>` the
//! worker runs the seeded self-chaos plan — deterministically killing
//! itself, stalling, or corrupting its output on the attempts the plan
//! selects — which is how the coordinator's robustness machinery is
//! exercised end to end in CI.

use std::io::{BufReader, Write};

use emerge_sweep::chaos::ChaosPlan;
use emerge_sweep::worker::{serve, ServeOutcome};

/// Exit code for a chaos kill: distinguishable from clean EOF (0) and
/// transport errors (1) in worker logs.
const CHAOS_EXIT: i32 = 17;

fn parse_args() -> Result<Option<ChaosPlan>, String> {
    let mut seed: Option<u64> = None;
    let mut stall_ms: u64 = 300;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--chaos" => {
                let value = args.next().ok_or("--chaos needs a seed")?;
                seed = Some(parse_u64(&value)?);
            }
            "--stall-ms" => {
                let value = args.next().ok_or("--stall-ms needs a value")?;
                stall_ms = parse_u64(&value)?;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    // --stall-ms without --chaos still means "no chaos".
    Ok(seed.map(|seed| ChaosPlan { seed, stall_ms }))
}

fn parse_u64(s: &str) -> Result<u64, String> {
    let parsed = match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse::<u64>(),
    };
    parsed.map_err(|e| format!("bad number {s:?}: {e}"))
}

fn real_main() -> i32 {
    let chaos = match parse_args() {
        Ok(chaos) => chaos,
        Err(e) => {
            eprintln!("sweep_worker: {e}");
            return 2;
        }
    };
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut reader = BufReader::new(stdin.lock());
    let mut writer = stdout.lock();
    match serve(&mut reader, &mut writer, chaos.as_ref()) {
        Ok(ServeOutcome::Eof) => {
            let _ = writer.flush();
            0
        }
        // Exit abruptly, mid-protocol, without replying: that is the
        // point of a chaos kill.
        Ok(ServeOutcome::ChaosKilled) => CHAOS_EXIT,
        Err(e) => {
            eprintln!("sweep_worker: {e}");
            1
        }
    }
}

fn main() {
    std::process::exit(real_main());
}
