//! The sweep coordinator process: partitions a grid into idempotent
//! units, dispatches them to `sweep_worker` child processes, journals
//! completions, and merges exactly.
//!
//! `--self-test` is the CI entry point: it runs the serial reference, a
//! clean distributed sweep, a chaos sweep (workers killing themselves,
//! stalling and corrupting output), and a kill/resume pass (the
//! coordinator stops mid-sweep, then a second coordinator resumes from
//! the journal) — and exits non-zero unless every pass produced
//! bit-identical outcome and telemetry fingerprints.

use std::path::PathBuf;

use emerge_faults::{HedgePolicy, RecoveryPolicy, RetryPolicy, TimeoutPolicy};
use emerge_sweep::coordinator::{
    assert_outcomes_identical, run_serial, Coordinator, SweepConfig, SweepOutcome,
};
use emerge_sweep::error::SweepError;
use emerge_sweep::grid::SweepGrid;
use emerge_sweep::links::{ProcessWorkerLink, WorkerLink};
use emerge_sweep::report::{render_sweep_report, SweepRun};

struct Options {
    grid: String,
    trials: Option<usize>,
    unit_trials: usize,
    workers: usize,
    journal: Option<PathBuf>,
    chaos: Option<u64>,
    stall_ms: u64,
    max_units: Option<usize>,
    out: Option<PathBuf>,
    prom: Option<PathBuf>,
    deadline_ms: u64,
    hedge_ms: u64,
    retries: u32,
    worker_cmd: Option<Vec<String>>,
    progress: bool,
    self_test: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            grid: "share_8x3".to_string(),
            trials: None,
            unit_trials: 25,
            workers: 3,
            journal: None,
            chaos: None,
            stall_ms: 300,
            max_units: None,
            out: None,
            prom: None,
            deadline_ms: 10_000,
            hedge_ms: 150,
            retries: 4,
            worker_cmd: None,
            progress: false,
            self_test: false,
        }
    }
}

const USAGE: &str = "\
sweep_coordinator [options]
  --grid NAME          built-in grid (share_8x3, schemes_2x3)
  --trials N           trials per cell (overrides the grid default)
  --unit-trials N      trials per work unit (default 25)
  --workers N          worker processes (default 3)
  --journal PATH       append-only completion journal (enables resume)
  --chaos SEED         seeded worker self-chaos (kills, stalls, corruption)
  --stall-ms N         chaos stall length (default 300)
  --max-units N        pause after N completed units (resume later)
  --out PATH           write BENCH_sweep.json-style report here
  --prom PATH          stream Prometheus counters here
  --deadline-ms N      per-dispatch deadline (default 10000)
  --hedge-ms N         hedge stragglers after this long (default 150)
  --retries N          dispatch attempts per unit (default 4)
  --worker-cmd CMD     worker command (default: sibling sweep_worker)
  --progress           progress lines on stderr
  --self-test          serial/clean/chaos/kill+resume equality check (CI)";

fn parse_u64(s: &str) -> Result<u64, String> {
    let parsed = match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse::<u64>(),
    };
    parsed.map_err(|e| format!("bad number {s:?}: {e}"))
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or(format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--grid" => opts.grid = value(&mut args, "--grid")?,
            "--trials" => {
                opts.trials = Some(
                    usize::try_from(parse_u64(&value(&mut args, "--trials")?)?)
                        .map_err(|e| e.to_string())?,
                );
            }
            "--unit-trials" => {
                opts.unit_trials = usize::try_from(parse_u64(&value(&mut args, "--unit-trials")?)?)
                    .map_err(|e| e.to_string())?;
            }
            "--workers" => {
                opts.workers = usize::try_from(parse_u64(&value(&mut args, "--workers")?)?)
                    .map_err(|e| e.to_string())?;
            }
            "--journal" => opts.journal = Some(PathBuf::from(value(&mut args, "--journal")?)),
            "--chaos" => opts.chaos = Some(parse_u64(&value(&mut args, "--chaos")?)?),
            "--stall-ms" => opts.stall_ms = parse_u64(&value(&mut args, "--stall-ms")?)?,
            "--max-units" => {
                opts.max_units = Some(
                    usize::try_from(parse_u64(&value(&mut args, "--max-units")?)?)
                        .map_err(|e| e.to_string())?,
                );
            }
            "--out" => opts.out = Some(PathBuf::from(value(&mut args, "--out")?)),
            "--prom" => opts.prom = Some(PathBuf::from(value(&mut args, "--prom")?)),
            "--deadline-ms" => opts.deadline_ms = parse_u64(&value(&mut args, "--deadline-ms")?)?,
            "--hedge-ms" => opts.hedge_ms = parse_u64(&value(&mut args, "--hedge-ms")?)?,
            "--retries" => {
                opts.retries = u32::try_from(parse_u64(&value(&mut args, "--retries")?)?)
                    .map_err(|e| e.to_string())?;
            }
            "--worker-cmd" => {
                let cmd = value(&mut args, "--worker-cmd")?;
                let parts: Vec<String> = cmd.split_whitespace().map(str::to_string).collect();
                if parts.is_empty() {
                    return Err("--worker-cmd must not be empty".to_string());
                }
                opts.worker_cmd = Some(parts);
            }
            "--progress" => opts.progress = true,
            "--self-test" => opts.self_test = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn worker_command(opts: &Options) -> Result<Vec<String>, SweepError> {
    if let Some(cmd) = &opts.worker_cmd {
        return Ok(cmd.clone());
    }
    // Default: the sweep_worker binary next to this coordinator binary.
    let me = std::env::current_exe()
        .map_err(|e| SweepError::io("locate sweep_coordinator binary", e))?;
    let dir = me
        .parent()
        .ok_or_else(|| SweepError::Config("coordinator binary has no parent dir".to_string()))?;
    let worker = dir.join("sweep_worker");
    Ok(vec![worker.to_string_lossy().into_owned()])
}

fn spawn_workers(
    opts: &Options,
    chaos: Option<u64>,
) -> Result<Vec<Box<dyn WorkerLink>>, SweepError> {
    let mut command = worker_command(opts)?;
    if let Some(seed) = chaos {
        command.push("--chaos".to_string());
        command.push(format!("0x{seed:x}"));
        command.push("--stall-ms".to_string());
        command.push(opts.stall_ms.to_string());
    }
    let mut workers: Vec<Box<dyn WorkerLink>> = Vec::with_capacity(opts.workers.max(1));
    for _ in 0..opts.workers.max(1) {
        workers.push(Box::new(ProcessWorkerLink::start(&command)?));
    }
    Ok(workers)
}

fn build_grid(opts: &Options) -> Result<SweepGrid, SweepError> {
    let grid = SweepGrid::builtin(&opts.grid)?;
    Ok(match opts.trials {
        Some(trials) => grid.with_trials_per_cell(trials),
        None => grid,
    })
}

fn sweep_config(opts: &Options, chaos: bool) -> SweepConfig {
    SweepConfig {
        unit_trials: opts.unit_trials,
        policy: RecoveryPolicy {
            retry: RetryPolicy {
                max_attempts: opts.retries,
                ..RetryPolicy::default()
            },
            timeout: TimeoutPolicy {
                per_attempt_ticks: opts.deadline_ms,
            },
            // Chaos stalls are meant to be out-hedged, so give chaotic
            // runs one extra concurrent copy to play with.
            hedge: HedgePolicy {
                fanout: if chaos { 3 } else { 2 },
            },
        },
        hedge_after_ms: opts.hedge_ms,
        max_units: opts.max_units,
        journal_path: opts.journal.clone(),
        prom_path: opts.prom.clone(),
        progress: opts.progress,
    }
}

fn run_distributed(
    opts: &Options,
    grid: &SweepGrid,
    chaos: Option<u64>,
    journal: Option<PathBuf>,
    max_units: Option<usize>,
) -> Result<SweepOutcome, SweepError> {
    let mut config = sweep_config(opts, chaos.is_some());
    config.journal_path = journal;
    config.max_units = max_units;
    let mut workers = spawn_workers(opts, chaos)?;
    Coordinator::new(grid.clone(), config).run(&mut workers)
}

fn write_report(opts: &Options, runs: &[SweepRun]) -> Result<(), SweepError> {
    let Some(path) = &opts.out else {
        return Ok(());
    };
    std::fs::write(path, render_sweep_report(runs))
        .map_err(|e| SweepError::io(&format!("write report {}", path.display()), e))
}

/// The CI smoke test: every pass must land on identical fingerprints.
fn self_test(opts: &Options) -> Result<(), SweepError> {
    let grid = build_grid(opts)?;
    let chaos_seed = opts.chaos.unwrap_or(0xC405_5EED);

    eprintln!("[self-test] serial reference...");
    let serial = run_serial(&grid)?;
    eprintln!(
        "[self-test] serial: fingerprint {:016x}, telemetry {:016x}, {:.2}s",
        serial.sweep_fingerprint, serial.telemetry_digest, serial.seconds
    );

    eprintln!(
        "[self-test] clean distributed sweep ({} workers)...",
        opts.workers
    );
    let clean = run_distributed(opts, &grid, None, None, None)?;
    assert_outcomes_identical("clean vs serial", &clean, &serial)?;
    eprintln!("[self-test] clean matches serial ({:.2}s)", clean.seconds);

    eprintln!("[self-test] chaos sweep (seed 0x{chaos_seed:x})...");
    let chaos = run_distributed(opts, &grid, Some(chaos_seed), None, None)?;
    assert_outcomes_identical("chaos vs serial", &chaos, &serial)?;
    eprintln!(
        "[self-test] chaos matches serial ({:.2}s; retries {}, hedges {}, restarts {}, \
         corrupt findings {}, dedup dropped {})",
        chaos.seconds,
        chaos.stats.retries,
        chaos.stats.hedges,
        chaos.stats.worker_restarts,
        chaos.stats.corrupt_findings,
        chaos.stats.dedup_dropped
    );

    // Kill/resume: complete roughly half the units under chaos, abandon
    // that coordinator, then resume from its journal with a fresh one.
    let journal = opts.journal.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!(
            "emerge-sweep-selftest-{}.journal",
            std::process::id()
        ))
    });
    let _ = std::fs::remove_file(&journal);
    let total = grid.units(opts.unit_trials.max(1)).len();
    let pause_at = (total / 2).max(1);
    eprintln!("[self-test] pass 1: pause after {pause_at}/{total} units, then kill...");
    let paused = run_distributed(
        opts,
        &grid,
        Some(chaos_seed),
        Some(journal.clone()),
        Some(pause_at),
    )?;
    if paused.complete() && total > 1 {
        return Err(SweepError::Mismatch(
            "pause pass unexpectedly completed the sweep".to_string(),
        ));
    }
    eprintln!(
        "[self-test] pass 2: resume from journal ({} units already done)...",
        paused.done_units
    );
    let resumed = run_distributed(opts, &grid, Some(chaos_seed), Some(journal.clone()), None)?;
    assert_outcomes_identical("resumed vs serial", &resumed, &serial)?;
    if resumed.stats.journal_replayed == 0 {
        return Err(SweepError::Mismatch(
            "resume pass replayed nothing from the journal".to_string(),
        ));
    }
    eprintln!(
        "[self-test] resume matches serial ({} units replayed, {} run fresh)",
        resumed.stats.journal_replayed,
        resumed.done_units - resumed.stats.journal_replayed as usize
    );
    let _ = std::fs::remove_file(&journal);

    write_report(
        opts,
        &[
            SweepRun {
                mode: "serial".to_string(),
                chaos_seed: None,
                workers: 0,
                outcome: serial,
            },
            SweepRun {
                mode: "clean".to_string(),
                chaos_seed: None,
                workers: opts.workers,
                outcome: clean,
            },
            SweepRun {
                mode: "chaos".to_string(),
                chaos_seed: Some(chaos_seed),
                workers: opts.workers,
                outcome: chaos,
            },
            SweepRun {
                mode: "chaos_resumed".to_string(),
                chaos_seed: Some(chaos_seed),
                workers: opts.workers,
                outcome: resumed,
            },
        ],
    )?;
    eprintln!("[self-test] all passes bit-identical");
    Ok(())
}

fn run(opts: &Options) -> Result<(), SweepError> {
    if opts.self_test {
        return self_test(opts);
    }
    let grid = build_grid(opts)?;
    let outcome = run_distributed(
        opts,
        &grid,
        opts.chaos,
        opts.journal.clone(),
        opts.max_units,
    )?;
    eprintln!(
        "[sweep] {}/{} units, fingerprint {:016x}, telemetry {:016x}, {:.2}s",
        outcome.done_units,
        outcome.total_units,
        outcome.sweep_fingerprint,
        outcome.telemetry_digest,
        outcome.seconds
    );
    let mode = if opts.chaos.is_some() {
        "chaos"
    } else {
        "clean"
    };
    write_report(
        opts,
        &[SweepRun {
            mode: mode.to_string(),
            chaos_seed: opts.chaos,
            workers: opts.workers,
            outcome,
        }],
    )
}

fn main() {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(&opts) {
        eprintln!("sweep_coordinator: {e}");
        std::process::exit(1);
    }
}
