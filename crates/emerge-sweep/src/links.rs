//! Worker transports: the coordinator talks to workers through the
//! [`WorkerLink`] trait, with two implementations — real child processes
//! over stdio pipes, and in-process threads for the seeded test harness.
//! Both speak the same wire lines and share the worker's reply
//! composition, so chaos behaves identically over either transport.

use std::io::Write;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

use crate::chaos::ChaosPlan;
use crate::error::SweepError;
use crate::worker::{respond, ReplyPlan};

/// One poll of a worker link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkEvent {
    /// A complete line from the worker.
    Line(String),
    /// Nothing arrived within the wait budget.
    Idle,
    /// The worker is gone (process exited, thread returned, pipe
    /// closed). The link must be restarted before reuse.
    Dead,
}

/// A bidirectional line channel to one worker.
pub trait WorkerLink {
    /// Sends one request line. `false` means the link is dead.
    fn send(&mut self, line: &str) -> bool;
    /// Waits up to `wait` for one reply line.
    fn recv(&mut self, wait: Duration) -> LinkEvent;
    /// Tears the worker down (if anything is left) and starts a fresh
    /// one.
    ///
    /// # Errors
    ///
    /// [`SweepError`] when a replacement worker cannot be started.
    fn restart(&mut self) -> Result<(), SweepError>;
}

/// A worker thread inside the coordinator process: the deterministic
/// harness the e2e tests use. Each request is served by
/// [`respond`] on a dedicated thread, chaos included — a chaos kill
/// drops the thread (and its channels), which the coordinator observes
/// as [`LinkEvent::Dead`] exactly like a crashed process.
pub struct ThreadWorkerLink {
    chaos: Option<ChaosPlan>,
    tx: Option<Sender<String>>,
    rx: Option<Receiver<String>>,
}

impl ThreadWorkerLink {
    /// Starts the worker thread.
    pub fn start(chaos: Option<ChaosPlan>) -> Self {
        let mut link = ThreadWorkerLink {
            chaos,
            tx: None,
            rx: None,
        };
        link.spawn();
        link
    }

    fn spawn(&mut self) {
        let (req_tx, req_rx) = mpsc::channel::<String>();
        let (reply_tx, reply_rx) = mpsc::channel::<String>();
        let chaos = self.chaos;
        std::thread::spawn(move || {
            while let Ok(line) = req_rx.recv() {
                match respond(&line, chaos.as_ref()) {
                    ReplyPlan::Kill => return,
                    ReplyPlan::Respond { stall_ms, lines } => {
                        if stall_ms > 0 {
                            std::thread::sleep(Duration::from_millis(stall_ms));
                        }
                        for reply in lines {
                            if reply_tx.send(reply).is_err() {
                                return;
                            }
                        }
                    }
                }
            }
        });
        self.tx = Some(req_tx);
        self.rx = Some(reply_rx);
    }
}

impl WorkerLink for ThreadWorkerLink {
    fn send(&mut self, line: &str) -> bool {
        self.tx
            .as_ref()
            .is_some_and(|tx| tx.send(line.to_string()).is_ok())
    }

    fn recv(&mut self, wait: Duration) -> LinkEvent {
        match self.rx.as_ref().map(|rx| rx.recv_timeout(wait)) {
            Some(Ok(line)) => LinkEvent::Line(line),
            Some(Err(RecvTimeoutError::Timeout)) => LinkEvent::Idle,
            Some(Err(RecvTimeoutError::Disconnected)) | None => LinkEvent::Dead,
        }
    }

    fn restart(&mut self) -> Result<(), SweepError> {
        self.tx = None;
        self.rx = None;
        self.spawn();
        Ok(())
    }
}

/// A real worker child process (the `sweep_worker` binary) over stdio
/// pipes. A reader thread pumps the child's stdout into a channel so
/// `recv` can wait with a timeout.
pub struct ProcessWorkerLink {
    command: Vec<String>,
    child: Option<Child>,
    stdin: Option<ChildStdin>,
    rx: Option<Receiver<String>>,
}

impl ProcessWorkerLink {
    /// Spawns a worker from `command` (program plus arguments).
    ///
    /// # Errors
    ///
    /// [`SweepError`] when the command is empty or the process cannot be
    /// spawned.
    pub fn start(command: &[String]) -> Result<Self, SweepError> {
        let mut link = ProcessWorkerLink {
            command: command.to_vec(),
            child: None,
            stdin: None,
            rx: None,
        };
        link.spawn()?;
        Ok(link)
    }

    fn spawn(&mut self) -> Result<(), SweepError> {
        let program = self
            .command
            .first()
            .ok_or_else(|| SweepError::Config("empty worker command".to_string()))?;
        let mut child = Command::new(program)
            .args(&self.command[1..])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| SweepError::io(&format!("spawn worker {program:?}"), e))?;
        let stdin = child
            .stdin
            .take()
            .ok_or_else(|| SweepError::Config("worker stdin not piped".to_string()))?;
        let stdout = child
            .stdout
            .take()
            .ok_or_else(|| SweepError::Config("worker stdout not piped".to_string()))?;
        let (tx, rx) = mpsc::channel::<String>();
        std::thread::spawn(move || {
            use std::io::BufRead;
            let reader = std::io::BufReader::new(stdout);
            for line in reader.lines() {
                match line {
                    Ok(line) => {
                        if tx.send(line).is_err() {
                            return;
                        }
                    }
                    Err(_) => return,
                }
            }
        });
        self.child = Some(child);
        self.stdin = Some(stdin);
        self.rx = Some(rx);
        Ok(())
    }

    fn teardown(&mut self) {
        self.stdin = None; // closes the pipe; a healthy worker exits on EOF
        self.rx = None;
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait(); // reap, never leave zombies
        }
    }
}

impl WorkerLink for ProcessWorkerLink {
    fn send(&mut self, line: &str) -> bool {
        match self.stdin.as_mut() {
            Some(stdin) => stdin
                .write_all(line.as_bytes())
                .and_then(|()| stdin.write_all(b"\n"))
                .and_then(|()| stdin.flush())
                .is_ok(),
            None => false,
        }
    }

    fn recv(&mut self, wait: Duration) -> LinkEvent {
        match self.rx.as_ref().map(|rx| rx.recv_timeout(wait)) {
            Some(Ok(line)) => LinkEvent::Line(line),
            Some(Err(RecvTimeoutError::Timeout)) => LinkEvent::Idle,
            Some(Err(RecvTimeoutError::Disconnected)) | None => LinkEvent::Dead,
        }
    }

    fn restart(&mut self) -> Result<(), SweepError> {
        self.teardown();
        self.spawn()
    }
}

impl Drop for ProcessWorkerLink {
    fn drop(&mut self) {
        self.teardown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::SweepGrid;
    use crate::wire::{decode_worker_line, encode_request, WorkerReply};

    #[test]
    fn thread_link_serves_and_survives_restart() {
        let unit = SweepGrid::builtin("share_8x3")
            .unwrap()
            .with_trials_per_cell(2)
            .units(2)[0]
            .clone();
        let mut link = ThreadWorkerLink::start(None);
        assert!(link.send(&encode_request(&unit, 0)));
        let line = loop {
            match link.recv(Duration::from_millis(200)) {
                LinkEvent::Line(line) => break line,
                LinkEvent::Idle => {}
                LinkEvent::Dead => panic!("worker died"),
            }
        };
        assert!(matches!(
            decode_worker_line(&line).unwrap(),
            WorkerReply::Result(r) if r.unit == unit.digest()
        ));
        link.restart().unwrap();
        assert!(link.send(&encode_request(&unit, 2)));
        let relined = loop {
            match link.recv(Duration::from_millis(200)) {
                LinkEvent::Line(line) => break line,
                LinkEvent::Idle => {}
                LinkEvent::Dead => panic!("restarted worker died"),
            }
        };
        assert!(decode_worker_line(&relined).is_ok());
    }

    #[test]
    fn dead_thread_link_reports_dead() {
        // A chaos plan whose kill decision we can force by brute search:
        // find an attempt 0 unit the plan kills, then observe Dead.
        let grid = SweepGrid::builtin("share_8x3")
            .unwrap()
            .with_trials_per_cell(64);
        let units = grid.units(1);
        let plan = ChaosPlan::new(0xDEAD);
        let victim = units
            .iter()
            .find(|u| plan.decide(u.digest(), 0) == crate::chaos::ChaosAction::Kill)
            .expect("some unit draws a kill");
        let mut link = ThreadWorkerLink::start(Some(plan));
        assert!(link.send(&encode_request(victim, 0)));
        let mut saw_dead = false;
        for _ in 0..50 {
            match link.recv(Duration::from_millis(20)) {
                LinkEvent::Dead => {
                    saw_dead = true;
                    break;
                }
                LinkEvent::Idle => {}
                LinkEvent::Line(line) => panic!("killed worker replied: {line}"),
            }
        }
        assert!(saw_dead, "kill must surface as a dead link");
    }
}
