//! The worker side: execute one unit, compose the reply (under chaos,
//! possibly a disruptive one), and the stdio serve loop.
//!
//! The reply-composition logic is shared between the `sweep_worker`
//! binary (stdio pipes) and the in-process thread link the test harness
//! uses, so both transports behave identically under chaos.

use std::io::{BufRead, Write};

use emerge_bench::profile::collected;
use emerge_core::montecarlo::run_protocol_trial_range;
use emerge_dht::analytic::AnalyticSubstrate;
use emerge_obs::MetricsSnapshot;

use crate::chaos::{ChaosAction, ChaosPlan};
use crate::error::SweepError;
use crate::grid::{world_config, UnitSpec};
use crate::wire::{decode_request, encode_error, encode_result, UnitResult};

/// Strips counters whose values depend on the execution environment
/// rather than the trials: `.allocs` counters vary with allocator state
/// and shard warm-up, so they cannot take part in a digest that must be
/// bit-identical across serial, clean and chaos runs.
pub fn filter_env_counters(snapshot: &MetricsSnapshot) -> MetricsSnapshot {
    MetricsSnapshot {
        counters: snapshot
            .counters
            .iter()
            .filter(|c| !c.name.ends_with(".allocs"))
            .cloned()
            .collect(),
        gauges: Vec::new(),
        histograms: Vec::new(),
    }
}

/// Executes one unit: runs its trial range on a fresh analytic substrate
/// per trial (seeded by global trial index, so results merge
/// bit-identically with any other partitioning) and collects the unit's
/// telemetry counters.
///
/// # Errors
///
/// [`SweepError::Unit`] when the trial range itself fails (e.g. the
/// structure does not fit the configured population) — a deterministic
/// error retrying cannot fix.
pub fn run_unit(spec: &UnitSpec) -> Result<UnitResult, SweepError> {
    let config = world_config(spec.population);
    let (outcome, snapshot) = collected(|| {
        run_protocol_trial_range(&spec.spec, spec.first_trial, spec.count, spec.seed, |s| {
            AnalyticSubstrate::build(config, s)
        })
    });
    let results = outcome.map_err(|e| SweepError::Unit(e.to_string()))?;
    Ok(UnitResult {
        unit: spec.digest(),
        results,
        counters: filter_env_counters(&snapshot),
    })
}

/// What the transport should do with one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplyPlan {
    /// Exit immediately without replying (chaos kill).
    Kill,
    /// Sleep `stall_ms`, then write each line in order.
    Respond {
        /// Milliseconds to sleep before writing (0 for a prompt reply).
        stall_ms: u64,
        /// The lines to write, in order.
        lines: Vec<String>,
    },
}

/// Composes the reply for one request line, applying the chaos plan's
/// decision for `(unit, attempt)`. Malformed request lines produce an
/// error reply (unit digest 0) rather than a crash — the coordinator
/// treats that as fatal, since its own request pipe should never
/// corrupt.
pub fn respond(line: &str, chaos: Option<&ChaosPlan>) -> ReplyPlan {
    let (spec, attempt) = match decode_request(line) {
        Ok(decoded) => decoded,
        Err(e) => {
            return ReplyPlan::Respond {
                stall_ms: 0,
                lines: vec![encode_error(0, &e.to_string())],
            }
        }
    };
    let digest = spec.digest();
    let action = chaos.map_or(ChaosAction::None, |plan| plan.decide(digest, attempt));
    if action == ChaosAction::Kill {
        return ReplyPlan::Kill;
    }
    let reply = match run_unit(&spec) {
        Ok(unit) => encode_result(unit.unit, &unit.results, &unit.counters),
        Err(e) => encode_error(digest, &e.to_string()),
    };
    match action {
        ChaosAction::None | ChaosAction::Kill => ReplyPlan::Respond {
            stall_ms: 0,
            lines: vec![reply],
        },
        ChaosAction::Stall => ReplyPlan::Respond {
            stall_ms: chaos.map_or(0, |plan| plan.stall_ms),
            lines: vec![reply],
        },
        ChaosAction::Garbage => ReplyPlan::Respond {
            stall_ms: 0,
            lines: vec!["@@corrupt worker output, definitely not JSON@@".to_string()],
        },
        ChaosAction::Truncate => ReplyPlan::Respond {
            stall_ms: 0,
            lines: vec![reply[..reply.len() / 2].to_string()],
        },
        ChaosAction::Duplicate => ReplyPlan::Respond {
            stall_ms: 0,
            lines: vec![reply.clone(), reply],
        },
    }
}

/// How a serve loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOutcome {
    /// The request stream ended (coordinator closed the pipe).
    Eof,
    /// A chaos decision killed this worker; the process should exit
    /// abruptly, without replying.
    ChaosKilled,
}

/// Serves unit requests line by line until EOF or a chaos kill. Used by
/// the `sweep_worker` binary over stdin/stdout.
///
/// # Errors
///
/// [`SweepError::Io`] when the transport itself fails.
pub fn serve<R: BufRead, W: Write>(
    reader: &mut R,
    writer: &mut W,
    chaos: Option<&ChaosPlan>,
) -> Result<ServeOutcome, SweepError> {
    let mut line = String::new();
    loop {
        line.clear();
        let read = reader
            .read_line(&mut line)
            .map_err(|e| SweepError::io("read request", e))?;
        if read == 0 {
            return Ok(ServeOutcome::Eof);
        }
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed.is_empty() {
            continue;
        }
        match respond(trimmed, chaos) {
            ReplyPlan::Kill => return Ok(ServeOutcome::ChaosKilled),
            ReplyPlan::Respond { stall_ms, lines } => {
                if stall_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(stall_ms));
                }
                for reply in &lines {
                    writer
                        .write_all(reply.as_bytes())
                        .and_then(|()| writer.write_all(b"\n"))
                        .map_err(|e| SweepError::io("write reply", e))?;
                }
                writer
                    .flush()
                    .map_err(|e| SweepError::io("flush reply", e))?;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::SweepGrid;
    use crate::wire::{decode_worker_line, encode_request, WorkerReply};

    fn small_unit() -> UnitSpec {
        SweepGrid::builtin("share_8x3")
            .unwrap()
            .with_trials_per_cell(3)
            .units(3)[0]
            .clone()
    }

    #[test]
    fn run_unit_matches_an_inline_range_run() {
        let unit = small_unit();
        let result = run_unit(&unit).unwrap();
        let config = world_config(unit.population);
        let inline = run_protocol_trial_range(&unit.spec, 0, 3, unit.seed, |s| {
            AnalyticSubstrate::build(config, s)
        })
        .unwrap();
        assert_eq!(result.results.fingerprint, inline.fingerprint);
        assert_eq!(result.results.released, inline.released);
        assert!(
            result
                .counters
                .counters
                .iter()
                .all(|c| !c.name.ends_with(".allocs")),
            "environment-dependent counters are filtered"
        );
        assert!(
            !result.counters.counters.is_empty(),
            "trial telemetry is collected"
        );
    }

    #[test]
    fn respond_serves_a_clean_request() {
        let unit = small_unit();
        let plan = respond(&encode_request(&unit, 0), None);
        let ReplyPlan::Respond { stall_ms, lines } = plan else {
            panic!("expected a reply");
        };
        assert_eq!(stall_ms, 0);
        assert_eq!(lines.len(), 1);
        let reply = decode_worker_line(&lines[0]).unwrap();
        assert!(matches!(reply, WorkerReply::Result(r) if r.unit == unit.digest()));
    }

    #[test]
    fn respond_reports_infeasible_units_as_errors() {
        let mut unit = small_unit();
        unit.population = 4; // cannot fit an 8x3 share structure
        let plan = respond(&encode_request(&unit, 0), None);
        let ReplyPlan::Respond { lines, .. } = plan else {
            panic!("expected a reply");
        };
        assert!(matches!(
            decode_worker_line(&lines[0]).unwrap(),
            WorkerReply::Error { unit: u, .. } if u == unit.digest()
        ));
    }

    #[test]
    fn respond_rejects_garbage_requests_without_crashing() {
        let plan = respond("{\"type\": \"unit\"}", None);
        let ReplyPlan::Respond { lines, .. } = plan else {
            panic!("expected a reply");
        };
        assert!(matches!(
            decode_worker_line(&lines[0]).unwrap(),
            WorkerReply::Error { unit: 0, .. }
        ));
    }

    #[test]
    fn serve_loop_round_trips_over_buffers() {
        let unit = small_unit();
        let input = format!("{}\n", encode_request(&unit, 0));
        let mut output = Vec::new();
        let outcome = serve(&mut input.as_bytes(), &mut output, None).unwrap();
        assert_eq!(outcome, ServeOutcome::Eof);
        let text = String::from_utf8(output).unwrap();
        let reply = decode_worker_line(text.trim_end()).unwrap();
        assert!(matches!(reply, WorkerReply::Result(r) if r.unit == unit.digest()));
    }
}
