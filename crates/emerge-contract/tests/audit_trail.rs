//! Event-level audit trail of the release contract.
//!
//! Every successful `ReleaseContract` state transition emits an
//! `emerge_obs` event; with a ring-buffer collector installed the full
//! register → commit → reveal → finalize → claim/slash history of a
//! deposit can be replayed in order, and a ring too small for the
//! history counts exactly what it dropped instead of lying by omission.

use emerge_contract::contract::{commitment, DepositTerms, ReleaseContract};
use emerge_contract::ledger::Ledger;
use emerge_obs::collector::{install, take};
use emerge_obs::trace::{RingEntry, RingEntryKind};
use emerge_obs::Collector;

const BOND: u64 = 100;
const REWARD: u64 = 10;

/// Runs `f` with a fresh ring-buffer collector installed, restoring any
/// previously installed collector afterwards, and returns the collector.
fn with_ring_collector(capacity: usize, f: impl FnOnce()) -> Collector {
    let previous = install(Collector::with_ring(capacity));
    f();
    let collector = take().expect("collector stays installed");
    if let Some(prev) = previous {
        install(prev);
    }
    collector
}

/// Ledger with `holders` holder accounts `0..holders` and a depositor
/// account `holders`, plus an opened 3-block reveal window `[10, 13)`.
fn open_deposit(holders: usize) -> (Ledger, ReleaseContract, usize) {
    let mut ledger = Ledger::new(holders + 1, 1_000);
    let mut contract = ReleaseContract::new();
    let terms = DepositTerms {
        depositor: holders,
        bond: BOND,
        reveal_reward: REWARD,
        reveal_from: 10,
        reveal_by: 13,
    };
    let accounts: Vec<usize> = (0..holders).collect();
    let id = contract.open(&mut ledger, terms, &accounts, 0).unwrap();
    (ledger, contract, id)
}

/// The event entries of the ring, oldest first.
fn events(collector: &Collector) -> Vec<RingEntry> {
    collector
        .ring()
        .expect("ring-buffer collector")
        .entries()
        .into_iter()
        .filter(|e| e.kind == RingEntryKind::Event)
        .collect()
}

fn field(entry: &RingEntry, name: &str) -> u64 {
    entry
        .fields()
        .iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("{} has no field {name}", entry.name))
        .1
}

#[test]
fn happy_path_replays_in_transition_order() {
    let collector = with_ring_collector(64, || {
        let (mut ledger, mut contract, id) = open_deposit(3);
        for holder in 0..3 {
            contract
                .commit(id, holder, commitment(b"share"), 1)
                .unwrap();
        }
        for holder in 0..3 {
            contract.reveal(id, holder, b"share", 10).unwrap();
        }
        contract.finalize(&mut ledger, id, 13).unwrap();
        for holder in 0..3 {
            contract.claim(&mut ledger, id, holder).unwrap();
        }
    });

    let trail: Vec<&'static str> = events(&collector).iter().map(|e| e.name).collect();
    assert_eq!(
        trail,
        [
            "contract.open",
            "contract.commit",
            "contract.commit",
            "contract.commit",
            "contract.reveal",
            "contract.reveal",
            "contract.reveal",
            "contract.finalize",
            "contract.claim",
            "contract.claim",
            "contract.claim",
        ]
    );

    let entries = events(&collector);
    assert_eq!(field(&entries[0], "holders"), 3);
    assert_eq!(field(&entries[0], "bond"), BOND);
    assert_eq!(field(&entries[4], "block"), 10);
    assert_eq!(field(&entries[7], "slashed"), 0);
    assert_eq!(field(&entries[8], "payout"), BOND + REWARD);

    // The trail also lands in the mergeable counters, one per event.
    let snapshot = collector.snapshot();
    assert_eq!(snapshot.counter("contract.open"), Some(1));
    assert_eq!(snapshot.counter("contract.commit"), Some(3));
    assert_eq!(snapshot.counter("contract.reveal"), Some(3));
    assert_eq!(snapshot.counter("contract.claim"), Some(3));
    assert_eq!(snapshot.counter("contract.slash"), None);
}

#[test]
fn misbehaviour_emits_early_reveal_and_slash_events() {
    let collector = with_ring_collector(64, || {
        let (mut ledger, mut contract, id) = open_deposit(2);
        for holder in 0..2 {
            contract
                .commit(id, holder, commitment(b"share"), 1)
                .unwrap();
        }
        // Holder 0 leaks before the window opens; holder 1 withholds.
        contract.reveal(id, 0, b"share", 5).unwrap();
        contract.finalize(&mut ledger, id, 13).unwrap();
    });

    let trail: Vec<&'static str> = events(&collector).iter().map(|e| e.name).collect();
    assert_eq!(
        trail,
        [
            "contract.open",
            "contract.commit",
            "contract.commit",
            "contract.reveal_early",
            "contract.slash",
            "contract.slash",
            "contract.finalize",
        ]
    );

    let entries = events(&collector);
    assert_eq!(field(&entries[3], "block"), 5);
    assert_eq!(field(&entries[4], "bond"), BOND);
    assert_eq!(field(&entries[6], "slashed"), 2);

    let snapshot = collector.snapshot();
    assert_eq!(snapshot.counter("contract.reveal_early"), Some(1));
    assert_eq!(snapshot.counter("contract.slash"), Some(2));
    assert_eq!(snapshot.counter("contract.reveal"), None);
}

#[test]
fn overflowing_ring_counts_every_dropped_entry() {
    let collector = with_ring_collector(2, || {
        let (mut ledger, mut contract, id) = open_deposit(3);
        for holder in 0..3 {
            contract
                .commit(id, holder, commitment(b"share"), 1)
                .unwrap();
        }
        for holder in 0..3 {
            contract.reveal(id, holder, b"share", 10).unwrap();
        }
        contract.finalize(&mut ledger, id, 13).unwrap();
        for holder in 0..3 {
            contract.claim(&mut ledger, id, holder).unwrap();
        }
    });

    // 11 transitions pushed through a 2-slot ring: the newest 2 survive,
    // the other 9 are accounted for in the drop counter.
    let ring = collector.ring().unwrap();
    assert_eq!(ring.len(), 2);
    assert_eq!(ring.dropped(), 9);
    let survivors: Vec<&'static str> = ring.entries().iter().map(|e| e.name).collect();
    assert_eq!(survivors, ["contract.claim", "contract.claim"]);

    // Dropping ring entries never loses counter increments.
    let snapshot = collector.snapshot();
    assert_eq!(snapshot.counter("contract.claim"), Some(3));
    assert_eq!(snapshot.counter("contract.commit"), Some(3));
}
