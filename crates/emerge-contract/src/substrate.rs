//! The contract-backed DHT substrate.
//!
//! [`ContractSubstrate`] layers the simulated blockchain — block clock,
//! token [`Ledger`], [`ReleaseContract`] — on top of the routing-free
//! [`AnalyticSubstrate`]. The DHT semantics (population, churn
//! timelines, XOR-closest holder resolution, storage oracle) are
//! *delegated verbatim* to the inner substrate, so for a given
//! `(OverlayConfig, seed)` pair every path plan, protocol run and
//! Monte-Carlo fingerprint is bit-identical across the overlay, the
//! analytic substrate and this one — the cross-substrate parity the
//! workspace test suites pin down. What the contract layer adds:
//!
//! * a **block clock**: `advance_to` keeps a blockchain height in sync
//!   with simulated time, and contract deadlines are block heights;
//! * **storage deals**: every replicated `store` escrows a per-replica
//!   bond from the responsible slots' accounts, refunded when the
//!   value's TTL expires — storage capacity is collateralized, not free;
//! * the **release contract** itself, on which the contract-native
//!   bonded-release protocol ([`crate::release`]) escrows, reveals,
//!   claims and slashes.
//!
//! Account layout: slot `s` owns ledger account `s`; the depositor
//! (sender) owns account `n_nodes`.

use crate::clock::{BlockClock, BlockHeight};
use crate::contract::ReleaseContract;
use crate::economy::EconomyParams;
use crate::ledger::{AccountId, Ledger};
use emerge_dht::analytic::AnalyticSubstrate;
use emerge_dht::id::NodeId;
use emerge_dht::overlay::OverlayConfig;
use emerge_dht::population::NodeInfo;
use emerge_sim::time::{SimDuration, SimTime};
use rand::Rng;

/// Configuration of a contract substrate: the DHT world plus the chain
/// economy layered on it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContractConfig {
    /// The DHT population / world parameters (shared with the other
    /// substrates; equal configs + seeds mean bit-identical populations).
    pub overlay: OverlayConfig,
    /// Token economy parameters.
    pub economy: EconomyParams,
    /// Ticks per block of the simulated chain.
    pub block_interval: SimDuration,
}

impl Default for ContractConfig {
    fn default() -> Self {
        ContractConfig {
            overlay: OverlayConfig::default(),
            economy: EconomyParams::default(),
            block_interval: SimDuration::from_ticks(250),
        }
    }
}

impl ContractConfig {
    /// A config with default economy and block interval over `overlay`.
    pub fn over(overlay: OverlayConfig) -> Self {
        ContractConfig {
            overlay,
            ..ContractConfig::default()
        }
    }
}

/// A collateralized replicated store: the bonds are refunded to the
/// responsible slots when the value expires.
#[derive(Debug, Clone)]
struct StorageDeal {
    expires: SimTime,
    slots: Vec<usize>,
    bond: u64,
}

/// The smart-contract release substrate: analytic DHT semantics plus a
/// deterministic simulated blockchain.
#[derive(Debug)]
pub struct ContractSubstrate {
    inner: AnalyticSubstrate,
    clock: BlockClock,
    economy: EconomyParams,
    ledger: Ledger,
    contract: ReleaseContract,
    /// Open storage deals, settled lazily as time advances past expiry.
    deals: Vec<StorageDeal>,
}

impl ContractSubstrate {
    /// Builds the substrate deterministically from `seed`. The population
    /// is identical to `AnalyticSubstrate::build(config.overlay, seed)`'s
    /// (and therefore to the full overlay's).
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes == 0`, `malicious_fraction ∉ [0, 1]` or the
    /// block interval is zero.
    pub fn build(config: ContractConfig, seed: u64) -> Self {
        let inner = AnalyticSubstrate::build(config.overlay, seed);
        // Slot `s` owns account `s`; the depositor account comes last and
        // is funded with the sender's (larger) genesis allocation.
        let mut ledger = Ledger::new(inner.n_nodes(), config.economy.holder_funds);
        ledger.push_account(config.economy.sender_funds);
        ContractSubstrate {
            inner,
            clock: BlockClock::new(config.block_interval),
            economy: config.economy,
            ledger,
            contract: ReleaseContract::new(),
            deals: Vec::new(),
        }
    }

    /// The block clock mapping simulated time onto chain height.
    pub fn clock(&self) -> BlockClock {
        self.clock
    }

    /// The chain height at the current simulated time.
    pub fn block_height(&self) -> BlockHeight {
        self.clock.height_at(self.inner.now())
    }

    /// The ledger account owned by population slot `slot`.
    pub fn slot_account(&self, slot: usize) -> AccountId {
        slot
    }

    /// The depositor (sender) account.
    pub fn depositor_account(&self) -> AccountId {
        self.inner.n_nodes()
    }

    /// Read access to the token ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// The economy parameters this substrate was built with.
    pub fn economy(&self) -> &EconomyParams {
        &self.economy
    }

    /// Read access to the release contract.
    pub fn contract(&self) -> &ReleaseContract {
        &self.contract
    }

    /// Mutable access to the contract and ledger together (every contract
    /// operation moves tokens).
    pub fn contract_mut(&mut self) -> (&mut ReleaseContract, &mut Ledger) {
        (&mut self.contract, &mut self.ledger)
    }

    /// The inner analytic substrate carrying the DHT semantics.
    pub fn dht(&self) -> &AnalyticSubstrate {
        &self.inner
    }

    /// Number of open (unsettled) storage deals.
    pub fn open_storage_deals(&self) -> usize {
        self.deals.len()
    }

    // ---- delegated DHT semantics -------------------------------------

    /// Number of population slots.
    pub fn n_nodes(&self) -> usize {
        self.inner.n_nodes()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.inner.now()
    }

    /// Advances the clock (monotonic) and settles storage deals whose
    /// values expired at or before the new time.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current time.
    pub fn advance_to(&mut self, t: SimTime) {
        self.inner.advance_to(t);
        let (ledger, deals) = (&mut self.ledger, &mut self.deals);
        deals.retain(|deal| {
            if deal.expires > t {
                return true;
            }
            for &slot in &deal.slots {
                ledger
                    .release(slot, deal.bond)
                    // LINT-WAIVER(panic): the deal's bond was escrowed at registration, so the refund is always covered
                    .expect("storage-deal escrow must cover its own refund");
            }
            false
        });
    }

    /// The slot responsible for `target`.
    pub fn resolve_holder(&self, target: &NodeId) -> usize {
        self.inner.resolve_holder(target)
    }

    /// The `count` slots XOR-closest to `target`, closest first.
    pub fn closest_slots(&self, target: &NodeId, count: usize) -> Vec<usize> {
        self.inner.closest_slots(target, count)
    }

    /// All tenant generations of a slot, in time order.
    pub fn generations(&self, slot: usize) -> &[NodeInfo] {
        self.inner.generations(slot)
    }

    /// The generation occupying `slot` at time `t`.
    pub fn generation_at(&self, slot: usize, t: SimTime) -> &NodeInfo {
        self.inner.generation_at(slot, t)
    }

    /// Count of initially malicious nodes (generation 0).
    pub fn initial_malicious_count(&self) -> usize {
        self.inner.initial_malicious_count()
    }

    /// Samples `count` distinct slots uniformly (same stream contract as
    /// the other substrates).
    ///
    /// # Panics
    ///
    /// Panics if `count > n_nodes`.
    pub fn sample_distinct_slots<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<usize> {
        self.inner.sample_distinct_slots(count, rng)
    }

    /// Stores `value` under `key` on the responsible slots, escrowing the
    /// per-replica storage bond from each slot's account. With a TTL the
    /// bonds refund when the value expires; without one they stay locked
    /// for the substrate's lifetime (an open-ended deal).
    pub fn store(&mut self, key: NodeId, value: Vec<u8>, ttl: Option<SimDuration>) -> Vec<usize> {
        let slots = match ttl {
            Some(ttl) => self.inner.store_with_ttl(key, value, ttl),
            None => self.inner.store(key, value),
        };
        let bond = self.economy.store_bond;
        if bond > 0 {
            let funded: Vec<usize> = slots
                .iter()
                .copied()
                .filter(|&slot| self.ledger.lock(slot, bond).is_ok())
                .collect();
            // Unfunded replicas simply store without collateral; the data
            // path never depends on the economy.
            if let Some(ttl) = ttl {
                if !funded.is_empty() {
                    self.deals.push(StorageDeal {
                        expires: self.inner.now() + ttl,
                        slots: funded,
                        bond,
                    });
                }
            }
        }
        slots
    }

    /// Reads a value back from the responsible slots.
    pub fn find_value(&self, key: NodeId) -> Option<Vec<u8>> {
        self.inner.find_value(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emerge_dht::overlay::Overlay;

    fn config(n: usize) -> ContractConfig {
        ContractConfig::over(OverlayConfig {
            n_nodes: n,
            ..OverlayConfig::default()
        })
    }

    #[test]
    fn population_matches_the_other_substrates_bit_for_bit() {
        let overlay_cfg = OverlayConfig {
            n_nodes: 120,
            malicious_fraction: 0.3,
            mean_lifetime: Some(2_000),
            horizon: 50_000,
            ..OverlayConfig::default()
        };
        let overlay = Overlay::build(overlay_cfg, 42);
        let analytic = AnalyticSubstrate::build(overlay_cfg, 42);
        let contract = ContractSubstrate::build(ContractConfig::over(overlay_cfg), 42);
        for slot in 0..120 {
            assert_eq!(overlay.generations(slot), contract.generations(slot));
            assert_eq!(analytic.generations(slot), contract.generations(slot));
        }
        let target = NodeId::from_name(b"parity-probe");
        assert_eq!(
            overlay.closest_slots(&target, 8),
            contract.closest_slots(&target, 8)
        );
    }

    #[test]
    fn block_height_tracks_the_clock() {
        let mut sub = ContractSubstrate::build(config(16), 1);
        assert_eq!(sub.block_height(), 0);
        sub.advance_to(SimTime::from_ticks(251));
        assert_eq!(sub.block_height(), 1);
        sub.advance_to(SimTime::from_ticks(1_000));
        assert_eq!(sub.block_height(), 4);
    }

    #[test]
    fn genesis_funds_slots_and_depositor() {
        let sub = ContractSubstrate::build(config(8), 2);
        let economy = EconomyParams::default();
        assert_eq!(sub.ledger().accounts(), 9);
        assert_eq!(sub.ledger().balance(0), economy.holder_funds);
        assert_eq!(
            sub.ledger().balance(sub.depositor_account()),
            economy.sender_funds
        );
        assert_eq!(
            sub.ledger().total_supply(),
            8 * economy.holder_funds + economy.sender_funds
        );
    }

    #[test]
    fn stores_escrow_and_refund_storage_bonds() {
        let mut sub = ContractSubstrate::build(config(64), 3);
        let supply = sub.ledger().total_supply();
        let key = NodeId::from_name(b"deal");
        let slots = sub.store(key, b"v".to_vec(), Some(SimDuration::from_ticks(100)));
        assert!(!slots.is_empty());
        assert_eq!(sub.open_storage_deals(), 1);
        let bond = sub.economy().store_bond;
        assert_eq!(sub.ledger().escrow(), bond * slots.len() as u64);
        assert_eq!(sub.find_value(key), Some(b"v".to_vec()));

        // Expiry refunds every replica's bond and drops the value.
        sub.advance_to(SimTime::from_ticks(101));
        assert_eq!(sub.open_storage_deals(), 0);
        assert_eq!(sub.ledger().escrow(), 0);
        assert_eq!(sub.find_value(key), None);
        assert_eq!(sub.ledger().total_supply(), supply);
        for slot in slots {
            assert_eq!(
                sub.ledger().balance(slot),
                EconomyParams::default().holder_funds
            );
        }
    }

    #[test]
    fn untimed_stores_keep_bonds_locked() {
        let mut sub = ContractSubstrate::build(config(64), 4);
        let slots = sub.store(NodeId::from_name(b"forever"), b"v".to_vec(), None);
        assert_eq!(sub.open_storage_deals(), 0, "no deal to settle");
        assert_eq!(
            sub.ledger().escrow(),
            sub.economy().store_bond * slots.len() as u64
        );
        sub.advance_to(SimTime::from_ticks(10_000));
        assert_eq!(
            sub.ledger().escrow(),
            sub.economy().store_bond * slots.len() as u64
        );
    }

    #[test]
    #[should_panic(expected = "cannot go backwards")]
    fn clock_rejects_rewind() {
        let mut sub = ContractSubstrate::build(config(8), 5);
        sub.advance_to(SimTime::from_ticks(10));
        sub.advance_to(SimTime::from_ticks(9));
    }
}
