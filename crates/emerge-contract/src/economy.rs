//! The holder economy: bond sizes, reveal rewards, and the rational
//! adversary that weighs bribes against them.
//!
//! Under contract enforcement (Li & Palanisamy 2019) a holder's incentive
//! problem is explicit: reveal on time and collect `bond + reveal_reward`
//! back, or deviate — withhold the share, or reveal it early to an
//! adversary — and forfeit the bond to the contract's slashing rule. An
//! adversary attacks by *bribing*: it offers a payment for withholding
//! (drop attack) or for early disclosure (release-ahead attack). A
//! rational adversary-controlled holder deviates only when the bribe
//! exceeds what the deviation forfeits; that break-even point is what
//! makes bond sizing a security parameter rather than a constant.

/// Token-denominated parameters of the release economy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EconomyParams {
    /// Free tokens every holder account starts with.
    pub holder_funds: u64,
    /// Free tokens the depositor (sender) account starts with.
    pub sender_funds: u64,
    /// The bond a holder escrows when registering for a deposit.
    pub bond: u64,
    /// The reward paid (from the depositor's escrowed reward pot) for a
    /// correct in-window reveal.
    pub reveal_reward: u64,
    /// The bond a responsible node escrows per replicated `store` on the
    /// contract substrate (the storage-deal collateral).
    pub store_bond: u64,
}

impl Default for EconomyParams {
    fn default() -> Self {
        EconomyParams {
            holder_funds: 1_000,
            sender_funds: 100_000,
            bond: 100,
            reveal_reward: 10,
            store_bond: 1,
        }
    }
}

impl EconomyParams {
    /// What a holder forfeits by deviating from the honest reveal: the
    /// slashed bond plus the forgone reveal reward.
    pub fn deviation_cost(&self) -> u64 {
        self.bond + self.reveal_reward
    }
}

/// What a holder does with its share when the reveal window opens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RevealAction {
    /// Submit the share inside the reveal window (the honest action).
    OnTime,
    /// Never submit the share (the contract-era drop attack).
    Withhold,
    /// Submit the share before the reveal window opens (the contract-era
    /// release-ahead attack; the share becomes public early).
    Early,
}

/// Behaviour of adversary-controlled holders.
///
/// Honest holders always play [`RevealAction::OnTime`]; a strategy only
/// governs what a *malicious* tenant does with the share it holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HolderStrategy {
    /// Malicious holders follow the protocol (a passive adversary).
    Compliant,
    /// Malicious holders always withhold, whatever it costs them.
    AlwaysWithhold,
    /// Malicious holders always reveal early, whatever it costs them.
    AlwaysRevealEarly,
    /// Malicious holders deviate only when the adversary's bribe exceeds
    /// the deviation cost, picking the more profitable deviation on a tie
    /// of eligibility (early reveal wins ties — it additionally keeps the
    /// reveal traffic, making it strictly cheaper to execute).
    Rational {
        /// Bribe offered for withholding a share past the deadline.
        withhold_bribe: u64,
        /// Bribe offered for disclosing a share before the window.
        early_reveal_bribe: u64,
    },
}

impl HolderStrategy {
    /// The action a malicious holder under this strategy takes, given the
    /// economy it is embedded in.
    pub fn decide(&self, economy: &EconomyParams) -> RevealAction {
        match *self {
            HolderStrategy::Compliant => RevealAction::OnTime,
            HolderStrategy::AlwaysWithhold => RevealAction::Withhold,
            HolderStrategy::AlwaysRevealEarly => RevealAction::Early,
            HolderStrategy::Rational {
                withhold_bribe,
                early_reveal_bribe,
            } => {
                let cost = economy.deviation_cost();
                let early_pays = early_reveal_bribe > cost;
                let withhold_pays = withhold_bribe > cost;
                match (early_pays, withhold_pays) {
                    (true, true) => {
                        if withhold_bribe > early_reveal_bribe {
                            RevealAction::Withhold
                        } else {
                            RevealAction::Early
                        }
                    }
                    (true, false) => RevealAction::Early,
                    (false, true) => RevealAction::Withhold,
                    (false, false) => RevealAction::OnTime,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rational_holders_need_bribes_above_the_deviation_cost() {
        let economy = EconomyParams::default();
        let cost = economy.deviation_cost();
        assert_eq!(cost, 110);

        let underpaid = HolderStrategy::Rational {
            withhold_bribe: cost,
            early_reveal_bribe: cost,
        };
        assert_eq!(underpaid.decide(&economy), RevealAction::OnTime);

        let bribed = HolderStrategy::Rational {
            withhold_bribe: cost + 1,
            early_reveal_bribe: 0,
        };
        assert_eq!(bribed.decide(&economy), RevealAction::Withhold);

        let leaker = HolderStrategy::Rational {
            withhold_bribe: 0,
            early_reveal_bribe: cost + 1,
        };
        assert_eq!(leaker.decide(&economy), RevealAction::Early);
    }

    #[test]
    fn rational_holders_take_the_larger_profitable_bribe() {
        let economy = EconomyParams::default();
        let cost = economy.deviation_cost();
        let both = HolderStrategy::Rational {
            withhold_bribe: cost + 50,
            early_reveal_bribe: cost + 10,
        };
        assert_eq!(both.decide(&economy), RevealAction::Withhold);
        let tie = HolderStrategy::Rational {
            withhold_bribe: cost + 10,
            early_reveal_bribe: cost + 10,
        };
        assert_eq!(tie.decide(&economy), RevealAction::Early);
    }

    #[test]
    fn raising_the_bond_prices_out_an_attack() {
        // The economic lever of the contract backend: the same bribe that
        // buys a deviation under a small bond fails under a larger one.
        let bribe = HolderStrategy::Rational {
            withhold_bribe: 150,
            early_reveal_bribe: 0,
        };
        let cheap = EconomyParams {
            bond: 100,
            ..EconomyParams::default()
        };
        let expensive = EconomyParams {
            bond: 200,
            ..EconomyParams::default()
        };
        assert_eq!(bribe.decide(&cheap), RevealAction::Withhold);
        assert_eq!(bribe.decide(&expensive), RevealAction::OnTime);
    }

    #[test]
    fn unconditional_strategies_ignore_the_economy() {
        let economy = EconomyParams {
            bond: u64::MAX / 2,
            ..EconomyParams::default()
        };
        assert_eq!(
            HolderStrategy::AlwaysWithhold.decide(&economy),
            RevealAction::Withhold
        );
        assert_eq!(
            HolderStrategy::AlwaysRevealEarly.decide(&economy),
            RevealAction::Early
        );
        assert_eq!(
            HolderStrategy::Compliant.decide(&economy),
            RevealAction::OnTime
        );
    }
}
