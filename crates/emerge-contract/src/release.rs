//! The contract-native emergence mode: bonded `(m, n)` share release.
//!
//! Instead of routing the key hop-by-hop with per-hop deadlines (the DHT
//! schemes), the sender Shamir-splits the secret into `n` shares, hands
//! one to each of `n` pseudo-randomly chosen holders, and opens a
//! [`ReleaseContract`](crate::contract::ReleaseContract) deposit binding
//! each holder's bond to a commitment of its share. Release is enforced
//! by incentives, not by hops:
//!
//! * an honest, surviving holder reveals its share inside the reveal
//!   window and reclaims bond + reward;
//! * a withholding holder (bribed, or simply dead — the contract cannot
//!   tell) is slashed; the key is lost only if **fewer than `m` shares
//!   ever go public** — the [`BondedFailure::WithheldQuorum`] predicate;
//! * an early-revealing holder publishes its share before `tr` and is
//!   slashed; the secret leaks early only if **`m` shares are public
//!   before `tr`** — the early-reveal-leak predicate.
//!
//! Both failure predicates are evaluated with *real* reconstruction:
//! the adversary (and the receiver) combine actual GF(256) shares, so a
//! reported leak is a demonstrated leak.

use crate::clock::BlockHeight;
use crate::contract::{commitment, DepositTerms};
use crate::economy::{HolderStrategy, RevealAction};
use crate::error::ContractError;
use crate::substrate::ContractSubstrate;
use emerge_crypto::keys::KeyShare;
use emerge_crypto::shamir;
use emerge_faults::FaultInjector;
use emerge_sim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;

/// Parameters of one bonded release.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BondedSpec {
    /// Number of holders (shares).
    pub n: usize,
    /// Reconstruction threshold.
    pub m: usize,
    /// Emerging period `T = tr − ts`.
    pub emerging_period: SimDuration,
    /// Length of the reveal window in blocks (the grace period holders
    /// have to submit once the release block is reached).
    pub reveal_window_blocks: u64,
    /// Behaviour of adversary-controlled holders.
    pub strategy: HolderStrategy,
}

impl BondedSpec {
    /// A spec with a one-block reveal window and compliant adversaries.
    pub fn new(n: usize, m: usize, emerging_period: SimDuration) -> Self {
        BondedSpec {
            n,
            m,
            emerging_period,
            reveal_window_blocks: 1,
            strategy: HolderStrategy::Compliant,
        }
    }
}

/// Why a bonded release failed to emerge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BondedFailure {
    /// Fewer than `m` shares ever went public: the withhold attack (or
    /// churn) starved the reconstruction quorum.
    WithheldQuorum {
        /// Shares public by the end of the reveal window.
        revealed: usize,
        /// The threshold `m`.
        needed: usize,
    },
}

impl std::fmt::Display for BondedFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BondedFailure::WithheldQuorum { revealed, needed } => write!(
                f,
                "withheld quorum: only {revealed} of the {needed} required shares went public"
            ),
        }
    }
}

/// Outcome of one bonded release run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BondedReport {
    /// The holder slots used, in share-index order.
    pub slots: Vec<usize>,
    /// The reconstructed secret and the instant it became available to
    /// the receiver, if a quorum went public.
    pub released: Option<(SimTime, Vec<u8>)>,
    /// The secret and instant of an early reconstruction, if `m` shares
    /// were public strictly before `tr`.
    pub early_leak: Option<(SimTime, Vec<u8>)>,
    /// Why the release failed, if it did.
    pub failure: Option<BondedFailure>,
    /// Holders that revealed inside the window.
    pub on_time: usize,
    /// Holders that revealed early (slashed; shares public before `tr`).
    pub early: usize,
    /// Holders that never revealed (bribed withholders plus churn
    /// victims; all slashed).
    pub withheld: usize,
    /// The subset of `withheld` whose registered tenant died before it
    /// could reveal.
    pub died: usize,
    /// Total bond value slashed into the treasury.
    pub slashed: u64,
    /// Total reveal rewards paid out to claiming holders.
    pub rewards_paid: u64,
}

impl BondedReport {
    /// Whether the secret emerged exactly as intended: released, and
    /// never reconstructed before `tr`.
    pub fn clean_emergence(&self) -> bool {
        self.released.is_some() && self.early_leak.is_none()
    }
}

/// What one holder does, resolved against its slot's churn timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ResolvedAction {
    OnTime,
    Early(BlockHeight),
    Withhold { died: bool },
}

/// Runs one bonded release on `substrate`, deterministically from `rng`
/// (slot sampling and share splitting are the only randomness).
///
/// Advances the substrate clock to the end of the reveal window.
///
/// # Errors
///
/// [`ContractError::InvalidParameters`] for a bad `(m, n)` pair, a
/// population smaller than `n`, or an empty reveal window.
pub fn run_bonded_release(
    substrate: &mut ContractSubstrate,
    spec: &BondedSpec,
    secret: &[u8],
    rng: &mut StdRng,
) -> Result<BondedReport, ContractError> {
    run_bonded_release_inner(substrate, spec, secret, rng, None)
}

/// [`run_bonded_release`] under an armed fault plan: crash faults kill a
/// holder's registered tenant before its reveal instant (the contract
/// slashes exactly its bond, indistinguishable from a churn death), and
/// block-clock skew makes a holder believe the reveal window opens
/// `skew` blocks later than it does — when the skew exceeds the window
/// length the holder misses it entirely and is slashed as a withholder.
///
/// With an injector armed from an empty plan this is bit-identical to
/// the plain runner.
///
/// # Errors
///
/// See [`run_bonded_release`].
pub fn run_bonded_release_faulted(
    substrate: &mut ContractSubstrate,
    spec: &BondedSpec,
    secret: &[u8],
    rng: &mut StdRng,
    faults: &FaultInjector,
) -> Result<BondedReport, ContractError> {
    run_bonded_release_inner(substrate, spec, secret, rng, Some(faults))
}

fn run_bonded_release_inner(
    substrate: &mut ContractSubstrate,
    spec: &BondedSpec,
    secret: &[u8],
    rng: &mut StdRng,
    faults: Option<&FaultInjector>,
) -> Result<BondedReport, ContractError> {
    if spec.m == 0 || spec.m > spec.n {
        return Err(ContractError::InvalidParameters(format!(
            "threshold m must be in [1, n]: m={}, n={}",
            spec.m, spec.n
        )));
    }
    if spec.n > shamir::MAX_SHARES {
        return Err(ContractError::InvalidParameters(format!(
            "GF(256) sharing supports at most {} holders, got {}",
            shamir::MAX_SHARES,
            spec.n
        )));
    }
    if spec.n > substrate.n_nodes() {
        return Err(ContractError::InvalidParameters(format!(
            "population of {} cannot host {} holders",
            substrate.n_nodes(),
            spec.n
        )));
    }
    if spec.reveal_window_blocks == 0 {
        return Err(ContractError::InvalidParameters(
            "the reveal window must span at least one block".into(),
        ));
    }

    let clock = substrate.clock();
    let ts = substrate.now();
    let tr = ts + spec.emerging_period;
    let open_block = clock.height_at(ts);
    // The release block: the first block starting at or after tr. When tr
    // falls inside the block being opened (an emerging period shorter
    // than the block interval), the window is pushed to the next block —
    // a contract can never release within the block it was opened in.
    let reveal_from = clock.first_block_at_or_after(tr).max(open_block + 1);
    let reveal_by = reveal_from + spec.reveal_window_blocks;

    // Sample the holder grid and split the secret.
    let slots = substrate.sample_distinct_slots(spec.n, rng);
    let shares = shamir::split(secret, spec.m, spec.n, rng)?;
    let payloads: Vec<Vec<u8>> = shares.iter().map(share_payload).collect();

    // Open the deposit (register + bond escrow) and commit every share.
    let economy = *substrate.economy();
    let depositor = substrate.depositor_account();
    let holder_accounts: Vec<usize> = slots.iter().map(|&s| substrate.slot_account(s)).collect();
    let (contract, ledger) = substrate.contract_mut();
    let deposit = contract.open(
        ledger,
        DepositTerms {
            depositor,
            bond: economy.bond,
            reveal_reward: economy.reveal_reward,
            reveal_from,
            reveal_by,
        },
        &holder_accounts,
        open_block,
    )?;
    for (holder, payload) in payloads.iter().enumerate() {
        contract.commit(deposit, holder, commitment(payload), open_block)?;
    }

    // Resolve each holder's behaviour against its churn timeline. The
    // registered tenant (the generation holding the slot at ts) is the
    // only party that ever knows the share: if it dies before its reveal
    // instant, the share is gone and the contract slashes a corpse.
    // The earliest block an early reveal can land in; when the reveal
    // window opens in the very next block there is no early window at
    // all, and the `early_block < reveal_from` guard below degrades an
    // Early action to an on-time reveal.
    let early_block = open_block + 1;
    let reveal_instant = clock.time_of(reveal_from);
    let actions: Vec<ResolvedAction> = slots
        .iter()
        .map(|&slot| {
            let tenant = *substrate.generation_at(slot, ts);
            let action = if tenant.malicious {
                spec.strategy.decide(&economy)
            } else {
                RevealAction::OnTime
            };
            let resolved = match action {
                RevealAction::Early if early_block < reveal_from => {
                    if tenant.alive_at(clock.time_of(early_block)) {
                        ResolvedAction::Early(early_block)
                    } else {
                        ResolvedAction::Withhold { died: true }
                    }
                }
                RevealAction::Early | RevealAction::OnTime => {
                    if tenant.alive_at(reveal_instant) {
                        ResolvedAction::OnTime
                    } else {
                        ResolvedAction::Withhold { died: true }
                    }
                }
                RevealAction::Withhold => ResolvedAction::Withhold { died: false },
            };
            match faults {
                Some(injector) => apply_holder_faults(
                    injector,
                    slot,
                    resolved,
                    reveal_instant,
                    reveal_from,
                    reveal_by,
                ),
                None => resolved,
            }
        })
        .collect();

    // Early reveals land first (all at `early_block`), then the substrate
    // advances to the release time and the on-time reveals land at
    // `reveal_from`.
    let mut report = BondedReport {
        slots,
        released: None,
        early_leak: None,
        failure: None,
        on_time: 0,
        early: 0,
        withheld: 0,
        died: 0,
        slashed: 0,
        rewards_paid: 0,
    };
    let mut public_shares: Vec<KeyShare> = Vec::new();
    let (contract, _) = substrate.contract_mut();
    for (holder, action) in actions.iter().enumerate() {
        if let ResolvedAction::Early(block) = action {
            contract.reveal(deposit, holder, &payloads[holder], *block)?;
            public_shares.push(shares[holder].clone());
            report.early += 1;
        }
    }
    // The release-ahead predicate: a quorum public strictly before tr.
    if public_shares.len() >= spec.m {
        let leak_at = clock.time_of(early_block);
        debug_assert!(leak_at < tr);
        let secret = shamir::combine(&public_shares[..spec.m], spec.m)?;
        report.early_leak = Some((leak_at, secret));
    }

    substrate.advance_to(reveal_instant);
    let (contract, _) = substrate.contract_mut();
    for (holder, action) in actions.iter().enumerate() {
        match action {
            ResolvedAction::OnTime => {
                contract.reveal(deposit, holder, &payloads[holder], reveal_from)?;
                public_shares.push(shares[holder].clone());
                report.on_time += 1;
            }
            ResolvedAction::Withhold { died } => {
                report.withheld += 1;
                report.died += usize::from(*died);
            }
            ResolvedAction::Early(_) => {}
        }
    }

    // The receiver reconstructs from whatever is public once the release
    // block is reached: early shares count (they are on-chain), so the
    // release instant is tr itself when early reveals already form a
    // quorum, and the release block otherwise.
    if public_shares.len() >= spec.m {
        let released_at = if report.early >= spec.m {
            tr
        } else {
            reveal_instant
        };
        let secret = shamir::combine(&public_shares[..spec.m], spec.m)?;
        report.released = Some((released_at, secret));
    } else {
        report.failure = Some(BondedFailure::WithheldQuorum {
            revealed: public_shares.len(),
            needed: spec.m,
        });
    }

    // Close the window, settle slashes, pay claims.
    let supply_before = substrate.ledger().total_supply();
    substrate.advance_to(clock.time_of(reveal_by));
    let (contract, ledger) = substrate.contract_mut();
    let summary = contract.finalize(ledger, deposit, reveal_by)?;
    report.slashed = summary.slashed_amount;
    for holder in 0..spec.n {
        if matches!(
            contract.holder_phase(deposit, holder)?,
            crate::contract::HolderPhase::Revealed(_)
        ) {
            contract.claim(ledger, deposit, holder)?;
            report.rewards_paid += economy.reveal_reward;
        }
    }
    // LINT-WAIVER(panic): supply conservation is the ledger's core invariant; silent imbalance must abort
    assert_eq!(
        substrate.ledger().total_supply(),
        supply_before,
        "bonded release must conserve the token supply"
    );
    Ok(report)
}

/// Applies crash and block-clock-skew faults to one holder's resolved
/// action. Only actions that would have revealed are vulnerable; a
/// withholder stays a withholder.
fn apply_holder_faults(
    injector: &FaultInjector,
    slot: usize,
    resolved: ResolvedAction,
    reveal_instant: SimTime,
    reveal_from: BlockHeight,
    reveal_by: BlockHeight,
) -> ResolvedAction {
    if injector.is_empty() {
        return resolved;
    }
    match resolved {
        ResolvedAction::Withhold { .. } => resolved,
        ResolvedAction::OnTime | ResolvedAction::Early(_) => {
            // Crash + restart with state loss: the registered tenant is
            // gone at its reveal instant and the share with it. The
            // contract slashes a corpse, exactly as for a churn death.
            if injector.unreachable_at(slot, reveal_instant) {
                injector.note_disruption();
                return ResolvedAction::Withhold { died: true };
            }
            // Block-clock skew: the holder believes the reveal window
            // opens `skew` blocks later than it does. It misses the
            // window entirely when the skewed start is at or past the
            // close, and is slashed as an ordinary withholder.
            let skew = injector.clock_skew_blocks(slot, reveal_instant);
            if skew > 0 {
                if reveal_from + skew >= reveal_by {
                    return ResolvedAction::Withhold { died: false };
                }
                // The skewed submission still lands inside the window.
                injector.note_recovery();
            }
            resolved
        }
    }
}

/// Serializes one share as its on-chain payload: index byte ‖ data.
fn share_payload(share: &KeyShare) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + share.data.len());
    out.push(share.index);
    out.extend_from_slice(&share.data);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::economy::EconomyParams;
    use crate::substrate::ContractConfig;
    use emerge_dht::overlay::OverlayConfig;
    use rand::SeedableRng;

    const SECRET: &[u8] = b"THE SELF-EMERGING SECRET KEY 32B";

    fn substrate(n: usize, p: f64, seed: u64) -> ContractSubstrate {
        ContractSubstrate::build(
            ContractConfig::over(OverlayConfig {
                n_nodes: n,
                malicious_fraction: p,
                ..OverlayConfig::default()
            }),
            seed,
        )
    }

    fn spec(n: usize, m: usize, strategy: HolderStrategy) -> BondedSpec {
        BondedSpec {
            strategy,
            ..BondedSpec::new(n, m, SimDuration::from_ticks(1_000))
        }
    }

    #[test]
    fn honest_network_releases_at_tr() {
        let mut sub = substrate(64, 0.0, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let report = run_bonded_release(
            &mut sub,
            &spec(7, 4, HolderStrategy::Compliant),
            SECRET,
            &mut rng,
        )
        .unwrap();
        let (at, secret) = report.released.clone().expect("honest quorum releases");
        assert_eq!(secret, SECRET);
        assert_eq!(at, SimTime::from_ticks(1_000), "release at tr");
        assert!(report.clean_emergence());
        assert_eq!(report.on_time, 7);
        assert_eq!(report.slashed, 0);
        assert_eq!(
            report.rewards_paid,
            7 * EconomyParams::default().reveal_reward
        );
    }

    #[test]
    fn withholding_majority_starves_the_quorum() {
        let mut sub = substrate(64, 1.0, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let report = run_bonded_release(
            &mut sub,
            &spec(5, 3, HolderStrategy::AlwaysWithhold),
            SECRET,
            &mut rng,
        )
        .unwrap();
        assert!(report.released.is_none());
        assert_eq!(
            report.failure,
            Some(BondedFailure::WithheldQuorum {
                revealed: 0,
                needed: 3
            })
        );
        assert_eq!(report.withheld, 5);
        assert_eq!(report.slashed, 5 * EconomyParams::default().bond);
        assert_eq!(report.rewards_paid, 0);
    }

    #[test]
    fn early_reveal_majority_leaks_before_tr() {
        let mut sub = substrate(64, 1.0, 3);
        let mut rng = StdRng::seed_from_u64(3);
        let report = run_bonded_release(
            &mut sub,
            &spec(5, 3, HolderStrategy::AlwaysRevealEarly),
            SECRET,
            &mut rng,
        )
        .unwrap();
        let (at, secret) = report.early_leak.clone().expect("full quorum leaks");
        assert_eq!(secret, SECRET);
        assert!(at < SimTime::from_ticks(1_000), "leak strictly before tr");
        // The shares are public, so the legitimate release also happens —
        // at tr, not earlier.
        assert_eq!(
            report.released.clone().unwrap().0,
            SimTime::from_ticks(1_000)
        );
        assert!(!report.clean_emergence());
        // Every leaker is slashed all the same.
        assert_eq!(report.slashed, 5 * EconomyParams::default().bond);
    }

    #[test]
    fn priced_out_bribes_keep_rational_adversaries_honest() {
        let cost = EconomyParams::default().deviation_cost();
        let cheap_bribe = HolderStrategy::Rational {
            withhold_bribe: cost, // not strictly greater: deviation unprofitable
            early_reveal_bribe: cost,
        };
        let mut sub = substrate(64, 1.0, 4);
        let mut rng = StdRng::seed_from_u64(4);
        let report =
            run_bonded_release(&mut sub, &spec(5, 3, cheap_bribe), SECRET, &mut rng).unwrap();
        assert!(report.clean_emergence(), "unbribable holders stay honest");
        assert_eq!(report.slashed, 0);

        let rich_bribe = HolderStrategy::Rational {
            withhold_bribe: cost + 1,
            early_reveal_bribe: 0,
        };
        let mut sub = substrate(64, 1.0, 4);
        let mut rng = StdRng::seed_from_u64(4);
        let report =
            run_bonded_release(&mut sub, &spec(5, 3, rich_bribe), SECRET, &mut rng).unwrap();
        assert!(
            report.released.is_none(),
            "a profitable bribe buys the drop"
        );
    }

    #[test]
    fn churn_victims_are_slashed_but_headroom_absorbs_them() {
        // Mean lifetime equal to the emerging period: substantial death
        // probability per holder, but m = 3 of n = 12 tolerates it.
        let mut sub = ContractSubstrate::build(
            ContractConfig::over(OverlayConfig {
                n_nodes: 256,
                malicious_fraction: 0.0,
                mean_lifetime: Some(4_000),
                horizon: 100_000,
                ..OverlayConfig::default()
            }),
            5,
        );
        let mut rng = StdRng::seed_from_u64(5);
        let report = run_bonded_release(
            &mut sub,
            &BondedSpec::new(12, 3, SimDuration::from_ticks(1_000)),
            SECRET,
            &mut rng,
        )
        .unwrap();
        assert!(report.released.is_some(), "headroom absorbs churn deaths");
        assert_eq!(
            report.withheld, report.died,
            "honest world: only churn withholds"
        );
        assert_eq!(
            report.slashed,
            report.died as u64 * EconomyParams::default().bond,
            "the contract slashes corpses too"
        );
    }

    #[test]
    fn run_is_deterministic() {
        let run = || {
            let mut sub = substrate(128, 0.4, 7);
            let mut rng = StdRng::seed_from_u64(7);
            run_bonded_release(
                &mut sub,
                &spec(9, 5, HolderStrategy::AlwaysWithhold),
                SECRET,
                &mut rng,
            )
            .unwrap()
        };
        assert_eq!(run(), run());
    }

    fn window_plan(kind: emerge_faults::FaultKind) -> emerge_faults::FaultPlan {
        emerge_faults::FaultPlan::new(
            1,
            vec![emerge_faults::FaultEvent {
                from: SimTime::ZERO,
                to: SimTime::MAX,
                kind,
            }],
        )
    }

    #[test]
    fn empty_plan_faulted_run_matches_plain_bit_for_bit() {
        let run_plain = || {
            let mut sub = substrate(96, 0.4, 21);
            let mut rng = StdRng::seed_from_u64(21);
            run_bonded_release(
                &mut sub,
                &spec(7, 4, HolderStrategy::AlwaysWithhold),
                SECRET,
                &mut rng,
            )
            .unwrap()
        };
        let run_faulted = || {
            let mut sub = substrate(96, 0.4, 21);
            let mut rng = StdRng::seed_from_u64(21);
            let injector = emerge_faults::FaultPlan::none().arm(21);
            run_bonded_release_faulted(
                &mut sub,
                &spec(7, 4, HolderStrategy::AlwaysWithhold),
                SECRET,
                &mut rng,
                &injector,
            )
            .unwrap()
        };
        assert_eq!(run_plain(), run_faulted());
    }

    #[test]
    fn crashed_holders_slash_exactly_their_bonds() {
        // All-honest, churn-free world under a total crash storm: every
        // holder's registered tenant dies before its reveal instant, the
        // quorum starves, and the contract slashes exactly one bond per
        // crashed holder — no more, no less.
        let plan = window_plan(emerge_faults::FaultKind::CrashRestart {
            crash_ppm: 1_000_000,
        });
        let mut sub = substrate(64, 0.0, 9);
        let mut rng = StdRng::seed_from_u64(9);
        let injector = plan.arm(9);
        let report = run_bonded_release_faulted(
            &mut sub,
            &spec(5, 3, HolderStrategy::Compliant),
            SECRET,
            &mut rng,
            &injector,
        )
        .unwrap();
        assert!(report.released.is_none());
        assert_eq!(report.died, 5, "every holder crashed");
        assert_eq!(report.slashed, 5 * EconomyParams::default().bond);
        assert_eq!(report.rewards_paid, 0);

        // Partial storm: slashed tracks the crash count exactly, and the
        // m-of-n headroom can still release around the corpses.
        let plan = window_plan(emerge_faults::FaultKind::CrashRestart { crash_ppm: 300_000 });
        let mut sub = substrate(64, 0.0, 10);
        let mut rng = StdRng::seed_from_u64(10);
        let injector = plan.arm(10);
        let report = run_bonded_release_faulted(
            &mut sub,
            &spec(9, 3, HolderStrategy::Compliant),
            SECRET,
            &mut rng,
            &injector,
        )
        .unwrap();
        assert_eq!(
            report.withheld, report.died,
            "honest world: only crashes withhold"
        );
        assert_eq!(
            report.slashed,
            report.died as u64 * EconomyParams::default().bond,
            "a crashed holder's missed reveal slashes exactly its bond"
        );
        assert_eq!(report.on_time, 9 - report.died);
    }

    #[test]
    fn clock_skew_beyond_the_window_slashes_as_withholding() {
        // Every holder's block clock lags by far more than the one-block
        // reveal window: all of them miss it, none of them died, and each
        // is slashed as an ordinary withholder.
        let plan = window_plan(emerge_faults::FaultKind::ClockSkew {
            skew_ppm: 1_000_000,
            blocks: 64,
        });
        let mut sub = substrate(64, 0.0, 11);
        let mut rng = StdRng::seed_from_u64(11);
        let injector = plan.arm(11);
        let report = run_bonded_release_faulted(
            &mut sub,
            &spec(5, 3, HolderStrategy::Compliant),
            SECRET,
            &mut rng,
            &injector,
        )
        .unwrap();
        assert!(report.released.is_none());
        assert_eq!(report.withheld, 5);
        assert_eq!(report.died, 0, "skewed holders are alive, just late");
        assert_eq!(report.slashed, 5 * EconomyParams::default().bond);

        // A skew smaller than the window is survivable: the submission
        // still lands inside it and nothing is slashed.
        let plan = window_plan(emerge_faults::FaultKind::ClockSkew {
            skew_ppm: 1_000_000,
            blocks: 1,
        });
        let wide = BondedSpec {
            reveal_window_blocks: 8,
            ..spec(5, 3, HolderStrategy::Compliant)
        };
        let mut sub = substrate(64, 0.0, 12);
        let mut rng = StdRng::seed_from_u64(12);
        let injector = plan.arm(12);
        let report =
            run_bonded_release_faulted(&mut sub, &wide, SECRET, &mut rng, &injector).unwrap();
        assert!(report.released.is_some());
        assert_eq!(report.slashed, 0);
        assert!(
            injector.stats().recoveries > 0,
            "late-but-in-window reveals count as recoveries"
        );
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let mut sub = substrate(16, 0.0, 8);
        let mut rng = StdRng::seed_from_u64(8);
        for bad in [
            spec(5, 0, HolderStrategy::Compliant),
            spec(5, 6, HolderStrategy::Compliant),
            spec(17, 3, HolderStrategy::Compliant), // more holders than nodes
            BondedSpec {
                reveal_window_blocks: 0,
                ..spec(5, 3, HolderStrategy::Compliant)
            },
        ] {
            assert!(matches!(
                run_bonded_release(&mut sub, &bad, SECRET, &mut rng),
                Err(ContractError::InvalidParameters(_))
            ));
        }
    }
}
