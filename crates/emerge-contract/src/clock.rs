//! The block clock: a deterministic mapping between simulated time and
//! blockchain height.
//!
//! The contract substrate does not simulate consensus; it only needs the
//! property consensus provides to a timed-release contract: a shared,
//! monotonic, coarse clock every participant agrees on. A [`BlockClock`]
//! partitions the tick line into fixed-width blocks — block `h` spans the
//! half-open tick window `[h·interval, (h+1)·interval)` — mirroring the
//! half-open interval convention used throughout the population model.
//!
//! Contract deadlines (commit-by, reveal-from, reveal-by) are expressed in
//! block heights, so every deadline check reduces to an integer comparison
//! that is bit-identical across substrates, shards and threads.

use emerge_sim::time::{SimDuration, SimTime};

/// A blockchain height (block number), starting at 0 at `SimTime::ZERO`.
pub type BlockHeight = u64;

/// Fixed-interval mapping between [`SimTime`] ticks and block heights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockClock {
    interval: SimDuration,
}

impl BlockClock {
    /// Creates a clock producing one block every `interval` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(interval: SimDuration) -> Self {
        // LINT-WAIVER(panic): documented # Panics contract: a zero block interval is a caller bug
        assert!(
            interval.ticks() > 0,
            "block interval must be at least one tick"
        );
        BlockClock { interval }
    }

    /// The block interval in ticks.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// The height of the block containing instant `t`.
    pub fn height_at(&self, t: SimTime) -> BlockHeight {
        t.ticks() / self.interval.ticks()
    }

    /// The first instant of block `height`.
    ///
    /// # Panics
    ///
    /// Panics if the block start overflows the tick line.
    pub fn time_of(&self, height: BlockHeight) -> SimTime {
        SimTime::from_ticks(
            height
                .checked_mul(self.interval.ticks())
                // LINT-WAIVER(panic): documented # Panics contract: heights beyond the u64 tick line must abort loudly
                .expect("block height overflows the tick line"),
        )
    }

    /// The height of the first block whose start is at or after `t` — the
    /// block at which a deadline "no earlier than `t`" becomes eligible.
    pub fn first_block_at_or_after(&self, t: SimTime) -> BlockHeight {
        let h = self.height_at(t);
        if self.time_of(h) == t {
            h
        } else {
            h + 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_partition_the_tick_line() {
        let clock = BlockClock::new(SimDuration::from_ticks(100));
        assert_eq!(clock.height_at(SimTime::ZERO), 0);
        assert_eq!(clock.height_at(SimTime::from_ticks(99)), 0);
        assert_eq!(clock.height_at(SimTime::from_ticks(100)), 1);
        assert_eq!(clock.height_at(SimTime::from_ticks(250)), 2);
        assert_eq!(clock.time_of(2), SimTime::from_ticks(200));
    }

    #[test]
    fn first_block_at_or_after_rounds_up() {
        let clock = BlockClock::new(SimDuration::from_ticks(100));
        assert_eq!(clock.first_block_at_or_after(SimTime::ZERO), 0);
        assert_eq!(clock.first_block_at_or_after(SimTime::from_ticks(100)), 1);
        assert_eq!(clock.first_block_at_or_after(SimTime::from_ticks(101)), 2);
        assert_eq!(clock.first_block_at_or_after(SimTime::from_ticks(199)), 2);
        assert_eq!(clock.first_block_at_or_after(SimTime::from_ticks(200)), 2);
    }

    #[test]
    fn height_and_time_round_trip_on_boundaries() {
        let clock = BlockClock::new(SimDuration::from_ticks(7));
        for h in [0u64, 1, 13, 999] {
            assert_eq!(clock.height_at(clock.time_of(h)), h);
        }
    }

    #[test]
    #[should_panic(expected = "at least one tick")]
    fn zero_interval_rejected() {
        let _ = BlockClock::new(SimDuration::ZERO);
    }
}
