//! Monte-Carlo evaluation of the bonded release, with mergeable results.
//!
//! Mirrors the sharded wire-protocol engine in `emerge-core`: every trial
//! draws from its own `SeedSource::stream_n("bonded-trial", idx)` stream
//! keyed by the **global** trial index, results carry exact-merging
//! counters plus a trial-index-keyed fingerprint combined by wrapping
//! addition, and a contiguous range run is therefore bit-identical to the
//! same trials inside a serial batch. Shard workers run disjoint ranges
//! and [`BondedMcResults::merge`] the partials — the sharded Monte-Carlo
//! guarantee extends to the contract-native emergence mode unchanged.

use crate::error::ContractError;
use crate::release::{run_bonded_release, run_bonded_release_faulted, BondedReport, BondedSpec};
use crate::substrate::ContractSubstrate;
use emerge_faults::{FaultPlan, FaultStats};
use emerge_obs::trace::{span, SpanId};
use emerge_sim::metrics::{Rate, Summary};
use emerge_sim::rng::SeedSource;
use emerge_sim::shard::{shard_ranges, TrialDigest};
use rand::RngCore;

/// Span over the per-trial substrate world build.
static SPAN_WORLD_REBUILD: SpanId = SpanId::new("trial.world_rebuild");
/// Span over one bonded-release run (register → commit → reveal →
/// finalize → claim against the block clock).
static SPAN_BONDED_RELEASE: SpanId = SpanId::new("trial.bonded_release");

/// Aggregated outcomes of a batch of bonded-release trials.
#[derive(Debug, Clone, Default)]
pub struct BondedMcResults {
    /// Fraction of trials where the secret was released at all.
    pub released: Rate,
    /// Fraction of trials with a clean emergence: released, never leaked
    /// before `tr`.
    pub clean: Rate,
    /// Fraction of trials where `m` shares were public before `tr`
    /// (the early-reveal-leak predicate).
    pub leaked_early: Rate,
    /// Fraction of trials starved below the reveal quorum
    /// (the withheld-quorum predicate).
    pub withheld_quorum: Rate,
    /// Bond value slashed per trial.
    pub slashed: Summary,
    /// Trial-index-keyed digest of every trial's slots and report,
    /// combined by wrapping addition (associative and commutative), so
    /// merging shard digests over disjoint trial ranges reproduces the
    /// serial digest bit for bit. An empty batch digests to 0.
    pub fingerprint: u64,
}

impl BondedMcResults {
    /// Merges the results of a disjoint batch of trials into this one.
    /// Counter-valued fields and the fingerprint merge exactly; the
    /// floating-point moments of `slashed` merge via parallel Welford.
    pub fn merge(&mut self, other: &BondedMcResults) {
        self.released.merge(&other.released);
        self.clean.merge(&other.clean);
        self.leaked_early.merge(&other.leaked_early);
        self.withheld_quorum.merge(&other.withheld_quorum);
        self.slashed.merge(&other.slashed);
        self.fingerprint = self.fingerprint.wrapping_add(other.fingerprint);
    }
}

/// Runs the contiguous trial range `[first_trial, first_trial + count)`
/// of a bonded-release Monte-Carlo batch, building a fresh substrate
/// world per trial via `substrate_factory` (which receives the trial's
/// world seed).
///
/// # Errors
///
/// Propagates the first trial failure (invalid spec, contract errors).
pub fn run_bonded_trial_range<F>(
    spec: &BondedSpec,
    first_trial: usize,
    count: usize,
    seed: u64,
    mut substrate_factory: F,
) -> Result<BondedMcResults, ContractError>
where
    F: FnMut(u64) -> ContractSubstrate,
{
    let seeds = SeedSource::new(seed);
    let mut results = BondedMcResults::default();
    for trial_idx in first_trial..first_trial + count {
        let mut trial_rng = seeds.stream_n("bonded-trial", trial_idx as u64);
        let world_seed = trial_rng.next_u64();
        let mut substrate = {
            let _phase = span(&SPAN_WORLD_REBUILD);
            substrate_factory(world_seed)
        };
        let mut secret = [0u8; 32];
        trial_rng.fill_bytes(&mut secret);

        let report = {
            let _phase = span(&SPAN_BONDED_RELEASE);
            run_bonded_release(&mut substrate, spec, &secret, &mut trial_rng)?
        };
        record_bonded_trial(&mut results, trial_idx, &report);
    }
    Ok(results)
}

/// Runs `trials` bonded-release trials, deterministically from `seed`.
/// Equivalent to [`run_bonded_trial_range`] over `[0, trials)`.
///
/// # Errors
///
/// See [`run_bonded_trial_range`].
pub fn run_bonded_trials<F>(
    spec: &BondedSpec,
    trials: usize,
    seed: u64,
    substrate_factory: F,
) -> Result<BondedMcResults, ContractError>
where
    F: FnMut(u64) -> ContractSubstrate,
{
    run_bonded_trial_range(spec, 0, trials, seed, substrate_factory)
}

/// Runs `trials` bonded trials split over `shards` contiguous ranges and
/// merges the partials — bit-identical to the serial run on every
/// counter-valued field and the fingerprint, for any shard count.
///
/// # Errors
///
/// Propagates the first shard failure in shard order.
pub fn run_bonded_trials_sharded<F>(
    spec: &BondedSpec,
    trials: usize,
    seed: u64,
    shards: usize,
    mut substrate_factory: F,
) -> Result<BondedMcResults, ContractError>
where
    F: FnMut(u64) -> ContractSubstrate,
{
    let mut results = BondedMcResults::default();
    for (first_trial, count) in shard_ranges(trials, shards) {
        let shard = run_bonded_trial_range(spec, first_trial, count, seed, &mut substrate_factory)?;
        results.merge(&shard);
    }
    Ok(results)
}

/// Aggregated outcomes of a fault-plane bonded-release batch: the plain
/// bonded results as measured under the plan, plus the degraded/clean
/// fault-outcome taxonomy (mirrors `emerge-core`'s `FaultyMcResults`).
#[derive(Debug, Clone, Default)]
pub struct FaultyBondedMcResults {
    /// The underlying bonded results, measured under the fault plan.
    pub base: BondedMcResults,
    /// Trials that released despite at least one injected disruption.
    pub degraded: Rate,
    /// Trials that released having seen no disruption at all.
    pub clean_of_faults: Rate,
    /// Trials that saw at least one injected disruption.
    pub disrupted: Rate,
    /// Per-trial injected-disruption counts.
    pub disruptions: Summary,
    /// Index-keyed digest over every trial's fault statistics
    /// ([`FaultStats::digest`]); merges by wrapping addition.
    pub fault_fingerprint: u64,
}

impl FaultyBondedMcResults {
    /// Merges a disjoint batch; counter-valued fields and both
    /// fingerprints merge exactly.
    pub fn merge(&mut self, other: &FaultyBondedMcResults) {
        self.base.merge(&other.base);
        self.degraded.merge(&other.degraded);
        self.clean_of_faults.merge(&other.clean_of_faults);
        self.disrupted.merge(&other.disrupted);
        self.disruptions.merge(&other.disruptions);
        self.fault_fingerprint = self.fault_fingerprint.wrapping_add(other.fault_fingerprint);
    }
}

/// Runs the contiguous trial range `[first_trial, first_trial + count)`
/// of a bonded-release batch under `plan`. Each trial arms the plan
/// against its own world seed — the same per-index stream as
/// [`run_bonded_trial_range`] — so an empty plan reproduces the plain
/// runner bit for bit and sharded runs merge exactly to serial ones.
///
/// # Errors
///
/// Propagates the first trial failure (invalid spec, contract errors).
pub fn run_bonded_trial_range_faulted<F>(
    spec: &BondedSpec,
    plan: &FaultPlan,
    first_trial: usize,
    count: usize,
    seed: u64,
    mut substrate_factory: F,
) -> Result<FaultyBondedMcResults, ContractError>
where
    F: FnMut(u64) -> ContractSubstrate,
{
    let seeds = SeedSource::new(seed);
    let mut results = FaultyBondedMcResults::default();
    for trial_idx in first_trial..first_trial + count {
        let mut trial_rng = seeds.stream_n("bonded-trial", trial_idx as u64);
        let world_seed = trial_rng.next_u64();
        let mut substrate = {
            let _phase = span(&SPAN_WORLD_REBUILD);
            substrate_factory(world_seed)
        };
        let mut secret = [0u8; 32];
        trial_rng.fill_bytes(&mut secret);

        let injector = plan.arm(world_seed);
        let report = {
            let _phase = span(&SPAN_BONDED_RELEASE);
            run_bonded_release_faulted(&mut substrate, spec, &secret, &mut trial_rng, &injector)?
        };
        let stats: FaultStats = injector.stats();
        record_bonded_trial(&mut results.base, trial_idx, &report);
        let released = report.released.is_some();
        let disrupted = stats.disrupted();
        results.degraded.record(released && disrupted);
        results.clean_of_faults.record(released && !disrupted);
        results.disrupted.record(disrupted);
        results.disruptions.record(stats.disruptions as f64);
        // An empty plan leaves the fault fingerprint at zero so faultless
        // runs are trivially distinguishable from all-quiet faulted runs.
        if !plan.is_empty() {
            results.fault_fingerprint = results
                .fault_fingerprint
                .wrapping_add(stats.digest(trial_idx as u64));
        }
    }
    Ok(results)
}

/// Runs `trials` faulted bonded trials split over `shards` contiguous
/// ranges and merges the partials — bit-identical to a serial range run
/// on every counter-valued field and both fingerprints.
///
/// # Errors
///
/// Propagates the first shard failure in shard order.
pub fn run_bonded_trials_faulted_sharded<F>(
    spec: &BondedSpec,
    plan: &FaultPlan,
    trials: usize,
    seed: u64,
    shards: usize,
    mut substrate_factory: F,
) -> Result<FaultyBondedMcResults, ContractError>
where
    F: FnMut(u64) -> ContractSubstrate,
{
    let mut results = FaultyBondedMcResults::default();
    for (first_trial, count) in shard_ranges(trials, shards) {
        let shard = run_bonded_trial_range_faulted(
            spec,
            plan,
            first_trial,
            count,
            seed,
            &mut substrate_factory,
        )?;
        results.merge(&shard);
    }
    Ok(results)
}

/// Folds one completed bonded trial into a result batch.
fn record_bonded_trial(results: &mut BondedMcResults, trial_idx: usize, report: &BondedReport) {
    results.released.record(report.released.is_some());
    results.clean.record(report.clean_emergence());
    results.leaked_early.record(report.early_leak.is_some());
    results.withheld_quorum.record(report.failure.is_some());
    results.slashed.record(report.slashed as f64);
    results.fingerprint = results
        .fingerprint
        .wrapping_add(trial_digest(trial_idx as u64, report));
}

/// Digest of one trial, keyed by its global trial index
/// ([`emerge_sim::shard::TrialDigest`] — the same accumulator the
/// wire-protocol engine uses, so the two engines cannot drift apart).
fn trial_digest(trial_idx: u64, report: &BondedReport) -> u64 {
    let mut d = TrialDigest::new();
    d.eat(&trial_idx.to_le_bytes());
    for &slot in &report.slots {
        d.eat(&(slot as u64).to_le_bytes());
    }
    for field in [&report.released, &report.early_leak] {
        match field {
            Some((at, secret)) => {
                d.eat(&[1]);
                d.eat(&at.ticks().to_le_bytes());
                d.eat(secret);
            }
            None => d.eat(&[0]),
        }
    }
    if let Some(failure) = &report.failure {
        d.eat(failure.to_string().as_bytes());
    }
    for count in [report.on_time, report.early, report.withheld, report.died] {
        d.eat(&(count as u64).to_le_bytes());
    }
    d.eat(&report.slashed.to_le_bytes());
    d.eat(&report.rewards_paid.to_le_bytes());
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::economy::HolderStrategy;
    use crate::substrate::ContractConfig;
    use emerge_dht::overlay::OverlayConfig;
    use emerge_sim::time::SimDuration;

    fn factory(p: f64) -> impl FnMut(u64) -> ContractSubstrate {
        move |seed| {
            ContractSubstrate::build(
                ContractConfig::over(OverlayConfig {
                    n_nodes: 80,
                    malicious_fraction: p,
                    ..OverlayConfig::default()
                }),
                seed,
            )
        }
    }

    fn spec(strategy: HolderStrategy) -> BondedSpec {
        BondedSpec {
            strategy,
            ..BondedSpec::new(6, 4, SimDuration::from_ticks(1_000))
        }
    }

    #[test]
    fn clean_network_is_always_clean() {
        let r = run_bonded_trials(&spec(HolderStrategy::Compliant), 20, 1, factory(0.0)).unwrap();
        assert_eq!(r.released.value(), 1.0);
        assert_eq!(r.clean.value(), 1.0);
        assert_eq!(r.leaked_early.value(), 0.0);
        assert_eq!(r.withheld_quorum.value(), 0.0);
        assert_eq!(r.slashed.max(), 0.0);
    }

    #[test]
    fn withholders_register_in_the_quorum_predicate() {
        let r =
            run_bonded_trials(&spec(HolderStrategy::AlwaysWithhold), 30, 2, factory(0.5)).unwrap();
        assert!(
            r.withheld_quorum.value() > 0.0,
            "p=0.5 must starve sometimes"
        );
        assert!(r.slashed.mean() > 0.0);
        // Withheld-quorum and released partition the trials.
        assert_eq!(
            r.withheld_quorum.successes() + r.released.successes(),
            r.released.trials()
        );
    }

    #[test]
    fn early_revealers_register_in_the_leak_predicate() {
        let r = run_bonded_trials(
            &spec(HolderStrategy::AlwaysRevealEarly),
            30,
            3,
            factory(0.6),
        )
        .unwrap();
        assert!(r.leaked_early.value() > 0.0);
        assert!(r.clean.value() < 1.0);
    }

    #[test]
    fn sharded_matches_serial_bit_for_bit() {
        let spec = spec(HolderStrategy::AlwaysWithhold);
        let serial = run_bonded_trials(&spec, 17, 9, factory(0.4)).unwrap();
        for shards in [1usize, 2, 5, 17, 40] {
            let sharded = run_bonded_trials_sharded(&spec, 17, 9, shards, factory(0.4)).unwrap();
            assert_eq!(sharded.fingerprint, serial.fingerprint, "{shards} shards");
            assert_eq!(sharded.released, serial.released);
            assert_eq!(sharded.clean, serial.clean);
            assert_eq!(sharded.leaked_early, serial.leaked_early);
            assert_eq!(sharded.withheld_quorum, serial.withheld_quorum);
            assert_eq!(sharded.slashed.count(), serial.slashed.count());
            assert_eq!(sharded.slashed.min(), serial.slashed.min());
            assert_eq!(sharded.slashed.max(), serial.slashed.max());
        }
    }

    #[test]
    fn ranges_merge_commutatively_and_key_by_index() {
        let spec = spec(HolderStrategy::Compliant);
        let full = run_bonded_trials(&spec, 10, 5, factory(0.3)).unwrap();
        let head = run_bonded_trial_range(&spec, 0, 4, 5, factory(0.3)).unwrap();
        let tail = run_bonded_trial_range(&spec, 4, 6, 5, factory(0.3)).unwrap();
        let mut merged = tail.clone();
        merged.merge(&head);
        assert_eq!(merged.fingerprint, full.fingerprint);
        assert_eq!(merged.released, full.released);
        // Same count of trials run as ranges [0,2) vs [2,4) digests
        // differently: position matters despite commutative combination.
        let a = run_bonded_trial_range(&spec, 0, 2, 5, factory(0.3)).unwrap();
        let b = run_bonded_trial_range(&spec, 2, 2, 5, factory(0.3)).unwrap();
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn empty_batch_is_the_merge_identity() {
        let spec = spec(HolderStrategy::Compliant);
        let empty = run_bonded_trials(&spec, 0, 1, factory(0.0)).unwrap();
        assert_eq!(empty.fingerprint, 0);
        assert_eq!(empty.released.trials(), 0);
        let run = run_bonded_trials(&spec, 5, 1, factory(0.0)).unwrap();
        let mut merged = empty;
        merged.merge(&run);
        assert_eq!(merged.fingerprint, run.fingerprint);
    }

    fn storm(kind: emerge_faults::FaultKind) -> FaultPlan {
        FaultPlan::new(
            77,
            vec![emerge_faults::FaultEvent {
                from: emerge_sim::time::SimTime::ZERO,
                to: emerge_sim::time::SimTime::MAX,
                kind,
            }],
        )
    }

    #[test]
    fn empty_plan_faulted_trials_match_plain_bit_for_bit() {
        let spec = spec(HolderStrategy::AlwaysWithhold);
        let plain = run_bonded_trials(&spec, 12, 9, factory(0.4)).unwrap();
        let faulted =
            run_bonded_trial_range_faulted(&spec, &FaultPlan::none(), 0, 12, 9, factory(0.4))
                .unwrap();
        assert_eq!(faulted.base.fingerprint, plain.fingerprint);
        assert_eq!(faulted.base.released, plain.released);
        assert_eq!(faulted.fault_fingerprint, 0);
        assert_eq!(faulted.disrupted.successes(), 0);
    }

    #[test]
    fn faulted_sharded_matches_serial_bit_for_bit() {
        let spec = spec(HolderStrategy::Compliant);
        let plan = storm(emerge_faults::FaultKind::CrashRestart { crash_ppm: 250_000 });
        let serial = run_bonded_trial_range_faulted(&spec, &plan, 0, 15, 13, factory(0.2)).unwrap();
        for shards in [1usize, 2, 7] {
            let sharded =
                run_bonded_trials_faulted_sharded(&spec, &plan, 15, 13, shards, factory(0.2))
                    .unwrap();
            assert_eq!(
                sharded.base.fingerprint, serial.base.fingerprint,
                "{shards} shards"
            );
            assert_eq!(
                sharded.fault_fingerprint, serial.fault_fingerprint,
                "{shards} shards fault fingerprint"
            );
            assert_eq!(sharded.degraded, serial.degraded);
            assert_eq!(sharded.clean_of_faults, serial.clean_of_faults);
            assert_eq!(sharded.disrupted, serial.disrupted);
            assert_eq!(sharded.disruptions.count(), serial.disruptions.count());
        }
        assert!(
            serial.disrupted.successes() > 0,
            "quarter-intensity crash storm must actually disrupt"
        );
    }

    #[test]
    fn degraded_and_clean_partition_the_released_trials() {
        let spec = spec(HolderStrategy::Compliant);
        let plan = storm(emerge_faults::FaultKind::CrashRestart { crash_ppm: 200_000 });
        let r = run_bonded_trial_range_faulted(&spec, &plan, 0, 40, 31, factory(0.0)).unwrap();
        assert_eq!(
            r.degraded.successes() + r.clean_of_faults.successes(),
            r.base.released.successes(),
            "degraded and clean-of-faults must exactly partition releases"
        );
        assert!(r.degraded.successes() > 0, "some releases must be degraded");
        // Honest world: every slashed bond corresponds to a crash.
        assert!(r.base.slashed.mean() > 0.0);
    }

    #[test]
    fn errors_propagate() {
        let bad = BondedSpec::new(5, 0, SimDuration::from_ticks(100));
        assert!(matches!(
            run_bonded_trials(&bad, 1, 1, factory(0.0)),
            Err(ContractError::InvalidParameters(_))
        ));
    }
}
