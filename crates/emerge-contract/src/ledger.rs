//! The token ledger backing the release contract.
//!
//! A [`Ledger`] tracks free balances per account plus two contract-owned
//! pots: **escrow** (bonds and reward funds locked by open deposits) and
//! **treasury** (slashed bonds, permanently confiscated). Every movement
//! is a transfer between these three pools, so the total supply is
//! invariant over any operation sequence — the *escrow conservation*
//! property the workspace's economics suite property-tests.

use crate::error::ContractError;

/// An account index on the ledger.
pub type AccountId = usize;

/// Free balances plus the contract-owned escrow and treasury pots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ledger {
    balances: Vec<u64>,
    escrow: u64,
    treasury: u64,
}

impl Ledger {
    /// Creates a ledger with `accounts` accounts holding `initial_balance`
    /// each.
    pub fn new(accounts: usize, initial_balance: u64) -> Self {
        Ledger {
            balances: vec![initial_balance; accounts],
            escrow: 0,
            treasury: 0,
        }
    }

    /// Number of accounts.
    pub fn accounts(&self) -> usize {
        self.balances.len()
    }

    /// Appends a new account holding `balance`, returning its id. Minting
    /// at account creation is the only way supply enters the ledger.
    pub fn push_account(&mut self, balance: u64) -> AccountId {
        self.balances.push(balance);
        self.balances.len() - 1
    }

    /// Free balance of `account`.
    ///
    /// # Panics
    ///
    /// Panics if the account does not exist.
    pub fn balance(&self, account: AccountId) -> u64 {
        self.balances[account]
    }

    /// Free balance of `account`, or `None` if the account does not exist
    /// (the non-panicking form used for pre-flight validation).
    pub fn balance_checked(&self, account: AccountId) -> Option<u64> {
        self.balances.get(account).copied()
    }

    /// Tokens currently locked in contract escrow.
    pub fn escrow(&self) -> u64 {
        self.escrow
    }

    /// Tokens confiscated by slashing.
    pub fn treasury(&self) -> u64 {
        self.treasury
    }

    /// The total token supply: free balances + escrow + treasury. Constant
    /// over every ledger operation.
    pub fn total_supply(&self) -> u64 {
        self.balances.iter().sum::<u64>() + self.escrow + self.treasury
    }

    /// Locks `amount` from `account` into escrow.
    ///
    /// # Errors
    ///
    /// [`ContractError::InsufficientFunds`] if the free balance is too
    /// small; [`ContractError::UnknownAccount`] for a bad account id.
    pub fn lock(&mut self, account: AccountId, amount: u64) -> Result<(), ContractError> {
        let balance = self
            .balances
            .get_mut(account)
            .ok_or(ContractError::UnknownAccount { account })?;
        if *balance < amount {
            return Err(ContractError::InsufficientFunds {
                account,
                required: amount,
                available: *balance,
            });
        }
        *balance -= amount;
        self.escrow += amount;
        Ok(())
    }

    /// Releases `amount` from escrow to `account`.
    ///
    /// # Errors
    ///
    /// [`ContractError::EscrowUnderflow`] if the escrow pot holds less
    /// than `amount`; [`ContractError::UnknownAccount`] for a bad id.
    pub fn release(&mut self, account: AccountId, amount: u64) -> Result<(), ContractError> {
        if self.escrow < amount {
            return Err(ContractError::EscrowUnderflow {
                required: amount,
                available: self.escrow,
            });
        }
        let balance = self
            .balances
            .get_mut(account)
            .ok_or(ContractError::UnknownAccount { account })?;
        self.escrow -= amount;
        *balance += amount;
        Ok(())
    }

    /// Confiscates `amount` from escrow into the treasury (a slash).
    ///
    /// # Errors
    ///
    /// [`ContractError::EscrowUnderflow`] if the escrow pot holds less
    /// than `amount`.
    pub fn confiscate(&mut self, amount: u64) -> Result<(), ContractError> {
        if self.escrow < amount {
            return Err(ContractError::EscrowUnderflow {
                required: amount,
                available: self.escrow,
            });
        }
        self.escrow -= amount;
        self.treasury += amount;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lock_release_round_trip_conserves_supply() {
        let mut ledger = Ledger::new(3, 100);
        assert_eq!(ledger.total_supply(), 300);
        ledger.lock(0, 60).unwrap();
        assert_eq!(ledger.balance(0), 40);
        assert_eq!(ledger.escrow(), 60);
        assert_eq!(ledger.total_supply(), 300);
        ledger.release(1, 60).unwrap();
        assert_eq!(ledger.balance(1), 160);
        assert_eq!(ledger.total_supply(), 300);
    }

    #[test]
    fn overdraft_and_underflow_are_errors() {
        let mut ledger = Ledger::new(1, 10);
        assert!(matches!(
            ledger.lock(0, 11),
            Err(ContractError::InsufficientFunds { .. })
        ));
        assert!(matches!(
            ledger.lock(5, 1),
            Err(ContractError::UnknownAccount { account: 5 })
        ));
        assert!(matches!(
            ledger.release(0, 1),
            Err(ContractError::EscrowUnderflow { .. })
        ));
        assert!(matches!(
            ledger.confiscate(1),
            Err(ContractError::EscrowUnderflow { .. })
        ));
        // Failed operations leave the ledger untouched.
        assert_eq!(ledger.balance(0), 10);
        assert_eq!(ledger.total_supply(), 10);
    }

    #[test]
    fn confiscation_moves_escrow_to_treasury() {
        let mut ledger = Ledger::new(2, 50);
        ledger.lock(0, 30).unwrap();
        ledger.confiscate(30).unwrap();
        assert_eq!(ledger.treasury(), 30);
        assert_eq!(ledger.escrow(), 0);
        assert_eq!(ledger.total_supply(), 100);
    }

    proptest! {
        /// Any sequence of (possibly failing) ledger operations conserves
        /// the total supply. Each raw word decodes to an (op, account,
        /// amount) triple.
        #[test]
        fn arbitrary_operation_sequences_conserve_supply(
            ops in proptest::collection::vec(0u64..u64::MAX, 0..64),
        ) {
            let mut ledger = Ledger::new(3, 100);
            let supply = ledger.total_supply();
            for word in ops {
                let op = word % 3;
                let account = (word / 3 % 4) as usize;
                let amount = word / 12 % 200;
                let _ = match op {
                    0 => ledger.lock(account, amount),
                    1 => ledger.release(account, amount),
                    _ => ledger.confiscate(amount),
                };
                prop_assert_eq!(ledger.total_supply(), supply);
            }
        }
    }
}
