//! Error types for the contract release layer.

use crate::clock::BlockHeight;
use emerge_crypto::CryptoError;
use std::error::Error;
use std::fmt;

/// Errors raised by the ledger, the release contract, or the bonded
/// release protocol.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ContractError {
    /// Protocol parameters were invalid (zero holders, threshold out of
    /// range, reveal window before the commit block, ...).
    InvalidParameters(String),
    /// An account id does not exist on the ledger.
    UnknownAccount {
        /// The offending account id.
        account: usize,
    },
    /// An account's free balance cannot cover the requested lock.
    InsufficientFunds {
        /// The account attempting the lock.
        account: usize,
        /// Tokens required.
        required: u64,
        /// Tokens available.
        available: u64,
    },
    /// The escrow pot cannot cover a release or confiscation — only
    /// reachable through a contract bug, never through user input.
    EscrowUnderflow {
        /// Tokens required.
        required: u64,
        /// Tokens in escrow.
        available: u64,
    },
    /// A deposit id does not exist on the contract.
    UnknownDeposit {
        /// The offending deposit id.
        deposit: usize,
    },
    /// A holder index is outside the deposit's holder set.
    UnknownHolder {
        /// The offending holder index.
        holder: usize,
    },
    /// An operation arrived in the wrong state-machine phase (committing
    /// twice, revealing after the deadline, claiming before finalization).
    WrongPhase {
        /// The rejected operation.
        operation: &'static str,
        /// Human-readable state description.
        state: String,
    },
    /// A revealed payload does not match the registered commitment.
    CommitmentMismatch {
        /// The holder whose reveal was rejected.
        holder: usize,
    },
    /// A holder tried to claim an already-claimed payout.
    AlreadyClaimed {
        /// The double-claiming holder index.
        holder: usize,
    },
    /// A deadline height is inconsistent (reveal-by before reveal-from,
    /// or a window already in the past at open time).
    BadDeadline {
        /// The offending height.
        height: BlockHeight,
        /// What the height was supposed to satisfy.
        requirement: &'static str,
    },
    /// A cryptographic operation failed.
    Crypto(CryptoError),
}

impl fmt::Display for ContractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContractError::InvalidParameters(msg) => write!(f, "invalid parameters: {msg}"),
            ContractError::UnknownAccount { account } => {
                write!(f, "unknown ledger account {account}")
            }
            ContractError::InsufficientFunds {
                account,
                required,
                available,
            } => write!(
                f,
                "account {account} cannot lock {required} tokens ({available} available)"
            ),
            ContractError::EscrowUnderflow {
                required,
                available,
            } => write!(
                f,
                "escrow underflow: {required} requested, {available} locked"
            ),
            ContractError::UnknownDeposit { deposit } => write!(f, "unknown deposit {deposit}"),
            ContractError::UnknownHolder { holder } => write!(f, "unknown holder index {holder}"),
            ContractError::WrongPhase { operation, state } => {
                write!(f, "{operation} rejected: {state}")
            }
            ContractError::CommitmentMismatch { holder } => {
                write!(
                    f,
                    "holder {holder} revealed a payload that breaks its commitment"
                )
            }
            ContractError::AlreadyClaimed { holder } => {
                write!(f, "holder {holder} already claimed its payout")
            }
            ContractError::BadDeadline {
                height,
                requirement,
            } => write!(f, "bad deadline at block {height}: {requirement}"),
            ContractError::Crypto(e) => write!(f, "cryptographic failure: {e}"),
        }
    }
}

impl Error for ContractError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ContractError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CryptoError> for ContractError {
    fn from(e: CryptoError) -> Self {
        ContractError::Crypto(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all_variants() {
        let variants: Vec<ContractError> = vec![
            ContractError::InvalidParameters("m = 0".into()),
            ContractError::UnknownAccount { account: 9 },
            ContractError::InsufficientFunds {
                account: 1,
                required: 100,
                available: 7,
            },
            ContractError::EscrowUnderflow {
                required: 10,
                available: 0,
            },
            ContractError::UnknownDeposit { deposit: 3 },
            ContractError::UnknownHolder { holder: 4 },
            ContractError::WrongPhase {
                operation: "reveal",
                state: "deposit finalized".into(),
            },
            ContractError::CommitmentMismatch { holder: 2 },
            ContractError::AlreadyClaimed { holder: 0 },
            ContractError::BadDeadline {
                height: 5,
                requirement: "reveal-by must not precede reveal-from",
            },
            ContractError::Crypto(CryptoError::AuthenticationFailed),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ContractError>();
    }
}
