//! # emerge-contract
//!
//! A smart-contract release substrate for self-emerging data, after
//! Li & Palanisamy 2019 ("Decentralized Release of Self-emerging Data
//! using Smart Contracts"): instead of hop deadlines enforced by the DHT
//! routing schedule, holders post **bonds** to an escrow contract, commit
//! to their key material, and a **timed reveal with slashing** makes
//! withholding and early disclosure economically irrational.
//!
//! Everything is deterministic and simulated — no consensus, no gas, no
//! networking — because what the self-emerging schemes need from a chain
//! is only its *clock* and its *escrow rules*:
//!
//! * [`clock`] — the block clock mapping [`emerge_sim::time::SimTime`]
//!   onto chain height
//! * [`ledger`] — token accounts, the escrow pot and the slashing
//!   treasury, with supply conservation as an enforced invariant
//! * [`contract`] — the [`contract::ReleaseContract`] state machine:
//!   register → bond escrow → commit → timed reveal → claim/slash
//! * [`economy`] — bond sizes, reveal rewards, and rational-adversary
//!   strategies parameterized by bribe value
//! * [`substrate`] — [`ContractSubstrate`], the third `HolderSubstrate`
//!   backend: analytic DHT semantics (bit-identical populations and
//!   protocol outcomes) plus the chain layered on top
//! * [`release`] — the contract-native emergence mode: bonded `(m, n)`
//!   share release with the withheld-quorum and early-reveal-leak
//!   failure predicates
//! * [`mc`] — sharded, mergeable Monte-Carlo evaluation of the bonded
//!   mode (bit-identical across shard counts)
//!
//! The `HolderSubstrate` implementation itself lives in
//! `emerge_core::substrate`, next to the overlay's and the analytic
//! substrate's — this crate stays independent of the scheme layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod contract;
pub mod economy;
pub mod error;
pub mod ledger;
pub mod mc;
pub mod release;
pub mod substrate;

pub use clock::{BlockClock, BlockHeight};
pub use contract::{DepositTerms, HolderPhase, ReleaseContract};
pub use economy::{EconomyParams, HolderStrategy, RevealAction};
pub use error::ContractError;
pub use ledger::Ledger;
pub use release::{run_bonded_release, BondedFailure, BondedReport, BondedSpec};
pub use substrate::{ContractConfig, ContractSubstrate};
